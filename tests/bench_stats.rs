//! The distribution-aware stats engine, checked end to end: quantile
//! estimates against exact sorted quantiles on pseudo-random samples,
//! the merge associativity/ordering contract behind the parallel fold,
//! and the `BENCH_*.json` round-trip law the `bench-diff` gate depends
//! on.

use rtas::sim::rng::SplitMix64;
use rtas_bench::report::{BenchReport, BenchRow};
use rtas_bench::runner::TrialRunner;
use rtas_bench::stats::StatsAccumulator;

/// Exact nearest-rank quantile of a sorted sample (the definition the
/// histogram estimator approximates).
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    if q <= 0.0 {
        return sorted[0];
    }
    if q >= 1.0 {
        return sorted[sorted.len() - 1];
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// SplitMix64-generated samples from a few shapes: uniform-ish integers
/// (step counts), a heavy-ish tail (squared uniforms), and small floats.
fn sample_suites() -> Vec<(&'static str, Vec<f64>)> {
    let mut suites = Vec::new();
    let mut rng = SplitMix64::new(0x5151_babe);
    suites.push((
        "uniform-int",
        (0..5000)
            .map(|_| (rng.next_u64() % 10_000 + 1) as f64)
            .collect(),
    ));
    let mut rng = SplitMix64::split(0x5151_babe, 1);
    suites.push((
        "squared-tail",
        (0..5000)
            .map(|_| {
                let u = rng.next_f64();
                1.0 + 1e4 * u * u
            })
            .collect(),
    ));
    let mut rng = SplitMix64::split(0x5151_babe, 2);
    suites.push((
        "unit-floats",
        (0..2000).map(|_| rng.next_f64() + 1e-3).collect(),
    ));
    suites
}

#[test]
fn quantile_estimates_track_exact_sorted_quantiles() {
    for (name, values) in sample_suites() {
        let mut acc = StatsAccumulator::new();
        for &v in &values {
            acc.push(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99] {
            let exact = exact_quantile(&sorted, q);
            let est = acc.quantile(q);
            // The log-bin histogram guarantees ±6.25% inside a bin; 8%
            // leaves room for the rank falling at a bin edge.
            let rel = (est - exact).abs() / exact.abs().max(1e-12);
            assert!(
                rel < 0.08,
                "{name} q={q}: estimate {est} vs exact {exact} (rel {rel:.4})"
            );
        }
        // The exact ends of the distribution are exact.
        assert_eq!(acc.quantile(0.0), sorted[0], "{name}");
        assert_eq!(acc.quantile(1.0), sorted[sorted.len() - 1], "{name}");
        // Mean agrees with the direct sum.
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!((acc.mean() - mean).abs() / mean.abs() < 1e-9, "{name}");
    }
}

#[test]
fn merge_is_associative_and_ordering_insensitive_where_it_must_be() {
    for (name, values) in sample_suites() {
        let mut serial = StatsAccumulator::new();
        for &v in &values {
            serial.push(v);
        }
        // A "parallel fold": partition into worker-sized chunks, build
        // one accumulator per chunk, then merge — both left-to-right
        // and in a balanced tree, and with the chunk list reversed.
        let chunks: Vec<StatsAccumulator> = values
            .chunks(257)
            .map(|chunk| {
                let mut acc = StatsAccumulator::new();
                for &v in chunk {
                    acc.push(v);
                }
                acc
            })
            .collect();
        let fold_left = |parts: &[StatsAccumulator]| {
            let mut acc = StatsAccumulator::new();
            for p in parts {
                acc.merge(p);
            }
            acc
        };
        let left = fold_left(&chunks);
        let reversed: Vec<StatsAccumulator> = chunks.iter().rev().cloned().collect();
        let right = fold_left(&reversed);
        for merged in [&left, &right] {
            // Gate-relevant statistics are bit-identical to the serial
            // fold under ANY merge order: integer bin counts, exact
            // min/max comparisons.
            assert_eq!(merged.count(), serial.count(), "{name}");
            assert_eq!(merged.min(), serial.min(), "{name}");
            assert_eq!(merged.max(), serial.max(), "{name}");
            assert_eq!(merged.p50(), serial.p50(), "{name}");
            assert_eq!(merged.p90(), serial.p90(), "{name}");
            assert_eq!(merged.p99(), serial.p99(), "{name}");
            // Floating-point moments agree to rounding error.
            let mrel = (merged.mean() - serial.mean()).abs() / serial.mean().abs();
            assert!(mrel < 1e-12, "{name}: mean rel {mrel}");
            let vrel =
                (merged.variance() - serial.variance()).abs() / serial.variance().abs().max(1e-12);
            assert!(vrel < 1e-9, "{name}: var rel {vrel}");
        }
        // And the two merge orders agree with each other bitwise on the
        // quantile machinery.
        assert_eq!(left.p99(), right.p99(), "{name}");
    }
}

#[test]
fn runner_fold_is_thread_count_invariant_including_quantiles() {
    // The production path: TrialRunner::aggregate folds in trial order,
    // so the full statistics object is bit-identical at any thread
    // count — the property the BENCH_*.json gate relies on.
    let trial = |t: rtas_bench::runner::Trial| ((t.seed % 977) + 1) as f64;
    let serial = TrialRunner::serial().aggregate(500, 0xcafe, trial);
    for threads in [2, 5, 16] {
        let parallel = TrialRunner::new(threads).aggregate(500, 0xcafe, trial);
        assert_eq!(serial, parallel, "threads={threads}");
        assert_eq!(serial.summary(), parallel.summary(), "threads={threads}");
    }
}

#[test]
fn bench_report_round_trips_through_json() {
    let mut acc = StatsAccumulator::new();
    let mut rng = SplitMix64::new(7);
    for _ in 0..64 {
        acc.push((rng.next_u64() % 100) as f64);
    }
    let mut report = BenchReport::new("integration_round_trip", 4);
    report.push(
        BenchRow::from_summary(8, &acc.summary(), 12.75)
            .with("registers", 141.0)
            .with_label("algorithm", "logstar")
            .with_label("scenario", "baseline-random"),
    );
    // A row with non-finite values: serialized as null, parsed as NaN,
    // still equal under the report's non-finite-identifying equality.
    let mut broken = BenchRow::empty(16, 0);
    broken.ci95 = f64::NAN;
    broken.p99 = f64::INFINITY;
    report.push(broken.with("ratio", f64::NAN));
    let json = report.to_json();
    assert!(json.contains("\"ci95\": null"));
    assert!(json.contains("\"p99\": null"));
    assert!(json.contains("\"ratio\": null"));
    let parsed = BenchReport::from_json(&json).expect("round-trip parse");
    assert_eq!(parsed, report);
    // Serialization is a fixed point after one cycle.
    assert_eq!(parsed.to_json(), json);
    // Parsed distribution fields are usable numbers (not strings).
    let row = &parsed.rows()[0];
    assert_eq!(row.k, 8);
    assert!(row.p50 <= row.p90 && row.p90 <= row.p99);
    assert!(row.min <= row.mean && row.mean <= row.worst);
}
