//! Integration: the paper's space claims, measured end-to-end.

use std::sync::Arc;

use rtas::algorithms::{Combined, LogLogLe, LogStarLe, OriginalRatRace, SpaceEfficientRatRace};
use rtas::lowerbound::recurrence::register_lower_bound;
use rtas::sim::memory::Memory;

#[test]
fn space_efficient_structures_are_linear() {
    // All the O(n)/Θ(n) structures should stay within a generous c·n.
    for n in [64usize, 256, 1024, 4096] {
        let declared = |f: &dyn Fn(&mut Memory)| {
            let mut mem = Memory::new();
            f(&mut mem);
            mem.declared_registers()
        };
        let logstar = declared(&|m| {
            LogStarLe::new(m, n);
        });
        let loglog = declared(&|m| {
            LogLogLe::new(m, n);
        });
        let ratrace = declared(&|m| {
            SpaceEfficientRatRace::new(m, n);
        });
        let combined = declared(&|m| {
            let weak = Arc::new(LogStarLe::new(m, n));
            Combined::new(m, weak, n);
        });
        for (name, regs) in [
            ("logstar", logstar),
            ("loglog", loglog),
            ("ratrace-se", ratrace),
            ("combined", combined),
        ] {
            assert!(
                regs <= 45 * n as u64 + 500,
                "{name} n={n}: {regs} registers is not O(n)"
            );
            assert!(regs >= n as u64, "{name} n={n}: implausibly small ({regs})");
        }
    }
}

#[test]
fn original_ratrace_is_cubic_in_declared_space() {
    let declared = |n: usize| {
        let mut mem = Memory::new();
        let _ = OriginalRatRace::new(&mut mem, n);
        mem.declared_registers()
    };
    let d32 = declared(32);
    let d64 = declared(64);
    let d128 = declared(128);
    // Doubling n multiplies the declared registers by ≈ 8 (tree height
    // 3·log n gains 3 levels).
    assert!(d64 > 6 * d32, "d32={d32} d64={d64}");
    assert!(d128 > 6 * d64, "d64={d64} d128={d128}");
}

#[test]
fn space_separation_matches_paper_orders() {
    // At n = 256 the original should already exceed the space-efficient
    // version by more than n (Θ(n³) vs Θ(n) with small constants).
    let n = 256;
    let mut mem_o = Memory::new();
    let _ = OriginalRatRace::new(&mut mem_o, n);
    let mut mem_s = Memory::new();
    let _ = SpaceEfficientRatRace::new(&mut mem_s, n);
    let ratio = mem_o.declared_registers() / mem_s.declared_registers().max(1);
    assert!(ratio > n as u64, "separation ratio only {ratio}");
}

#[test]
fn all_upper_bounds_respect_the_lower_bound() {
    // Theorem 5.1: Ω(log n) registers are necessary. Every implementation
    // obviously uses more; check the bound machinery and the structures
    // agree on ordering.
    for n in [64u64, 1024, 4096] {
        let lower = register_lower_bound(n);
        let mut mem = Memory::new();
        let _ = SpaceEfficientRatRace::new(&mut mem, n as usize);
        assert!(mem.declared_registers() >= lower);
        assert!(lower >= (n.ilog2() as u64).saturating_sub(1));
    }
}

#[test]
fn labels_partition_the_space() {
    let n = 128;
    let mut mem = Memory::new();
    let _ = SpaceEfficientRatRace::new(&mut mem, n);
    let stats = mem.stats_by_label();
    let total: u64 = stats.values().map(|s| s.declared).sum();
    assert_eq!(total, mem.declared_registers());
    // The big components are present.
    assert!(stats.contains_key("ratrace-tree"));
    assert!(stats.contains_key("ratrace-overflow-path"));
    assert!(stats.contains_key("ratrace-backup-path"));
    assert!(stats.contains_key("ratrace-letop"));
}
