//! The executor's O(1) live-process bookkeeping must agree with the old
//! scan-based completion check under every termination mode: normal
//! completion, slots wasted on finished processes, the step cap, and an
//! adversary that stops scheduling (`None`).

use rtas::algorithms::SpaceEfficientRatRace;
use rtas::sim::adversary::{Adversary, AdversaryClass, RandomSchedule, View};
use rtas::sim::executor::{Execution, ExecutionResult, RunOutcome};
use rtas::sim::memory::Memory;
use rtas::sim::op::MemOp;
use rtas::sim::protocol::{Ctx, Poll, Protocol, Resume};
use rtas::sim::rng::SplitMix64;
use rtas::sim::word::{ProcessId, RegId, Word};

/// Performs `left` writes to its register, then finishes with its pid.
struct Writer {
    reg: RegId,
    left: u32,
}

impl Protocol for Writer {
    fn resume(&mut self, _input: Resume, ctx: &mut Ctx<'_>) -> Poll {
        if self.left == 0 {
            Poll::Done(ctx.pid.index() as Word)
        } else {
            self.left -= 1;
            Poll::Op(MemOp::Write(self.reg, 1))
        }
    }
}

/// An adversary that replays raw slots with *no* activity filtering: it
/// happily schedules finished processes (exercising the executor's
/// wasted-slot path) and returns `None` when the slots run out (crashing
/// every unfinished process).
struct RawSlots {
    slots: Vec<usize>,
    cursor: usize,
}

impl Adversary for RawSlots {
    fn class(&self) -> AdversaryClass {
        AdversaryClass::Oblivious
    }

    fn next(&mut self, _view: &View<'_>) -> Option<ProcessId> {
        let slot = self.slots.get(self.cursor).copied()?;
        self.cursor += 1;
        Some(ProcessId(slot))
    }
}

/// The old O(n) completion check, applied to the finished result: what the
/// scan-based loop would have reported.
fn scan_finished(res: &ExecutionResult) -> usize {
    res.outcomes().iter().filter(|o| o.is_some()).count()
}

fn writer_execution(n: usize, writes: &[u32]) -> Execution {
    let mut mem = Memory::new();
    let regs = mem.alloc(n as u64, "w");
    let protos: Vec<Box<dyn Protocol>> = (0..n)
        .map(|i| {
            Box::new(Writer {
                reg: regs.get(i as u64),
                left: writes[i],
            }) as Box<dyn Protocol>
        })
        .collect();
    Execution::new(mem, protos, 0)
}

/// Run the same configuration through both entry points and check that the
/// O(1) accounting (`RunOutcome`, `all_finished`, `finished_count`,
/// incremental step totals, incremental touched counts) agrees with a full
/// scan of the final state.
fn check_consistency(n: usize, writes: &[u32], adv_slots: Vec<usize>, cap: Option<u64>) {
    // Entry point 1: in-place run, O(1) accessors.
    let mut exec = writer_execution(n, writes);
    if let Some(c) = cap {
        exec = exec.with_step_cap(c);
    }
    let mut adv = RawSlots {
        slots: adv_slots.clone(),
        cursor: 0,
    };
    let outcome: RunOutcome = exec.run_in_place(&mut adv);
    let live_finished = exec.finished_count();
    let scan = (0..n)
        .filter(|&i| exec.outcome(ProcessId(i)).is_some())
        .count();
    assert_eq!(outcome.finished, scan, "RunOutcome.finished vs scan");
    assert_eq!(live_finished, scan, "finished_count vs scan");
    assert_eq!(exec.all_finished(), scan == n, "all_finished vs scan");
    assert_eq!(outcome.processes, n);
    let total: u64 = exec.steps().as_slice().iter().sum();
    assert_eq!(
        exec.steps().total(),
        total,
        "incremental total vs per-process sum"
    );
    if let Some(c) = cap {
        assert!(exec.steps().total() <= c, "step cap exceeded");
        assert_eq!(
            outcome.hit_cap,
            exec.steps().total() == c && !exec.all_finished()
        );
    }
    let touched_by_label: u64 = exec
        .memory()
        .stats_by_label()
        .values()
        .map(|s| s.touched)
        .sum();
    assert_eq!(
        exec.memory().touched_registers(),
        touched_by_label,
        "incremental touched count vs per-region scan"
    );

    // Entry point 2: the consuming run must report the same execution.
    let mut exec2 = writer_execution(n, writes);
    if let Some(c) = cap {
        exec2 = exec2.with_step_cap(c);
    }
    let mut adv2 = RawSlots {
        slots: adv_slots,
        cursor: 0,
    };
    let res = exec2.run(&mut adv2);
    assert_eq!(scan_finished(&res), scan);
    assert_eq!(res.all_finished(), scan == n);
    assert_eq!(res.steps().total(), total);
    assert_eq!(res.hit_step_cap(), outcome.hit_cap);
    for i in 0..n {
        assert_eq!(
            res.outcome(ProcessId(i)),
            exec.outcome(ProcessId(i)),
            "pid {i}"
        );
    }
}

#[test]
fn randomized_schedules_agree_with_scan_semantics() {
    let mut rng = SplitMix64::new(0xc047);
    for case in 0..200 {
        let n = 1 + rng.next_below(6) as usize;
        let writes: Vec<u32> = (0..n).map(|_| rng.next_below(6) as u32).collect();
        let total_work: u64 = writes.iter().map(|&w| w as u64).sum();
        // Slots deliberately over- and under-shoot the needed work, and
        // include out-of-order repeats, so finished processes get
        // scheduled and some runs end via `None` with work left.
        let slot_count = rng.next_below(2 * total_work.max(1) + 4);
        let slots: Vec<usize> = (0..slot_count)
            .map(|_| rng.next_below(n as u64) as usize)
            .collect();
        let cap = match rng.next_below(3) {
            0 => None,
            _ => Some(rng.next_below(total_work + 2)),
        };
        check_consistency(n, &writes, slots, cap);
        let _ = case;
    }
}

#[test]
fn wasted_slots_on_finished_processes_take_no_steps() {
    // P0 needs 2 writes; schedule it 10 times. The 8 extra slots must not
    // count as steps or disturb completion accounting.
    let mut exec = writer_execution(2, &[2, 1]);
    let mut adv = RawSlots {
        slots: vec![0; 10],
        cursor: 0,
    };
    let outcome = exec.run_in_place(&mut adv);
    assert_eq!(exec.steps().of(ProcessId(0)), 2);
    assert_eq!(exec.steps().total(), 2);
    assert_eq!(outcome.finished, 1, "P1 never scheduled");
    assert!(!outcome.all_finished());
    assert!(!outcome.hit_cap);
}

#[test]
fn adversary_none_crashes_remaining_processes() {
    let mut exec = writer_execution(3, &[1, 1, 1]);
    let mut adv = RawSlots {
        slots: vec![0, 0],
        cursor: 0,
    }; // P0 finishes, then None
    let outcome = exec.run_in_place(&mut adv);
    assert_eq!(outcome.finished, 1);
    assert_eq!(exec.outcome(ProcessId(0)), Some(0));
    assert_eq!(exec.outcome(ProcessId(1)), None);
    assert!(!outcome.hit_cap);
}

#[test]
fn step_cap_reports_hit_and_consistent_counts() {
    let mut exec = writer_execution(2, &[100, 100]).with_step_cap(7);
    let mut adv = RawSlots {
        slots: (0..1000).map(|i| i % 2).collect(),
        cursor: 0,
    };
    let outcome = exec.run_in_place(&mut adv);
    assert!(outcome.hit_cap);
    assert_eq!(exec.steps().total(), 7);
    assert_eq!(outcome.finished, 0);
}

/// Replays raw slots like [`RawSlots`], but first emits a scripted list
/// of `(slot, injection)` lifecycle events — the minimal harness for the
/// executor's native crash/arrival support.
struct ScriptedInjections {
    slots: Vec<usize>,
    cursor: usize,
    events: Vec<(usize, Event)>,
}

#[derive(Clone, Copy)]
enum Event {
    Arrive(usize),
    Crash(usize),
}

impl Adversary for ScriptedInjections {
    fn class(&self) -> AdversaryClass {
        AdversaryClass::Oblivious
    }

    fn inject(&mut self, _view: &View<'_>) -> rtas::sim::adversary::Injection {
        use rtas::sim::adversary::Injection;
        if let Some(i) = self
            .events
            .iter()
            .position(|&(slot, _)| slot <= self.cursor)
        {
            let (_, event) = self.events.remove(i);
            return match event {
                Event::Arrive(p) => Injection::Arrive(ProcessId(p)),
                Event::Crash(p) => Injection::Crash(ProcessId(p)),
            };
        }
        Injection::None
    }

    fn next(&mut self, _view: &View<'_>) -> Option<ProcessId> {
        let slot = self.slots.get(self.cursor).copied()?;
        self.cursor += 1;
        Some(ProcessId(slot))
    }
}

#[test]
fn crashed_process_consumes_slots_but_takes_no_steps() {
    // P0 crashes at slot 2 (after 2 writes); the schedule keeps handing
    // it slots, which are consumed without steps, while P1 finishes.
    let mut exec = writer_execution(2, &[10, 3]);
    let mut adv = ScriptedInjections {
        slots: vec![0, 0, 0, 0, 0, 0, 1, 1, 1],
        cursor: 0,
        events: vec![(2, Event::Crash(0))],
    };
    let outcome = exec.run_in_place(&mut adv);
    assert_eq!(exec.steps().of(ProcessId(0)), 2, "steps frozen at crash");
    assert_eq!(exec.steps().of(ProcessId(1)), 3);
    assert_eq!(exec.steps().total(), 5);
    assert_eq!(outcome.finished, 1);
    assert_eq!(exec.crashed_count(), 1);
    assert_eq!(exec.outcome(ProcessId(0)), None);
    assert_eq!(exec.outcome(ProcessId(1)), Some(1));
    assert!(!outcome.all_finished());
}

#[test]
fn late_arrival_first_step_counted_exactly_once() {
    // P1 is held back and arrives at slot 3. Slots handed to it before
    // the arrival are wasted (no step); after the arrival each slot is
    // exactly one step — so its total equals its writes, and the global
    // total equals the sum of writes, mirroring the scan-semantics tests.
    let mut exec = writer_execution(2, &[2, 2]);
    exec.hold_arrival(ProcessId(1));
    assert_eq!(exec.not_arrived_count(), 1);
    let mut adv = ScriptedInjections {
        slots: vec![1, 1, 0, 0, 1, 1, 1],
        cursor: 0,
        events: vec![(3, Event::Arrive(1))],
    };
    let outcome = exec.run_in_place(&mut adv);
    assert!(outcome.all_finished());
    assert_eq!(exec.steps().of(ProcessId(0)), 2);
    assert_eq!(
        exec.steps().of(ProcessId(1)),
        2,
        "first step counted exactly once despite wasted pre-arrival slots"
    );
    assert_eq!(exec.steps().total(), 4);
    assert_eq!(exec.not_arrived_count(), 0);
}

#[test]
fn held_process_is_invisible_until_arrival() {
    // Before its arrival a held process is not active, exposes no
    // pending op, and reads as not-arrived; afterwards it behaves
    // normally. Checked from inside the adversary.
    use std::cell::Cell;
    let saw_hidden = Cell::new(false);
    let saw_visible = Cell::new(false);
    let mut exec = writer_execution(2, &[1, 1]);
    exec.hold_arrival(ProcessId(1));
    {
        let mut adv = ScriptedObserver {
            inner: ScriptedInjections {
                slots: vec![0, 1, 1],
                cursor: 0,
                events: vec![(1, Event::Arrive(1))],
            },
            observe: |view: &View<'_>| {
                let pid = ProcessId(1);
                if view.has_arrived(pid) {
                    if view.is_active(pid) {
                        assert!(view.pending(pid).is_some(), "arrived implies poised");
                        saw_visible.set(true);
                    }
                } else {
                    assert!(!view.is_active(pid));
                    assert!(view.pending(pid).is_none(), "held process leaked its op");
                    saw_hidden.set(true);
                }
            },
        };
        let outcome = exec.run_in_place(&mut adv);
        assert!(outcome.all_finished());
    }
    assert!(saw_hidden.get() && saw_visible.get());
}

/// Wraps [`ScriptedInjections`] with an observation hook run on every
/// scheduling decision.
struct ScriptedObserver<F> {
    inner: ScriptedInjections,
    observe: F,
}

impl<F: Fn(&View<'_>)> Adversary for ScriptedObserver<F> {
    fn class(&self) -> AdversaryClass {
        AdversaryClass::Adaptive
    }

    fn inject(&mut self, view: &View<'_>) -> rtas::sim::adversary::Injection {
        self.inner.inject(view)
    }

    fn next(&mut self, view: &View<'_>) -> Option<ProcessId> {
        (self.observe)(view);
        self.inner.next(view)
    }
}

#[test]
fn respawn_replaces_crashed_slot_with_fresh_process() {
    use rtas::sim::adversary::Injection;

    /// Crash P0 at slot 1, respawn it at slot 3 with a 1-write protocol,
    /// then round-robin everything to completion.
    struct ChurnScript {
        cursor: usize,
        crashed: bool,
        respawned: bool,
        reg: RegId,
    }

    impl Adversary for ChurnScript {
        fn class(&self) -> AdversaryClass {
            AdversaryClass::Oblivious
        }

        fn inject(&mut self, _view: &View<'_>) -> Injection {
            if self.cursor >= 1 && !self.crashed {
                self.crashed = true;
                return Injection::Crash(ProcessId(0));
            }
            if self.cursor >= 3 && !self.respawned {
                self.respawned = true;
                return Injection::Respawn(
                    ProcessId(0),
                    Box::new(Writer {
                        reg: self.reg,
                        left: 1,
                    }),
                );
            }
            Injection::None
        }

        fn next(&mut self, view: &View<'_>) -> Option<ProcessId> {
            self.cursor += 1;
            (0..view.n()).map(ProcessId).find(|&p| view.is_active(p))
        }
    }

    // P1 stays live across the crash→respawn window: the executor ends
    // the run once nothing is live and no arrival is pending, so a
    // respawn of a dead execution never fires (the scenario engine makes
    // churn atomic — one Respawn event — for exactly this reason).
    let mut exec = writer_execution(2, &[5, 4]);
    let mut adv = ChurnScript {
        cursor: 0,
        crashed: false,
        respawned: false,
        reg: RegId(0),
    };
    let outcome = exec.run_in_place(&mut adv);
    assert!(outcome.all_finished(), "{outcome:?}");
    assert_eq!(exec.crashed_count(), 0, "respawn cleared the crash");
    // Slot 0: 1 pre-crash write + 1 respawned write; Writer returns pid.
    assert_eq!(exec.steps().of(ProcessId(0)), 2);
    assert_eq!(exec.steps().of(ProcessId(1)), 4);
    assert_eq!(exec.outcome(ProcessId(0)), Some(0));
    assert_eq!(exec.outcome(ProcessId(1)), Some(1));
}

#[test]
fn zero_process_execution_finishes_immediately() {
    let exec = Execution::new(Memory::new(), Vec::new(), 0);
    let res = exec.run(&mut RandomSchedule::new(0));
    assert!(res.all_finished());
    assert_eq!(res.steps().total(), 0);
}

#[test]
fn reset_clears_all_accounting() {
    let mut mem = Memory::new();
    let le = SpaceEfficientRatRace::new(&mut mem, 4);
    let declared = mem.declared_registers();
    let protos: Vec<Box<dyn Protocol>> = (0..4).map(|_| le.elect()).collect();
    let mut exec = Execution::new(mem, protos, 1);
    let first = exec.run_in_place(&mut RandomSchedule::new(2));
    assert!(first.all_finished());
    assert!(exec.steps().total() > 0);
    assert!(exec.memory().touched_registers() > 0);

    let protos: Vec<Box<dyn Protocol>> = (0..4).map(|_| le.elect()).collect();
    exec.reset(protos, 1);
    assert_eq!(exec.finished_count(), 0);
    assert!(!exec.all_finished());
    assert_eq!(exec.steps().total(), 0);
    assert_eq!(exec.memory().touched_registers(), 0);
    assert_eq!(exec.memory().declared_registers(), declared, "layout kept");

    // And the re-run behaves like a fresh execution with the same seeds.
    let second = exec.run_in_place(&mut RandomSchedule::new(2));
    assert!(second.all_finished());
    assert_eq!(first, second);
}

#[test]
fn reset_supports_changing_process_count() {
    let mut mem = Memory::new();
    let regs = mem.alloc(8, "w");
    let protos: Vec<Box<dyn Protocol>> = (0..2)
        .map(|i| {
            Box::new(Writer {
                reg: regs.get(i),
                left: 1,
            }) as Box<dyn Protocol>
        })
        .collect();
    let mut exec = Execution::new(mem, protos, 0);
    let out = exec.run_in_place(&mut RandomSchedule::new(1));
    assert_eq!(out.processes, 2);
    assert!(out.all_finished());

    // Grow to 5 processes.
    let protos: Vec<Box<dyn Protocol>> = (0..5)
        .map(|i| {
            Box::new(Writer {
                reg: regs.get(i),
                left: 1,
            }) as Box<dyn Protocol>
        })
        .collect();
    exec.reset(protos, 0);
    let out = exec.run_in_place(&mut RandomSchedule::new(1));
    assert_eq!(out.processes, 5);
    assert!(out.all_finished());
    assert_eq!(exec.steps().total(), 5);

    // Shrink to 1.
    let protos: Vec<Box<dyn Protocol>> = vec![Box::new(Writer {
        reg: regs.get(0),
        left: 3,
    })];
    exec.reset(protos, 0);
    let out = exec.run_in_place(&mut RandomSchedule::new(1));
    assert_eq!(out.processes, 1);
    assert!(out.all_finished());
    assert_eq!(exec.steps().total(), 3);
}
