//! Determinism of the parallel trial engine: the same seed must produce
//! bit-identical outcomes, step counts, and space statistics whether
//! trials run serially or fanned out over any number of worker threads —
//! and whether the executor is rebuilt per trial or reused in place.

use std::sync::Arc;

use rtas::algorithms::{LogStarLe, SpaceEfficientRatRace};
use rtas::primitives::LeaderElect;
use rtas::sim::adversary::RandomSchedule;
use rtas::sim::executor::Execution;
use rtas::sim::memory::Memory;
use rtas::sim::protocol::{ret, Protocol};
use rtas_bench::runner::{Sweep, Trial, TrialRunner};

/// Everything observable from one trial, for exact comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TrialFingerprint {
    outcomes: Vec<Option<u64>>,
    per_process_steps: Vec<u64>,
    total_steps: u64,
    touched_registers: u64,
    declared_registers: u64,
}

fn fresh_trial(k: usize, trial: Trial) -> TrialFingerprint {
    let mut mem = Memory::new();
    let le = LogStarLe::new(&mut mem, k);
    let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
    let res =
        Execution::new(mem, protos, trial.seed).run(&mut RandomSchedule::new(trial.subseed(1)));
    assert!(res.all_finished());
    TrialFingerprint {
        outcomes: res.outcomes().to_vec(),
        per_process_steps: res.steps().as_slice().to_vec(),
        total_steps: res.steps().total(),
        touched_registers: res.memory().touched_registers(),
        declared_registers: res.memory().declared_registers(),
    }
}

#[test]
fn serial_and_parallel_runs_are_bit_identical() {
    let k = 24;
    let trials = 32;
    let seed = 0xfeed_f00d;
    let serial: Vec<TrialFingerprint> =
        TrialRunner::serial().run_trials(trials, seed, |t| fresh_trial(k, t));
    for threads in [2, 3, 4, 8] {
        let parallel = TrialRunner::new(threads).run_trials(trials, seed, |t| fresh_trial(k, t));
        assert_eq!(serial, parallel, "threads={threads}");
    }
}

#[test]
fn reused_executor_matches_fresh_executions_exactly() {
    // The allocation-light path (Execution::reset + run_in_place on a warm
    // memory) must be observationally identical to building everything
    // from scratch each trial.
    let k = 16;
    let trials = 24;
    let seed = 0x0dd_ba11;
    let fresh: Vec<TrialFingerprint> =
        TrialRunner::serial().run_trials(trials, seed, |t| fresh_trial(k, t));
    for threads in [1usize, 4] {
        let reused = TrialRunner::new(threads).run_trials_with(
            trials,
            seed,
            || {
                let mut mem = Memory::new();
                let le: Arc<dyn LeaderElect> = Arc::new(LogStarLe::new(&mut mem, k));
                (le, Execution::new(mem, Vec::new(), 0))
            },
            |(le, exec), trial| {
                let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
                exec.reset(protos, trial.seed);
                let out = exec.run_in_place(&mut RandomSchedule::new(trial.subseed(1)));
                assert!(out.all_finished());
                TrialFingerprint {
                    outcomes: (0..k)
                        .map(|i| exec.outcome(rtas::sim::word::ProcessId(i)))
                        .collect(),
                    per_process_steps: exec.steps().as_slice().to_vec(),
                    total_steps: exec.steps().total(),
                    touched_registers: exec.memory().touched_registers(),
                    declared_registers: exec.memory().declared_registers(),
                }
            },
        );
        assert_eq!(fresh, reused, "threads={threads}");
    }
}

#[test]
fn sweep_statistics_are_thread_count_invariant() {
    let runner_counts = [1usize, 2, 8];
    let mut reference = None;
    for threads in runner_counts {
        let runner = TrialRunner::new(threads);
        let sweep = Sweep::new(&runner, 16, 0xabad_cafe);
        let points: Vec<(usize, f64, f64, u64)> = [2usize, 8, 24]
            .into_iter()
            .map(|k| {
                let p = sweep.measure(k, |trial| {
                    let mut mem = Memory::new();
                    let le = SpaceEfficientRatRace::new(&mut mem, k);
                    let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
                    let res = Execution::new(mem, protos, trial.seed)
                        .run(&mut RandomSchedule::new(trial.subseed(1)));
                    assert!(res.all_finished());
                    assert_eq!(res.processes_with_outcome(ret::WIN).len(), 1);
                    res.steps().max() as f64
                });
                (p.k, p.mean(), p.worst(), p.stats.count())
            })
            .collect();
        match &reference {
            None => reference = Some(points),
            Some(r) => assert_eq!(r, &points, "threads={threads}"),
        }
    }
}
