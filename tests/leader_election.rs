//! Cross-crate integration: every leader-election algorithm × every
//! scheduler class must elect exactly one leader in crash-free runs.

use std::sync::Arc;

use rtas::algorithms::attacks::AscendingWriteAttack;
use rtas::algorithms::{Combined, LogLogLe, LogStarLe, OriginalRatRace, SpaceEfficientRatRace};
use rtas::primitives::LeaderElect;
use rtas::sim::adversary::{
    Adversary, AdversaryClass, FnAdversary, ObliviousAdversary, RandomSchedule, RoundRobin, View,
};
use rtas::sim::executor::Execution;
use rtas::sim::memory::Memory;
use rtas::sim::protocol::{ret, Protocol};
use rtas::sim::rng::SplitMix64;
use rtas::sim::schedule::Schedule;
use rtas::sim::word::ProcessId;

type Builder = fn(&mut Memory, usize) -> Arc<dyn LeaderElect>;

fn builders() -> Vec<(&'static str, Builder)> {
    vec![
        ("logstar", |m, n| Arc::new(LogStarLe::new(m, n))),
        ("loglog", |m, n| Arc::new(LogLogLe::new(m, n))),
        ("ratrace-se", |m, n| {
            Arc::new(SpaceEfficientRatRace::new(m, n))
        }),
        ("ratrace-orig", |m, n| Arc::new(OriginalRatRace::new(m, n))),
        ("combined", |m, n| {
            let weak = Arc::new(LogStarLe::new(m, n));
            Arc::new(Combined::new(m, weak, n))
        }),
    ]
}

fn run_and_check(
    name: &str,
    builder: Builder,
    k: usize,
    n: usize,
    seed: u64,
    adversary: &mut dyn Adversary,
) {
    let mut mem = Memory::new();
    let le = builder(&mut mem, n);
    let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
    let res = Execution::new(mem, protos, seed).run(adversary);
    assert!(res.all_finished(), "{name} k={k} seed={seed}: unfinished");
    assert_eq!(
        res.processes_with_outcome(ret::WIN).len(),
        1,
        "{name} k={k} seed={seed}: {:?}",
        res.outcomes()
    );
}

#[test]
fn unique_winner_random_schedules_all_algorithms() {
    for (name, builder) in builders() {
        for k in [1usize, 2, 5, 16] {
            for seed in 0..12 {
                let mut adv = RandomSchedule::new(seed * 101 + k as u64);
                run_and_check(name, builder, k, k, seed, &mut adv);
            }
        }
    }
}

#[test]
fn unique_winner_round_robin_all_algorithms() {
    for (name, builder) in builders() {
        for k in [2usize, 7, 12] {
            for seed in 0..6 {
                let mut adv = RoundRobin::new(k);
                run_and_check(name, builder, k, k, seed, &mut adv);
            }
        }
    }
}

#[test]
fn unique_winner_under_adaptive_attack() {
    for (name, builder) in builders() {
        for seed in 0..4 {
            let mut adv = AscendingWriteAttack::new();
            run_and_check(name, builder, 8, 8, seed, &mut adv);
        }
    }
}

#[test]
fn unique_winner_with_fewer_processes_than_capacity() {
    for (name, builder) in builders() {
        for seed in 0..6 {
            let mut adv = RandomSchedule::new(seed + 5);
            run_and_check(name, builder, 3, 32, seed, &mut adv);
        }
    }
}

#[test]
fn sequential_arrivals_first_process_wins_cheaply() {
    // A process that runs completely alone must win; everyone arriving
    // after a winner exists must lose.
    for (name, builder) in builders() {
        let k = 6;
        let mut mem = Memory::new();
        let le = builder(&mut mem, k);
        let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
        let mut rng = SplitMix64::new(9);
        let schedule = Schedule::sequential(k, 4_000, &mut rng);
        let first = schedule.steps()[0];
        let mut adv = ObliviousAdversary::new(schedule.clone()).then_fair();
        let res = Execution::new(mem, protos, 3).run(&mut adv);
        assert!(res.all_finished(), "{name}");
        assert_eq!(
            res.outcome(first),
            Some(ret::WIN),
            "{name}: solo-first process must win"
        );
    }
}

#[test]
fn crashes_never_produce_two_winners() {
    // Crash a random prefix of processes after a few steps: at most one
    // winner must ever exist among the finishers.
    for (name, builder) in builders() {
        for seed in 0..10 {
            let k = 8;
            let mut mem = Memory::new();
            let le = builder(&mut mem, k);
            let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
            let crash_after = 5 + (seed % 11);
            let mut adv = FnAdversary::new(AdversaryClass::Adaptive, move |view: &View<'_>| {
                // Processes 0 and 1 crash after `crash_after` steps.
                view.active()
                    .into_iter()
                    .find(|&p| p.index() >= 2 || view.steps_of(p) < crash_after)
            });
            let res = Execution::new(mem, protos, seed).run(&mut adv);
            let winners = res.processes_with_outcome(ret::WIN).len();
            assert!(winners <= 1, "{name} seed={seed}: {winners} winners");
            // The crash-free survivors (2..k) must finish.
            for i in 2..k {
                assert!(
                    res.outcome(ProcessId(i)).is_some(),
                    "{name} seed={seed}: P{i} did not finish"
                );
            }
        }
    }
}
