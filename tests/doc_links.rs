//! Documentation integrity: intra-repo links resolve, and the flag
//! tables in the docs track the binaries' actual CLIs.
//!
//! Std-only by design (like everything here): the link checker is a
//! small hand-rolled scan over `README.md` and `docs/*.md`, not an
//! external tool. External (`http...`) links are *not* fetched — CI
//! must not flake on the network — only their markdown syntax is
//! accepted; everything else must resolve inside the repository.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

/// Repository root (this integration test lives in the root crate).
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Every markdown file the checker owns: the README plus all of docs/.
fn doc_files() -> Vec<PathBuf> {
    let root = repo_root();
    let mut files = vec![root.join("README.md")];
    let docs = root.join("docs");
    let entries = fs::read_dir(&docs).expect("docs/ directory exists");
    for entry in entries {
        let path = entry.expect("readable docs/ entry").path();
        if path.extension().is_some_and(|e| e == "md") {
            files.push(path);
        }
    }
    files.sort();
    assert!(
        files.len() >= 4,
        "expected README.md + at least ARCHITECTURE/WIRE/OPERATIONS under docs/, found {files:?}"
    );
    files
}

/// Extract `[text](target)` links, skipping fenced code blocks and
/// inline code spans (wire-format examples contain bracketed byte
/// layouts that are not links).
fn links(markdown: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut fenced = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            fenced = !fenced;
            continue;
        }
        if fenced {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        let mut in_code = false;
        while i < bytes.len() {
            match bytes[i] {
                b'`' => in_code = !in_code,
                b']' if !in_code && i + 1 < bytes.len() && bytes[i + 1] == b'(' => {
                    if let Some(close) = line[i + 2..].find(')') {
                        out.push(line[i + 2..i + 2 + close].to_string());
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    out
}

/// GitHub's anchor slug for a heading line: lowercase, spaces to
/// dashes, punctuation dropped.
fn slug(heading: &str) -> String {
    heading
        .trim_start_matches('#')
        .trim()
        .chars()
        .filter_map(|c| {
            if c.is_alphanumeric() {
                Some(c.to_ascii_lowercase())
            } else if c == ' ' || c == '-' {
                Some('-')
            } else {
                None
            }
        })
        .collect()
}

/// All heading anchors defined by a markdown file.
fn anchors(markdown: &str) -> BTreeSet<String> {
    let mut fenced = false;
    let mut out = BTreeSet::new();
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            fenced = !fenced;
            continue;
        }
        if !fenced && line.starts_with('#') {
            out.insert(slug(line));
        }
    }
    out
}

#[test]
fn every_intra_repo_link_resolves() {
    let root = repo_root();
    let mut failures = Vec::new();
    for file in doc_files() {
        let text = fs::read_to_string(&file).expect("readable doc file");
        let dir = file.parent().unwrap_or(&root).to_path_buf();
        for link in links(&text) {
            if link.starts_with("http://") || link.starts_with("https://") {
                continue; // external: syntax-checked only, never fetched
            }
            let (path_part, anchor) = match link.split_once('#') {
                Some((p, a)) => (p, Some(a)),
                None => (link.as_str(), None),
            };
            let target: PathBuf = if path_part.is_empty() {
                file.clone() // pure-anchor link into the same file
            } else {
                dir.join(path_part)
            };
            if !target.exists() {
                failures.push(format!("{}: dead link {link:?}", file.display()));
                continue;
            }
            if let Some(anchor) = anchor {
                let is_md = target.extension().is_some_and(|e| e == "md");
                if is_md {
                    let dest = fs::read_to_string(&target).expect("readable link target");
                    if !anchors(&dest).contains(anchor) {
                        failures.push(format!(
                            "{}: link {link:?} names an anchor missing from {}",
                            file.display(),
                            target.display()
                        ));
                    }
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "dead documentation links:\n{}",
        failures.join("\n")
    );
}

/// The server flag table is the single source of truth
/// (`rtas_svc::cli::SERVE_FLAGS` renders the usage text and drives the
/// parser); the prose docs must mention every flag in it.
#[test]
fn operations_runbook_documents_every_serve_flag() {
    let ops = fs::read_to_string(repo_root().join("docs/OPERATIONS.md")).expect("runbook");
    let missing: Vec<&str> = rtas_svc::cli::SERVE_FLAGS
        .iter()
        .map(|f| f.name)
        .filter(|name| !ops.contains(*name))
        .collect();
    assert!(
        missing.is_empty(),
        "docs/OPERATIONS.md does not document these rtas-svc serve flags: {missing:?}"
    );
}

/// The load binary's flags are its `match` arms; scan the source for
/// `"--flag" =>` patterns and require each in the runbook and in the
/// binary's own usage string — a new flag cannot land undocumented.
#[test]
fn operations_runbook_documents_every_load_flag() {
    let src_path = repo_root().join("crates/load/src/bin/rtas_load.rs");
    let src = fs::read_to_string(&src_path).expect("rtas_load.rs");
    let mut flags = BTreeSet::new();
    for piece in src.split('"').skip(1).step_by(2) {
        // "--help" is deliberately absent from the usage text (it IS
        // the usage text's trigger), so it is not part of the scan.
        if piece.starts_with("--") && !piece.contains(' ') && piece != "--help" {
            flags.insert(piece.to_string());
        }
    }
    assert!(
        flags.len() >= 15,
        "flag scan of rtas_load.rs looks broken: only found {flags:?}"
    );
    let ops = fs::read_to_string(repo_root().join("docs/OPERATIONS.md")).expect("runbook");
    let usage = usage_block(&src);
    let mut failures = Vec::new();
    for flag in &flags {
        if !ops.contains(flag.as_str()) {
            failures.push(format!("{flag} missing from docs/OPERATIONS.md"));
        }
        if !usage.contains(flag.as_str()) {
            failures.push(format!("{flag} missing from rtas-load's usage() text"));
        }
    }
    assert!(
        failures.is_empty(),
        "load-flag drift:\n{}",
        failures.join("\n")
    );
}

/// The `eprintln!` body of `fn usage()` in the load binary's source.
fn usage_block(src: &str) -> String {
    let at = src.find("fn usage()").expect("rtas_load.rs has fn usage()");
    let rest = &src[at..];
    let end = rest.find("std::process::exit").expect("usage() exits");
    rest[..end].to_string()
}

/// Spot-check that the README's service docs track the current CLI
/// surface (the deep per-flag documentation lives in the runbook).
#[test]
fn readme_mentions_the_headline_flags() {
    let readme = fs::read_to_string(repo_root().join("README.md")).expect("README");
    for flag in [
        "--engine",
        "--workers",
        "--max-conns",
        "--conns",
        "--pipeline",
        "--chaos",
    ] {
        assert!(readme.contains(flag), "README.md no longer mentions {flag}");
    }
}
