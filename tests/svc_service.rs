//! Integration: the network arbitration service end to end — the
//! loopback acceptance run (8 client threads, ≥ 50k keyed resolutions,
//! exactly one winner per key-epoch), remote open-loop determinism
//! (same seed ⇒ identical offered schedule), and the `svc_load` report
//! identity.

use rtas_load::driver::{LoadSpec, Mode, TargetKind, Warmup};
use rtas_load::remote::{run_load_remote, RemoteTarget};
use rtas_load::LoadTarget;
use rtas_svc::server;

fn spec(threads: usize, shards: usize, mode: Mode) -> LoadSpec {
    LoadSpec {
        backend: rtas::Backend::Combined, // ignored remotely: the server picks
        threads,
        shards,
        mode,
        seed: 1,
        churn: None,
        warmup: Warmup::None,
        pipeline: 1,
        conns: None,
    }
}

#[test]
fn acceptance_eight_clients_sustain_50k_keyed_resolutions() {
    // The ISSUE's loopback acceptance run: 8 client threads over 4 keys
    // (groups of 2), 100k operations = 50k keyed resolutions, exactly
    // one winner per key-epoch — asserted across the full run by the
    // win accounting on the client side AND the server's own counters.
    let srv = server::spawn_local(rtas::Backend::Combined, 8, 8).expect("bind loopback");
    let addr = srv.addr().to_string();
    let out = run_load_remote(&addr, spec(8, 4, Mode::Closed { total_ops: 100_000 }))
        .expect("remote run");

    assert_eq!(out.total_ops(), 100_000);
    assert_eq!(out.resolutions(), 50_000, "50k keyed resolutions");
    assert_eq!(
        out.total_wins(),
        out.resolutions(),
        "exactly one winner per key-epoch"
    );
    assert_eq!(out.target, TargetKind::Remote);
    assert!(out.registers > 0, "registers reported from server STATS");

    // Server-side corroboration: 4 load keys plus the probe's counters.
    let stats = srv.namespace().stats();
    assert_eq!(stats.keys, 4);
    // The probe performed one TAS per key (4 ops, each a win on its
    // fresh epoch) and one RESET per key before the run.
    assert_eq!(stats.ops, 100_000 + 4);
    assert_eq!(stats.wins, 50_000 + 4);
    assert_eq!(stats.resets, 50_000 + 4);
    srv.shutdown();
}

#[test]
fn remote_open_loop_same_seed_same_offered_load() {
    // The acceptance criterion: BENCH_svc_load.json is produced
    // deterministically from a fixed seed — the same seed offers the
    // identical arrival schedule (and therefore identical per-shard op
    // counts, the structurally gated fields) on every run, even across
    // separate servers.
    let mode = Mode::Open {
        rate: 20_000.0,
        duration_secs: 0.05,
    };
    let mut outs = Vec::new();
    for _ in 0..2 {
        let srv = server::spawn_local(rtas::Backend::Combined, 4, 4).expect("bind loopback");
        let addr = srv.addr().to_string();
        outs.push(run_load_remote(&addr, spec(4, 2, mode)).expect("remote run"));
        srv.shutdown();
    }
    let (x, y) = (&outs[0], &outs[1]);
    assert!(x.total_ops() > 0);
    assert_eq!(x.total_ops(), y.total_ops());
    for (cx, cy) in x
        .recorder
        .shard_stats()
        .iter()
        .zip(y.recorder.shard_stats())
    {
        assert_eq!(cx.ops, cy.ops, "per-shard op counts are seed-determined");
        assert_eq!(cx.wins, cy.wins, "one winner per epoch on both runs");
    }
    assert_eq!(x.total_wins(), x.resolutions());

    // Report identity: svc_load, rows labeled backend=remote, gate=wall.
    let report = x.bench_report();
    assert_eq!(report.name(), "svc_load");
    assert_eq!(report.rows().len(), 3, "2 shard rows + 1 total row");
    for row in report.rows() {
        assert!(row.labels.contains(&("backend".into(), "remote".into())));
        assert!(row.labels.contains(&("gate".into(), "wall".into())));
    }
}

#[test]
fn remote_target_reuse_continues_epochs_and_survives_stale_keys() {
    // Two successive runs against ONE server: the second RemoteTarget's
    // probe recycles whatever the first run left behind, so the
    // one-winner accounting stays exact.
    let srv = server::spawn_local(rtas::Backend::LogStar, 2, 2).expect("bind loopback");
    let addr = srv.addr().to_string();
    for _ in 0..2 {
        let out = run_load_remote(&addr, spec(4, 2, Mode::Closed { total_ops: 400 }))
            .expect("remote run");
        assert_eq!(out.total_ops(), 400);
        assert_eq!(out.total_wins(), out.resolutions());
    }
    srv.shutdown();
}

#[test]
fn remote_target_exposes_driver_coordinates() {
    let srv = server::spawn_local(rtas::Backend::Combined, 2, 4).expect("bind loopback");
    let addr = srv.addr().to_string();
    let target = RemoteTarget::new(&addr, 3, 4).expect("probe");
    assert_eq!(target.shards(), 3);
    assert_eq!(target.group(), 4);
    assert_eq!(target.addr(), addr);
    assert_eq!(target.base_epochs(), vec![0, 0, 0]);
    assert!(target.registers() > 0);
    srv.shutdown();
}

#[test]
fn remote_run_against_nothing_fails_gracefully() {
    // A dead address must surface as an error from the probe, not a
    // worker panic mid-run.
    let err = run_load_remote(
        "127.0.0.1:1", // reserved port, nothing listens there
        spec(2, 1, Mode::Closed { total_ops: 10 }),
    );
    assert!(err.is_err());
}

#[test]
fn remote_warmup_is_driven_but_unrecorded() {
    let srv = server::spawn_local(rtas::Backend::Combined, 2, 2).expect("bind loopback");
    let addr = srv.addr().to_string();
    let mut s = spec(4, 2, Mode::Closed { total_ops: 200 });
    s.warmup = Warmup::Ops(40);
    let out = run_load_remote(&addr, s).expect("remote run");
    assert_eq!(out.total_ops(), 200);
    assert_eq!(out.warmup_ops, 40);
    assert_eq!(out.resolutions(), 120);
    assert_eq!(out.total_wins() + out.warmup_wins, out.resolutions());
    srv.shutdown();
}
