//! Scenario workloads against the real algorithms: safety must hold in
//! every cell of the arrivals × faults × strategies grid, and scenario
//! executions must be reproducible from their seed.

use std::sync::Arc;

use rtas::algorithms::{Combined, LogLogLe, LogStarLe, SpaceEfficientRatRace};
use rtas::primitives::LeaderElect;
use rtas::sim::executor::Execution;
use rtas::sim::memory::Memory;
use rtas::sim::protocol::{ret, Protocol};
use rtas::sim::scenario::{ArrivalSpec, FaultSpec, Scenario, StrategySpec};
use rtas::sim::word::ProcessId;

type Builder = fn(&mut Memory, usize) -> Arc<dyn LeaderElect>;

fn builders() -> Vec<(&'static str, Builder)> {
    vec![
        ("logstar", |m, n| Arc::new(LogStarLe::new(m, n))),
        ("loglog", |m, n| Arc::new(LogLogLe::new(m, n))),
        ("ratrace", |m, n| Arc::new(SpaceEfficientRatRace::new(m, n))),
        ("combined", |m, n| {
            let weak = Arc::new(LogStarLe::new(m, n));
            Arc::new(Combined::new(m, weak, n))
        }),
    ]
}

fn small_grid() -> Vec<Scenario> {
    let mut cells = Vec::new();
    for arrivals in [
        ArrivalSpec::Simultaneous,
        ArrivalSpec::Staggered { gap: 2 },
        ArrivalSpec::Batched { size: 3, gap: 9 },
        ArrivalSpec::RandomLate { max_delay: 20 },
    ] {
        for faults in [
            FaultSpec::None,
            FaultSpec::CrashAtSlot {
                victims: 2,
                slot: 5,
            },
            FaultSpec::CrashAfterOps { victims: 2, ops: 2 },
            FaultSpec::Churn { victims: 2, ops: 2 },
        ] {
            for strategy in [
                StrategySpec::random(),
                StrategySpec::round_robin(),
                StrategySpec::contention_max(),
                StrategySpec::laggard_first(),
                StrategySpec::write_chaser(),
                StrategySpec::oblivious_uniform(40),
                StrategySpec::oblivious_sequential(40),
            ] {
                cells.push(
                    Scenario::builder()
                        .arrivals(arrivals)
                        .faults(faults)
                        .strategy(strategy)
                        .build(),
                );
            }
        }
    }
    cells
}

#[test]
fn every_cell_is_safe_for_every_algorithm() {
    let k = 7;
    for (name, builder) in builders() {
        for (ci, cell) in small_grid().iter().enumerate() {
            let seed = 1000 + ci as u64;
            let mut mem = Memory::new();
            let le = builder(&mut mem, k);
            let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
            let mut exec = Execution::new(mem, protos, seed).with_step_cap(2_000_000);
            let respawn_le = Arc::clone(&le);
            let mut adv = cell
                .begin(&mut exec, seed)
                .with_respawn(move |_| respawn_le.elect());
            let out = exec.run_in_place(&mut adv);
            assert!(!out.hit_cap, "{name} / {}: hit step cap", cell.name());
            let winners = exec.count_outcome(ret::WIN);
            assert!(winners <= 1, "{name} / {}: {winners} winners", cell.name());
            // Finished + crashed + never-arrived partition the processes.
            assert_eq!(
                exec.finished_count() + exec.crashed_count() + exec.not_arrived_count(),
                k,
                "{name} / {}",
                cell.name()
            );
            // Without faults, every process must finish and elect one
            // winner despite arbitrary arrival patterns.
            if cell.faults() == FaultSpec::None {
                assert!(out.all_finished(), "{name} / {}: {out:?}", cell.name());
                assert_eq!(winners, 1, "{name} / {}", cell.name());
            }
        }
    }
}

#[test]
fn scenario_runs_are_seed_reproducible() {
    let k = 6;
    let cell = Scenario::builder()
        .arrivals(ArrivalSpec::RandomLate { max_delay: 12 })
        .faults(FaultSpec::Churn { victims: 2, ops: 2 })
        .strategy(StrategySpec::random())
        .build();
    let run = |seed: u64| {
        let mut mem = Memory::new();
        let le = Arc::new(SpaceEfficientRatRace::new(&mut mem, k));
        let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
        let mut exec = Execution::new(mem, protos, seed);
        let respawn_le = Arc::clone(&le);
        let mut adv = cell
            .begin(&mut exec, seed)
            .with_respawn(move |_| respawn_le.elect());
        exec.run_in_place(&mut adv);
        let outcomes: Vec<_> = (0..k).map(|i| exec.outcome(ProcessId(i))).collect();
        (exec.steps().clone(), outcomes)
    };
    for seed in 0..10 {
        assert_eq!(run(seed), run(seed), "seed={seed}");
    }
}

#[test]
fn crashed_quarter_never_blocks_survivors() {
    // Crash-after-ops with a fair strategy: every non-victim must finish.
    let k = 8;
    let victims = 2;
    let cell = Scenario::builder()
        .faults(FaultSpec::CrashAfterOps { victims, ops: 3 })
        .strategy(StrategySpec::laggard_first())
        .build();
    for (name, builder) in builders() {
        for seed in 0..5 {
            let mut mem = Memory::new();
            let le = builder(&mut mem, k);
            let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
            let mut exec = Execution::new(mem, protos, seed);
            let mut adv = cell.begin(&mut exec, seed);
            exec.run_in_place(&mut adv);
            for i in victims..k {
                assert!(
                    exec.outcome(ProcessId(i)).is_some(),
                    "{name} seed={seed}: P{i} stuck behind crashed victims"
                );
            }
        }
    }
}
