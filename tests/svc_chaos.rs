//! Integration: the hostile-network fault cells end to end — a live
//! loopback server with lease reclamation and read deadlines, driven
//! through the deterministic chaos layer. Every cell upholds the one
//! safety bar (at most one winner per key-epoch, enforced fail-fast
//! inside `ChaosTarget::resolve`), and the delay-only cell proves the
//! determinism guarantee: the same `--chaos-seed` replays the
//! identical fault schedule and winner sets.

use std::time::Duration;

use rtas_load::chaos::run_load_chaos;
use rtas_load::driver::{LoadSpec, Mode, TargetKind, Warmup};
use rtas_svc::server::SvcConfig;
use rtas_svc::{ChaosSpec, FaultPlan, Server, TraceMode};

fn hostile_server(lease_ms: u64) -> Server {
    hostile_server_traced(lease_ms, TraceMode::Off)
}

fn hostile_server_traced(lease_ms: u64, trace: TraceMode) -> Server {
    Server::spawn(SvcConfig {
        shards: 4,
        capacity: 8,
        lease: Some(Duration::from_millis(lease_ms)),
        read_timeout: Some(Duration::from_secs(2)),
        trace,
        ..SvcConfig::default()
    })
    .expect("bind loopback")
}

fn spec(threads: usize, shards: usize, total_ops: u64) -> LoadSpec {
    LoadSpec {
        backend: rtas::Backend::Combined, // ignored remotely
        threads,
        shards,
        mode: Mode::Closed { total_ops },
        seed: 1,
        churn: None,
        warmup: Warmup::None,
        pipeline: 1,
        conns: None,
    }
}

#[test]
fn clean_cell_matches_the_plain_remote_path() {
    let srv = hostile_server(200);
    let addr = srv.addr().to_string();
    let plan = FaultPlan::new(ChaosSpec::default(), 7);
    let out = run_load_chaos(&addr, spec(4, 2, 2_000), plan).expect("chaos run");

    assert_eq!(out.outcome.total_ops(), 2_000);
    assert_eq!(
        out.outcome.total_wins(),
        out.outcome.resolutions(),
        "a clean cell behaves exactly like the plain remote driver"
    );
    assert_eq!(out.counts.injected(), 0, "no faults on a clean spec");
    assert_eq!(out.reclaimed, 0, "nothing for the lease to reclaim");
    let errors = out.outcome.recorder.errors();
    assert_eq!(
        (
            errors.timeouts,
            errors.retries,
            errors.reconnects,
            errors.reclaimed
        ),
        (0, 0, 0, 0)
    );
    assert_eq!(out.outcome.target, TargetKind::Chaos);

    // Report identity: svc_chaos, rows labeled backend=chaos, the
    // total row carrying the (all-zero) error classes.
    let report = out.outcome.bench_report();
    assert_eq!(report.name(), "svc_chaos");
    let total = report.rows().last().expect("total row");
    for class in [
        "err_timeouts",
        "err_retries",
        "err_reconnects",
        "err_reclaimed",
    ] {
        let (_, v) = total
            .extra
            .iter()
            .find(|(name, _)| name == class)
            .unwrap_or_else(|| panic!("total row carries {class}"));
        assert_eq!(*v, 0.0);
    }
    for row in report.rows() {
        assert!(row.labels.contains(&("backend".into(), "chaos".into())));
    }
    srv.shutdown();
}

#[test]
fn delay_only_same_seed_replays_identical_schedules_and_winner_sets() {
    // THE determinism acceptance bar: two runs with the same chaos
    // seed against two fresh servers inject the identical fault
    // schedule and agree on per-shard op counts, win counts, the
    // fault tally, and the winner sets themselves.
    let chaos = ChaosSpec::preset("delay-only").unwrap();
    let mut outs = Vec::new();
    for _ in 0..2 {
        let srv = hostile_server(200);
        let addr = srv.addr().to_string();
        let out = run_load_chaos(&addr, spec(4, 2, 2_000), FaultPlan::new(chaos.clone(), 7))
            .expect("chaos run");
        srv.shutdown();
        outs.push(out);
    }
    let (x, y) = (&outs[0], &outs[1]);
    assert!(x.counts.delays > 0, "the delay cell must inject delays");
    assert_eq!(x.counts, y.counts, "bit-identical fault schedules");
    assert_eq!(x.winners, y.winners, "identical winner sets");
    assert_eq!(x.outcome.total_ops(), y.outcome.total_ops());
    for (cx, cy) in x
        .outcome
        .recorder
        .shard_stats()
        .iter()
        .zip(y.outcome.recorder.shard_stats())
    {
        assert_eq!(cx.ops, cy.ops, "per-shard op counts are seed-determined");
        assert_eq!(cx.wins, cy.wins);
    }
    // Delays alone never lose an epoch: full win accounting holds, and
    // the winner sets are the contiguous post-probe epochs.
    assert_eq!(x.outcome.total_wins(), x.outcome.resolutions());
    for shard_winners in &x.winners {
        let base = shard_winners.first().copied().unwrap();
        let expect: Vec<u64> = (0..shard_winners.len() as u64).map(|i| base + i).collect();
        assert_eq!(*shard_winners, expect, "winner epochs are contiguous");
    }
}

#[test]
fn tracing_never_perturbs_the_fault_schedule() {
    // The flight recorder deliberately samples with pure arithmetic and
    // all fault RNG lives client-side, so running the identical seeded
    // cell against a traced and an untraced server must replay the
    // bit-identical fault schedule and winner sets. This is the guard
    // that keeps `--trace on` out of the determinism contract.
    let chaos = ChaosSpec::preset("delay-only").unwrap();
    let mut outs = Vec::new();
    for trace in [TraceMode::Off, TraceMode::On] {
        let srv = hostile_server_traced(200, trace);
        let addr = srv.addr().to_string();
        let out = run_load_chaos(&addr, spec(4, 2, 2_000), FaultPlan::new(chaos.clone(), 7))
            .expect("chaos run");
        srv.shutdown();
        outs.push(out);
    }
    let (untraced, traced) = (&outs[0], &outs[1]);
    assert!(untraced.counts.delays > 0, "the cell must inject faults");
    assert_eq!(
        untraced.counts, traced.counts,
        "tracing changed the injected fault schedule"
    );
    assert_eq!(
        untraced.winners, traced.winners,
        "tracing changed the winner sets"
    );
    assert_eq!(untraced.outcome.total_ops(), traced.outcome.total_ops());
    assert_eq!(untraced.outcome.total_wins(), traced.outcome.total_wins());
}

#[test]
fn drop_heavy_cell_survives_severed_and_torn_connections() {
    // Drops and truncations kill connections mid-traffic; the retry
    // layer redials and replays, and the server never hands a second
    // win to any epoch (enforced fail-fast inside resolve — this test
    // passing IS the safety assertion).
    let chaos = ChaosSpec::parse("drop-heavy,drop=0.05,truncate=0.02").unwrap();
    let srv = hostile_server(100);
    let addr = srv.addr().to_string();
    let out =
        run_load_chaos(&addr, spec(4, 2, 2_000), FaultPlan::new(chaos, 7)).expect("chaos run");
    assert_eq!(out.outcome.total_ops(), 2_000, "every op gets a verdict");
    assert!(out.counts.drops > 0, "drops must fire: {:?}", out.counts);
    assert!(out.counts.truncations > 0, "truncations must fire");
    assert!(
        out.counts.reconnects > 0,
        "severed connections must redial: {:?}",
        out.counts
    );
    assert!(
        out.counts.retries > 0,
        "torn frames force retries: {:?}",
        out.counts
    );
    let errors = out.outcome.recorder.errors();
    assert_eq!(errors.retries, out.counts.retries);
    assert_eq!(errors.reconnects, out.counts.reconnects);
    srv.shutdown();
}

#[test]
fn stalled_holders_are_reclaimed_by_the_lease() {
    // Every winner stalls holding its slot for far longer than the
    // lease, and half the resolution acks are byzantinely skipped: the
    // server's reaper must reclaim expired epochs (counting them as
    // losses) and the run must stay live — with still at most one
    // winner per server epoch.
    let chaos = ChaosSpec::parse("stall=1.0,stall-ms=10,skip-reset=0.5").unwrap();
    let srv = hostile_server(2);
    let addr = srv.addr().to_string();
    let out = run_load_chaos(&addr, spec(2, 1, 120), FaultPlan::new(chaos, 7)).expect("chaos run");
    assert_eq!(out.outcome.total_ops(), 120);
    assert!(out.counts.stalls > 0, "stalls must fire: {:?}", out.counts);
    assert!(out.counts.skipped_resets > 0, "skipped acks must fire");
    assert!(
        out.reclaimed > 0,
        "expired leases must be reclaimed: {:?}",
        out.counts
    );
    assert_eq!(out.outcome.recorder.errors().reclaimed, out.reclaimed);
    assert!(srv.namespace().stats().reclaimed >= out.reclaimed);

    // Reclaimed epochs are wins the protocol *lost* — the report must
    // carry the tally instead of folding it into clean latency.
    let report = out.outcome.bench_report();
    let total = report.rows().last().expect("total row");
    let (_, reclaimed) = total
        .extra
        .iter()
        .find(|(name, _)| name == "err_reclaimed")
        .expect("total row carries err_reclaimed");
    assert_eq!(*reclaimed, out.reclaimed as f64);
    srv.shutdown();
}

#[test]
fn byzantine_duplicate_acks_are_defused_by_the_zero_admission_guard() {
    // Every resolution ack is sent twice. The duplicate lands on a
    // zero-admission epoch and must be a no-op: epochs advance exactly
    // once per resolution, so full win accounting still holds.
    let chaos = ChaosSpec::parse("dup-reset=1.0").unwrap();
    let srv = hostile_server(200);
    let addr = srv.addr().to_string();
    let out =
        run_load_chaos(&addr, spec(4, 2, 2_000), FaultPlan::new(chaos, 7)).expect("chaos run");
    assert_eq!(out.outcome.total_ops(), 2_000);
    assert!(out.counts.dup_resets > 0, "duplicate acks must fire");
    assert_eq!(
        out.outcome.total_wins(),
        out.outcome.resolutions(),
        "duplicated acks never skip or burn an epoch"
    );
    assert_eq!(out.reclaimed, 0, "nothing stranded, nothing reclaimed");
    srv.shutdown();
}

#[test]
fn byzantine_preset_cell_upholds_safety_under_the_full_mix() {
    // The CI byzantine-reset cell: delays, stalls, skipped and
    // duplicated acks together, against a short lease. Completion
    // without a ledger panic is the safety proof; liveness shows as
    // every op getting a verdict.
    let chaos = ChaosSpec::preset("byzantine-reset").unwrap();
    let srv = hostile_server(5);
    let addr = srv.addr().to_string();
    let out =
        run_load_chaos(&addr, spec(4, 2, 2_000), FaultPlan::new(chaos, 7)).expect("chaos run");
    assert_eq!(out.outcome.total_ops(), 2_000);
    assert!(out.counts.injected() > 0, "the mix must inject faults");
    // Each observed winner epoch appears exactly once per shard by
    // construction of the ledger; the sets must also be disjoint-free
    // after sorting (no epoch listed twice).
    for shard_winners in &out.winners {
        let mut dedup = shard_winners.clone();
        dedup.dedup();
        assert_eq!(*shard_winners, dedup, "one winner per server epoch");
    }
    srv.shutdown();
}
