//! Property-based tests over the core invariants.
//!
//! Rather than fixed seeds and contentions, let proptest draw them: the
//! uniqueness of winners, splitter properties, and recurrence identities
//! must hold for *every* drawn configuration.

use std::sync::Arc;

use proptest::prelude::*;
use rtas::algorithms::{LogLogLe, LogStarLe, SpaceEfficientRatRace};
use rtas::lowerbound::recurrence::{closed_form_f, f_sequence, next_f};
use rtas::primitives::{LeaderElect, RoleLeaderElect, Splitter, SplitterObject, TwoProcessLe};
use rtas::sim::adversary::{ObliviousAdversary, RandomSchedule};
use rtas::sim::executor::Execution;
use rtas::sim::memory::Memory;
use rtas::sim::protocol::{ret, Protocol};
use rtas::sim::rng::SplitMix64;
use rtas::sim::schedule::Schedule;
use rtas::sim::word::ProcessId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn two_process_le_unique_winner(seed in any::<u64>(), sched_seed in any::<u64>()) {
        let mut mem = Memory::new();
        let le = TwoProcessLe::new(&mut mem, "2le");
        let protos: Vec<Box<dyn Protocol>> = vec![le.elect_as(0), le.elect_as(1)];
        let res = Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(sched_seed));
        prop_assert!(res.all_finished());
        prop_assert_eq!(res.processes_with_outcome(ret::WIN).len(), 1);
    }

    #[test]
    fn splitter_properties_any_contention(k in 1usize..12, seed in any::<u64>()) {
        let mut mem = Memory::new();
        let sp = Splitter::new(&mut mem, "sp");
        let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| sp.split()).collect();
        let res = Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed ^ 1));
        prop_assert!(res.all_finished());
        let outs: Vec<u64> = (0..k).map(|i| res.outcome(ProcessId(i)).unwrap()).collect();
        let stops = outs.iter().filter(|&&o| o == ret::SPLIT_STOP).count();
        let lefts = outs.iter().filter(|&&o| o == ret::SPLIT_LEFT).count();
        let rights = outs.iter().filter(|&&o| o == ret::SPLIT_RIGHT).count();
        prop_assert!(stops <= 1);
        prop_assert!(lefts <= k - 1);
        prop_assert!(rights <= k - 1);
        if k == 1 {
            prop_assert_eq!(stops, 1);
        }
    }

    #[test]
    fn logstar_unique_winner(k in 1usize..14, seed in any::<u64>()) {
        let mut mem = Memory::new();
        let le = LogStarLe::new(&mut mem, k);
        let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
        let res = Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed ^ 3));
        prop_assert!(res.all_finished());
        prop_assert_eq!(res.processes_with_outcome(ret::WIN).len(), 1);
    }

    #[test]
    fn loglog_unique_winner(k in 1usize..12, seed in any::<u64>()) {
        let mut mem = Memory::new();
        let le = LogLogLe::new(&mut mem, k);
        let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
        let res = Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed ^ 5));
        prop_assert!(res.all_finished());
        prop_assert_eq!(res.processes_with_outcome(ret::WIN).len(), 1);
    }

    #[test]
    fn ratrace_unique_winner(k in 1usize..12, seed in any::<u64>()) {
        let mut mem = Memory::new();
        let le = SpaceEfficientRatRace::new(&mut mem, k);
        let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
        let res = Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed ^ 7));
        prop_assert!(res.all_finished());
        prop_assert_eq!(res.processes_with_outcome(ret::WIN).len(), 1);
    }

    #[test]
    fn arbitrary_schedule_prefix_never_two_winners(
        k in 2usize..8,
        seed in any::<u64>(),
        len in 0usize..300,
    ) {
        // Truncated oblivious schedules crash processes mid-protocol; at
        // most one winner may exist among those that finished.
        let mut mem = Memory::new();
        let le = SpaceEfficientRatRace::new(&mut mem, k);
        let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
        let mut rng = SplitMix64::new(seed);
        let schedule = Schedule::uniform_random(k, len, &mut rng);
        let mut adv = ObliviousAdversary::new(schedule);
        let res = Execution::new(mem, protos, seed).run(&mut adv);
        prop_assert!(res.processes_with_outcome(ret::WIN).len() <= 1);
    }

    #[test]
    fn recurrence_closed_form_agree(exp in 3u32..12, offset in 0u64..64) {
        let n = 1u64 << exp;
        let k = offset % n;
        let seq = f_sequence(n);
        prop_assert_eq!(seq[k as usize], closed_form_f(n, k));
    }

    #[test]
    fn recurrence_step_is_contractive(f_k in 1u64..1_000_000, gap in 1u64..1_000) {
        // f(k+1) = f(k) − ⌊f(k)/gap⌋ + 1 never increases by more than 1
        // and never goes negative.
        let next = next_f(f_k, gap);
        prop_assert!(next <= f_k + 1);
    }

    #[test]
    fn schedule_generators_are_well_formed(
        n in 1usize..9,
        len in 0usize..200,
        seed in any::<u64>(),
    ) {
        let mut rng = SplitMix64::new(seed);
        let s = Schedule::uniform_random(n, len, &mut rng);
        prop_assert_eq!(s.len(), len);
        prop_assert!(s.steps().iter().all(|p| p.index() < n));
        let rr = Schedule::round_robin(n, 3);
        prop_assert_eq!(rr.len(), 3 * n);
    }
}

proptest! {
    // Heavier cases, fewer iterations.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn combined_unique_winner(k in 1usize..8, seed in any::<u64>()) {
        use rtas::algorithms::Combined;
        let mut mem = Memory::new();
        let weak: Arc<dyn LeaderElect> = Arc::new(LogStarLe::new(&mut mem, k));
        let le = Combined::new(&mut mem, weak, k);
        let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
        let res = Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed ^ 11));
        prop_assert!(res.all_finished());
        prop_assert_eq!(res.processes_with_outcome(ret::WIN).len(), 1);
    }
}
