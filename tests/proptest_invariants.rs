//! Property-style tests over the core invariants.
//!
//! Rather than a handful of fixed configurations, draw many `(seed, k,
//! schedule)` configurations from a deterministic generator: the uniqueness
//! of winners, splitter properties, and recurrence identities must hold for
//! *every* drawn configuration. (The original version of this file used
//! `proptest`; this environment has no external crates, so the drawing is
//! done with the repo's own [`SplitMix64`] — failures print the offending
//! case, which is reproducible by construction.)

use std::sync::Arc;

use rtas::algorithms::{LogLogLe, LogStarLe, SpaceEfficientRatRace};
use rtas::lowerbound::recurrence::{closed_form_f, f_sequence, next_f};
use rtas::primitives::{RoleLeaderElect, Splitter, SplitterObject, TwoProcessLe};
use rtas::sim::adversary::{ObliviousAdversary, RandomSchedule};
use rtas::sim::executor::Execution;
use rtas::sim::memory::Memory;
use rtas::sim::protocol::{ret, Protocol};
use rtas::sim::rng::SplitMix64;
use rtas::sim::schedule::Schedule;
use rtas::sim::word::ProcessId;

/// Deterministic case generator: `count` draws from a per-test stream.
fn cases(test_tag: u64, count: u64) -> impl Iterator<Item = SplitMix64> {
    (0..count).map(move |i| SplitMix64::split(0x70_70_70 ^ test_tag, i))
}

#[test]
fn two_process_le_unique_winner() {
    for mut draw in cases(1, 48) {
        let seed = draw.next_u64();
        let sched_seed = draw.next_u64();
        let mut mem = Memory::new();
        let le = TwoProcessLe::new(&mut mem, "2le");
        let protos: Vec<Box<dyn Protocol>> = vec![le.elect_as(0), le.elect_as(1)];
        let res = Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(sched_seed));
        assert!(res.all_finished(), "seed={seed}");
        assert_eq!(res.processes_with_outcome(ret::WIN).len(), 1, "seed={seed}");
    }
}

#[test]
fn splitter_properties_any_contention() {
    for mut draw in cases(2, 48) {
        let k = 1 + draw.next_below(11) as usize;
        let seed = draw.next_u64();
        let mut mem = Memory::new();
        let sp = Splitter::new(&mut mem, "sp");
        let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| sp.split()).collect();
        let res = Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed ^ 1));
        assert!(res.all_finished(), "k={k} seed={seed}");
        let outs: Vec<u64> = (0..k).map(|i| res.outcome(ProcessId(i)).unwrap()).collect();
        let stops = outs.iter().filter(|&&o| o == ret::SPLIT_STOP).count();
        let lefts = outs.iter().filter(|&&o| o == ret::SPLIT_LEFT).count();
        let rights = outs.iter().filter(|&&o| o == ret::SPLIT_RIGHT).count();
        assert!(stops <= 1, "k={k} seed={seed}");
        assert!(lefts < k, "k={k} seed={seed}");
        assert!(rights < k, "k={k} seed={seed}");
        if k == 1 {
            assert_eq!(stops, 1, "seed={seed}");
        }
    }
}

/// Uniqueness of the winner for a leader-election constructor under random
/// oblivious schedules, across drawn `(k, seed)` configurations.
fn assert_unique_winner<F>(test_tag: u64, count: u64, max_k: u64, build: F)
where
    F: Fn(&mut Memory, usize) -> Arc<dyn rtas::primitives::LeaderElect>,
{
    for mut draw in cases(test_tag, count) {
        let k = 1 + draw.next_below(max_k) as usize;
        let seed = draw.next_u64();
        let mut mem = Memory::new();
        let le = build(&mut mem, k);
        let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
        let res = Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed ^ 3));
        assert!(res.all_finished(), "k={k} seed={seed}");
        assert_eq!(
            res.processes_with_outcome(ret::WIN).len(),
            1,
            "k={k} seed={seed}"
        );
    }
}

#[test]
fn logstar_unique_winner() {
    assert_unique_winner(3, 48, 13, |mem, k| Arc::new(LogStarLe::new(mem, k)));
}

#[test]
fn loglog_unique_winner() {
    assert_unique_winner(4, 48, 11, |mem, k| Arc::new(LogLogLe::new(mem, k)));
}

#[test]
fn ratrace_unique_winner() {
    assert_unique_winner(5, 48, 11, |mem, k| {
        Arc::new(SpaceEfficientRatRace::new(mem, k))
    });
}

#[test]
fn arbitrary_schedule_prefix_never_two_winners() {
    // Truncated oblivious schedules crash processes mid-protocol; at most
    // one winner may exist among those that finished.
    for mut draw in cases(6, 48) {
        let k = 2 + draw.next_below(6) as usize;
        let seed = draw.next_u64();
        let len = draw.next_below(300) as usize;
        let mut mem = Memory::new();
        let le = SpaceEfficientRatRace::new(&mut mem, k);
        let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
        let mut rng = SplitMix64::new(seed);
        let schedule = Schedule::uniform_random(k, len, &mut rng);
        let mut adv = ObliviousAdversary::new(schedule);
        let res = Execution::new(mem, protos, seed).run(&mut adv);
        assert!(
            res.processes_with_outcome(ret::WIN).len() <= 1,
            "k={k} seed={seed} len={len}"
        );
    }
}

#[test]
fn recurrence_closed_form_agree() {
    for mut draw in cases(7, 48) {
        let exp = 3 + draw.next_below(9) as u32;
        let n = 1u64 << exp;
        let k = draw.next_below(64) % n;
        let seq = f_sequence(n);
        assert_eq!(seq[k as usize], closed_form_f(n, k), "n={n} k={k}");
    }
}

#[test]
fn recurrence_step_is_contractive() {
    // f(k+1) = f(k) − ⌊f(k)/gap⌋ + 1 never increases by more than 1.
    for mut draw in cases(8, 48) {
        let f_k = 1 + draw.next_below(1_000_000);
        let gap = 1 + draw.next_below(999);
        let next = next_f(f_k, gap);
        assert!(next <= f_k + 1, "f_k={f_k} gap={gap}");
    }
}

#[test]
fn schedule_generators_are_well_formed() {
    for mut draw in cases(9, 48) {
        let n = 1 + draw.next_below(8) as usize;
        let len = draw.next_below(200) as usize;
        let seed = draw.next_u64();
        let mut rng = SplitMix64::new(seed);
        let s = Schedule::uniform_random(n, len, &mut rng);
        assert_eq!(s.len(), len);
        assert!(s.steps().iter().all(|p| p.index() < n));
        let rr = Schedule::round_robin(n, 3);
        assert_eq!(rr.len(), 3 * n);
    }
}

#[test]
fn pending_view_never_leaks_beyond_class() {
    // Capability enforcement is by construction: every pending operation
    // an adversary sees goes through `PendingView::filtered`. Draw random
    // operations and check, for all four classes, that exactly the
    // class's fields are populated and nothing else leaks.
    use rtas::sim::adversary::{AdversaryClass, PendingView};
    use rtas::sim::op::{MemOp, OpKind};
    use rtas::sim::word::RegId;

    for mut draw in cases(11, 200) {
        let reg = RegId(draw.next_below(1 << 20));
        let value = draw.next_u64();
        let op = if draw.next_below(2) == 0 {
            MemOp::Read(reg)
        } else {
            MemOp::Write(reg, value)
        };
        let is_write = op.kind() == OpKind::Write;

        let obl = PendingView::filtered(op, AdversaryClass::Oblivious);
        assert_eq!(obl, PendingView::default(), "oblivious must see nothing");

        let rw = PendingView::filtered(op, AdversaryClass::RwOblivious);
        assert_eq!(rw.reg, Some(reg), "rw-oblivious sees the register");
        assert_eq!(rw.kind, None, "rw-oblivious must not see the kind");
        assert_eq!(rw.write_value, None, "rw-oblivious must not see values");

        let loc = PendingView::filtered(op, AdversaryClass::LocationOblivious);
        assert_eq!(loc.kind, Some(op.kind()), "location-oblivious sees kind");
        assert_eq!(loc.reg, None, "location-oblivious must not see registers");
        assert_eq!(
            loc.write_value,
            is_write.then_some(value),
            "location-oblivious sees write values only for writes"
        );

        let ad = PendingView::filtered(op, AdversaryClass::Adaptive);
        assert_eq!(ad.kind, Some(op.kind()));
        assert_eq!(ad.reg, Some(reg));
        assert_eq!(ad.write_value, is_write.then_some(value));
    }
}

#[test]
fn executor_view_filters_like_pending_view() {
    // End to end: a strategy of each class observing live pending ops
    // through the executor's view sees exactly the filtered projection.
    use rtas::sim::adversary::{AdversaryClass, FnAdversary, PendingView};
    use rtas::sim::op::OpKind;

    for (class, tag) in [
        (AdversaryClass::Oblivious, 12u64),
        (AdversaryClass::RwOblivious, 13),
        (AdversaryClass::LocationOblivious, 14),
        (AdversaryClass::Adaptive, 15),
    ] {
        for mut draw in cases(tag, 8) {
            let k = 2 + draw.next_below(5) as usize;
            let seed = draw.next_u64();
            let mut mem = Memory::new();
            let le = SpaceEfficientRatRace::new(&mut mem, k);
            let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
            let mut rng = SplitMix64::new(seed);
            let mut adv = FnAdversary::new(class, move |view: &rtas::sim::adversary::View<'_>| {
                for pid in view.active() {
                    let pv: PendingView = view.pending(pid).expect("active implies poised");
                    match class {
                        AdversaryClass::Oblivious => assert_eq!(pv, PendingView::default()),
                        AdversaryClass::RwOblivious => {
                            assert!(pv.kind.is_none() && pv.write_value.is_none());
                            assert!(pv.reg.is_some());
                        }
                        AdversaryClass::LocationOblivious => {
                            assert!(pv.reg.is_none());
                            assert!(pv.kind.is_some());
                            if pv.kind == Some(OpKind::Read) {
                                assert!(pv.write_value.is_none());
                            }
                        }
                        AdversaryClass::Adaptive => {
                            assert!(pv.kind.is_some() && pv.reg.is_some());
                        }
                    }
                }
                let active = view.active();
                if active.is_empty() {
                    None
                } else {
                    Some(active[rng.next_below(active.len() as u64) as usize])
                }
            });
            let res = Execution::new(mem, protos, seed).run(&mut adv);
            assert!(res.all_finished(), "class {class:?} seed={seed}");
        }
    }
}

#[test]
fn combined_unique_winner() {
    // Heavier cases, fewer iterations.
    use rtas::algorithms::Combined;
    use rtas::primitives::LeaderElect;
    for mut draw in cases(10, 12) {
        let k = 1 + draw.next_below(7) as usize;
        let seed = draw.next_u64();
        let mut mem = Memory::new();
        let weak: Arc<dyn LeaderElect> = Arc::new(LogStarLe::new(&mut mem, k));
        let le = Combined::new(&mut mem, weak, k);
        let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
        let res = Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed ^ 11));
        assert!(res.all_finished(), "k={k} seed={seed}");
        assert_eq!(
            res.processes_with_outcome(ret::WIN).len(),
            1,
            "k={k} seed={seed}"
        );
    }
}
