//! Integration: the native (real-atomics) objects under genuine OS-thread
//! concurrency, across all backends — fresh objects, recycled (reset)
//! objects, and the raw group-election primitive.

use rtas::algorithms::{GeometricGroupElect, GroupElect, SiftingGroupElect};
use rtas::native::{run_protocol, NativeMemory, NativeRunner};
use rtas::sim::memory::Memory;
use rtas::sim::protocol::ret;
use rtas::{Backend, LeaderElection, TestAndSet};

const BACKENDS: [Backend; 4] = [
    Backend::LogStar,
    Backend::LogLog,
    Backend::RatRace,
    Backend::Combined,
];

#[test]
fn hammered_leader_election_unique_winner() {
    for backend in BACKENDS {
        for round in 0..20 {
            let n = 16;
            let le = LeaderElection::with_backend(backend, n);
            let wins: Vec<bool> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..n).map(|_| s.spawn(|| le.elect())).collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            assert_eq!(
                wins.iter().filter(|&&w| w).count(),
                1,
                "{backend:?} round {round}"
            );
        }
    }
}

#[test]
fn hammered_tas_exactly_one_winner() {
    for backend in BACKENDS {
        for round in 0..15 {
            let n = 12;
            let tas = TestAndSet::with_backend(backend, n);
            let outs: Vec<bool> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..n).map(|_| s.spawn(|| tas.test_and_set())).collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            assert_eq!(
                outs.iter().filter(|&&set| !set).count(),
                1,
                "{backend:?} round {round}: {outs:?}"
            );
        }
    }
}

#[test]
fn staggered_arrivals_still_one_winner() {
    // Threads arrive with real delays; later arrivals should overwhelmingly
    // lose, and there must never be more than one winner.
    let n = 8;
    let tas = TestAndSet::new(n);
    let outs: Vec<(usize, bool)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let tas = &tas;
                s.spawn(move || {
                    std::thread::sleep(std::time::Duration::from_micros(i as u64 * 200));
                    (i, tas.test_and_set())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(outs.iter().filter(|(_, set)| !set).count(), 1);
}

#[test]
fn tas_chain_assigns_distinct_names() {
    // The renaming construction (examples/renaming.rs) as a test.
    let n = 6;
    let slots: Vec<TestAndSet> = (0..n).map(|_| TestAndSet::new(n)).collect();
    let names: Vec<usize> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let slots = &slots;
                s.spawn(move || {
                    slots
                        .iter()
                        .position(|slot| !slot.test_and_set())
                        .expect("pigeonhole guarantees a name")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut sorted = names.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), n, "duplicate names: {names:?}");
}

#[test]
fn capacity_one_object_is_trivially_won() {
    let le = LeaderElection::new(1);
    assert!(le.elect());
}

/// Run one native group-election round with `n` threads on `shared`,
/// returning the number of elected (WIN) participants.
fn native_group_election_round(
    ge: &dyn GroupElect,
    shared: &NativeMemory,
    n: usize,
    round: u64,
) -> usize {
    let wins: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|p| s.spawn(move || run_protocol(ge.elect(), shared, p, round * 64 + p as u64)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    wins.iter().filter(|&&w| w == ret::WIN).count()
}

#[test]
fn geometric_group_election_on_8_real_threads() {
    // Group election's safety property: when every participant runs to
    // completion, at least one is elected (Lemma 2.2's performance side
    // says *few* are — checked statistically over the rounds). The
    // structure is built once and recycled by register reset.
    let n = 8;
    let mut mem = Memory::new();
    let ge = GeometricGroupElect::new(&mut mem, n, "native-ge");
    let shared = NativeMemory::from_layout(&mem);
    let mut total_elected = 0;
    let rounds = 30;
    for round in 0..rounds {
        let elected = native_group_election_round(&ge, &shared, n, round);
        assert!(
            (1..=n).contains(&elected),
            "round {round}: {elected} elected out of {n}"
        );
        total_elected += elected;
        shared.reset();
    }
    // E[elected] <= 2 log2 k + 6 = 12 at k = 8; the mean over 30 rounds
    // staying below the bound is a very weak (hence robust) check.
    assert!(
        (total_elected as f64 / rounds as f64) <= 2.0 * (n as f64).log2() + 6.0,
        "mean elected {} suspiciously high",
        total_elected as f64 / rounds as f64
    );
}

#[test]
fn sifting_group_election_on_8_real_threads() {
    let n = 8;
    let mut mem = Memory::new();
    let ge = SiftingGroupElect::new(
        &mut mem,
        SiftingGroupElect::probability_for_expected(2.0),
        "native-sift",
    );
    let shared = NativeMemory::from_layout(&mem);
    for round in 0..30 {
        let elected = native_group_election_round(&ge, &shared, n, round);
        assert!(
            (1..=n).contains(&elected),
            "round {round}: {elected} elected out of {n}"
        );
        shared.reset();
    }
}

#[test]
fn recycled_backends_on_8_threads_exactly_one_winner_per_round() {
    // Satellite coverage beyond 2-process LE: LogStar, RatRace, and
    // Combined at 8 real threads, one object per backend recycled by
    // reset() across repeated rounds — exactly one winner every round.
    for backend in [Backend::LogStar, Backend::RatRace, Backend::Combined] {
        let n = 8;
        let le = LeaderElection::with_backend(backend, n);
        let tas = TestAndSet::with_backend(backend, n);
        for round in 0..20 {
            let wins: Vec<bool> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..n)
                    .map(|_| {
                        let le = &le;
                        s.spawn(move || {
                            let mut runner = NativeRunner::new();
                            le.elect_with(&mut runner)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            assert_eq!(
                wins.iter().filter(|&&w| w).count(),
                1,
                "{backend:?} LE round {round}: {wins:?}"
            );
            let outs: Vec<bool> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..n).map(|_| s.spawn(|| tas.test_and_set())).collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            assert_eq!(
                outs.iter().filter(|&&set| !set).count(),
                1,
                "{backend:?} TAS round {round}: {outs:?}"
            );
            le.reset();
            tas.reset();
        }
    }
}
