//! Integration: the native (real-atomics) objects under genuine OS-thread
//! concurrency, across all backends.

use rtas::{Backend, LeaderElection, TestAndSet};

const BACKENDS: [Backend; 4] = [
    Backend::LogStar,
    Backend::LogLog,
    Backend::RatRace,
    Backend::Combined,
];

#[test]
fn hammered_leader_election_unique_winner() {
    for backend in BACKENDS {
        for round in 0..20 {
            let n = 16;
            let le = LeaderElection::with_backend(backend, n);
            let wins: Vec<bool> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..n).map(|_| s.spawn(|| le.elect())).collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            assert_eq!(
                wins.iter().filter(|&&w| w).count(),
                1,
                "{backend:?} round {round}"
            );
        }
    }
}

#[test]
fn hammered_tas_exactly_one_winner() {
    for backend in BACKENDS {
        for round in 0..15 {
            let n = 12;
            let tas = TestAndSet::with_backend(backend, n);
            let outs: Vec<bool> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..n).map(|_| s.spawn(|| tas.test_and_set())).collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            assert_eq!(
                outs.iter().filter(|&&set| !set).count(),
                1,
                "{backend:?} round {round}: {outs:?}"
            );
        }
    }
}

#[test]
fn staggered_arrivals_still_one_winner() {
    // Threads arrive with real delays; later arrivals should overwhelmingly
    // lose, and there must never be more than one winner.
    let n = 8;
    let tas = TestAndSet::new(n);
    let outs: Vec<(usize, bool)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let tas = &tas;
                s.spawn(move || {
                    std::thread::sleep(std::time::Duration::from_micros(i as u64 * 200));
                    (i, tas.test_and_set())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(outs.iter().filter(|(_, set)| !set).count(), 1);
}

#[test]
fn tas_chain_assigns_distinct_names() {
    // The renaming construction (examples/renaming.rs) as a test.
    let n = 6;
    let slots: Vec<TestAndSet> = (0..n).map(|_| TestAndSet::new(n)).collect();
    let names: Vec<usize> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let slots = &slots;
                s.spawn(move || {
                    slots
                        .iter()
                        .position(|slot| !slot.test_and_set())
                        .expect("pigeonhole guarantees a name")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut sorted = names.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), n, "duplicate names: {names:?}");
}

#[test]
fn capacity_one_object_is_trivially_won() {
    let le = LeaderElection::new(1);
    assert!(le.elect());
}
