//! Failure injection: crashes at every point of every structure.
//!
//! The paper's model lets the adversary crash processes at any step. The
//! safety obligations that survive crashes: never two winners, and any
//! process that keeps getting scheduled finishes (wait-freedom).

use std::sync::Arc;

use rtas::algorithms::{Combined, LogLogLe, LogStarLe, SpaceEfficientRatRace};
use rtas::primitives::LeaderElect;
use rtas::sim::adversary::{Adversary, AdversaryClass, View};
use rtas::sim::executor::Execution;
use rtas::sim::memory::Memory;
use rtas::sim::protocol::{ret, Protocol};
use rtas::sim::rng::{Randomness, SplitMix64};
use rtas::sim::word::ProcessId;

/// Randomly crashes each process with probability `p_crash` per step, and
/// otherwise schedules uniformly at random among survivors.
struct CrashyScheduler {
    rng: SplitMix64,
    crashed: Vec<bool>,
    p_crash: f64,
}

impl CrashyScheduler {
    fn new(n: usize, seed: u64, p_crash: f64) -> Self {
        CrashyScheduler {
            rng: SplitMix64::new(seed),
            crashed: vec![false; n],
            p_crash,
        }
    }
}

impl Adversary for CrashyScheduler {
    fn class(&self) -> AdversaryClass {
        AdversaryClass::Adaptive
    }

    fn next(&mut self, view: &View<'_>) -> Option<ProcessId> {
        let alive: Vec<ProcessId> = view
            .active()
            .into_iter()
            .filter(|p| !self.crashed[p.index()])
            .collect();
        if alive.is_empty() {
            return None;
        }
        let pid = alive[self.rng.choose(alive.len() as u64) as usize];
        // Crash it instead of scheduling it, sometimes — but never crash
        // the last survivor (we want to observe completions too).
        if alive.len() > 1 && self.rng.bernoulli(self.p_crash) {
            self.crashed[pid.index()] = true;
            return self.next(view);
        }
        Some(pid)
    }
}

type Builder = fn(&mut Memory, usize) -> Arc<dyn LeaderElect>;

fn builders() -> Vec<(&'static str, Builder)> {
    vec![
        ("logstar", |m, n| Arc::new(LogStarLe::new(m, n))),
        ("loglog", |m, n| Arc::new(LogLogLe::new(m, n))),
        ("ratrace", |m, n| Arc::new(SpaceEfficientRatRace::new(m, n))),
        ("combined", |m, n| {
            let weak = Arc::new(LogStarLe::new(m, n));
            Arc::new(Combined::new(m, weak, n))
        }),
    ]
}

#[test]
fn random_crashes_never_two_winners() {
    for (name, builder) in builders() {
        for seed in 0..25 {
            let k = 8;
            let mut mem = Memory::new();
            let le = builder(&mut mem, k);
            let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
            let mut adv = CrashyScheduler::new(k, seed * 7 + 1, 0.02);
            let res = Execution::new(mem, protos, seed).run(&mut adv);
            let winners = res.processes_with_outcome(ret::WIN).len();
            assert!(winners <= 1, "{name} seed={seed}: {winners} winners");
        }
    }
}

#[test]
fn lone_survivor_always_finishes() {
    // Crash everyone but process k−1 at time zero: the survivor runs solo
    // and must win (wait-freedom + solo termination).
    for (name, builder) in builders() {
        for seed in 0..8 {
            let k = 6;
            let mut mem = Memory::new();
            let le = builder(&mut mem, k);
            let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
            let survivor = ProcessId(k - 1);
            let mut adv = rtas::sim::adversary::FnAdversary::new(
                AdversaryClass::Adaptive,
                move |view: &View<'_>| view.is_active(survivor).then_some(survivor),
            );
            let res = Execution::new(mem, protos, seed).run(&mut adv);
            assert_eq!(
                res.outcome(survivor),
                Some(ret::WIN),
                "{name} seed={seed}: lone survivor must win"
            );
        }
    }
}

#[test]
fn crash_just_before_winning_blocks_nobody_else_scheduled() {
    // Crash the would-be winner at a random late step; survivors that are
    // still scheduled must all finish (no deadlock on a dead process).
    for (name, builder) in builders() {
        for seed in 0..12 {
            let k = 5;
            let mut mem = Memory::new();
            let le = builder(&mut mem, k);
            let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
            let crash_step = 10 + seed % 17;
            let victim = ProcessId((seed % k as u64) as usize);
            let mut adv = rtas::sim::adversary::FnAdversary::new(AdversaryClass::Adaptive, {
                let mut rng = SplitMix64::new(seed);
                move |view: &View<'_>| {
                    let alive: Vec<ProcessId> = view
                        .active()
                        .into_iter()
                        .filter(|&p| p != victim || view.steps_of(p) < crash_step)
                        .collect();
                    if alive.is_empty() {
                        None
                    } else {
                        Some(alive[rng.choose(alive.len() as u64) as usize])
                    }
                }
            });
            let res = Execution::new(mem, protos, seed).run(&mut adv);
            // Every non-victim must have finished.
            for i in 0..k {
                let pid = ProcessId(i);
                if pid != victim {
                    assert!(
                        res.outcome(pid).is_some(),
                        "{name} seed={seed}: {pid} stuck behind crashed {victim}"
                    );
                }
            }
            assert!(res.processes_with_outcome(ret::WIN).len() <= 1);
        }
    }
}

#[test]
fn heavy_crash_rate_still_safe() {
    // 20% crash probability per decision: most runs end with most
    // processes dead; safety must be unconditional.
    for (name, builder) in builders() {
        for seed in 0..20 {
            let k = 10;
            let mut mem = Memory::new();
            let le = builder(&mut mem, k);
            let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
            let mut adv = CrashyScheduler::new(k, seed + 100, 0.2);
            let res = Execution::new(mem, protos, seed).run(&mut adv);
            assert!(
                res.processes_with_outcome(ret::WIN).len() <= 1,
                "{name} seed={seed}"
            );
        }
    }
}
