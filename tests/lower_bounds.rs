//! Integration: lower-bound machinery against the real implementations.

use rtas::algorithms::{LogLogLe, LogStarLe, SpaceEfficientRatRace};
use rtas::lowerbound::covering::covering_base_case;
use rtas::lowerbound::recurrence::{closed_form_f, f_sequence, register_lower_bound};
use rtas::lowerbound::yao::schedule_tail_probabilities;
use rtas::primitives::{RoleLeaderElect, TwoProcessLe};
use rtas::sim::memory::Memory;
use rtas::sim::protocol::Protocol;

#[test]
fn covering_base_case_holds_for_every_algorithm() {
    // Lemma 5.4 base case: all n processes can be brought to cover
    // registers with nothing visible. True for each implementation.
    let n = 8usize;
    type System = (&'static str, Memory, Vec<Box<dyn Protocol>>);
    let systems: Vec<System> = vec![
        {
            let mut mem = Memory::new();
            let le = LogStarLe::new(&mut mem, n);
            let protos = (0..n).map(|_| le.elect()).collect();
            ("logstar", mem, protos)
        },
        {
            let mut mem = Memory::new();
            let le = LogLogLe::new(&mut mem, n);
            let protos = (0..n).map(|_| le.elect()).collect();
            ("loglog", mem, protos)
        },
        {
            let mut mem = Memory::new();
            let le = SpaceEfficientRatRace::new(&mut mem, n);
            let protos = (0..n).map(|_| le.elect()).collect();
            ("ratrace", mem, protos)
        },
    ];
    for (name, mem, protos) in systems {
        let report = covering_base_case(mem, protos, 11);
        assert!(
            report.all_cover(),
            "{name}: only {}/{} processes cover",
            report.covering_processes,
            report.processes
        );
    }
}

#[test]
fn recurrence_theorem_values() {
    // f(n−4) = 4(log₂ n − 1) for every power of two up to 2^22.
    for exp in 3..=22u32 {
        let n = 1u64 << exp;
        assert_eq!(closed_form_f(n, n - 4), 4 * (exp as u64 - 1));
    }
    // And the recurrence agrees with the closed form en masse.
    let n = 1u64 << 12;
    let seq = f_sequence(n);
    for k in (0..n).step_by(97) {
        assert_eq!(seq[k as usize], closed_form_f(n, k));
    }
}

#[test]
fn register_lower_bound_monotone() {
    let mut prev = 0;
    for exp in 3..=24u32 {
        let bound = register_lower_bound(1 << exp);
        assert!(bound >= prev);
        prev = bound;
    }
}

#[test]
fn theorem_6_1_tail_bound_empirical() {
    for t in [3usize, 5, 6] {
        let report = schedule_tail_probabilities(t, 40, 99, || {
            let mut mem = Memory::new();
            let le = TwoProcessLe::new(&mut mem, "2le");
            (mem, vec![le.elect_as(0), le.elect_as(1)])
        });
        assert!(
            report.meets_bound(),
            "t={t}: {} < {}",
            report.max_tail,
            report.bound
        );
        assert!(report.mean_tail <= report.max_tail);
    }
}
