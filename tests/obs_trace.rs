//! Integration: the observability plane end to end — a chaos run on a
//! traced server whose flight-recorder dump accounts for the lease
//! reclaims the run reported, plus the metrics scrape the load harness
//! folds into its bench reports.
//!
//! The first test is the PR's acceptance bar: drive the stalled-holder
//! chaos cell against `--trace on`, dump the recorder, decode the
//! `RTASTRC1` file, and find every reclaim the client observed on the
//! reclaim lane of the timeline.

use std::sync::Arc;
use std::time::Duration;

use rtas_load::chaos::{run_load_chaos, run_load_chaos_traced};
use rtas_load::driver::{LoadSpec, Mode, Warmup};
use rtas_load::scrape_svc_extras;
use rtas_svc::obs::{
    audit_events, decode_dump, merge_spans, render_timeline, EventKind, FlightRecorder,
};
use rtas_svc::{ChaosSpec, Client, Engine, FaultPlan, Server, SvcConfig, TraceMode};

fn spec(threads: usize, shards: usize, total_ops: u64) -> LoadSpec {
    LoadSpec {
        backend: rtas::Backend::Combined, // ignored remotely
        threads,
        shards,
        mode: Mode::Closed { total_ops },
        seed: 1,
        churn: None,
        warmup: Warmup::None,
        pipeline: 1,
        conns: None,
    }
}

#[test]
fn chaos_run_dump_accounts_for_every_observed_reclaim() {
    // Every winner stalls past the lease and half the acks vanish, so
    // the server must reclaim epochs — and the traced server must have
    // recorded each reclaim on the dedicated reclaim lane.
    let srv = Server::spawn(SvcConfig {
        shards: 4,
        capacity: 8,
        lease: Some(Duration::from_millis(2)),
        read_timeout: Some(Duration::from_secs(2)),
        trace: TraceMode::On,
        ..SvcConfig::default()
    })
    .expect("bind loopback");
    let addr = srv.addr().to_string();
    let chaos = ChaosSpec::parse("stall=1.0,stall-ms=10,skip-reset=0.5").unwrap();
    let out = run_load_chaos(&addr, spec(2, 1, 120), FaultPlan::new(chaos, 7)).expect("chaos run");
    assert!(
        out.reclaimed > 0,
        "the stalled cell must strand epochs: {:?}",
        out.counts
    );

    // Dump through the public server API (the same path `rtas-svc`'s
    // panic hook uses), then decode the binary file back.
    let dir = std::env::temp_dir().join(format!("rtas-obs-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("trace dir");
    let path = dir.join("chaos.rtastrc");
    srv.dump_trace(&path).expect("dump flight recorder");
    // When the CI smoke job points RTAS_TRACE_DIR at a workspace dir,
    // leave a copy there for the `rtas-svc trace-dump` decode step.
    srv.recorder()
        .dump_to_trace_dir("chaos")
        .expect("trace-dir dump");

    let bytes = std::fs::read(&path).expect("read dump");
    let dump = decode_dump(&bytes).expect("decode dump");
    let reclaim_lane = dump
        .lanes
        .iter()
        .find(|l| l.lane == 1)
        .expect("reclaim lane present");
    assert_eq!(
        reclaim_lane.dropped, 0,
        "the reclaim lane must retain every event at smoke load"
    );

    let events = dump.merged();
    let reclaims = events
        .iter()
        .filter(|e| e.kind == EventKind::LeaseReclaim as u32)
        .count() as u64;
    assert!(
        reclaims >= out.reclaimed,
        "the dump carries {reclaims} lease-reclaim events but the run \
         observed {} reclaimed epochs",
        out.reclaimed
    );
    // The server may reclaim epochs the client never re-probed (and the
    // reaper may sweep again after the dump), so its counter bounds the
    // dump from above.
    assert!(
        srv.namespace().stats().reclaimed >= reclaims,
        "more reclaim events than reclaims counted"
    );

    // The rendered timeline names them: this is what an operator reads.
    let timeline = render_timeline(&events);
    assert!(
        timeline.contains("lease-reclaim"),
        "timeline must show the reclaim events:\n{timeline}"
    );
    assert!(timeline.contains("reclaim"), "reclaim lane named");

    std::fs::remove_file(&path).ok();
    srv.shutdown();
}

#[test]
fn drop_heavy_chaos_traced_on_both_tiers_merges_and_audits_clean() {
    // The PR's end-to-end acceptance bar: a fixed-seed drop-heavy cell
    // with tracing on BOTH tiers must merge into per-request timelines
    // where every client span pairs with at most one server span, and
    // the merged evidence must audit clean (one winner per key-epoch,
    // no post-reclaim wins).
    let srv = Server::spawn(SvcConfig {
        shards: 4,
        capacity: 64,
        lease: Some(Duration::from_millis(5)),
        read_timeout: Some(Duration::from_secs(2)),
        trace: TraceMode::On,
        ..SvcConfig::default()
    })
    .expect("bind loopback");
    let addr = srv.addr().to_string();
    let chaos = ChaosSpec::preset("drop-heavy").expect("preset");
    let recorder = Arc::new(FlightRecorder::new(TraceMode::On, 2));
    let out = run_load_chaos_traced(
        &addr,
        spec(2, 1, 160),
        FaultPlan::new(chaos, 7),
        Some(Arc::clone(&recorder)),
    )
    .expect("traced chaos run");
    assert!(
        out.outcome.recorder.total_ops() > 0,
        "the cell must make progress"
    );

    // Merge the two tiers on span identity — lossy frames mean some
    // client spans go unanswered, but no span may pair twice.
    let client_events = recorder.snapshot();
    let server_events = srv.recorder().snapshot();
    let merged = merge_spans(&client_events, &server_events);
    assert!(
        merged.client_spans > 0,
        "the traced client must have recorded round trips"
    );
    assert!(
        !merged.pairs.is_empty(),
        "at least one request must be seen end to end \
         ({} client spans, {} server spans)",
        merged.client_spans,
        merged.server_spans
    );
    assert_eq!(
        merged.duplicate_server, 0,
        "a client span paired with more than one server span — the \
         one-traced-frame-per-attempt rule is broken"
    );

    // Audit the combined evidence: spans are ignored, the arbitration
    // events must contain no counterexample to one-winner-per-epoch.
    let mut evidence = server_events;
    evidence.extend(client_events);
    let report = audit_events(&evidence);
    assert!(report.wins > 0, "the cell must have arbitrated winners");
    assert!(report.passed(), "audit failed:\n{}", report.render());

    // When the CI smoke job points RTAS_TRACE_DIR at a workspace dir,
    // leave both tiers' dumps there for the `rtas-trace merge` and
    // `rtas-trace audit` CLI steps (no-op when the variable is unset).
    recorder
        .dump_to_trace_dir("e2e-client")
        .expect("client trace-dir dump");
    srv.recorder()
        .dump_to_trace_dir("e2e-server")
        .expect("server trace-dir dump");
    srv.shutdown();
}

#[test]
fn stats_json_round_trips_through_the_bench_report_parser() {
    // `rtas-svc stats --json` emits a flat object via `stats_to_json`;
    // `rtas_bench::report::parse_json_object` is the programmatic
    // consumer. The round trip pins both the field set and the order.
    let srv = Server::spawn(SvcConfig::default()).expect("bind loopback");
    let addr = srv.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    for i in 0..5u32 {
        let key = format!("obs/statsjson/{i}").into_bytes();
        assert!(client.tas(&key).expect("TAS").won);
        client.reset(&key).expect("RESET");
    }
    let stats = client.stats().expect("STATS");
    let json = rtas_svc::cli::stats_to_json(&stats);
    let pairs = rtas_bench::report::parse_json_object(&json).expect("flat JSON parses");
    let names: Vec<&str> = pairs.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(
        names,
        [
            "keys",
            "ops",
            "wins",
            "resets",
            "registers",
            "reclaimed",
            "conns",
            "refused"
        ],
        "the stats JSON shape is a published interface"
    );
    let value = |name: &str| pairs.iter().find(|(n, _)| n == name).unwrap().1;
    assert_eq!(value("ops"), 5.0, "5 arbitration ops");
    assert_eq!(value("wins"), 5.0);
    assert_eq!(value("resets"), 5.0);
    srv.shutdown();
}

#[test]
fn metrics_scrape_has_the_fixed_report_extras_shape() {
    // The load harness folds scraped metrics into bench-report rows;
    // bench-diff gates those rows structurally, so the scrape must
    // always produce the same nine keys in the same order — zeros when
    // a gauge has nothing to say, never a missing key.
    let srv = Server::spawn(SvcConfig::default()).expect("bind loopback");
    let addr = srv.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    for i in 0..8u32 {
        let key = format!("obs/scrape/{i}").into_bytes();
        assert!(client.tas(&key).expect("TAS").won);
        client.reset(&key).expect("RESET");
    }
    let extras = scrape_svc_extras(&addr).expect("scrape metrics");
    let names: Vec<&str> = extras.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(
        names,
        [
            "svc_ops",
            "svc_wins",
            "svc_resets",
            "svc_reclaimed",
            "svc_refused",
            "svc_wake_writes",
            "svc_carryovers",
            "svc_slab_live",
            "svc_wheel_entries",
        ],
        "the scrape shape is part of the bench-diff gating contract"
    );
    let value = |name: &str| extras.iter().find(|(n, _)| n == name).unwrap().1;
    assert_eq!(value("svc_ops"), 8.0, "8 arbitration ops");
    assert_eq!(value("svc_wins"), 8.0);
    assert_eq!(value("svc_resets"), 8.0);
    assert_eq!(value("svc_refused"), 0.0);
    srv.shutdown();
}

#[test]
fn traced_reactor_exposes_stage_latencies_and_worker_gauges() {
    if !Engine::Epoll.supported() {
        eprintln!("skipping: reactor syscall shim unavailable on this target");
        return;
    }
    let srv = Server::spawn(SvcConfig {
        engine: Engine::Epoll,
        workers: 2,
        trace: TraceMode::On,
        ..SvcConfig::default()
    })
    .expect("bind loopback");
    let addr = srv.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    for i in 0..32u32 {
        let key = format!("obs/stages/{i}").into_bytes();
        assert!(client.tas(&key).expect("TAS").won);
        client.reset(&key).expect("RESET");
    }
    let text = client.metrics().expect("METRICS op");
    let parsed = rtas_svc::obs::parse_metrics(&text).expect("valid exposition");
    let value = |name: &str| {
        parsed
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("metrics exposition missing {name}: \n{text}"))
            .1
    };
    // Tracing is on, so every serve samples the per-stage clocks.
    assert!(value("stage.read_ns.count") > 0.0);
    assert!(value("stage.decode_ns.count") > 0.0);
    assert!(value("stage.arbiter_ns.count") > 0.0);
    assert!(value("stage.encode_ns.count") > 0.0);
    // Both reactor workers surface their slab and timer-wheel gauges.
    for k in 0..2 {
        let _ = value(&format!("reactor.worker{k}.slab_live"));
        let _ = value(&format!("reactor.worker{k}.wheel_entries"));
    }
    assert!(value("reactor.wake_writes") >= 0.0);
    srv.shutdown();
}
