//! Integration: the native load-generation subsystem end to end —
//! arena recycling, closed/open-loop driving, churn, seed-reproducible
//! offered load, and the report it emits.

use rtas::native::NativeRunner;
use rtas::Backend;
use rtas_load::driver::{run_load, LoadSpec, Mode, Slo};
use rtas_load::{ArrivalSchedule, TasArena};

#[test]
fn arena_reuse_over_100_epochs_under_contention() {
    // The acceptance shape: 8 threads over 4 shards (groups of 2), one
    // winner per resolution, across >= 100 reuse epochs per shard.
    let out = run_load(LoadSpec {
        backend: Backend::Combined,
        threads: 8,
        shards: 4,
        mode: Mode::Closed { total_ops: 8 * 120 },
        seed: 3,
        churn: None,
        warmup: rtas_load::Warmup::None,
        pipeline: 1,
        conns: None,
    });
    assert_eq!(out.total_ops(), 960);
    assert_eq!(out.resolutions(), 480, "120 epochs per shard");
    assert_eq!(out.total_wins(), 480, "exactly one winner per epoch");
    for cell in out.recorder.shard_stats() {
        assert_eq!(cell.ops, 240);
        assert_eq!(cell.wins, 120);
        assert_eq!(cell.latency.count(), 240);
    }
}

#[test]
fn every_backend_survives_the_closed_loop() {
    for backend in [
        Backend::LogStar,
        Backend::LogLog,
        Backend::RatRace,
        Backend::Combined,
    ] {
        let out = run_load(LoadSpec {
            backend,
            threads: 4,
            shards: 2,
            mode: Mode::Closed { total_ops: 200 },
            seed: 5,
            churn: None,
            warmup: rtas_load::Warmup::None,
            pipeline: 1,
            conns: None,
        });
        assert_eq!(out.total_wins(), out.resolutions(), "{backend:?}");
    }
}

#[test]
fn churn_respawns_workers_without_losing_ops_or_safety() {
    let out = run_load(LoadSpec {
        backend: Backend::RatRace,
        threads: 4,
        shards: 2,
        mode: Mode::Closed { total_ops: 400 },
        seed: 11,
        churn: Some(7),
        warmup: rtas_load::Warmup::None,
        pipeline: 1,
        conns: None,
    });
    assert_eq!(out.total_ops(), 400);
    assert_eq!(out.total_wins(), out.resolutions());
}

#[test]
fn open_loop_same_seed_same_offered_load() {
    // The acceptance criterion: the same --seed must produce an
    // identical arrival schedule across runs (and a different seed must
    // not).
    let a = ArrivalSchedule::poisson(80_000.0, 0.1, 1234);
    let b = ArrivalSchedule::poisson(80_000.0, 0.1, 1234);
    assert_eq!(a, b);
    assert_ne!(a, ArrivalSchedule::poisson(80_000.0, 0.1, 1235));

    // And two actual open-loop runs with one seed complete the same op
    // count (per shard — the schedule striping is deterministic too).
    let spec = LoadSpec {
        backend: Backend::LogStar,
        threads: 4,
        shards: 2,
        mode: Mode::Open {
            rate: 30_000.0,
            duration_secs: 0.03,
        },
        seed: 77,
        churn: None,
        warmup: rtas_load::Warmup::None,
        pipeline: 1,
        conns: None,
    };
    let x = run_load(spec);
    let y = run_load(spec);
    assert_eq!(x.total_ops(), y.total_ops());
    for (cx, cy) in x
        .recorder
        .shard_stats()
        .iter()
        .zip(y.recorder.shard_stats())
    {
        assert_eq!(cx.ops, cy.ops);
        assert_eq!(cx.wins, cy.wins);
    }
}

#[test]
fn report_carries_wall_gate_labels_and_matches_counts() {
    let out = run_load(LoadSpec {
        backend: Backend::Combined,
        threads: 2,
        shards: 2,
        mode: Mode::Closed { total_ops: 100 },
        seed: 1,
        churn: None,
        warmup: rtas_load::Warmup::None,
        pipeline: 1,
        conns: None,
    });
    let report = out.bench_report();
    assert_eq!(report.name(), "native_load");
    assert_eq!(report.rows().len(), 3);
    for row in report.rows() {
        assert!(
            row.labels.contains(&("gate".into(), "wall".into())),
            "every native-load row is wall-derived: {row:?}"
        );
    }
    let ops: f64 = report.rows()[2]
        .extra
        .iter()
        .find(|(k, _)| k == "ops")
        .expect("total row has ops")
        .1;
    assert_eq!(ops as u64, out.total_ops());
}

#[test]
fn slo_checks_read_the_overall_distribution() {
    let out = run_load(LoadSpec {
        backend: Backend::LogStar,
        threads: 2,
        shards: 1,
        mode: Mode::Closed { total_ops: 100 },
        seed: 2,
        churn: None,
        warmup: rtas_load::Warmup::None,
        pipeline: 1,
        conns: None,
    });
    assert!(Slo {
        p50_us: Some(1e12),
        p99_us: Some(1e12)
    }
    .violations(&out)
    .is_empty());
    assert_eq!(
        Slo {
            p50_us: Some(0.0),
            p99_us: Some(0.0)
        }
        .violations(&out)
        .len(),
        2
    );
}

#[test]
fn arena_epochs_continue_across_driver_runs() {
    // A reused arena (the bench path) continues epoch numbering instead
    // of colliding with completed epochs.
    let arena = std::sync::Arc::new(TasArena::new(Backend::LogStar, 2, 2));
    let spec = LoadSpec {
        backend: Backend::LogStar,
        threads: 4,
        shards: 2,
        mode: Mode::Closed { total_ops: 80 },
        seed: 0,
        churn: None,
        warmup: rtas_load::Warmup::None,
        pipeline: 1,
        conns: None,
    };
    let first = rtas_load::run_load_on(&arena, spec);
    assert_eq!(arena.epochs_completed(0), 20);
    let second = rtas_load::run_load_on(&arena, spec);
    assert_eq!(arena.epochs_completed(0), 40);
    assert_eq!(first.total_wins() + second.total_wins(), 80);
}

#[test]
fn solo_arena_resolve_is_reusable_from_a_bare_runner() {
    // Smallest possible harness: one shard, group of one, driven
    // directly without the driver.
    let arena = TasArena::new(Backend::Combined, 1, 1);
    let mut runner = NativeRunner::new();
    for epoch in 0..150 {
        assert!(arena.resolve(0, epoch, &mut runner));
    }
    assert_eq!(arena.wins(0), 150);
}
