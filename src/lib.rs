//! Umbrella crate for the workspace: hosts the runnable examples in
//! `examples/` and the cross-crate integration tests in `tests/`.
//!
//! The actual library lives in the `rtas` crate (see `crates/core`);
//! the native load-generation harness (sharded arena, open/closed-loop
//! workload driver, remote backend, `rtas-load` CLI) lives in
//! `rtas-load` (see `crates/load`), re-exported here as [`load`]; the
//! network arbitration service (keyed TAS/LE namespaces behind a
//! sharded TCP server, `rtas-svc` CLI) lives in `rtas-svc` (see
//! `crates/svc`), re-exported here as [`svc`].
pub use rtas;
pub use rtas_load as load;
pub use rtas_svc as svc;
