//! Umbrella crate for the workspace: hosts the runnable examples in
//! `examples/` and the cross-crate integration tests in `tests/`.
//!
//! The actual library lives in the `rtas` crate (see `crates/core`).
pub use rtas;
