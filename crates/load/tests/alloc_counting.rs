//! Allocation accounting for the arena's steady-state op path.
//!
//! A counting global allocator (this test binary only) pins down the
//! recycle claims:
//!
//! * `NativeMemory::reset` / `TestAndSet::reset` perform **zero**
//!   allocations — recycling is register stores, nothing else;
//! * the steady-state op path allocates only the per-operation protocol
//!   state machines (a handful of small boxes), not the object graph —
//!   recycling must beat rebuilding by a wide margin per resolution.
//!
//! Everything runs in ONE test function: the default test harness runs
//! `#[test]` functions concurrently, and a second thread would pollute
//! the global counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rtas::native::{NativeMemory, NativeRunner};
use rtas::sim::memory::Memory;
use rtas::{Backend, TestAndSet};
use rtas_load::TasArena;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn reset_is_allocation_free_and_steady_state_is_allocation_light() {
    // --- NativeMemory::reset allocates nothing. ---
    let mut layout = Memory::new();
    let regs = layout.alloc(64, "t");
    let shared = NativeMemory::from_layout(&layout);
    for reg in regs.iter() {
        shared.write(reg, 7);
    }
    let before = allocations();
    shared.reset();
    assert_eq!(
        allocations() - before,
        0,
        "NativeMemory::reset must not allocate"
    );

    // --- TestAndSet::reset allocates nothing. ---
    let tas = TestAndSet::with_backend(Backend::LogStar, 1);
    assert!(!tas.test_and_set());
    let before = allocations();
    tas.reset();
    assert_eq!(
        allocations() - before,
        0,
        "TestAndSet::reset must not allocate"
    );

    // --- Steady-state arena ops: protocol boxes only. ---
    // Group of one so the whole loop stays on this thread (spawning
    // workers would allocate and pollute the counters).
    let arena = TasArena::new(Backend::LogStar, 1, 1);
    let mut runner = NativeRunner::new();
    for epoch in 0..20 {
        assert!(arena.resolve(0, epoch, &mut runner), "warmup epoch {epoch}");
    }
    let epochs = 100u64;
    let before = allocations();
    for epoch in 20..20 + epochs {
        assert!(arena.resolve(0, epoch, &mut runner));
    }
    let per_epoch = (allocations() - before) as f64 / epochs as f64;

    // What rebuilding instead of recycling would cost, per resolution.
    let before = allocations();
    let fresh = TestAndSet::with_backend(Backend::LogStar, 1);
    let construction = (allocations() - before) as f64;
    assert!(!fresh.test_and_set());

    assert!(
        per_epoch < construction,
        "recycling ({per_epoch:.1} allocs/epoch) must beat rebuilding \
         ({construction:.1} allocs/object)"
    );
    // And in absolute terms the op path is a handful of protocol boxes,
    // not an object graph.
    assert!(
        per_epoch <= 16.0,
        "steady-state op path allocated {per_epoch:.1} times per epoch"
    );
}
