//! Drive the deterministic hostile-network layer against a live
//! server: [`RemoteTarget`] semantics behind `rtas-svc`'s
//! [`ChaosClient`] fault injection.
//!
//! [`ChaosTarget`] re-creates the remote target's client-side epoch
//! protocol — `shards` keys named `load/s`, workers spinning on a
//! local per-key epoch, the epoch's last finisher acking `RESET` —
//! but every wire interaction passes through a [`ChaosClient`] whose
//! faults come from one seeded [`FaultPlan`]: worker connection `c`
//! replays fault stream `c`, and the `RESET` ack for `(shard, local
//! epoch)` draws its byzantine faults as a *pure function* of those
//! coordinates (never of which racing worker sends it), so the entire
//! fault schedule is a function of `(seed, spec, workload)` alone.
//!
//! Under faults the *local* win accounting legitimately degrades — a
//! skipped ack strands a server epoch whose later arrivals all lose,
//! and a lease reclamation can split one local epoch across two
//! server epochs, so local wins per local epoch may be 0 or even 2.
//! What can never degrade is the server-side bar: **at most one
//! winner per key-epoch**. [`ChaosTarget`] enforces it fail-fast — a
//! per-shard map of observed winning server epochs panics the run on
//! any second winner — and [`run_load_chaos`] folds the client-side
//! fault counters plus the server's reclaimed-slot delta into the
//! outcome's [`ErrorClasses`].
//!
//! [`RemoteTarget`]: crate::remote::RemoteTarget

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use rtas::sync::{Backoff, CachePadded};
use rtas_svc::chaos::{ChaosClient, ChaosCounts, FaultPlan};
use rtas_svc::obs::FlightRecorder;
use rtas_svc::{Client, ClientConfig, ClientError, ClientTracer, Op};

use crate::driver::{run_on_target, LoadOutcome, LoadSpec, LoadTarget, TargetKind};
use crate::recorder::ErrorClasses;

/// Client-side recycling state for one key (the remote target's
/// header, replicated here — the local epoch *always* advances, even
/// when the plan byzantinely skips the server ack, so workers never
/// deadlock on a stranded server epoch).
#[derive(Debug)]
struct KeyState {
    epoch: AtomicU64,
    done: AtomicUsize,
}

/// Per-shard safety ledger: the winning *server* epochs observed, with
/// a fail-fast panic on any second winner for one epoch.
#[derive(Debug, Default)]
struct WinLedger {
    /// server epoch → how many wins observed (must stay ≤ 1).
    wins: Mutex<HashMap<u64, u64>>,
}

/// An `rtas-svc` server behind the fault-injection layer, as a
/// [`LoadTarget`]. Reports as `BENCH_svc_chaos.json`
/// (`backend=chaos`).
#[derive(Debug)]
pub struct ChaosTarget {
    addr: String,
    plan: FaultPlan,
    config: ClientConfig,
    keys: Vec<Vec<u8>>,
    states: Vec<CachePadded<KeyState>>,
    ledgers: Vec<WinLedger>,
    /// Next worker connection id — handed out in `context()` call
    /// order. The driver creates the initial fleet's contexts
    /// sequentially on the main thread, so ids (and therefore fault
    /// streams) are stable run to run.
    next_conn: AtomicU64,
    /// Fault/recovery counters folded in as worker contexts retire.
    counts: Arc<Mutex<ChaosCounts>>,
    group: usize,
    registers: u64,
    /// Client-side flight recorder ([`ChaosTarget::with_recorder`]):
    /// when set, every worker's [`ChaosClient`] stamps its wire
    /// attempts with fresh trace spans. Span minting never draws from
    /// the fault or jitter streams, so a traced run replays the same
    /// fault schedule as an untraced one.
    recorder: Option<Arc<FlightRecorder>>,
}

impl ChaosTarget {
    /// Bind `shards` keys on the server at `addr` behind `plan`'s
    /// faults. The reachability/reset probe runs on a *clean* client —
    /// the fault schedule starts with worker connection 0.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `group == 0`.
    pub fn new(
        addr: &str,
        shards: usize,
        group: usize,
        plan: FaultPlan,
        config: ClientConfig,
    ) -> Result<ChaosTarget, ClientError> {
        assert!(shards >= 1, "chaos target needs at least one shard key");
        assert!(group >= 1, "chaos target needs at least one participant");
        let mut probe = Client::connect_with(addr, config.clone())?;
        let keys: Vec<Vec<u8>> = (0..shards)
            .map(|s| format!("load/{s}").into_bytes())
            .collect();
        for key in &keys {
            probe.tas(key)?;
            probe.reset(key)?;
        }
        let registers = probe.stats()?.registers;
        Ok(ChaosTarget {
            addr: addr.to_string(),
            plan,
            config,
            states: (0..shards)
                .map(|_| {
                    CachePadded(KeyState {
                        epoch: AtomicU64::new(0),
                        done: AtomicUsize::new(0),
                    })
                })
                .collect(),
            ledgers: (0..shards).map(|_| WinLedger::default()).collect(),
            next_conn: AtomicU64::new(0),
            counts: Arc::new(Mutex::new(ChaosCounts::default())),
            keys,
            group,
            registers,
            recorder: None,
        })
    }

    /// Attach a client-side flight recorder: every worker's
    /// [`ChaosClient`] stamps each wire attempt (retries included —
    /// each attempt mints a fresh span) and records `ClientSpan`
    /// events on its connection's lane. Negotiates with a traced
    /// `STATS` probe first; an old server keeps tracing detached with
    /// a warning, never an error.
    ///
    /// # Errors
    ///
    /// Fails only if the negotiation probe cannot reach the server.
    pub fn with_recorder(
        mut self,
        recorder: Arc<FlightRecorder>,
    ) -> Result<ChaosTarget, ClientError> {
        if !Client::connect_with(&self.addr, self.config.clone())?.probe_trace()? {
            eprintln!(
                "rtas-load: warning: {} does not speak the wire trace \
                 extension (old server?); tracing disabled",
                self.addr
            );
            return Ok(self);
        }
        self.recorder = Some(recorder);
        Ok(self)
    }

    /// The fault/recovery counters accumulated so far (complete once
    /// the run's workers have retired their contexts).
    pub fn counts(&self) -> ChaosCounts {
        *self.counts.lock().unwrap()
    }

    /// The winning server epochs observed per shard, sorted — the
    /// "winner set" two same-seed runs must agree on when the fault
    /// schedule is timing-independent (e.g. the delay-only cell).
    pub fn winner_epochs(&self) -> Vec<Vec<u64>> {
        self.ledgers
            .iter()
            .map(|ledger| {
                let mut epochs: Vec<u64> = ledger.wins.lock().unwrap().keys().copied().collect();
                epochs.sort_unstable();
                epochs
            })
            .collect()
    }
}

/// One worker's context: the fault-injecting client plus a handle to
/// the target's counter sink, flushed on drop (worker retirement).
#[derive(Debug)]
pub struct ChaosCtx {
    client: ChaosClient,
    sink: Arc<Mutex<ChaosCounts>>,
}

impl Drop for ChaosCtx {
    fn drop(&mut self) {
        self.sink.lock().unwrap().merge(self.client.counts());
    }
}

impl LoadTarget for ChaosTarget {
    type Ctx = ChaosCtx;

    fn shards(&self) -> usize {
        self.keys.len()
    }

    fn group(&self) -> usize {
        self.group
    }

    fn base_epochs(&self) -> Vec<u64> {
        self.states
            .iter()
            .map(|s| s.0.epoch.load(Ordering::Acquire))
            .collect()
    }

    fn context(&self) -> ChaosCtx {
        let conn = self.next_conn.fetch_add(1, Ordering::Relaxed);
        let mut client = ChaosClient::new(&self.addr, &self.plan, conn, self.config.clone());
        if let Some(recorder) = &self.recorder {
            client = client.with_tracer(ClientTracer::new(Arc::clone(recorder), conn as usize));
        }
        ChaosCtx {
            client,
            sink: Arc::clone(&self.counts),
        }
    }

    fn resolve(&self, ctx: &mut ChaosCtx, shard: usize, epoch: u64) -> bool {
        let state = &self.states[shard].0;
        let mut backoff = Backoff::new();
        loop {
            let current = state.epoch.load(Ordering::Acquire);
            if current == epoch {
                break;
            }
            assert!(
                current < epoch,
                "epoch {epoch} already closed (key is at {current}): \
                 a reused chaos target must offset by base_epochs"
            );
            backoff.snooze();
        }
        let key = &self.keys[shard];
        let verdict = ctx
            .client
            .acquire(Op::Tas, key)
            .unwrap_or_else(|e| panic!("chaotic TAS on {} failed: {e}", self.addr));
        if verdict.won {
            // THE safety bar: at most one winner per key-epoch, on the
            // server's own epoch numbering, under every fault mix.
            let mut wins = self.ledgers[shard].wins.lock().unwrap();
            let seen = wins.entry(verdict.epoch).or_insert(0);
            *seen += 1;
            assert!(
                *seen == 1,
                "second winner observed for shard {shard} server epoch {} — \
                 arbitration safety violated under chaos",
                verdict.epoch
            );
        }
        if state.done.fetch_add(1, Ordering::AcqRel) + 1 == self.group {
            // Last finisher acks — subject to the plan's byzantine
            // reset faults, drawn from the (shard, LOCAL epoch)
            // coordinates so the draw is identical whichever worker
            // lands here. A skipped ack strands the server epoch for
            // the lease to reclaim; a duplicated ack is defused by the
            // server's zero-admission guard. Either way the LOCAL
            // epoch advances: liveness never hangs on the fault plan.
            let faults = self.plan.reset_faults(shard as u64, epoch);
            ctx.client
                .ack_reset(key, faults)
                .unwrap_or_else(|e| panic!("chaotic RESET on {} failed: {e}", self.addr));
            state.done.store(0, Ordering::Relaxed);
            state.epoch.fetch_add(1, Ordering::Release);
        }
        verdict.won
    }

    fn registers(&self) -> u64 {
        self.registers
    }
}

/// A chaos run's outcome: the ordinary load outcome (its recorder's
/// [`ErrorClasses`] filled in) plus the fault tally and the observed
/// winner sets.
#[derive(Debug)]
pub struct ChaosOutcome {
    /// The measured run, reporting as `svc_chaos`.
    pub outcome: LoadOutcome,
    /// Client-side fault/recovery counters, all workers merged.
    pub counts: ChaosCounts,
    /// Winning server epochs observed, per shard, sorted.
    pub winners: Vec<Vec<u64>>,
    /// Server-side epochs reclaimed by the lease *during this run*
    /// (the `STATS` delta).
    pub reclaimed: u64,
}

/// Run the specified workload against the server at `addr` with
/// `plan`'s faults injected. The one-winner-per-key-epoch bar is
/// enforced fail-fast inside [`ChaosTarget::resolve`]; the outcome's
/// recorder carries the error-class counts (timeouts, retries,
/// reconnects, server reclaims).
///
/// # Errors
///
/// Fails if the server is unreachable or refuses the clean probe.
/// Transport failures mid-run are absorbed by the chaos client's
/// retry/backoff; a worker that exhausts its retries panics loudly.
///
/// # Panics
///
/// Panics on an inconsistent spec, or on a safety violation (a second
/// winner for one server epoch).
pub fn run_load_chaos(
    addr: &str,
    spec: LoadSpec,
    plan: FaultPlan,
) -> Result<ChaosOutcome, ClientError> {
    run_load_chaos_traced(addr, spec, plan, None)
}

/// [`run_load_chaos`] with an optional client-side flight recorder
/// (see [`ChaosTarget::with_recorder`]): the caller keeps the `Arc`
/// and dumps the rings after the run. Passing `None` is exactly
/// `run_load_chaos` — and because span minting never touches the
/// seeded fault streams, both variants replay the identical fault
/// schedule from one `(seed, spec, workload)` triple.
///
/// # Errors
///
/// As [`run_load_chaos`], plus a failed trace-negotiation probe.
pub fn run_load_chaos_traced(
    addr: &str,
    spec: LoadSpec,
    plan: FaultPlan,
    recorder: Option<Arc<FlightRecorder>>,
) -> Result<ChaosOutcome, ClientError> {
    spec.validate();
    assert!(
        spec.pipeline == 1,
        "chaos runs require pipeline depth 1: the fault plan's draw order is \
         defined over lockstep round trips, and retry/reconnect recovery \
         cannot replay a window of blind in-flight epochs"
    );
    let config = ClientConfig::default();
    let mut target = ChaosTarget::new(addr, spec.shards, spec.group(), plan, config.clone())?;
    if let Some(recorder) = recorder {
        target = target.with_recorder(recorder)?;
    }
    let before = Client::connect_with(addr, config.clone())?.stats()?;
    let mut outcome = run_on_target(&target, spec, TargetKind::Chaos);
    let after = Client::connect_with(addr, config)?.stats()?;
    let reclaimed = after.reclaimed.saturating_sub(before.reclaimed);
    let counts = target.counts();
    outcome.recorder.add_errors(&ErrorClasses {
        timeouts: counts.timeouts,
        retries: counts.retries,
        reconnects: counts.reconnects,
        reclaimed,
    });
    Ok(ChaosOutcome {
        outcome,
        counts,
        winners: target.winner_epochs(),
        reclaimed,
    })
}
