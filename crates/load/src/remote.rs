//! The remote backend: fire the same deterministic workloads at an
//! `rtas-svc` arbitration server over TCP.
//!
//! [`RemoteTarget`] maps the driver's `(shard, epoch)` coordinates onto
//! the service's keyed namespaces: shard `s` is the key `load/s`, and
//! the arena's release/acquire epoch protocol is re-created
//! client-side — workers spin on a local per-key epoch counter, issue
//! `TAS` over their own connection, and the epoch's **last finisher**
//! sends the `RESET` ack and opens the next epoch with a release store.
//! The server independently enforces the same invariant (its own
//! epoch gate admits and recycles), so exactly one winner per
//! key-epoch holds end to end, asserted by the driver's win accounting.
//!
//! ## Pipelining
//!
//! At [`LoadSpec::pipeline`] depth `d > 1` a worker keeps up to `d`
//! epochs in flight on its connection: each resolve ships the epoch's
//! `TAS` **and** its `RESET` ack as one two-frame batch (a single
//! `write` syscall — the server answers frames in order, so the ack is
//! sound the moment the verdict is), advances the local epoch
//! immediately, and only blocks to drain the *oldest* in-flight epoch's
//! two responses once the window is full. Depth `d > 1` requires
//! `threads == shards` (each worker the sole participant of its shard
//! key — enforced by [`LoadSpec::validate`]): a sole participant's
//! verdict is always a win and never depends on a peer's reply, so
//! blind batching cannot deadlock. The drain still checks every
//! deferred verdict — a lost epoch or failed ack panics the worker, so
//! the one-winner accounting stays airtight. Depth 1 is the classic
//! lockstep round trip, unchanged.
//!
//! Because the open-loop [`ArrivalSchedule`] is a pure function of the
//! seed, the *offered* load is bit-identical run to run here too — the
//! service sees the same request instants whatever the network does —
//! and end-to-end latency is still measured from the scheduled instant
//! (queueing included, no coordinated omission). Reports are emitted as
//! `BENCH_svc_load.json` (rows labeled `backend=remote`, `gate=wall`,
//! `pipeline=<depth>`).
//!
//! ## Connection fan-out (C10K)
//!
//! [`LoadSpec::conns`] holds a fixed fleet of `conns / threads`
//! connections open **per worker** for the whole run; each resolution
//! round-robins onto the next connection, so thousands of live
//! connections are exercised by a handful of threads. Reports from a
//! fan-out run are emitted as `BENCH_svc_c10k.json` with a `conns`
//! label on every row.
//!
//! ## End-to-end tracing
//!
//! With a recorder attached ([`RemoteTarget::with_recorder`], the
//! `rtas-load --trace` flag) every lockstep resolution carries a wire
//! trace span (`docs/WIRE.md`) and records a `ClientSpan` event; the
//! server records the matching `ServerSpan`, and `rtas-trace merge`
//! joins the two dumps into per-request network/server/queue latency
//! breakdowns. The pipelined path stays untraced by design — blind
//! batches defer their responses, so there is no per-frame completion
//! point to time. Support is negotiated with a traced `STATS` probe;
//! old servers get plain untraced traffic.
//!
//! [`ArrivalSchedule`]: crate::schedule::ArrivalSchedule
//! [`LoadSpec::pipeline`]: crate::driver::LoadSpec::pipeline
//! [`LoadSpec::conns`]: crate::driver::LoadSpec::conns
//! [`LoadSpec::validate`]: crate::driver::LoadSpec

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use rtas::sync::{Backoff, CachePadded};
use rtas_svc::obs::FlightRecorder;
use rtas_svc::{Client, ClientError, ClientTracer, Op, Response};

use crate::driver::{run_on_target, LoadOutcome, LoadSpec, LoadTarget, TargetKind};

/// Client-side recycling state for one key, mirroring the arena's
/// shard header.
#[derive(Debug)]
struct KeyState {
    /// Open epoch: bumped with `Release` by the last finisher after the
    /// `RESET` ack; read with `Acquire` by entrants.
    epoch: AtomicU64,
    /// Completed calls within the open epoch (`0..=group`).
    done: AtomicUsize,
}

/// An `rtas-svc` server as a [`LoadTarget`]: `shards` keys named
/// `load/0..load/shards-1`, each epoch-recycled through the wire
/// protocol's `RESET` ack.
#[derive(Debug)]
pub struct RemoteTarget {
    addr: String,
    keys: Vec<Vec<u8>>,
    states: Vec<CachePadded<KeyState>>,
    group: usize,
    pipeline: usize,
    /// Connections each worker holds open and round-robins across
    /// (the C10K fan-out; 1 is the classic one-connection worker).
    conns_per_worker: usize,
    registers: u64,
    /// Client-side flight recorder ([`RemoteTarget::with_recorder`]):
    /// when set, lockstep resolutions carry wire trace spans and record
    /// `ClientSpan` events onto the context's worker lane.
    recorder: Option<Arc<FlightRecorder>>,
    /// Next worker-context index, handed out in `context()` call order
    /// (the driver creates the initial fleet's contexts sequentially on
    /// the main thread, so indices — and therefore span id spaces —
    /// are stable run to run).
    next_ctx: AtomicUsize,
}

/// Per-worker connections plus the pipeline window: shard indices of
/// epochs whose `(TAS, RESET)` response pairs are still in flight, in
/// send order (the server answers in order, so the front of the queue
/// is always the next pair on the wire).
///
/// Under a connection fan-out ([`LoadSpec::conns`]) a worker owns many
/// clients and round-robins resolutions across them so every
/// connection stays live; pipelining (which is per-connection
/// bookkeeping) is restricted to the single-client shape by
/// `LoadSpec::validate`.
#[derive(Debug)]
pub struct RemoteCtx {
    clients: Vec<Client>,
    /// Next client in the round-robin.
    next: usize,
    inflight: VecDeque<usize>,
    /// Span minting + `ClientSpan` recording for this worker's traffic
    /// (lockstep path only; `None` when the target has no recorder).
    tracer: Option<ClientTracer>,
}

impl RemoteCtx {
    /// Block for the oldest in-flight epoch's two responses and check
    /// them: the deferred verdict must be a win (the worker is its
    /// shard's sole participant) and the ack must be a reset ack.
    fn drain_one(&mut self) {
        let shard = self
            .inflight
            .pop_front()
            .expect("drain_one called with an empty pipeline window");
        // Pipelining implies the single-client shape (validate()), so
        // the window always belongs to clients[0].
        let client = &mut self.clients[0];
        let peer = client.peer();
        match client.recv() {
            Ok(Response::Acquired(a)) => assert!(
                a.won,
                "pipelined TAS on shard {shard} via {peer} lost its epoch \
                 despite being the sole participant"
            ),
            Ok(other) => panic!(
                "pipelined TAS on shard {shard} via {peer}: expected a verdict, got {other:?}"
            ),
            Err(e) => panic!("pipelined TAS on shard {shard} via {peer} failed: {e}"),
        }
        match client.recv() {
            Ok(Response::Reset { .. }) => {}
            Ok(other) => panic!(
                "pipelined RESET on shard {shard} via {peer}: expected an ack, got {other:?}"
            ),
            Err(e) => panic!("pipelined RESET on shard {shard} via {peer} failed: {e}"),
        }
    }
}

impl Drop for RemoteCtx {
    fn drop(&mut self) {
        // A worker life ends with its window drained, so every epoch it
        // opened is verified and the server's gates are quiescent for
        // the next life. Never on the unwind path though: the stream
        // may be desynchronized, and a drain panic would abort.
        if std::thread::panicking() {
            return;
        }
        while !self.inflight.is_empty() {
            self.drain_one();
        }
    }
}

impl RemoteTarget {
    /// Bind `shards` keys on the server at `addr`, each resolved by
    /// `group` participants per epoch, in lockstep (pipeline depth 1).
    ///
    /// Connects once to probe reachability and to put every key into a
    /// known-fresh epoch (`TAS` to materialize it, `RESET` to recycle —
    /// a crashed previous run cannot leave a half-resolved epoch
    /// behind). The probe's win/loss is deliberately *not* part of the
    /// run's accounting: local epochs start at 0 regardless of the
    /// server's epoch numbering, which only ever appears in responses.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `group == 0`.
    pub fn new(addr: &str, shards: usize, group: usize) -> Result<RemoteTarget, ClientError> {
        Self::with_pipeline(addr, shards, group, 1)
    }

    /// [`RemoteTarget::new`] with an explicit pipeline depth (see the
    /// [module docs](self)).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`, `group == 0`, `pipeline == 0`, or
    /// `pipeline > 1 && group > 1`.
    pub fn with_pipeline(
        addr: &str,
        shards: usize,
        group: usize,
        pipeline: usize,
    ) -> Result<RemoteTarget, ClientError> {
        Self::with_shape(addr, shards, group, pipeline, 1)
    }

    /// [`RemoteTarget::new`] with an explicit per-worker connection
    /// fan-out: every worker context holds `conns_per_worker`
    /// connections open and round-robins its resolutions across them
    /// (the C10K posture — see [`LoadSpec::conns`]).
    ///
    /// # Panics
    ///
    /// Panics on the [`RemoteTarget::with_pipeline`] conditions, if
    /// `conns_per_worker == 0`, or if `conns_per_worker > 1 &&
    /// pipeline > 1` (the pipeline window is per-connection).
    pub fn with_shape(
        addr: &str,
        shards: usize,
        group: usize,
        pipeline: usize,
        conns_per_worker: usize,
    ) -> Result<RemoteTarget, ClientError> {
        assert!(shards >= 1, "remote target needs at least one shard key");
        assert!(group >= 1, "remote target needs at least one participant");
        assert!(pipeline >= 1, "pipeline depth must be at least 1");
        assert!(
            pipeline == 1 || group == 1,
            "pipeline depth {pipeline} requires a group of 1 (got {group})"
        );
        assert!(
            conns_per_worker >= 1,
            "each worker needs at least one connection"
        );
        assert!(
            conns_per_worker == 1 || pipeline == 1,
            "a connection fan-out requires pipeline depth 1 (got {pipeline})"
        );
        let mut probe = Client::connect(addr)?;
        let keys: Vec<Vec<u8>> = (0..shards)
            .map(|s| format!("load/{s}").into_bytes())
            .collect();
        for key in &keys {
            probe.tas(key)?;
            probe.reset(key)?;
        }
        let registers = probe.stats()?.registers;
        Ok(RemoteTarget {
            addr: addr.to_string(),
            states: (0..shards)
                .map(|_| {
                    CachePadded(KeyState {
                        epoch: AtomicU64::new(0),
                        done: AtomicUsize::new(0),
                    })
                })
                .collect(),
            keys,
            group,
            pipeline,
            conns_per_worker,
            registers,
            recorder: None,
            next_ctx: AtomicUsize::new(0),
        })
    }

    /// Attach a client-side flight recorder: every lockstep resolution
    /// is sent with a fresh wire trace span (`docs/WIRE.md`) and lands
    /// a `ClientSpan` event on the worker's lane, pairable with the
    /// server's dump by `rtas-trace merge`.
    ///
    /// Negotiates first: a traced probe (`Client::probe_trace`) tells a
    /// new server from an old one over a healthy connection. Old
    /// servers — and pipelined targets, whose blind batches are
    /// deliberately untraced (the window bookkeeping has no per-frame
    /// completion point to time) — keep the recorder detached, with a
    /// warning on stderr rather than an error: tracing is additive
    /// observability, never a reason to refuse load.
    ///
    /// # Errors
    ///
    /// Fails only if the negotiation probe cannot reach the server.
    pub fn with_recorder(
        mut self,
        recorder: Arc<FlightRecorder>,
    ) -> Result<RemoteTarget, ClientError> {
        if self.pipeline > 1 {
            eprintln!(
                "rtas-load: warning: the pipelined path is untraced (blind \
                 batches have no per-frame completion point); tracing disabled"
            );
            return Ok(self);
        }
        if !Client::connect(&self.addr)?.probe_trace()? {
            eprintln!(
                "rtas-load: warning: {} does not speak the wire trace \
                 extension (old server?); tracing disabled",
                self.addr
            );
            return Ok(self);
        }
        self.recorder = Some(recorder);
        Ok(self)
    }

    /// The server address the target drives.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The pipeline depth every worker connection runs at.
    pub fn pipeline(&self) -> usize {
        self.pipeline
    }
}

impl LoadTarget for RemoteTarget {
    type Ctx = RemoteCtx;

    fn shards(&self) -> usize {
        self.keys.len()
    }

    fn group(&self) -> usize {
        self.group
    }

    fn base_epochs(&self) -> Vec<u64> {
        self.states
            .iter()
            .map(|s| s.0.epoch.load(Ordering::Acquire))
            .collect()
    }

    fn context(&self) -> RemoteCtx {
        let clients = (0..self.conns_per_worker)
            .map(|_| {
                Client::connect(&self.addr)
                    .unwrap_or_else(|e| panic!("cannot connect load worker to {}: {e}", self.addr))
            })
            .collect();
        let ctx = self.next_ctx.fetch_add(1, Ordering::Relaxed);
        RemoteCtx {
            clients,
            next: 0,
            inflight: VecDeque::with_capacity(self.pipeline),
            tracer: self
                .recorder
                .as_ref()
                .map(|r| ClientTracer::new(Arc::clone(r), ctx)),
        }
    }

    fn resolve(&self, ctx: &mut RemoteCtx, shard: usize, epoch: u64) -> bool {
        let state = &self.states[shard].0;
        // Wait for our epoch — same spin-then-yield discipline as the
        // in-process arena. (At pipeline depths above 1 the worker is
        // the shard's sole participant and opened the epoch itself, so
        // this check passes immediately.)
        let mut backoff = Backoff::new();
        loop {
            let current = state.epoch.load(Ordering::Acquire);
            if current == epoch {
                break;
            }
            assert!(
                current < epoch,
                "epoch {epoch} already closed (key is at {current}): \
                 a reused remote target must offset by base_epochs"
            );
            backoff.snooze();
        }
        let key = &self.keys[shard];
        // Round-robin the fan-out: each resolution (TAS and, for the
        // last finisher, its RESET) runs on one connection, and every
        // connection takes its turn so all of them stay live.
        let at = ctx.next;
        ctx.next = (ctx.next + 1) % ctx.clients.len();
        if self.pipeline > 1 {
            // Sole participant: ship the epoch's TAS and its RESET ack
            // as one two-frame batch (one write syscall), open the next
            // local epoch immediately, and only block once the window
            // holds `pipeline` undrained epochs. The deferred verdict
            // is checked in drain_one — a loss panics, so returning
            // `true` here cannot corrupt the win accounting silently.
            ctx.clients[at]
                .send_batch(&[(Op::Tas, key), (Op::Reset, key)])
                .unwrap_or_else(|e| panic!("pipelined batch on {} failed: {e}", self.addr));
            ctx.inflight.push_back(shard);
            state.epoch.fetch_add(1, Ordering::Release);
            if ctx.inflight.len() >= self.pipeline {
                ctx.drain_one();
            }
            return true;
        }
        let won = match ctx.tracer.as_mut().filter(|t| t.enabled()) {
            Some(tracer) => {
                // Traced lockstep round trip: a fresh span on the wire,
                // timed send → decoded verdict, recorded as ClientSpan.
                let span = tracer.mint();
                let t0 = tracer.now_ns();
                let client = &mut ctx.clients[at];
                client
                    .send_span(Op::Tas, span, key)
                    .unwrap_or_else(|e| panic!("TAS on {} failed: {e}", self.addr));
                let won = match client.recv() {
                    Ok(Response::Acquired(a)) => a.won,
                    Ok(other) => panic!(
                        "traced TAS on {}: expected a verdict, got {other:?}",
                        self.addr
                    ),
                    Err(e) => panic!("TAS on {} failed: {e}", self.addr),
                };
                tracer.record(Op::Tas, span, tracer.now_ns().saturating_sub(t0));
                won
            }
            None => {
                ctx.clients[at]
                    .tas(key)
                    .unwrap_or_else(|e| panic!("TAS on {} failed: {e}", self.addr))
                    .won
            }
        };
        if state.done.fetch_add(1, Ordering::AcqRel) + 1 == self.group {
            // Last finisher: every call of this epoch has its response,
            // so the server-side gate is quiescent the moment our RESET
            // is admitted. Ack it, then open the next local epoch.
            match ctx.tracer.as_mut().filter(|t| t.enabled()) {
                Some(tracer) => {
                    let span = tracer.mint();
                    let t0 = tracer.now_ns();
                    let client = &mut ctx.clients[at];
                    client
                        .send_span(Op::Reset, span, key)
                        .unwrap_or_else(|e| panic!("RESET on {} failed: {e}", self.addr));
                    match client.recv() {
                        Ok(Response::Reset { .. }) => {}
                        Ok(other) => panic!(
                            "traced RESET on {}: expected an ack, got {other:?}",
                            self.addr
                        ),
                        Err(e) => panic!("RESET on {} failed: {e}", self.addr),
                    }
                    tracer.record(Op::Reset, span, tracer.now_ns().saturating_sub(t0));
                }
                None => {
                    ctx.clients[at]
                        .reset(key)
                        .unwrap_or_else(|e| panic!("RESET on {} failed: {e}", self.addr));
                }
            }
            state.done.store(0, Ordering::Relaxed);
            state.epoch.fetch_add(1, Ordering::Release);
        }
        won
    }

    fn registers(&self) -> u64 {
        self.registers
    }
}

/// Run the specified workload against the `rtas-svc` server at `addr`
/// (see [`RemoteTarget`]); the outcome reports as `svc_load`.
///
/// `spec.backend` is ignored — the server chose its algorithm at
/// `serve` time; rows are labeled `backend=remote`. `spec.pipeline`
/// sets every worker connection's pipelining depth (see the [module
/// docs](self)).
///
/// # Errors
///
/// Fails if the server is unreachable or refuses the probe. The
/// initial fleet's connections are opened before any worker spawns, so
/// a connect failure panics cleanly before traffic starts. Transport
/// failures *during* the run (or on a churn respawn's fresh
/// connection) panic the affected worker — peers of its unfinished
/// epoch then wait, so the run fails loudly rather than silently
/// dropping offered operations.
///
/// # Panics
///
/// Panics on an inconsistent spec (see [`LoadSpec`] field docs).
pub fn run_load_remote(addr: &str, spec: LoadSpec) -> Result<LoadOutcome, ClientError> {
    run_load_remote_traced(addr, spec, None)
}

/// [`run_load_remote`] with an optional client-side flight recorder
/// (see [`RemoteTarget::with_recorder`]): the caller keeps the `Arc`
/// and dumps the rings after the run (`rtas-load --trace` /
/// `--trace-out`). Passing `None` is exactly `run_load_remote`.
///
/// # Errors
///
/// As [`run_load_remote`], plus a failed trace-negotiation probe.
pub fn run_load_remote_traced(
    addr: &str,
    spec: LoadSpec,
    recorder: Option<Arc<FlightRecorder>>,
) -> Result<LoadOutcome, ClientError> {
    spec.validate();
    let conns_per_worker = spec.conns.map_or(1, |c| c / spec.threads);
    let mut target = RemoteTarget::with_shape(
        addr,
        spec.shards,
        spec.group(),
        spec.pipeline,
        conns_per_worker,
    )?;
    if let Some(recorder) = recorder {
        target = target.with_recorder(recorder)?;
    }
    let kind = if spec.conns.is_some() {
        TargetKind::C10k
    } else {
        TargetKind::Remote
    };
    Ok(run_on_target(&target, spec, kind))
}

/// Scrape a server's `METRICS` exposition into the curated `svc_*`
/// report extras a remote run attaches to its `scope=total` row
/// ([`LoadOutcome::svc_extras`]).
///
/// The set is **fixed** — nine extras, always in this order, every name
/// present even when the server reports nothing for it (a threads
/// engine has no `reactor.worker<k>.*` gauges; the sums are then 0) —
/// so baseline and current reports always carry identical value keys
/// and `bench-diff` can gate them structurally:
///
/// `svc_ops`, `svc_wins`, `svc_resets`, `svc_reclaimed`, `svc_refused`
/// (the namespace counters), `svc_wake_writes`, `svc_carryovers`
/// (reactor counters), and `svc_slab_live` / `svc_wheel_entries`
/// (per-worker gauges summed across workers).
///
/// Errors carry a printable message; callers warn and omit the extras
/// rather than failing a finished run over a scrape.
pub fn scrape_svc_extras(addr: &str) -> Result<Vec<(String, f64)>, String> {
    let mut client =
        Client::connect(addr).map_err(|e| format!("connect for metrics scrape: {e}"))?;
    let text = client
        .metrics()
        .map_err(|e| format!("METRICS request: {e}"))?;
    let parsed = rtas_svc::obs::parse_metrics(&text)
        .ok_or_else(|| "malformed metrics exposition".to_string())?;
    let value = |name: &str| -> f64 {
        parsed
            .iter()
            .find(|(k, _)| k.as_str() == name)
            .map(|&(_, v)| v)
            .unwrap_or(0.0)
    };
    let worker_sum = |suffix: &str| -> f64 {
        parsed
            .iter()
            .filter(|(k, _)| k.starts_with("reactor.worker") && k.ends_with(suffix))
            .map(|&(_, v)| v)
            .sum()
    };
    Ok(vec![
        ("svc_ops".to_string(), value("svc.ops")),
        ("svc_wins".to_string(), value("svc.wins")),
        ("svc_resets".to_string(), value("svc.resets")),
        ("svc_reclaimed".to_string(), value("svc.reclaimed")),
        ("svc_refused".to_string(), value("svc.refused")),
        ("svc_wake_writes".to_string(), value("reactor.wake_writes")),
        ("svc_carryovers".to_string(), value("reactor.carryovers")),
        ("svc_slab_live".to_string(), worker_sum(".slab_live")),
        (
            "svc_wheel_entries".to_string(),
            worker_sum(".wheel_entries"),
        ),
    ])
}
