//! The remote backend: fire the same deterministic workloads at an
//! `rtas-svc` arbitration server over TCP.
//!
//! [`RemoteTarget`] maps the driver's `(shard, epoch)` coordinates onto
//! the service's keyed namespaces: shard `s` is the key `load/s`, and
//! the arena's release/acquire epoch protocol is re-created
//! client-side — workers spin on a local per-key epoch counter, issue
//! `TAS` over their own connection, and the epoch's **last finisher**
//! sends the `RESET` ack and opens the next epoch with a release store.
//! The server independently enforces the same invariant (its own
//! epoch gate admits and recycles), so exactly one winner per
//! key-epoch holds end to end, asserted by the driver's win accounting.
//!
//! Because the open-loop [`ArrivalSchedule`] is a pure function of the
//! seed, the *offered* load is bit-identical run to run here too — the
//! service sees the same request instants whatever the network does —
//! and end-to-end latency is still measured from the scheduled instant
//! (queueing included, no coordinated omission). Reports are emitted as
//! `BENCH_svc_load.json` (rows labeled `backend=remote`, `gate=wall`).
//!
//! [`ArrivalSchedule`]: crate::schedule::ArrivalSchedule

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use rtas::sync::{Backoff, CachePadded};
use rtas_svc::{Client, ClientError};

use crate::driver::{run_on_target, LoadOutcome, LoadSpec, LoadTarget, TargetKind};

/// Client-side recycling state for one key, mirroring the arena's
/// shard header.
#[derive(Debug)]
struct KeyState {
    /// Open epoch: bumped with `Release` by the last finisher after the
    /// `RESET` ack; read with `Acquire` by entrants.
    epoch: AtomicU64,
    /// Completed calls within the open epoch (`0..=group`).
    done: AtomicUsize,
}

/// An `rtas-svc` server as a [`LoadTarget`]: `shards` keys named
/// `load/0..load/shards-1`, each epoch-recycled through the wire
/// protocol's `RESET` ack.
#[derive(Debug)]
pub struct RemoteTarget {
    addr: String,
    keys: Vec<Vec<u8>>,
    states: Vec<CachePadded<KeyState>>,
    group: usize,
    registers: u64,
}

impl RemoteTarget {
    /// Bind `shards` keys on the server at `addr`, each resolved by
    /// `group` participants per epoch.
    ///
    /// Connects once to probe reachability and to put every key into a
    /// known-fresh epoch (`TAS` to materialize it, `RESET` to recycle —
    /// a crashed previous run cannot leave a half-resolved epoch
    /// behind). The probe's win/loss is deliberately *not* part of the
    /// run's accounting: local epochs start at 0 regardless of the
    /// server's epoch numbering, which only ever appears in responses.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `group == 0`.
    pub fn new(addr: &str, shards: usize, group: usize) -> Result<RemoteTarget, ClientError> {
        assert!(shards >= 1, "remote target needs at least one shard key");
        assert!(group >= 1, "remote target needs at least one participant");
        let mut probe = Client::connect(addr)?;
        let keys: Vec<Vec<u8>> = (0..shards)
            .map(|s| format!("load/{s}").into_bytes())
            .collect();
        for key in &keys {
            probe.tas(key)?;
            probe.reset(key)?;
        }
        let registers = probe.stats()?.registers;
        Ok(RemoteTarget {
            addr: addr.to_string(),
            states: (0..shards)
                .map(|_| {
                    CachePadded(KeyState {
                        epoch: AtomicU64::new(0),
                        done: AtomicUsize::new(0),
                    })
                })
                .collect(),
            keys,
            group,
            registers,
        })
    }

    /// The server address the target drives.
    pub fn addr(&self) -> &str {
        &self.addr
    }
}

impl LoadTarget for RemoteTarget {
    type Ctx = Client;

    fn shards(&self) -> usize {
        self.keys.len()
    }

    fn group(&self) -> usize {
        self.group
    }

    fn base_epochs(&self) -> Vec<u64> {
        self.states
            .iter()
            .map(|s| s.0.epoch.load(Ordering::Acquire))
            .collect()
    }

    fn context(&self) -> Client {
        Client::connect(&self.addr)
            .unwrap_or_else(|e| panic!("cannot connect load worker to {}: {e}", self.addr))
    }

    fn resolve(&self, client: &mut Client, shard: usize, epoch: u64) -> bool {
        let state = &self.states[shard].0;
        // Wait for our epoch — same spin-then-yield discipline as the
        // in-process arena.
        let mut backoff = Backoff::new();
        loop {
            let current = state.epoch.load(Ordering::Acquire);
            if current == epoch {
                break;
            }
            assert!(
                current < epoch,
                "epoch {epoch} already closed (key is at {current}): \
                 a reused remote target must offset by base_epochs"
            );
            backoff.snooze();
        }
        let key = &self.keys[shard];
        let won = client
            .tas(key)
            .unwrap_or_else(|e| panic!("TAS on {} failed: {e}", self.addr))
            .won;
        if state.done.fetch_add(1, Ordering::AcqRel) + 1 == self.group {
            // Last finisher: every call of this epoch has its response,
            // so the server-side gate is quiescent the moment our RESET
            // is admitted. Ack it, then open the next local epoch.
            client
                .reset(key)
                .unwrap_or_else(|e| panic!("RESET on {} failed: {e}", self.addr));
            state.done.store(0, Ordering::Relaxed);
            state.epoch.fetch_add(1, Ordering::Release);
        }
        won
    }

    fn registers(&self) -> u64 {
        self.registers
    }
}

/// Run the specified workload against the `rtas-svc` server at `addr`
/// (see [`RemoteTarget`]); the outcome reports as `svc_load`.
///
/// `spec.backend` is ignored — the server chose its algorithm at
/// `serve` time; rows are labeled `backend=remote`.
///
/// # Errors
///
/// Fails if the server is unreachable or refuses the probe. The
/// initial fleet's connections are opened before any worker spawns, so
/// a connect failure panics cleanly before traffic starts. Transport
/// failures *during* the run (or on a churn respawn's fresh
/// connection) panic the affected worker — peers of its unfinished
/// epoch then wait, so the run fails loudly rather than silently
/// dropping offered operations.
///
/// # Panics
///
/// Panics on an inconsistent spec (see [`LoadSpec`] field docs).
pub fn run_load_remote(addr: &str, spec: LoadSpec) -> Result<LoadOutcome, ClientError> {
    spec.validate();
    let target = RemoteTarget::new(addr, spec.shards, spec.group())?;
    Ok(run_on_target(&target, spec, TargetKind::Remote))
}
