//! The sharded arena: a fixed pool of recyclable native TAS objects.
//!
//! The paper's objects are one-shot — `capacity` participants, one call
//! each, exactly one winner. A load harness wants *sustained* traffic,
//! so the arena recycles a fixed pool instead of constructing a fresh
//! object per resolution:
//!
//! * **Shards** — `shards` independent [`TestAndSet`] instances, each in
//!   its own register block and each fronted by a cache-line-padded
//!   header, so resolutions on different shards never false-share.
//! * **Epochs** — each shard advances through *epochs*. An epoch is one
//!   full resolution: exactly `group` participants call
//!   [`TasArena::resolve`] for that epoch, exactly one of them wins, and
//!   the **last finisher** recycles the object with the allocation-free
//!   [`TestAndSet::reset`] and opens the next epoch by bumping the
//!   shard's epoch counter with release ordering. Participants of epoch
//!   `e + 1` spin on the counter with acquire ordering before touching
//!   the object, so the reset happens-before every next-epoch operation
//!   — the quiescence contract of [`rtas::native::NativeMemory::reset`]
//!   discharged by construction.
//!
//! Epoch membership is static: the workload driver assigns each
//! operation a `(shard, epoch)` pair such that every epoch receives
//! exactly `group` operations (see `crate::driver`), so no entry tickets
//! or queues are needed — the op path is a spin-wait, the protocol run
//! itself, and two atomic RMWs. The steady-state path allocates nothing
//! beyond the protocol state machines (and those run through a reused
//! [`NativeRunner`] stack buffer).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use rtas::native::NativeRunner;
use rtas::sync::{Backoff, CachePadded};
use rtas::{Backend, TestAndSet};

/// One shard: a recyclable TAS plus its epoch-recycling header.
#[derive(Debug)]
struct Shard {
    tas: TestAndSet,
    /// The currently open epoch. Bumped with `Release` by the finisher
    /// that performed the reset; read with `Acquire` by entrants.
    epoch: AtomicU64,
    /// Completed calls within the open epoch (`0..=group`).
    done: AtomicUsize,
    /// Resolutions won on this shard, accumulated across epochs. Updated
    /// by winners only — one per epoch — so contention is negligible.
    wins: AtomicU64,
}

/// A sharded pool of recyclable [`TestAndSet`] objects.
///
/// See the [module docs](self) for the epoch protocol.
#[derive(Debug)]
pub struct TasArena {
    shards: Vec<CachePadded<Shard>>,
    group: usize,
    backend: Backend,
}

impl TasArena {
    /// An arena of `shards` independent TAS objects, each sized for
    /// `group` participants per epoch.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `group == 0`.
    pub fn new(backend: Backend, shards: usize, group: usize) -> Self {
        assert!(shards >= 1, "arena needs at least one shard");
        assert!(group >= 1, "arena needs at least one participant per epoch");
        let shards = (0..shards)
            .map(|_| {
                CachePadded(Shard {
                    tas: TestAndSet::with_backend(backend, group),
                    epoch: AtomicU64::new(0),
                    done: AtomicUsize::new(0),
                    wins: AtomicU64::new(0),
                })
            })
            .collect();
        TasArena {
            shards,
            group,
            backend,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Participants per epoch (the capacity of each pooled object).
    pub fn group(&self) -> usize {
        self.group
    }

    /// The backend every pooled object runs.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The currently open epoch of `shard` — the epoch index a driver
    /// must target for the shard's next `group` operations.
    pub fn epoch(&self, shard: usize) -> u64 {
        self.shards[shard].0.epoch.load(Ordering::Acquire)
    }

    /// Completed resolutions (closed epochs) on `shard` so far.
    pub fn epochs_completed(&self, shard: usize) -> u64 {
        // `epoch` only advances when an epoch fully closes.
        self.epoch(shard)
    }

    /// Wins recorded on `shard` so far — equals
    /// [`TasArena::epochs_completed`] whenever every epoch ran to
    /// completion, the exactly-one-winner invariant.
    pub fn wins(&self, shard: usize) -> u64 {
        self.shards[shard].0.wins.load(Ordering::Acquire)
    }

    /// Total registers held by the pool (all shards).
    pub fn registers(&self) -> u64 {
        self.shards.iter().map(|s| s.0.tas.registers()).sum()
    }

    /// Perform one operation of epoch `epoch` on `shard`: wait for the
    /// epoch to open, run `test_and_set`, and — as the epoch's last
    /// finisher — recycle the object and open the next epoch.
    ///
    /// Returns `true` iff this call *won* its resolution (observed the
    /// bit clear). The caller must be one of the epoch's `group`
    /// designated participants: calling with an epoch ahead of the
    /// shard's current epoch simply waits until the intervening epochs
    /// complete, but over-subscribing a single epoch (more than `group`
    /// calls) trips the one-shot capacity assertion.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` has already closed on this shard (the epoch
    /// counter only advances, so waiting for the past would spin
    /// forever — e.g. a reused arena driven without offsetting by
    /// [`TasArena::epoch`]).
    pub fn resolve(&self, shard: usize, epoch: u64, runner: &mut NativeRunner) -> bool {
        let shard = &self.shards[shard].0;
        // Wait for our epoch. Spin briefly, then yield: workloads with
        // more workers than cores must not livelock the finisher out of
        // its reset.
        let mut backoff = Backoff::new();
        loop {
            let current = shard.epoch.load(Ordering::Acquire);
            if current == epoch {
                break;
            }
            assert!(
                current < epoch,
                "epoch {epoch} already closed (shard is at {current}): \
                 a reused arena must offset by TasArena::epoch"
            );
            backoff.snooze();
        }
        let won = !shard.tas.test_and_set_with(runner);
        if won {
            shard.wins.fetch_add(1, Ordering::AcqRel);
        }
        if shard.done.fetch_add(1, Ordering::AcqRel) + 1 == self.group {
            // Every call of this epoch has returned: the object is
            // quiescent. Recycle it and publish the reset to the next
            // epoch's participants through the epoch counter.
            shard.tas.reset();
            shard.done.store(0, Ordering::Relaxed);
            shard.epoch.fetch_add(1, Ordering::Release);
        }
        won
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_arena_recycles_across_epochs() {
        let arena = TasArena::new(Backend::LogStar, 2, 1);
        let mut runner = NativeRunner::new();
        for epoch in 0..200 {
            for shard in 0..2 {
                assert!(
                    arena.resolve(shard, epoch, &mut runner),
                    "group of one always wins (shard {shard}, epoch {epoch})"
                );
            }
        }
        assert_eq!(arena.epochs_completed(0), 200);
        assert_eq!(arena.wins(1), 200);
        assert_eq!(arena.group(), 1);
        assert_eq!(arena.shards(), 2);
        assert!(arena.registers() > 0);
    }

    #[test]
    fn contended_shard_has_exactly_one_winner_per_epoch() {
        let group = 4;
        let epochs = 50u64;
        let arena = TasArena::new(Backend::Combined, 1, group);
        let wins: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..group)
                .map(|_| {
                    let arena = &arena;
                    s.spawn(move || {
                        let mut runner = NativeRunner::new();
                        let mut wins = 0u64;
                        for epoch in 0..epochs {
                            if arena.resolve(0, epoch, &mut runner) {
                                wins += 1;
                            }
                        }
                        wins
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(wins, epochs, "exactly one winner per epoch");
        assert_eq!(arena.epochs_completed(0), epochs);
        assert_eq!(arena.wins(0), epochs);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = TasArena::new(Backend::LogStar, 0, 1);
    }

    #[test]
    #[should_panic(expected = "already closed")]
    fn resolving_a_past_epoch_panics_instead_of_hanging() {
        let arena = TasArena::new(Backend::LogStar, 1, 1);
        let mut runner = NativeRunner::new();
        for epoch in 0..3 {
            let _ = arena.resolve(0, epoch, &mut runner);
        }
        let _ = arena.resolve(0, 1, &mut runner);
    }
}
