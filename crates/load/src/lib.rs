//! # rtas-load — the native load-generation harness
//!
//! The simulator proves the paper's step-count claims under adversarial
//! scheduling; this crate turns them into measured throughput and tail
//! latency on real hardware. It sits between the verified protocols
//! (`rtas`) and the "serve heavy traffic" goal, and is the platform
//! future scaling work (batching, NUMA pinning, multi-backend routing)
//! plugs into. Four pieces:
//!
//! * [`arena`] — a sharded pool of recyclable native TAS objects:
//!   allocation-free [`reset`](rtas::TestAndSet::reset) by epoch instead
//!   of a fresh object per resolution, shard-striped so independent
//!   resolutions don't false-share.
//! * [`schedule`] — deterministic SplitMix64-driven arrival schedules:
//!   the same seed offers bit-identical load on every machine.
//! * [`driver`] — closed-loop (fixed fleet, back-to-back) and open-loop
//!   (offered-load, coordinated-omission-free latency) workload
//!   execution on real threads, with worker churn mapping the scenario
//!   engine's retirement/respawn axis onto OS threads, plus latency
//!   [`Slo`] checks.
//! * [`recorder`] — per-shard latency/throughput accumulation through
//!   `rtas_bench`'s mergeable [`StatsAccumulator`], folded across
//!   workers order-independently.
//! * [`remote`] — the same drivers aimed at an `rtas-svc` arbitration
//!   server over TCP (`--backend remote --addr host:port`): shard `s`
//!   becomes the key `load/s`, epochs recycle through the wire
//!   protocol's `RESET` ack, and the run reports as
//!   `BENCH_svc_load.json`.
//! * [`chaos`] — the remote driver behind `rtas-svc`'s deterministic
//!   fault-injection layer (`--chaos <spec> --chaos-seed <n>`):
//!   delays, drops, truncation, reordering, stalled holders, and
//!   byzantine `RESET` acks, replayed bit-identically from one seed,
//!   with the one-winner-per-key-epoch bar enforced fail-fast and the
//!   run reporting as `BENCH_svc_chaos.json`.
//!
//! The `rtas-load` binary drives all of it from the command line and
//! emits `BENCH_native_load.json` (or `BENCH_svc_load.json`) through
//! the `rtas_bench` report machinery; `bench-diff` checks those reports
//! structurally and leaves their wall-clock-derived metrics out of
//! tolerance gating unless `--gate-wall` is passed.
//!
//! ```
//! use rtas::Backend;
//! use rtas_load::driver::{run_load, LoadSpec, Mode, Warmup};
//!
//! let out = run_load(LoadSpec {
//!     backend: Backend::Combined,
//!     threads: 4,
//!     shards: 2,
//!     mode: Mode::Closed { total_ops: 2_000 },
//!     seed: 7,
//!     churn: None,
//!     warmup: Warmup::None,
//!     pipeline: 1,
//!     conns: None,
//! });
//! assert_eq!(out.total_wins(), out.resolutions()); // one winner per epoch
//! ```
//!
//! [`StatsAccumulator`]: rtas_bench::stats::StatsAccumulator

pub mod arena;
pub mod chaos;
pub mod driver;
pub mod recorder;
pub mod remote;
pub mod schedule;

pub use arena::TasArena;
pub use chaos::{run_load_chaos, ChaosOutcome, ChaosTarget};
pub use driver::{
    run_load, run_load_on, LoadOutcome, LoadSpec, LoadTarget, Mode, Slo, TargetKind, Warmup,
};
pub use recorder::{ErrorClasses, LoadRecorder};
pub use remote::{run_load_remote, scrape_svc_extras, RemoteTarget};
pub use schedule::ArrivalSchedule;
