//! `rtas-load` — drive sustained traffic at the native objects.
//!
//! ```text
//! rtas-load [options]
//!
//! options:
//!   --backend <b>     logstar | loglog | ratrace | combined  (default combined)
//!   --threads <n>     worker threads                 (default: host parallelism)
//!   --shards <n>      arena shards; threads % shards == 0
//!                     (default: largest divisor of threads <= threads/2)
//!   --mode <m>        closed | open                          (default closed)
//!   --ops <n>         closed loop: total operations          (default 200000)
//!   --rate <r>        open loop: offered ops/second          (default 100000)
//!   --duration <s>    open loop: schedule horizon, seconds   (default 1.0)
//!   --seed <x>        arrival-schedule seed                  (default 42)
//!   --churn <k>       closed loop: retire+respawn each worker thread
//!                     after k operations
//!   --slo-p50 <us>    fail (exit 1) if overall p50 exceeds this
//!   --slo-p99 <us>    fail (exit 1) if overall p99 exceeds this
//!   --no-json         skip writing BENCH_native_load.json
//! ```
//!
//! Prints a per-shard table (ops, throughput, latency quantiles in
//! microseconds) and writes `BENCH_native_load.json` to `RTAS_BENCH_DIR`
//! (default: current directory) through the `rtas_bench` report
//! machinery. The same `--seed` in open-loop mode offers a bit-identical
//! arrival schedule on every run; see the README's "Native load harness"
//! section.

use std::process::ExitCode;

use rtas_load::driver::{
    backend_label, default_shards, parse_backend, run_load, LoadSpec, Mode, Slo,
};

fn usage() -> ! {
    eprintln!(
        "usage: rtas-load [--backend b] [--threads n] [--shards n] \
         [--mode closed|open] [--ops n] [--rate r] [--duration s] [--seed x] \
         [--churn k] [--slo-p50 us] [--slo-p99 us] [--no-json]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut backend = rtas::Backend::Combined;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    let mut shards: Option<usize> = None;
    let mut mode_name = "closed".to_string();
    let mut ops = 200_000u64;
    let mut rate = 100_000.0f64;
    let mut duration = 1.0f64;
    let mut seed = 42u64;
    let mut churn: Option<u64> = None;
    let mut slo = Slo::default();
    let mut no_json = false;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| -> &String {
            iter.next().unwrap_or_else(|| {
                eprintln!("error: {name} requires a value");
                usage();
            })
        };
        fn parsed<T: std::str::FromStr>(name: &str, value: &str) -> T {
            value.parse::<T>().unwrap_or_else(|_| {
                eprintln!("error: {name} value {value:?} is invalid");
                usage();
            })
        }
        match arg.as_str() {
            "--backend" => {
                let v = value("--backend");
                backend = parse_backend(v).unwrap_or_else(|| {
                    eprintln!("error: unknown backend {v:?} (logstar|loglog|ratrace|combined)");
                    usage();
                });
            }
            "--threads" => threads = parsed("--threads", value("--threads")),
            "--shards" => shards = Some(parsed("--shards", value("--shards"))),
            "--mode" => mode_name = value("--mode").clone(),
            "--ops" => ops = parsed("--ops", value("--ops")),
            "--rate" => rate = parsed("--rate", value("--rate")),
            "--duration" => duration = parsed("--duration", value("--duration")),
            "--seed" => seed = parsed("--seed", value("--seed")),
            "--churn" => churn = Some(parsed("--churn", value("--churn"))),
            "--slo-p50" => slo.p50_us = Some(parsed("--slo-p50", value("--slo-p50"))),
            "--slo-p99" => slo.p99_us = Some(parsed("--slo-p99", value("--slo-p99"))),
            "--no-json" => no_json = true,
            "--help" | "-h" => usage(),
            flag => {
                eprintln!("error: unknown argument {flag}");
                usage();
            }
        }
    }
    let shards = shards.unwrap_or_else(|| default_shards(threads));
    let mode = match mode_name.as_str() {
        "closed" => Mode::Closed { total_ops: ops },
        "open" => Mode::Open {
            rate,
            duration_secs: duration,
        },
        other => {
            eprintln!("error: unknown mode {other:?} (closed|open)");
            usage();
        }
    };
    if threads == 0 || shards == 0 || threads % shards != 0 {
        eprintln!(
            "error: threads ({threads}) must be a positive multiple of \
             shards ({shards})"
        );
        usage();
    }

    let spec = LoadSpec {
        backend,
        threads,
        shards,
        mode,
        seed,
        churn,
    };
    println!(
        "rtas-load: backend={} mode={} threads={threads} shards={shards} group={} seed={seed}{}",
        backend_label(backend),
        mode.label(),
        spec.group(),
        churn.map(|c| format!(" churn={c}")).unwrap_or_default()
    );
    let out = run_load(spec);

    println!("shard | ops | wins | epochs | ops/s | p50 us | p90 us | p99 us | max us");
    for (s, cell) in out.recorder.shard_stats().iter().enumerate() {
        let summary = cell.latency.summary();
        println!(
            "{s} | {} | {} | {} | {:.0} | {:.1} | {:.1} | {:.1} | {:.1}",
            cell.ops,
            cell.wins,
            cell.ops / out.spec.group() as u64,
            cell.ops as f64 / out.wall.as_secs_f64(),
            summary.p50,
            summary.p90,
            summary.p99,
            summary.max,
        );
    }
    let overall = out.recorder.overall_latency();
    println!(
        "total | {} ops | {} resolutions | {:.0} ops/s | wall {:.1} ms | \
         p50 {:.1} us | p99 {:.1} us",
        out.total_ops(),
        out.resolutions(),
        out.throughput_ops_per_sec(),
        out.wall.as_secs_f64() * 1e3,
        overall.p50,
        overall.p99,
    );
    assert_eq!(
        out.total_wins(),
        out.resolutions(),
        "safety violation: winner count does not match resolution count"
    );

    if !no_json {
        let report = out.bench_report();
        match report.write() {
            Ok(path) => println!("wrote {}", path.display()),
            Err(err) => {
                eprintln!(
                    "rtas-load: failed to write {}: {err}",
                    report.path().display()
                );
                return ExitCode::from(2);
            }
        }
    }
    let violations = slo.violations(&out);
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("SLO violation: {v}");
        }
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
