//! `rtas-load` — drive sustained traffic at the native objects, or at
//! a remote `rtas-svc` arbitration server.
//!
//! ```text
//! rtas-load [options]
//!
//! options:
//!   --backend <b>     logstar | loglog | ratrace | combined | remote
//!                                                    (default combined)
//!   --addr <a>        remote backend only: the rtas-svc server address
//!   --threads <n>     worker threads                 (default: host parallelism)
//!   --shards <n>      target shards; threads % shards == 0
//!                     (default: largest divisor of threads <= threads/2)
//!   --mode <m>        closed | open                          (default closed)
//!   --ops <n>         closed loop: total operations          (default 200000)
//!   --rate <r>        open loop: offered ops/second          (default 100000)
//!   --duration <s>    open loop: schedule horizon, seconds   (default 1.0)
//!   --seed <x>        arrival-schedule seed                  (default 42)
//!   --churn <k>       closed loop: retire+respawn each worker thread
//!                     after k operations
//!   --warmup <n>      closed loop: run n unrecorded warmup operations
//!                     before the measured section
//!   --warmup-secs <s> open loop: execute but do not record arrivals
//!                     scheduled in the first s seconds
//!   --pipeline <d>    remote backend only: keep d epochs in flight per
//!                     worker connection (requires threads == shards;
//!                     incompatible with --chaos)          (default 1)
//!   --conns <n>       remote backend only: hold n total connections open
//!                     across the worker fleet, round-robining operations
//!                     over them (the C10K posture; requires n to be a
//!                     multiple of threads, incompatible with --pipeline
//!                     and --chaos); reports as svc_c10k
//!   --slo-p50 <us>    fail (exit 1) if overall p50 exceeds this
//!   --slo-p99 <us>    fail (exit 1) if overall p99 exceeds this
//!   --chaos <spec>    remote backend only: inject deterministic faults —
//!                     a preset (clean|delay-only|drop-heavy|byzantine-reset)
//!                     or k=v pairs (delay, drop, truncate, reorder, stall,
//!                     skip-reset, dup-reset, ...); reports as svc_chaos
//!   --chaos-seed <x>  fault-schedule seed                     (default 42)
//!   --trace <m>       remote backend only: client-side flight recorder —
//!                     on | off | sampled:<n>; every lockstep request then
//!                     carries a wire trace span the server echoes, and the
//!                     client dump pairs with the server's via rtas-trace
//!                     merge (see docs/WIRE.md)               (default off)
//!   --trace-out <f>   where to write the client trace dump
//!                     (default rtas-load.rtastrc; requires --trace)
//!   --no-json         skip writing the BENCH_*.json report
//! ```
//!
//! Prints a per-shard table (ops, throughput, latency quantiles in
//! microseconds) and writes `BENCH_native_load.json` — or, with
//! `--backend remote`, `BENCH_svc_load.json` — to `RTAS_BENCH_DIR`
//! (default: current directory) through the `rtas_bench` report
//! machinery. The same `--seed` in open-loop mode offers a bit-identical
//! arrival schedule on every run, local or remote; warmup windows are
//! excluded from the recorded statistics and SLO checks but still
//! counted by the one-winner-per-epoch safety assertion. See the
//! README's "Native load harness" section.

use std::process::ExitCode;
use std::sync::Arc;

use rtas_load::chaos::run_load_chaos_traced;
use rtas_load::driver::{
    backend_label, default_shards, parse_backend, run_load, LoadSpec, Mode, Slo, Warmup,
};
use rtas_load::remote::run_load_remote_traced;
use rtas_svc::chaos::{ChaosSpec, FaultPlan};
use rtas_svc::obs::FlightRecorder;
use rtas_svc::TraceMode;

fn usage() -> ! {
    eprintln!(
        "usage: rtas-load [--backend b] [--addr host:port] [--threads n] \
         [--shards n] [--mode closed|open] [--ops n] [--rate r] [--duration s] \
         [--seed x] [--churn k] [--warmup n] [--warmup-secs s] [--pipeline d] \
         [--conns n] [--slo-p50 us] [--slo-p99 us] [--chaos spec] \
         [--chaos-seed x] [--trace on|off|sampled:n] [--trace-out file] \
         [--no-json]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut backend = rtas::Backend::Combined;
    let mut remote = false;
    let mut addr: Option<String> = None;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    let mut shards: Option<usize> = None;
    let mut mode_name = "closed".to_string();
    let mut ops = 200_000u64;
    let mut rate = 100_000.0f64;
    let mut duration = 1.0f64;
    let mut seed = 42u64;
    let mut churn: Option<u64> = None;
    let mut warmup_ops: Option<u64> = None;
    let mut warmup_secs: Option<f64> = None;
    let mut pipeline = 1usize;
    let mut conns: Option<usize> = None;
    let mut slo = Slo::default();
    let mut no_json = false;
    let mut chaos: Option<String> = None;
    let mut chaos_seed = 42u64;
    let mut trace_mode = TraceMode::Off;
    let mut trace_out: Option<String> = None;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| -> &String {
            iter.next().unwrap_or_else(|| {
                eprintln!("error: {name} requires a value");
                usage();
            })
        };
        fn parsed<T: std::str::FromStr>(name: &str, value: &str) -> T {
            value.parse::<T>().unwrap_or_else(|_| {
                eprintln!("error: {name} value {value:?} is invalid");
                usage();
            })
        }
        match arg.as_str() {
            "--backend" => {
                let v = value("--backend");
                if v == "remote" {
                    remote = true;
                } else {
                    backend = parse_backend(v).unwrap_or_else(|| {
                        eprintln!(
                            "error: unknown backend {v:?} \
                             (logstar|loglog|ratrace|combined|remote)"
                        );
                        usage();
                    });
                }
            }
            "--addr" => addr = Some(value("--addr").clone()),
            "--threads" => threads = parsed("--threads", value("--threads")),
            "--shards" => shards = Some(parsed("--shards", value("--shards"))),
            "--mode" => mode_name = value("--mode").clone(),
            "--ops" => ops = parsed("--ops", value("--ops")),
            "--rate" => rate = parsed("--rate", value("--rate")),
            "--duration" => duration = parsed("--duration", value("--duration")),
            "--seed" => seed = parsed("--seed", value("--seed")),
            "--churn" => churn = Some(parsed("--churn", value("--churn"))),
            "--warmup" => warmup_ops = Some(parsed("--warmup", value("--warmup"))),
            "--warmup-secs" => warmup_secs = Some(parsed("--warmup-secs", value("--warmup-secs"))),
            "--pipeline" => pipeline = parsed("--pipeline", value("--pipeline")),
            "--conns" => conns = Some(parsed("--conns", value("--conns"))),
            "--slo-p50" => slo.p50_us = Some(parsed("--slo-p50", value("--slo-p50"))),
            "--slo-p99" => slo.p99_us = Some(parsed("--slo-p99", value("--slo-p99"))),
            "--chaos" => chaos = Some(value("--chaos").clone()),
            "--chaos-seed" => chaos_seed = parsed("--chaos-seed", value("--chaos-seed")),
            "--trace" => {
                let v = value("--trace");
                trace_mode = TraceMode::parse(v).unwrap_or_else(|| {
                    eprintln!("error: unknown trace mode {v:?} (on|off|sampled:<n>)");
                    usage();
                });
            }
            "--trace-out" => trace_out = Some(value("--trace-out").clone()),
            "--no-json" => no_json = true,
            "--help" | "-h" => usage(),
            flag => {
                eprintln!("error: unknown argument {flag}");
                usage();
            }
        }
    }
    let shards = shards.unwrap_or_else(|| default_shards(threads));
    let mode = match mode_name.as_str() {
        "closed" => Mode::Closed { total_ops: ops },
        "open" => Mode::Open {
            rate,
            duration_secs: duration,
        },
        other => {
            eprintln!("error: unknown mode {other:?} (closed|open)");
            usage();
        }
    };
    if threads == 0 || shards == 0 || threads % shards != 0 {
        eprintln!(
            "error: threads ({threads}) must be a positive multiple of \
             shards ({shards})"
        );
        usage();
    }
    let warmup = match (warmup_ops, warmup_secs) {
        (None, None) => Warmup::None,
        (Some(n), None) => Warmup::Ops(n),
        (None, Some(s)) => Warmup::Secs(s),
        (Some(_), Some(_)) => {
            eprintln!("error: --warmup and --warmup-secs are mutually exclusive");
            usage();
        }
    };
    match (&warmup, &mode) {
        (Warmup::Ops(_), Mode::Open { .. }) => {
            eprintln!("error: --warmup is closed-loop; use --warmup-secs with --mode open");
            usage();
        }
        (Warmup::Secs(_), Mode::Closed { .. }) => {
            eprintln!("error: --warmup-secs is open-loop; use --warmup with --mode closed");
            usage();
        }
        _ => {}
    }
    if remote && addr.is_none() {
        eprintln!("error: --backend remote requires --addr host:port");
        usage();
    }
    if !remote && addr.is_some() {
        eprintln!("error: --addr only applies to --backend remote");
        usage();
    }
    if pipeline == 0 {
        eprintln!("error: --pipeline must be at least 1");
        usage();
    }
    if pipeline > 1 {
        if !remote {
            eprintln!("error: --pipeline only applies to --backend remote");
            usage();
        }
        if chaos.is_some() {
            eprintln!("error: --pipeline is incompatible with --chaos (lockstep only)");
            usage();
        }
        if threads != shards {
            eprintln!(
                "error: --pipeline {pipeline} requires threads == shards \
                 (got {threads} threads over {shards} shards): a worker keeping \
                 epochs in flight must be its shard's sole participant"
            );
            usage();
        }
    }
    if let Some(c) = conns {
        if !remote {
            eprintln!("error: --conns only applies to --backend remote");
            usage();
        }
        if pipeline > 1 {
            eprintln!("error: --conns is incompatible with --pipeline (the pipeline window is per-connection)");
            usage();
        }
        if chaos.is_some() {
            eprintln!("error: --conns is incompatible with --chaos");
            usage();
        }
        if c < threads || c % threads != 0 {
            eprintln!(
                "error: --conns ({c}) must be a positive multiple of \
                 threads ({threads}): each worker owns conns/threads connections"
            );
            usage();
        }
    }
    let chaos_spec = match &chaos {
        None => None,
        Some(s) => {
            if !remote {
                eprintln!("error: --chaos requires --backend remote (and --addr)");
                usage();
            }
            match ChaosSpec::parse(s) {
                Ok(spec) => Some(spec),
                Err(e) => {
                    eprintln!("error: bad --chaos spec: {e}");
                    usage();
                }
            }
        }
    };

    if trace_mode.enabled() && !remote {
        eprintln!("error: --trace requires --backend remote (the native path has no wire)");
        usage();
    }
    if trace_out.is_some() && !trace_mode.enabled() {
        eprintln!("error: --trace-out requires --trace on or sampled:<n>");
        usage();
    }
    // One worker lane per thread: context indices map onto lanes, so
    // each worker's client spans land on its own lock-free ring.
    let recorder = trace_mode
        .enabled()
        .then(|| Arc::new(FlightRecorder::new(trace_mode, threads)));

    let spec = LoadSpec {
        backend,
        threads,
        shards,
        mode,
        seed,
        churn,
        warmup,
        pipeline,
        conns,
    };
    let backend_name = if remote {
        "remote"
    } else {
        backend_label(backend)
    };
    println!(
        "rtas-load: backend={backend_name}{} mode={} threads={threads} shards={shards} \
         group={} seed={seed}{}{}{}{}",
        addr.as_deref()
            .map(|a| format!(" addr={a}"))
            .unwrap_or_default(),
        mode.label(),
        spec.group(),
        if pipeline > 1 {
            format!(" pipeline={pipeline}")
        } else {
            String::new()
        },
        churn.map(|c| format!(" churn={c}")).unwrap_or_default(),
        conns.map(|c| format!(" conns={c}")).unwrap_or_default(),
        match warmup {
            Warmup::None => String::new(),
            Warmup::Ops(n) => format!(" warmup={n}ops"),
            Warmup::Secs(s) => format!(" warmup={s}s"),
        },
    );
    let mut chaos_summary: Option<String> = None;
    let mut out = if let Some(chaos_spec) = chaos_spec {
        println!("rtas-load: chaos spec={chaos_spec} seed={chaos_seed}");
        let plan = FaultPlan::new(chaos_spec, chaos_seed);
        match run_load_chaos_traced(addr.as_deref().unwrap(), spec, plan, recorder.clone()) {
            Ok(chaos_out) => {
                let c = chaos_out.counts;
                let winners: usize = chaos_out.winners.iter().map(Vec::len).sum();
                chaos_summary = Some(format!(
                    "chaos | {} faults injected | delays {} | drops {} | \
                     truncations {} | reorders {} | stalls {} | skipped resets {} | \
                     dup resets {} | timeouts {} | retries {} | reconnects {} | \
                     reclaimed {} | winner epochs {winners} (one winner each)",
                    c.injected(),
                    c.delays,
                    c.drops,
                    c.truncations,
                    c.reorders,
                    c.stalls,
                    c.skipped_resets,
                    c.dup_resets,
                    c.timeouts,
                    c.retries,
                    c.reconnects,
                    chaos_out.reclaimed,
                ));
                chaos_out.outcome
            }
            Err(err) => {
                eprintln!(
                    "rtas-load: cannot drive {}: {err}",
                    addr.as_deref().unwrap()
                );
                return ExitCode::from(2);
            }
        }
    } else if remote {
        match run_load_remote_traced(addr.as_deref().unwrap(), spec, recorder.clone()) {
            Ok(out) => out,
            Err(err) => {
                eprintln!(
                    "rtas-load: cannot drive {}: {err}",
                    addr.as_deref().unwrap()
                );
                return ExitCode::from(2);
            }
        }
    } else {
        run_load(spec)
    };
    if let Some(recorder) = &recorder {
        // The client-side black box: the worker lanes' ClientSpan
        // events, pairable with the server's dump by rtas-trace merge.
        let path = trace_out.as_deref().unwrap_or("rtas-load.rtastrc");
        match recorder.dump_to_file(std::path::Path::new(path)) {
            Ok(()) => println!("wrote client trace {path}"),
            Err(e) => {
                eprintln!("rtas-load: failed to write client trace {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if remote {
        // Server-side observability: fold the curated svc_* extras from
        // the METRICS exposition into the report's total row. A failed
        // scrape costs a warning, never the finished run.
        match rtas_load::remote::scrape_svc_extras(addr.as_deref().unwrap()) {
            Ok(extras) => out.svc_extras = extras,
            Err(e) => eprintln!(
                "rtas-load: warning: metrics scrape from {} failed ({e}); \
                 svc_* report extras omitted",
                addr.as_deref().unwrap()
            ),
        }
    }

    println!("shard | ops | wins | epochs | ops/s | p50 us | p90 us | p99 us | max us");
    for (s, cell) in out.recorder.shard_stats().iter().enumerate() {
        let summary = cell.latency.summary();
        println!(
            "{s} | {} | {} | {} | {:.0} | {:.1} | {:.1} | {:.1} | {:.1}",
            cell.ops,
            cell.wins,
            cell.ops / out.spec.group() as u64,
            cell.ops as f64 / out.wall.as_secs_f64(),
            summary.p50,
            summary.p90,
            summary.p99,
            summary.max,
        );
    }
    let overall = out.recorder.overall_latency();
    println!(
        "total | {} ops{} | {} resolutions | {:.0} ops/s | wall {:.1} ms | \
         p50 {:.1} us | p99 {:.1} us",
        out.total_ops(),
        if out.warmup_ops > 0 {
            format!(" (+{} warmup)", out.warmup_ops)
        } else {
            String::new()
        },
        out.resolutions(),
        out.throughput_ops_per_sec(),
        out.wall.as_secs_f64() * 1e3,
        overall.p50,
        overall.p99,
    );
    if let Some(summary) = &chaos_summary {
        // Under chaos, local wins legitimately diverge from resolution
        // counts (skipped acks strand losing epochs; reclaims split
        // one local epoch across two server epochs). The one-winner
        // bar is enforced fail-fast inside the chaos target instead.
        println!("{summary}");
    } else {
        assert_eq!(
            out.total_wins() + out.warmup_wins,
            out.resolutions(),
            "safety violation: winner count does not match resolution count"
        );
    }

    if !no_json {
        let report = out.bench_report();
        match report.write() {
            Ok(path) => println!("wrote {}", path.display()),
            Err(err) => {
                eprintln!(
                    "rtas-load: failed to write {}: {err}",
                    report.path().display()
                );
                return ExitCode::from(2);
            }
        }
    }
    let violations = slo.violations(&out);
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("SLO violation: {v}");
        }
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
