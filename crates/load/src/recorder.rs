//! Per-shard latency and throughput recording.
//!
//! Each worker thread owns one [`LoadRecorder`] — a vector of per-shard
//! cells sized once at start — so the op path records a latency with no
//! allocation and no cross-thread traffic. After the run, worker
//! recorders fold together with [`LoadRecorder::merge`]: the underlying
//! [`StatsAccumulator`] merge is associative with bit-identical
//! quantiles under any merge order (see `rtas_bench::stats`), so the
//! final per-shard p50/p90/p99 do not depend on worker join order.
//!
//! Latencies are recorded in **microseconds** — the natural magnitude
//! for a resolution on real atomics, and comfortably inside the
//! accumulator's log-bin histogram range.

use rtas_bench::stats::{StatsAccumulator, Summary};

/// Error-class counts for a run: how much of the offered load hit
/// transport faults or server-side recovery, instead of being silently
/// folded into the latency distribution. All zeros on a clean network.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ErrorClasses {
    /// Transport deadlines that expired (connect, read, or write).
    pub timeouts: u64,
    /// Operations re-sent after a transport failure.
    pub retries: u64,
    /// Connections successfully re-dialed.
    pub reconnects: u64,
    /// Epoch slots the *server* reclaimed because their holder's lease
    /// expired (from the server's `STATS` delta over the run).
    pub reclaimed: u64,
}

impl ErrorClasses {
    /// Fold another run segment's counts into this one.
    pub fn merge(&mut self, other: &ErrorClasses) {
        self.timeouts += other.timeouts;
        self.retries += other.retries;
        self.reconnects += other.reconnects;
        self.reclaimed += other.reclaimed;
    }
}

/// One shard's worth of observations.
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// Latency distribution, in microseconds.
    pub latency: StatsAccumulator,
    /// Operations recorded.
    pub ops: u64,
    /// Operations that won their resolution.
    pub wins: u64,
}

/// Per-shard observation sink for one worker (mergeable across workers).
#[derive(Debug, Clone)]
pub struct LoadRecorder {
    shards: Vec<ShardStats>,
    errors: ErrorClasses,
}

impl LoadRecorder {
    /// A recorder covering `shards` shards, all empty.
    pub fn new(shards: usize) -> Self {
        LoadRecorder {
            shards: vec![ShardStats::default(); shards],
            errors: ErrorClasses::default(),
        }
    }

    /// Record one completed operation on `shard`.
    pub fn record(&mut self, shard: usize, latency_us: f64, won: bool) {
        let cell = &mut self.shards[shard];
        cell.latency.push(latency_us);
        cell.ops += 1;
        cell.wins += won as u64;
    }

    /// Fold another worker's recorder into this one, shard by shard.
    ///
    /// # Panics
    ///
    /// Panics if the shard counts differ.
    pub fn merge(&mut self, other: &LoadRecorder) {
        assert_eq!(
            self.shards.len(),
            other.shards.len(),
            "recorders cover different shard counts"
        );
        for (mine, theirs) in self.shards.iter_mut().zip(&other.shards) {
            mine.latency.merge(&theirs.latency);
            mine.ops += theirs.ops;
            mine.wins += theirs.wins;
        }
        self.errors.merge(&other.errors);
    }

    /// Error-class counts for the run so far.
    pub fn errors(&self) -> &ErrorClasses {
        &self.errors
    }

    /// Fold additional error-class counts into this recorder (worker
    /// transport fallout, or the server's reclaimed-slot delta).
    pub fn add_errors(&mut self, errors: &ErrorClasses) {
        self.errors.merge(errors);
    }

    /// Number of shards covered.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard cells, in shard order.
    pub fn shard_stats(&self) -> &[ShardStats] {
        &self.shards
    }

    /// Total operations across all shards.
    pub fn total_ops(&self) -> u64 {
        self.shards.iter().map(|s| s.ops).sum()
    }

    /// Total winning operations across all shards.
    pub fn total_wins(&self) -> u64 {
        self.shards.iter().map(|s| s.wins).sum()
    }

    /// Latency summary over *all* shards combined.
    pub fn overall_latency(&self) -> Summary {
        let mut all = StatsAccumulator::new();
        for s in &self.shards {
            all.merge(&s.latency);
        }
        all.summary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_merges_per_shard() {
        let mut a = LoadRecorder::new(2);
        a.record(0, 10.0, true);
        a.record(0, 30.0, false);
        a.record(1, 5.0, true);
        let mut b = LoadRecorder::new(2);
        b.record(0, 20.0, false);
        b.add_errors(&ErrorClasses {
            timeouts: 1,
            retries: 2,
            reconnects: 3,
            reclaimed: 4,
        });
        a.merge(&b);
        assert_eq!(a.shards(), 2);
        assert_eq!(a.total_ops(), 4);
        assert_eq!(a.total_wins(), 2);
        assert_eq!(
            *a.errors(),
            ErrorClasses {
                timeouts: 1,
                retries: 2,
                reconnects: 3,
                reclaimed: 4
            },
            "error classes merge with the recorder"
        );
        let s0 = &a.shard_stats()[0];
        assert_eq!(s0.ops, 3);
        assert_eq!(s0.wins, 1);
        assert_eq!(s0.latency.mean(), 20.0);
        assert_eq!(a.overall_latency().count, 4);
    }

    #[test]
    fn merge_order_does_not_change_quantiles() {
        let mut workers: Vec<LoadRecorder> = (0..4).map(|_| LoadRecorder::new(1)).collect();
        for (w, rec) in workers.iter_mut().enumerate() {
            for i in 0..100 {
                rec.record(0, (w * 100 + i) as f64 + 1.0, i == 0);
            }
        }
        let mut fwd = LoadRecorder::new(1);
        for rec in &workers {
            fwd.merge(rec);
        }
        let mut rev = LoadRecorder::new(1);
        for rec in workers.iter().rev() {
            rev.merge(rec);
        }
        assert_eq!(
            fwd.shard_stats()[0].latency.p99(),
            rev.shard_stats()[0].latency.p99()
        );
        assert_eq!(fwd.total_ops(), rev.total_ops());
    }

    #[test]
    #[should_panic(expected = "different shard counts")]
    fn mismatched_merge_panics() {
        LoadRecorder::new(1).merge(&LoadRecorder::new(2));
    }
}
