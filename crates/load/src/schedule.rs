//! Deterministic open-loop arrival schedules.
//!
//! An open-loop workload offers operations at scheduled wall-clock
//! instants regardless of how fast the system absorbs them — the
//! configuration under which queueing delay (and therefore tail latency)
//! is actually visible. To make the *offered load* reproducible, the
//! whole schedule is a pure function of `(rate, duration, seed)`, and
//! **bit-identical across platforms**: the Poisson process is sampled
//! as its conditional form — a fixed count `⌊rate·duration⌉` of arrival
//! instants i.i.d. uniform over the horizon (the distribution of a
//! Poisson process given its arrival count) — using only
//! [`SplitMix64`] bit arithmetic, exact power-of-two scaling, one IEEE
//! multiply, and an integer sort. No `ln`/libm call is involved, so the
//! schedule (including its *length*, which the bench-diff structural
//! gate checks) cannot drift by ulps between platforms the way
//! accumulated exponential gaps would. Only the *service* timing varies
//! run to run; what is asked of the system never does.

use rtas::sim::rng::SplitMix64;

/// A precomputed arrival schedule: operation start offsets, in
/// nanoseconds from the run start, non-decreasing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalSchedule {
    starts_ns: Vec<u64>,
}

impl ArrivalSchedule {
    /// A Poisson arrival process at `rate` ops/second over
    /// `duration_secs` seconds, drawn deterministically from `seed`.
    ///
    /// Sampled in conditional form: exactly `⌊rate·duration⌉` arrivals,
    /// each instant uniform over the horizon — which is what a Poisson
    /// process looks like given its count, and involves no
    /// transcendental function, so the schedule is bit-identical on
    /// every platform (see the [module docs](self)).
    ///
    /// # Panics
    ///
    /// Panics unless `rate` and `duration_secs` are positive and finite.
    pub fn poisson(rate: f64, duration_secs: f64, seed: u64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "arrival rate must be positive, got {rate}"
        );
        assert!(
            duration_secs.is_finite() && duration_secs > 0.0,
            "duration must be positive, got {duration_secs}"
        );
        let ops = (rate * duration_secs).round() as usize;
        let mut rng = SplitMix64::split(seed, 0x0a11_0ad5);
        let horizon_ns = duration_secs * 1e9;
        // next_f64 is (u64 >> 11) · 2⁻⁵³ — exact bit arithmetic — and
        // `u · horizon_ns` is a single correctly-rounded IEEE multiply:
        // every platform computes the same u64 instants.
        let mut starts_ns: Vec<u64> = (0..ops)
            .map(|_| (rng.next_f64() * horizon_ns) as u64)
            .collect();
        starts_ns.sort_unstable();
        ArrivalSchedule { starts_ns }
    }

    /// Evenly spaced arrivals at `rate` ops/second over `duration_secs`
    /// seconds — the zero-variance companion to [`ArrivalSchedule::poisson`]
    /// (no randomness, so no seed).
    ///
    /// # Panics
    ///
    /// Panics unless `rate` and `duration_secs` are positive and finite.
    pub fn uniform(rate: f64, duration_secs: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "arrival rate must be positive, got {rate}"
        );
        assert!(
            duration_secs.is_finite() && duration_secs > 0.0,
            "duration must be positive, got {duration_secs}"
        );
        let ops = (rate * duration_secs) as u64;
        let gap_ns = 1e9 / rate;
        ArrivalSchedule {
            starts_ns: (0..ops).map(|i| (i as f64 * gap_ns) as u64).collect(),
        }
    }

    /// Truncate to the largest multiple of `chunk` arrivals, so a driver
    /// with `chunk = threads` ends on a complete epoch round and no
    /// final epoch is left short of participants.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn truncate_to_multiple_of(&mut self, chunk: usize) {
        assert!(chunk > 0, "chunk must be positive");
        let keep = self.starts_ns.len() / chunk * chunk;
        self.starts_ns.truncate(keep);
    }

    /// Number of scheduled arrivals.
    pub fn len(&self) -> usize {
        self.starts_ns.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.starts_ns.is_empty()
    }

    /// Start offset of arrival `i`, in nanoseconds from the run start.
    pub fn start_ns(&self, i: usize) -> u64 {
        self.starts_ns[i]
    }

    /// All start offsets, in order.
    pub fn starts_ns(&self) -> &[u64] {
        &self.starts_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = ArrivalSchedule::poisson(50_000.0, 0.05, 42);
        let b = ArrivalSchedule::poisson(50_000.0, 0.05, 42);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a = ArrivalSchedule::poisson(50_000.0, 0.05, 1);
        let b = ArrivalSchedule::poisson(50_000.0, 0.05, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn arrivals_sorted_and_within_horizon() {
        let s = ArrivalSchedule::poisson(100_000.0, 0.02, 7);
        let horizon_ns = 0.02e9 as u64;
        let mut prev = 0;
        for i in 0..s.len() {
            let t = s.start_ns(i);
            assert!(t >= prev, "arrival {i} out of order");
            assert!(t < horizon_ns, "arrival {i} beyond horizon");
            prev = t;
        }
    }

    #[test]
    fn poisson_count_is_exactly_rate_times_duration() {
        // The conditional-form sampler fixes the count deterministically
        // — the property the bench-diff structural gate relies on.
        let s = ArrivalSchedule::poisson(200_000.0, 0.1, 3);
        assert_eq!(s.len(), 20_000);
        assert_eq!(ArrivalSchedule::poisson(200_000.0, 0.1, 999).len(), 20_000);
    }

    #[test]
    fn poisson_gaps_look_exponential() {
        // Order statistics of uniforms = Poisson sample path: the mean
        // gap must be ~1/rate and the gap distribution skewed (median
        // well below the mean), unlike a uniform grid.
        let rate = 100_000.0;
        let s = ArrivalSchedule::poisson(rate, 0.1, 11);
        let mut gaps: Vec<u64> = s.starts_ns().windows(2).map(|w| w[1] - w[0]).collect();
        gaps.sort_unstable();
        let mean = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
        let median = gaps[gaps.len() / 2] as f64;
        let expected_gap_ns = 1e9 / rate;
        assert!((mean - expected_gap_ns).abs() < 0.05 * expected_gap_ns);
        // Exponential median is ln 2 ≈ 0.69 of the mean.
        assert!(median < 0.8 * mean, "median {median} vs mean {mean}");
    }

    #[test]
    fn uniform_is_evenly_spaced() {
        let s = ArrivalSchedule::uniform(1000.0, 0.01);
        assert_eq!(s.len(), 10);
        assert_eq!(s.start_ns(0), 0);
        assert_eq!(s.start_ns(1), 1_000_000);
        assert_eq!(s.starts_ns().len(), 10);
    }

    #[test]
    fn truncation_rounds_down_to_chunk() {
        let mut s = ArrivalSchedule::uniform(1000.0, 0.01);
        s.truncate_to_multiple_of(4);
        assert_eq!(s.len(), 8);
        s.truncate_to_multiple_of(3);
        assert_eq!(s.len(), 6);
    }
}
