//! The workload driver: closed- and open-loop traffic on real threads.
//!
//! Two classical load-generation disciplines, both over the same
//! [`TasArena`]:
//!
//! * **Closed loop** — a fixed fleet of `threads` workers issues
//!   operations back to back: each worker hammers its home shard
//!   (`shard = worker % shards`), so every shard is resolved by a fixed
//!   group of `threads / shards` workers, epoch after epoch. Throughput
//!   is whatever the hardware sustains. There is no *offered-load*
//!   backlog to queue in, but each recorded latency spans the whole
//!   resolution **including the wait for the epoch's peer
//!   participants** — one-shot objects resolve as a group, so peer
//!   skew (worst under `--churn`, where a respawning slot stalls its
//!   shard) is genuine operation latency here, not measurement noise.
//!   Worker **churn** maps the scenario engine's
//!   retirement/respawn axis onto real threads: with `churn = c`, a
//!   worker's OS thread retires after `c` operations and a fresh thread
//!   (cold protocol-stack buffer and all) is spawned to continue its
//!   slot.
//! * **Open loop** — operations are *offered* at wall-clock instants
//!   from a deterministic [`ArrivalSchedule`] (same seed ⇒ identical
//!   offered load, run to run and machine to machine). Arrival `i` is
//!   striped to shard `i % shards` and handled by worker `i % threads`;
//!   each worker busy-waits until an operation's scheduled instant and
//!   records latency from that instant — not from when the worker got
//!   around to it — so queueing delay under overload is measured, not
//!   hidden (no coordinated omission).
//!
//! Both disciplines assign every epoch of every shard exactly `group =
//! threads / shards` operations, which is what makes the arena's
//! static-membership epoch protocol deadlock-free: within any window of
//! `threads` consecutive arrival indices, each worker appears exactly
//! once and each shard exactly `group` times, so the workers march
//! through epoch rounds together and every epoch's participants
//! eventually show up.
//!
//! [`TasArena`]: crate::arena::TasArena

use std::sync::Arc;
use std::time::{Duration, Instant};

use rtas::native::NativeRunner;
use rtas::Backend;
use rtas_bench::report::{BenchReport, BenchRow};

use crate::arena::TasArena;
use crate::recorder::LoadRecorder;
use crate::schedule::ArrivalSchedule;

/// Workload discipline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Fixed worker fleet, back-to-back operations, `total_ops` in all
    /// (truncated down to a multiple of the thread count).
    Closed {
        /// Total operations across all workers.
        total_ops: u64,
    },
    /// Deterministic Poisson arrivals at `rate` ops/second for
    /// `duration_secs` seconds.
    Open {
        /// Offered load, operations per second.
        rate: f64,
        /// Schedule horizon, seconds.
        duration_secs: f64,
    },
}

impl Mode {
    /// The mode's report label: `"closed"` or `"open"`.
    pub fn label(&self) -> &'static str {
        match self {
            Mode::Closed { .. } => "closed",
            Mode::Open { .. } => "open",
        }
    }
}

/// A complete load-run specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSpec {
    /// Algorithm backing every pooled object.
    pub backend: Backend,
    /// Worker threads. Must be a positive multiple of `shards`.
    pub threads: usize,
    /// Arena shards. Each is resolved by `threads / shards` workers per
    /// epoch.
    pub shards: usize,
    /// Workload discipline.
    pub mode: Mode,
    /// Seed for the open-loop arrival schedule (unused in closed loop).
    pub seed: u64,
    /// Closed loop only: retire each worker's OS thread after this many
    /// operations and respawn a fresh one for the slot.
    pub churn: Option<u64>,
}

impl LoadSpec {
    /// Participants per epoch implied by the spec.
    pub fn group(&self) -> usize {
        self.threads / self.shards
    }

    fn validate(&self) {
        assert!(self.threads >= 1, "need at least one worker thread");
        assert!(self.shards >= 1, "need at least one shard");
        assert!(
            self.threads % self.shards == 0,
            "threads ({}) must be a multiple of shards ({}) so every epoch \
             has a full participant group",
            self.threads,
            self.shards
        );
        if let Mode::Open { .. } = self.mode {
            assert!(
                self.churn.is_none(),
                "churn is a closed-loop axis; open-loop offered load already \
                 decouples arrivals from worker lifetime"
            );
        }
    }
}

/// The measured result of a load run.
#[derive(Debug, Clone)]
pub struct LoadOutcome {
    /// The spec the run executed.
    pub spec: LoadSpec,
    /// Per-shard latency/throughput observations.
    pub recorder: LoadRecorder,
    /// Wall clock of the measured section (worker spawn to last join).
    pub wall: Duration,
    /// Registers held by the arena, all shards.
    pub registers: u64,
}

impl LoadOutcome {
    /// Operations completed.
    pub fn total_ops(&self) -> u64 {
        self.recorder.total_ops()
    }

    /// Resolutions completed (epochs closed): one winner each.
    pub fn resolutions(&self) -> u64 {
        self.total_ops() / self.spec.group() as u64
    }

    /// Winning operations — equals [`LoadOutcome::resolutions`] when
    /// every epoch ran to completion.
    pub fn total_wins(&self) -> u64 {
        self.recorder.total_wins()
    }

    /// Completed operations per second of wall clock.
    pub fn throughput_ops_per_sec(&self) -> f64 {
        self.total_ops() as f64 / self.wall.as_secs_f64()
    }

    /// The run as a `BENCH_native_load.json` report: one row per shard
    /// plus a `scope=total` aggregate row.
    ///
    /// Latency statistics are in microseconds. Every row carries the
    /// label `gate=wall`: the values are wall-clock-derived, so
    /// `bench-diff` checks them structurally (row set, op counts,
    /// finiteness) but skips tolerance gating unless `--gate-wall` is
    /// passed.
    pub fn bench_report(&self) -> BenchReport {
        let backend = backend_label(self.spec.backend);
        let mode = self.spec.mode.label();
        let wall_secs = self.wall.as_secs_f64();
        let mut report = BenchReport::new("native_load", self.spec.threads);
        for (s, cell) in self.recorder.shard_stats().iter().enumerate() {
            // Per-shard wall clock is meaningless (shards run
            // concurrently): NaN serializes as null, never a fabricated
            // number. The run's wall lives on the total row.
            report.push(
                BenchRow::from_summary(s as u64, &cell.latency.summary(), f64::NAN)
                    .with("ops", cell.ops as f64)
                    .with("wins", cell.wins as f64)
                    .with("epochs", (cell.ops / self.spec.group() as u64) as f64)
                    .with("throughput_ops_s", cell.ops as f64 / wall_secs)
                    .with_label("backend", backend)
                    .with_label("mode", mode)
                    .with_label("scope", "shard")
                    .with_label("gate", "wall"),
            );
        }
        report.push(
            BenchRow::from_summary(
                0,
                &self.recorder.overall_latency(),
                self.wall.as_secs_f64() * 1e3,
            )
            .with("ops", self.total_ops() as f64)
            .with("wins", self.total_wins() as f64)
            .with("epochs", self.resolutions() as f64)
            .with("throughput_ops_s", self.throughput_ops_per_sec())
            .with("registers", self.registers as f64)
            .with("shards", self.spec.shards as f64)
            .with("group", self.spec.group() as f64)
            .with_label("backend", backend)
            .with_label("mode", mode)
            .with_label("scope", "total")
            .with_label("gate", "wall"),
        );
        report
    }
}

/// Latency service-level objectives, checked against a finished run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Slo {
    /// Median latency ceiling, microseconds.
    pub p50_us: Option<f64>,
    /// 99th-percentile latency ceiling, microseconds.
    pub p99_us: Option<f64>,
}

impl Slo {
    /// Violations of this SLO by `outcome`'s overall latency
    /// distribution, as human-readable lines (empty = SLO met).
    ///
    /// A run that completed **zero operations** violates every
    /// configured SLO: an empty distribution reports 0.0 quantiles,
    /// which would trivially pass any limit — but "we did nothing" must
    /// not read as "we met the objective" (e.g. an open-loop schedule
    /// truncated to empty by a rate·duration product below the thread
    /// count).
    pub fn violations(&self, outcome: &LoadOutcome) -> Vec<String> {
        let overall = outcome.recorder.overall_latency();
        if overall.count == 0 && (self.p50_us.is_some() || self.p99_us.is_some()) {
            return vec!["run completed zero operations; SLOs cannot be met".to_string()];
        }
        let mut out = Vec::new();
        if let Some(limit) = self.p50_us {
            if overall.p50 > limit {
                out.push(format!("p50 {:.1}us exceeds SLO {limit:.1}us", overall.p50));
            }
        }
        if let Some(limit) = self.p99_us {
            if overall.p99 > limit {
                out.push(format!("p99 {:.1}us exceeds SLO {limit:.1}us", overall.p99));
            }
        }
        out
    }
}

/// The report label for a backend, stable across PRs (used as a
/// `BENCH_*.json` row label and a CLI flag value).
pub fn backend_label(backend: Backend) -> &'static str {
    match backend {
        Backend::LogStar => "logstar",
        Backend::LogLog => "loglog",
        Backend::RatRace => "ratrace",
        Backend::Combined => "combined",
    }
}

/// The default shard count for a worker fleet: the largest divisor of
/// `threads` no bigger than half of it (groups of ≥ 2 where possible),
/// falling back to 1 — so the result always satisfies
/// `threads % shards == 0`, also for odd or prime thread counts.
pub fn default_shards(threads: usize) -> usize {
    (1..=threads.max(1) / 2)
        .rev()
        .find(|s| threads % s == 0)
        .unwrap_or(1)
}

/// Parse a [`backend_label`] back into a [`Backend`].
pub fn parse_backend(label: &str) -> Option<Backend> {
    match label {
        "logstar" => Some(Backend::LogStar),
        "loglog" => Some(Backend::LogLog),
        "ratrace" => Some(Backend::RatRace),
        "combined" => Some(Backend::Combined),
        _ => None,
    }
}

/// Run the specified workload on a fresh arena.
///
/// Builds the arena (the only heavyweight allocation), runs the
/// workload, and returns the measured outcome.
///
/// # Panics
///
/// Panics on an inconsistent spec (see [`LoadSpec`] field docs).
pub fn run_load(spec: LoadSpec) -> LoadOutcome {
    spec.validate();
    let arena = Arc::new(TasArena::new(spec.backend, spec.shards, spec.group()));
    run_load_on(&arena, spec)
}

/// Run the specified workload on an existing arena (benches reuse one
/// arena across samples so constructor cost stays out of the measured
/// section). The arena's shard count and group must match the spec.
pub fn run_load_on(arena: &Arc<TasArena>, spec: LoadSpec) -> LoadOutcome {
    spec.validate();
    assert_eq!(arena.shards(), spec.shards, "arena/spec shard mismatch");
    assert_eq!(arena.group(), spec.group(), "arena/spec group mismatch");
    let registers = arena.registers();
    let (recorder, wall) = match spec.mode {
        Mode::Closed { total_ops } => {
            let ops_per_worker = total_ops / spec.threads as u64;
            run_closed(arena, spec.threads, ops_per_worker, spec.churn)
        }
        Mode::Open {
            rate,
            duration_secs,
        } => {
            let mut schedule = ArrivalSchedule::poisson(rate, duration_secs, spec.seed);
            schedule.truncate_to_multiple_of(spec.threads);
            run_open(arena, spec.threads, &schedule)
        }
    };
    LoadOutcome {
        spec,
        recorder,
        wall,
        registers,
    }
}

/// Base epoch per shard, captured before spawning so a reused arena
/// continues from wherever its shards currently stand.
fn base_epochs(arena: &TasArena) -> Vec<u64> {
    (0..arena.shards()).map(|s| arena.epoch(s)).collect()
}

fn run_closed(
    arena: &Arc<TasArena>,
    threads: usize,
    ops_per_worker: u64,
    churn: Option<u64>,
) -> (LoadRecorder, Duration) {
    let shards = arena.shards();
    let bases = Arc::new(base_epochs(arena));
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|slot| {
            let arena = Arc::clone(arena);
            let bases = Arc::clone(&bases);
            std::thread::spawn(move || {
                let shard = slot % shards;
                let base = bases[shard];
                let mut recorder = LoadRecorder::new(shards);
                let mut next_op = 0u64;
                while next_op < ops_per_worker {
                    // One worker *life*: without churn, all remaining ops
                    // on this thread; with churn, a bounded slice on a
                    // fresh OS thread (cold runner included).
                    let len = churn
                        .map(|c| c.max(1).min(ops_per_worker - next_op))
                        .unwrap_or(ops_per_worker - next_op);
                    let run_life = |mut recorder: LoadRecorder| {
                        let mut runner = NativeRunner::new();
                        for j in next_op..next_op + len {
                            let t0 = Instant::now();
                            let won = arena.resolve(shard, base + j, &mut runner);
                            recorder.record(shard, t0.elapsed().as_secs_f64() * 1e6, won);
                        }
                        recorder
                    };
                    recorder = if churn.is_some() && len < ops_per_worker {
                        // Retirement/respawn: the slice runs on its own
                        // thread; the slot thread is just the supervisor.
                        std::thread::scope(|s| s.spawn(|| run_life(recorder)).join().unwrap())
                    } else {
                        run_life(recorder)
                    };
                    next_op += len;
                }
                recorder
            })
        })
        .collect();
    let mut merged = LoadRecorder::new(shards);
    for handle in handles {
        merged.merge(&handle.join().expect("load worker panicked"));
    }
    (merged, start.elapsed())
}

fn run_open(
    arena: &Arc<TasArena>,
    threads: usize,
    schedule: &ArrivalSchedule,
) -> (LoadRecorder, Duration) {
    let shards = arena.shards();
    let group = arena.group() as u64;
    let bases = Arc::new(base_epochs(arena));
    let schedule = Arc::new(schedule.clone());
    let begin = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|worker| {
            let arena = Arc::clone(arena);
            let bases = Arc::clone(&bases);
            let schedule = Arc::clone(&schedule);
            std::thread::spawn(move || {
                let mut recorder = LoadRecorder::new(shards);
                let mut runner = NativeRunner::new();
                let mut i = worker;
                while i < schedule.len() {
                    let shard = i % shards;
                    let epoch = bases[shard] + (i / shards) as u64 / group;
                    let target = begin + Duration::from_nanos(schedule.start_ns(i));
                    // Offered load: wait for the scheduled instant
                    // (sleep coarsely, spin the last stretch), but never
                    // skip an op we are late for — lateness shows up as
                    // queueing latency instead.
                    loop {
                        let now = Instant::now();
                        if now >= target {
                            break;
                        }
                        let remaining = target - now;
                        if remaining > Duration::from_micros(200) {
                            std::thread::sleep(remaining - Duration::from_micros(100));
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                    let won = arena.resolve(shard, epoch, &mut runner);
                    // Latency from the *scheduled* instant: queueing
                    // delay included, coordinated omission excluded.
                    recorder.record(shard, target.elapsed().as_secs_f64() * 1e6, won);
                    i += threads;
                }
                recorder
            })
        })
        .collect();
    let mut merged = LoadRecorder::new(shards);
    for handle in handles {
        merged.merge(&handle.join().expect("load worker panicked"));
    }
    (merged, begin.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn closed_spec(threads: usize, shards: usize, total_ops: u64) -> LoadSpec {
        LoadSpec {
            backend: Backend::Combined,
            threads,
            shards,
            mode: Mode::Closed { total_ops },
            seed: 1,
            churn: None,
        }
    }

    #[test]
    fn closed_loop_one_winner_per_resolution() {
        let spec = closed_spec(4, 2, 400);
        let out = run_load(spec);
        assert_eq!(out.total_ops(), 400);
        assert_eq!(out.spec.group(), 2);
        assert_eq!(out.resolutions(), 200);
        assert_eq!(out.total_wins(), 200, "exactly one winner per epoch");
        assert!(out.throughput_ops_per_sec() > 0.0);
        assert!(out.registers > 0);
    }

    #[test]
    fn closed_loop_with_churn_matches_op_counts() {
        let mut spec = closed_spec(4, 2, 240);
        spec.churn = Some(13);
        let out = run_load(spec);
        assert_eq!(out.total_ops(), 240);
        assert_eq!(out.total_wins(), out.resolutions());
    }

    #[test]
    fn open_loop_completes_schedule_exactly() {
        let spec = LoadSpec {
            backend: Backend::LogStar,
            threads: 4,
            shards: 2,
            mode: Mode::Open {
                rate: 40_000.0,
                duration_secs: 0.05,
            },
            seed: 9,
            churn: None,
        };
        let mut expected = ArrivalSchedule::poisson(40_000.0, 0.05, 9);
        expected.truncate_to_multiple_of(4);
        let out = run_load(spec);
        assert_eq!(out.total_ops(), expected.len() as u64);
        assert_eq!(out.total_wins(), out.resolutions());
    }

    #[test]
    fn report_shape_per_shard_plus_total() {
        let out = run_load(closed_spec(2, 2, 100));
        let report = out.bench_report();
        assert_eq!(report.name(), "native_load");
        assert_eq!(report.rows().len(), 3, "2 shard rows + 1 total row");
        let total = report.rows().last().unwrap();
        assert!(total.labels.contains(&("scope".into(), "total".into())));
        assert!(total.labels.contains(&("gate".into(), "wall".into())));
        assert_eq!(total.trials, 100);
        // Round-trips through the JSON machinery like every report.
        let parsed = BenchReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(parsed, report);
    }

    #[test]
    fn slo_violations_fire_only_beyond_limits() {
        let out = run_load(closed_spec(2, 1, 50));
        let lenient = Slo {
            p50_us: Some(1e9),
            p99_us: Some(1e9),
        };
        assert!(lenient.violations(&out).is_empty());
        let strict = Slo {
            p50_us: Some(0.0),
            p99_us: None,
        };
        assert_eq!(strict.violations(&out).len(), 1);
    }

    #[test]
    fn slo_fails_a_run_that_did_nothing() {
        // 10 ops/s for 0.1s rounds to ~1 arrival, truncated to 0 by the
        // 4-thread striping: the run completes zero operations and any
        // configured SLO must fail rather than vacuously pass.
        let out = run_load(LoadSpec {
            backend: Backend::LogStar,
            threads: 4,
            shards: 2,
            mode: Mode::Open {
                rate: 10.0,
                duration_secs: 0.1,
            },
            seed: 1,
            churn: None,
        });
        assert_eq!(out.total_ops(), 0);
        let slo = Slo {
            p50_us: None,
            p99_us: Some(5_000.0),
        };
        let violations = slo.violations(&out);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("zero operations"));
        // With no SLO configured, an empty run is not a violation.
        assert!(Slo::default().violations(&out).is_empty());
    }

    #[test]
    #[should_panic(expected = "multiple of shards")]
    fn mismatched_threads_shards_rejected() {
        run_load(closed_spec(3, 2, 10));
    }

    #[test]
    #[should_panic(expected = "churn is a closed-loop axis")]
    fn open_loop_churn_rejected() {
        let mut spec = closed_spec(2, 1, 10);
        spec.mode = Mode::Open {
            rate: 1000.0,
            duration_secs: 0.01,
        };
        spec.churn = Some(5);
        run_load(spec);
    }

    #[test]
    fn default_shards_always_divides_threads() {
        for threads in 1..=64 {
            let shards = default_shards(threads);
            assert!(shards >= 1);
            assert_eq!(threads % shards, 0, "threads={threads} shards={shards}");
        }
        assert_eq!(default_shards(8), 4);
        assert_eq!(default_shards(6), 3);
        assert_eq!(default_shards(5), 1, "prime: solo shard");
        assert_eq!(default_shards(12), 6);
        assert_eq!(default_shards(0), 1);
    }

    #[test]
    fn backend_labels_round_trip() {
        for backend in [
            Backend::LogStar,
            Backend::LogLog,
            Backend::RatRace,
            Backend::Combined,
        ] {
            assert_eq!(parse_backend(backend_label(backend)), Some(backend));
        }
        assert_eq!(parse_backend("nope"), None);
    }
}
