//! The workload driver: closed- and open-loop traffic on real threads.
//!
//! Two classical load-generation disciplines, both generic over a
//! [`LoadTarget`] — the in-process [`TasArena`] or a remote `rtas-svc`
//! server (see [`crate::remote`]):
//!
//! * **Closed loop** — a fixed fleet of `threads` workers issues
//!   operations back to back: each worker hammers its home shard
//!   (`shard = worker % shards`), so every shard is resolved by a fixed
//!   group of `threads / shards` workers, epoch after epoch. Throughput
//!   is whatever the hardware sustains. There is no *offered-load*
//!   backlog to queue in, but each recorded latency spans the whole
//!   resolution **including the wait for the epoch's peer
//!   participants** — one-shot objects resolve as a group, so peer
//!   skew (worst under `--churn`, where a respawning slot stalls its
//!   shard) is genuine operation latency here, not measurement noise.
//!   Worker **churn** maps the scenario engine's
//!   retirement/respawn axis onto real threads: with `churn = c`, a
//!   worker's OS thread retires after `c` operations and a fresh thread
//!   (cold protocol-stack buffer — and, against a remote target, a
//!   cold connection) is spawned to continue its slot.
//! * **Open loop** — operations are *offered* at wall-clock instants
//!   from a deterministic [`ArrivalSchedule`] (same seed ⇒ identical
//!   offered load, run to run and machine to machine). Arrival `i` is
//!   striped to shard `i % shards` and handled by worker `i % threads`;
//!   each worker busy-waits until an operation's scheduled instant and
//!   records latency from that instant — not from when the worker got
//!   around to it — so queueing delay under overload is measured, not
//!   hidden (no coordinated omission).
//!
//! Both disciplines assign every epoch of every shard exactly `group =
//! threads / shards` operations, which is what makes the epoch-recycling
//! protocols deadlock-free: within any window of `threads` consecutive
//! arrival indices, each worker appears exactly once and each shard
//! exactly `group` times, so the workers march through epoch rounds
//! together and every epoch's participants eventually show up.
//!
//! **Warmup.** [`Warmup::Ops`] (closed loop) runs a fixed count of
//! unrecorded operations per worker, then releases the measured
//! section through a barrier — cold caches, first-touch page faults,
//! and lazily grown pools are paid before the clock starts.
//! [`Warmup::Secs`] (open loop) executes the first stretch of the
//! arrival schedule without recording it. Either way the warmup window
//! is excluded from [`LoadRecorder`] statistics, SLO checks, and the
//! measured wall clock; its operation/win counts are tallied
//! separately ([`LoadOutcome::warmup_ops`]) so the one-winner-per-epoch
//! safety check still covers every epoch driven.
//!
//! [`TasArena`]: crate::arena::TasArena

use std::sync::Barrier;
use std::time::{Duration, Instant};

use rtas::native::NativeRunner;
use rtas::Backend;
use rtas_bench::report::{BenchReport, BenchRow};

use crate::arena::TasArena;
use crate::recorder::LoadRecorder;
use crate::schedule::ArrivalSchedule;

/// Anything the driver can aim traffic at: a sharded pool of
/// epoch-recycled arbitration objects, resolved by `(shard, epoch)`
/// coordinates.
///
/// Implementations: [`TasArena`] (in-process atomics) and
/// [`crate::remote::RemoteTarget`] (an `rtas-svc` server over TCP).
/// Workers are handed one [`LoadTarget::Ctx`] per *life* — a reused
/// protocol-stack buffer for the arena, a connection for the remote
/// target — so the per-operation path stays allocation- and
/// connect-free.
pub trait LoadTarget: Sync {
    /// Per-worker-life state threaded through every resolve call.
    type Ctx: Send;

    /// Number of shards traffic is striped over.
    fn shards(&self) -> usize;

    /// Participants per epoch on every shard.
    fn group(&self) -> usize;

    /// Each shard's currently open epoch — the offsets a driver must
    /// add so a reused target continues instead of colliding with
    /// completed epochs.
    fn base_epochs(&self) -> Vec<u64>;

    /// Fresh per-life context (for remote targets this opens the
    /// connection). Called from the **main** thread for the initial
    /// fleet — so a connect failure panics there and aborts the run
    /// before any traffic or barrier is in flight — and from worker
    /// threads for churn respawns.
    fn context(&self) -> Self::Ctx;

    /// Perform one operation of `epoch` on `shard`; `true` iff this
    /// call won its resolution.
    fn resolve(&self, ctx: &mut Self::Ctx, shard: usize, epoch: u64) -> bool;

    /// Registers backing the target's object pool (0 if unknown).
    fn registers(&self) -> u64;
}

impl LoadTarget for TasArena {
    type Ctx = NativeRunner;

    fn shards(&self) -> usize {
        TasArena::shards(self)
    }

    fn group(&self) -> usize {
        TasArena::group(self)
    }

    fn base_epochs(&self) -> Vec<u64> {
        (0..TasArena::shards(self)).map(|s| self.epoch(s)).collect()
    }

    fn context(&self) -> NativeRunner {
        NativeRunner::new()
    }

    fn resolve(&self, ctx: &mut NativeRunner, shard: usize, epoch: u64) -> bool {
        TasArena::resolve(self, shard, epoch, ctx)
    }

    fn registers(&self) -> u64 {
        TasArena::registers(self)
    }
}

/// Workload discipline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Fixed worker fleet, back-to-back operations, `total_ops` in all
    /// (truncated down to a multiple of the thread count).
    Closed {
        /// Total operations across all workers.
        total_ops: u64,
    },
    /// Deterministic Poisson arrivals at `rate` ops/second for
    /// `duration_secs` seconds.
    Open {
        /// Offered load, operations per second.
        rate: f64,
        /// Schedule horizon, seconds.
        duration_secs: f64,
    },
}

impl Mode {
    /// The mode's report label: `"closed"` or `"open"`.
    pub fn label(&self) -> &'static str {
        match self {
            Mode::Closed { .. } => "closed",
            Mode::Open { .. } => "open",
        }
    }
}

/// An unrecorded warmup window preceding the measured section (see the
/// [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Warmup {
    /// No warmup: measurement starts with the first operation.
    #[default]
    None,
    /// Closed loop: this many warmup operations in total (truncated
    /// down to a multiple of the thread count, like `total_ops`), run
    /// before the measured section's barrier release.
    Ops(u64),
    /// Open loop: epochs whose *first arrival* is scheduled inside the
    /// first `secs` of the horizon execute but go unrecorded. The cut
    /// is epoch-aligned — an epoch straddling the cutoff counts
    /// entirely as warmup — so per-shard measured ops stay a multiple
    /// of the group and the win accounting is a pure function of the
    /// seed. Must be shorter than the schedule duration.
    Secs(f64),
}

/// What kind of target a run was aimed at — picks the report identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    /// In-process [`TasArena`]: `BENCH_native_load.json`.
    Native,
    /// Remote `rtas-svc` server: `BENCH_svc_load.json`.
    Remote,
    /// Remote server behind the deterministic fault-injection layer
    /// (see [`crate::chaos`]): `BENCH_svc_chaos.json`.
    Chaos,
    /// Remote server driven through a held-open connection fan-out
    /// ([`LoadSpec::conns`] — the C10K posture): `BENCH_svc_c10k.json`.
    C10k,
}

impl TargetKind {
    /// The report (and therefore `BENCH_*.json` file) name.
    pub fn report_name(self) -> &'static str {
        match self {
            TargetKind::Native => "native_load",
            TargetKind::Remote => "svc_load",
            TargetKind::Chaos => "svc_chaos",
            TargetKind::C10k => "svc_c10k",
        }
    }
}

/// A complete load-run specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSpec {
    /// Algorithm backing every pooled object (native targets; a remote
    /// server picks its own backend at `rtas-svc serve` time).
    pub backend: Backend,
    /// Worker threads. Must be a positive multiple of `shards`.
    pub threads: usize,
    /// Target shards. Each is resolved by `threads / shards` workers
    /// per epoch.
    pub shards: usize,
    /// Workload discipline.
    pub mode: Mode,
    /// Seed for the open-loop arrival schedule (unused in closed loop).
    pub seed: u64,
    /// Closed loop only: retire each worker's OS thread after this many
    /// measured operations and respawn a fresh one for the slot.
    pub churn: Option<u64>,
    /// Unrecorded warmup preceding the measured section.
    pub warmup: Warmup,
    /// Client pipelining depth against a remote target: how many
    /// resolutions a worker keeps in flight on its connection before
    /// draining the oldest. `1` (the default everywhere) is the
    /// classic request/response lockstep. Depths above 1 require
    /// `threads == shards` — each worker must be its shard's sole
    /// participant so in-flight epochs cannot depend on peers' replies
    /// (see [`crate::remote`]). Native targets ignore the depth (there
    /// is no wire to pipeline on).
    pub pipeline: usize,
    /// Remote targets only: hold this many **total** connections open
    /// across the worker fleet (the C10K posture). Each worker owns
    /// `conns / threads` connections and round-robins its operations
    /// across them, so every connection stays live for the whole run
    /// while the thread count stays small. Must be a multiple of
    /// `threads` and requires `pipeline == 1` (the window bookkeeping
    /// is per-connection). `None` (the default) keeps the classic one
    /// connection per worker.
    pub conns: Option<usize>,
}

impl LoadSpec {
    /// Participants per epoch implied by the spec.
    pub fn group(&self) -> usize {
        self.threads / self.shards
    }

    pub(crate) fn validate(&self) {
        assert!(self.threads >= 1, "need at least one worker thread");
        assert!(self.shards >= 1, "need at least one shard");
        assert!(
            self.threads % self.shards == 0,
            "threads ({}) must be a multiple of shards ({}) so every epoch \
             has a full participant group",
            self.threads,
            self.shards
        );
        assert!(self.pipeline >= 1, "pipeline depth must be at least 1");
        if let Some(conns) = self.conns {
            assert!(
                conns >= self.threads && conns % self.threads == 0,
                "conns ({conns}) must be a positive multiple of threads ({}) so \
                 every worker owns the same share of the fan-out",
                self.threads
            );
            assert!(
                self.pipeline == 1,
                "conns is a lockstep axis (the pipeline window bookkeeping is \
                 per-connection); got pipeline depth {}",
                self.pipeline
            );
        }
        assert!(
            self.pipeline == 1 || self.group() == 1,
            "pipeline depth {} requires threads == shards (got {} threads over {} \
             shards): a worker keeping epochs in flight must be its shard's sole \
             participant",
            self.pipeline,
            self.threads,
            self.shards
        );
        match self.mode {
            Mode::Open { duration_secs, .. } => {
                assert!(
                    self.churn.is_none(),
                    "churn is a closed-loop axis; open-loop offered load already \
                     decouples arrivals from worker lifetime"
                );
                match self.warmup {
                    Warmup::None => {}
                    Warmup::Ops(_) => {
                        panic!("Warmup::Ops is a closed-loop axis; use Warmup::Secs in open loop")
                    }
                    Warmup::Secs(secs) => assert!(
                        secs.is_finite() && secs >= 0.0 && secs < duration_secs,
                        "open-loop warmup ({secs}s) must be non-negative and shorter \
                         than the schedule duration ({duration_secs}s)"
                    ),
                }
            }
            Mode::Closed { .. } => {
                assert!(
                    !matches!(self.warmup, Warmup::Secs(_)),
                    "Warmup::Secs is an open-loop axis; use Warmup::Ops in closed loop"
                );
            }
        }
    }
}

/// The measured result of a load run.
#[derive(Debug, Clone)]
pub struct LoadOutcome {
    /// The spec the run executed.
    pub spec: LoadSpec,
    /// What the run was aimed at (picks the report identity).
    pub target: TargetKind,
    /// Per-shard latency/throughput observations (measured section
    /// only — warmup excluded).
    pub recorder: LoadRecorder,
    /// Wall clock of the measured section (warmup excluded).
    pub wall: Duration,
    /// Registers backing the target's object pool.
    pub registers: u64,
    /// Operations executed inside the warmup window (unrecorded).
    pub warmup_ops: u64,
    /// Warmup operations that won their resolution.
    pub warmup_wins: u64,
    /// Server-side observability extras scraped from a remote target's
    /// `METRICS` exposition after the run (empty for native targets or
    /// when the scrape failed) — folded into the report's `scope=total`
    /// row as extra `svc_*` values. See
    /// [`crate::remote::scrape_svc_extras`].
    pub svc_extras: Vec<(String, f64)>,
}

impl LoadOutcome {
    /// Measured operations completed (warmup excluded).
    pub fn total_ops(&self) -> u64 {
        self.recorder.total_ops()
    }

    /// Every operation the run drove, warmup included.
    pub fn all_ops(&self) -> u64 {
        self.total_ops() + self.warmup_ops
    }

    /// Resolutions completed (epochs closed), warmup included: one
    /// winner each.
    pub fn resolutions(&self) -> u64 {
        self.all_ops() / self.spec.group() as u64
    }

    /// Measured winning operations. The full safety invariant spans
    /// the warmup window too:
    /// `total_wins() + warmup_wins == resolutions()`.
    pub fn total_wins(&self) -> u64 {
        self.recorder.total_wins()
    }

    /// Measured operations per second of measured wall clock.
    pub fn throughput_ops_per_sec(&self) -> f64 {
        self.total_ops() as f64 / self.wall.as_secs_f64()
    }

    /// The backend label carried by every report row: the algorithm for
    /// native runs, `"remote"` for service runs (the server picks its
    /// own algorithm).
    pub fn backend_name(&self) -> &'static str {
        match self.target {
            TargetKind::Native => backend_label(self.spec.backend),
            TargetKind::Remote | TargetKind::C10k => "remote",
            TargetKind::Chaos => "chaos",
        }
    }

    /// The run as a `BENCH_native_load.json` / `BENCH_svc_load.json`
    /// report (by [`TargetKind`]): one row per shard plus a
    /// `scope=total` aggregate row.
    ///
    /// Latency statistics are in microseconds. Every row carries the
    /// label `gate=wall`: the values are wall-clock-derived, so
    /// `bench-diff` checks them structurally (row set, op counts,
    /// finiteness) but skips tolerance gating unless `--gate-wall` is
    /// passed.
    pub fn bench_report(&self) -> BenchReport {
        let backend = self.backend_name();
        let mode = self.spec.mode.label();
        let pipeline = self.spec.pipeline.to_string();
        // The fan-out width labels every row — but only when the axis
        // is in play, so classic reports keep their row identity.
        let conns = self.spec.conns.map(|c| c.to_string());
        let fan_out = |row: BenchRow| match &conns {
            Some(c) => row.with_label("conns", c),
            None => row,
        };
        let wall_secs = self.wall.as_secs_f64();
        let mut report = BenchReport::new(self.target.report_name(), self.spec.threads);
        for (s, cell) in self.recorder.shard_stats().iter().enumerate() {
            // Per-shard wall clock is meaningless (shards run
            // concurrently): NaN serializes as null, never a fabricated
            // number. The run's wall lives on the total row.
            report.push(fan_out(
                BenchRow::from_summary(s as u64, &cell.latency.summary(), f64::NAN)
                    .with("ops", cell.ops as f64)
                    .with("wins", cell.wins as f64)
                    .with("epochs", (cell.ops / self.spec.group() as u64) as f64)
                    .with("throughput_ops_s", cell.ops as f64 / wall_secs)
                    .with_label("backend", backend)
                    .with_label("mode", mode)
                    .with_label("scope", "shard")
                    .with_label("gate", "wall")
                    .with_label("pipeline", &pipeline),
            ));
        }
        let mut total = fan_out(
            BenchRow::from_summary(
                0,
                &self.recorder.overall_latency(),
                self.wall.as_secs_f64() * 1e3,
            )
            .with("ops", self.total_ops() as f64)
            .with("wins", self.total_wins() as f64)
            // Measured-section epochs, consistent with the shard rows
            // and `wins`; warmup-window epochs are visible through
            // `warmup_ops` (and `LoadOutcome::resolutions`, which spans
            // both windows for the safety accounting).
            .with(
                "epochs",
                (self.total_ops() / self.spec.group() as u64) as f64,
            )
            .with("warmup_ops", self.warmup_ops as f64)
            .with("throughput_ops_s", self.throughput_ops_per_sec())
            // Error classes: all zeros on a clean network, nonzero when
            // the run degraded — visible in the report instead of
            // silently folded into latency. bench-diff gates these
            // structurally (presence + finiteness) like every
            // `gate=wall` value.
            .with("err_timeouts", self.recorder.errors().timeouts as f64)
            .with("err_retries", self.recorder.errors().retries as f64)
            .with("err_reconnects", self.recorder.errors().reconnects as f64)
            .with("err_reclaimed", self.recorder.errors().reclaimed as f64)
            .with("registers", self.registers as f64)
            .with("shards", self.spec.shards as f64)
            .with("group", self.spec.group() as f64)
            .with_label("backend", backend)
            .with_label("mode", mode)
            .with_label("scope", "total")
            .with_label("gate", "wall")
            .with_label("pipeline", &pipeline),
        );
        // Server-side observability extras, when a remote run scraped
        // them: same gate=wall structural treatment as the err_*
        // classes.
        for (name, value) in &self.svc_extras {
            total = total.with(name, *value);
        }
        report.push(total);
        report
    }
}

/// Latency service-level objectives, checked against a finished run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Slo {
    /// Median latency ceiling, microseconds.
    pub p50_us: Option<f64>,
    /// 99th-percentile latency ceiling, microseconds.
    pub p99_us: Option<f64>,
}

impl Slo {
    /// Violations of this SLO by `outcome`'s overall latency
    /// distribution (the measured section — warmup never counts), as
    /// human-readable lines (empty = SLO met).
    ///
    /// A run that completed **zero measured operations** violates every
    /// configured SLO: an empty distribution reports 0.0 quantiles,
    /// which would trivially pass any limit — but "we did nothing" must
    /// not read as "we met the objective" (e.g. an open-loop schedule
    /// truncated to empty by a rate·duration product below the thread
    /// count).
    pub fn violations(&self, outcome: &LoadOutcome) -> Vec<String> {
        let overall = outcome.recorder.overall_latency();
        if overall.count == 0 && (self.p50_us.is_some() || self.p99_us.is_some()) {
            return vec!["run completed zero operations; SLOs cannot be met".to_string()];
        }
        let mut out = Vec::new();
        if let Some(limit) = self.p50_us {
            if overall.p50 > limit {
                out.push(format!("p50 {:.1}us exceeds SLO {limit:.1}us", overall.p50));
            }
        }
        if let Some(limit) = self.p99_us {
            if overall.p99 > limit {
                out.push(format!("p99 {:.1}us exceeds SLO {limit:.1}us", overall.p99));
            }
        }
        out
    }
}

/// The report label for a backend, stable across PRs (used as a
/// `BENCH_*.json` row label and a CLI flag value) — [`Backend::label`],
/// re-exported under the harness's historical name.
pub fn backend_label(backend: Backend) -> &'static str {
    backend.label()
}

/// The default shard count for a worker fleet: the largest divisor of
/// `threads` no bigger than half of it (groups of ≥ 2 where possible),
/// falling back to 1 — so the result always satisfies
/// `threads % shards == 0`, also for odd or prime thread counts.
pub fn default_shards(threads: usize) -> usize {
    (1..=threads.max(1) / 2)
        .rev()
        .find(|s| threads % s == 0)
        .unwrap_or(1)
}

/// Parse a [`backend_label`] back into a [`Backend`]
/// ([`Backend::parse`] under the harness's historical name).
pub fn parse_backend(label: &str) -> Option<Backend> {
    Backend::parse(label)
}

/// Run the specified workload on a fresh arena.
///
/// Builds the arena (the only heavyweight allocation), runs the
/// workload, and returns the measured outcome.
///
/// # Panics
///
/// Panics on an inconsistent spec (see [`LoadSpec`] field docs).
pub fn run_load(spec: LoadSpec) -> LoadOutcome {
    spec.validate();
    assert!(
        spec.conns.is_none(),
        "conns is a remote axis (there are no connections to fan out in-process)"
    );
    let arena = TasArena::new(spec.backend, spec.shards, spec.group());
    run_on_target(&arena, spec, TargetKind::Native)
}

/// Run the specified workload on an existing arena (benches reuse one
/// arena across samples so constructor cost stays out of the measured
/// section). The arena's shard count and group must match the spec.
pub fn run_load_on(arena: &TasArena, spec: LoadSpec) -> LoadOutcome {
    spec.validate();
    assert_eq!(arena.shards(), spec.shards, "arena/spec shard mismatch");
    assert_eq!(arena.group(), spec.group(), "arena/spec group mismatch");
    run_on_target(arena, spec, TargetKind::Native)
}

/// Run the specified workload on any [`LoadTarget`]. The caller must
/// have validated the spec against the target (see [`run_load_on`] and
/// [`crate::remote::run_load_remote`], the public faces).
pub(crate) fn run_on_target<T: LoadTarget>(
    target: &T,
    spec: LoadSpec,
    kind: TargetKind,
) -> LoadOutcome {
    let registers = target.registers();
    let (recorder, warmup, wall) = match spec.mode {
        Mode::Closed { total_ops } => {
            let ops_per_worker = total_ops / spec.threads as u64;
            let warmup_per_worker = match spec.warmup {
                Warmup::Ops(total) => total / spec.threads as u64,
                _ => 0,
            };
            run_closed(
                target,
                spec.threads,
                ops_per_worker,
                warmup_per_worker,
                spec.churn,
            )
        }
        Mode::Open {
            rate,
            duration_secs,
        } => {
            let mut schedule = ArrivalSchedule::poisson(rate, duration_secs, spec.seed);
            schedule.truncate_to_multiple_of(spec.threads);
            let warmup_cutoff_ns = match spec.warmup {
                Warmup::Secs(secs) => (secs * 1e9) as u64,
                _ => 0,
            };
            run_open(target, spec.threads, &schedule, warmup_cutoff_ns)
        }
    };
    LoadOutcome {
        spec,
        target: kind,
        recorder,
        wall,
        registers,
        warmup_ops: warmup.ops,
        warmup_wins: warmup.wins,
        svc_extras: Vec::new(),
    }
}

/// Unrecorded-window tally: enough to keep the safety accounting
/// (one winner per epoch) airtight across the warmup boundary.
#[derive(Debug, Clone, Copy, Default)]
struct WarmupTally {
    ops: u64,
    wins: u64,
}

impl WarmupTally {
    fn record(&mut self, won: bool) {
        self.ops += 1;
        self.wins += won as u64;
    }

    fn merge(&mut self, other: WarmupTally) {
        self.ops += other.ops;
        self.wins += other.wins;
    }
}

/// Arrive at a barrier exactly once, **even when unwinding**: a worker
/// that panics before its rendezvous (a warmup-epoch assertion, say)
/// must release the barrier on the way out rather than strand the main
/// thread in `wait()` forever — the panic then surfaces through the
/// ordinary `join` path.
struct Rendezvous<'a> {
    barrier: &'a Barrier,
    arrived: bool,
}

impl<'a> Rendezvous<'a> {
    fn new(barrier: &'a Barrier) -> Self {
        Rendezvous {
            barrier,
            arrived: false,
        }
    }

    fn arrive(&mut self) {
        if !self.arrived {
            self.arrived = true;
            self.barrier.wait();
        }
    }
}

impl Drop for Rendezvous<'_> {
    fn drop(&mut self) {
        self.arrive();
    }
}

fn run_closed<T: LoadTarget>(
    target: &T,
    threads: usize,
    ops_per_worker: u64,
    warmup_per_worker: u64,
    churn: Option<u64>,
) -> (LoadRecorder, WarmupTally, Duration) {
    let shards = target.shards();
    let bases = target.base_epochs();
    // Initial-fleet contexts are created HERE, before any thread or
    // barrier exists: a remote target's connect failure aborts the run
    // with a clean panic instead of stranding a half-spawned fleet.
    let contexts: Vec<T::Ctx> = (0..threads).map(|_| target.context()).collect();
    // Workers warm up, then rendezvous with the main thread so the
    // measured wall clock starts when every worker is hot.
    let barrier = Barrier::new(threads + 1);
    std::thread::scope(|s| {
        let handles: Vec<_> = contexts
            .into_iter()
            .enumerate()
            .map(|(slot, ctx)| {
                let bases = &bases;
                let barrier = &barrier;
                s.spawn(move || {
                    let mut ctx = ctx;
                    let mut rendezvous = Rendezvous::new(barrier);
                    let shard = slot % shards;
                    let warm_base = bases[shard];
                    let mut recorder = LoadRecorder::new(shards);
                    let mut warmup = WarmupTally::default();
                    for j in 0..warmup_per_worker {
                        warmup.record(target.resolve(&mut ctx, shard, warm_base + j));
                    }
                    rendezvous.arrive();
                    let base = warm_base + warmup_per_worker;
                    let mut next_op = 0u64;
                    while next_op < ops_per_worker {
                        // One worker *life*: without churn, all remaining
                        // ops on this thread; with churn, a bounded slice
                        // on a fresh OS thread (cold context included).
                        let len = churn
                            .map(|c| c.max(1).min(ops_per_worker - next_op))
                            .unwrap_or(ops_per_worker - next_op);
                        let run_life = |recorder: &mut LoadRecorder, ctx: &mut T::Ctx| {
                            for j in next_op..next_op + len {
                                let t0 = Instant::now();
                                let won = target.resolve(ctx, shard, base + j);
                                recorder.record(shard, t0.elapsed().as_secs_f64() * 1e6, won);
                            }
                        };
                        if churn.is_some() && len < ops_per_worker {
                            // Retirement/respawn: the slice runs on its own
                            // thread; the slot thread is just the supervisor.
                            std::thread::scope(|s2| {
                                s2.spawn(|| {
                                    let mut fresh = target.context();
                                    run_life(&mut recorder, &mut fresh);
                                })
                                .join()
                                .unwrap()
                            });
                        } else {
                            run_life(&mut recorder, &mut ctx);
                        }
                        next_op += len;
                    }
                    (recorder, warmup)
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        let mut merged = LoadRecorder::new(shards);
        let mut warmup = WarmupTally::default();
        for handle in handles {
            let (recorder, tally) = handle.join().expect("load worker panicked");
            merged.merge(&recorder);
            warmup.merge(tally);
        }
        (merged, warmup, start.elapsed())
    })
}

fn run_open<T: LoadTarget>(
    target: &T,
    threads: usize,
    schedule: &ArrivalSchedule,
    warmup_cutoff_ns: u64,
) -> (LoadRecorder, WarmupTally, Duration) {
    let shards = target.shards();
    let group = target.group() as u64;
    let bases = target.base_epochs();
    // Epoch-aligned warmup cut: shard `s`'s epoch `e` spans arrival
    // indices `s + shards·(e·group ..= e·group + group − 1)`; the epoch
    // is warmup iff its FIRST arrival is scheduled before the cutoff.
    // Classifying whole epochs (not individual arrivals) keeps each
    // window's win count a deterministic function of the seed — a
    // straddling epoch's winner would otherwise land in whichever
    // window its winning participant happened to occupy.
    let epochs_per_shard = schedule.len() / shards / group as usize;
    let warm_epochs: Vec<u64> = (0..shards)
        .map(|s| {
            (0..epochs_per_shard)
                .take_while(|&e| {
                    schedule.start_ns(s + shards * group as usize * e) < warmup_cutoff_ns
                })
                .count() as u64
        })
        .collect();
    // As in the closed loop: connect failures abort here, before the
    // schedule clock starts or any worker exists.
    let contexts: Vec<T::Ctx> = (0..threads).map(|_| target.context()).collect();
    let begin = Instant::now();
    let (recorder, warmup) = std::thread::scope(|s| {
        let handles: Vec<_> = contexts
            .into_iter()
            .enumerate()
            .map(|(worker, ctx)| {
                let bases = &bases;
                let warm_epochs = &warm_epochs;
                s.spawn(move || {
                    let mut ctx = ctx;
                    let mut recorder = LoadRecorder::new(shards);
                    let mut warmup = WarmupTally::default();
                    let mut i = worker;
                    while i < schedule.len() {
                        let shard = i % shards;
                        let epoch_seq = (i / shards) as u64 / group;
                        let epoch = bases[shard] + epoch_seq;
                        let due = begin + Duration::from_nanos(schedule.start_ns(i));
                        // Offered load: wait for the scheduled instant
                        // (sleep coarsely, spin the last stretch), but never
                        // skip an op we are late for — lateness shows up as
                        // queueing latency instead.
                        loop {
                            let now = Instant::now();
                            if now >= due {
                                break;
                            }
                            let remaining = due - now;
                            if remaining > Duration::from_micros(200) {
                                std::thread::sleep(remaining - Duration::from_micros(100));
                            } else {
                                std::hint::spin_loop();
                            }
                        }
                        let won = target.resolve(&mut ctx, shard, epoch);
                        if epoch_seq < warm_epochs[shard] {
                            warmup.record(won);
                        } else {
                            // Latency from the *scheduled* instant: queueing
                            // delay included, coordinated omission excluded.
                            recorder.record(shard, due.elapsed().as_secs_f64() * 1e6, won);
                        }
                        i += threads;
                    }
                    (recorder, warmup)
                })
            })
            .collect();
        let mut merged = LoadRecorder::new(shards);
        let mut warmup = WarmupTally::default();
        for handle in handles {
            let (recorder, tally) = handle.join().expect("load worker panicked");
            merged.merge(&recorder);
            warmup.merge(tally);
        }
        (merged, warmup)
    });
    let wall = begin
        .elapsed()
        .saturating_sub(Duration::from_nanos(warmup_cutoff_ns));
    (recorder, warmup, wall)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn closed_spec(threads: usize, shards: usize, total_ops: u64) -> LoadSpec {
        LoadSpec {
            backend: Backend::Combined,
            threads,
            shards,
            mode: Mode::Closed { total_ops },
            seed: 1,
            churn: None,
            warmup: Warmup::None,
            pipeline: 1,
            conns: None,
        }
    }

    #[test]
    fn closed_loop_one_winner_per_resolution() {
        let spec = closed_spec(4, 2, 400);
        let out = run_load(spec);
        assert_eq!(out.total_ops(), 400);
        assert_eq!(out.spec.group(), 2);
        assert_eq!(out.resolutions(), 200);
        assert_eq!(out.total_wins(), 200, "exactly one winner per epoch");
        assert!(out.throughput_ops_per_sec() > 0.0);
        assert!(out.registers > 0);
        assert_eq!(out.target, TargetKind::Native);
    }

    #[test]
    fn closed_loop_with_churn_matches_op_counts() {
        let mut spec = closed_spec(4, 2, 240);
        spec.churn = Some(13);
        let out = run_load(spec);
        assert_eq!(out.total_ops(), 240);
        assert_eq!(out.total_wins(), out.resolutions());
    }

    #[test]
    fn closed_loop_warmup_is_driven_but_unrecorded() {
        let mut spec = closed_spec(4, 2, 200);
        spec.warmup = Warmup::Ops(80);
        let out = run_load(spec);
        assert_eq!(out.total_ops(), 200, "recorder sees only measured ops");
        assert_eq!(out.warmup_ops, 80, "warmup ops are tallied separately");
        assert_eq!(out.all_ops(), 280);
        assert_eq!(out.resolutions(), 140, "warmup epochs complete too");
        assert_eq!(
            out.total_wins() + out.warmup_wins,
            out.resolutions(),
            "one winner per epoch across the warmup boundary"
        );
        // Warmup ops must not inflate the latency distribution.
        assert_eq!(out.recorder.overall_latency().count, 200);
    }

    #[test]
    fn open_loop_warmup_window_is_excluded_from_stats() {
        let spec = LoadSpec {
            backend: Backend::LogStar,
            threads: 4,
            shards: 2,
            mode: Mode::Open {
                rate: 40_000.0,
                duration_secs: 0.05,
            },
            seed: 9,
            churn: None,
            warmup: Warmup::Secs(0.02),
            pipeline: 1,
            conns: None,
        };
        let mut expected = ArrivalSchedule::poisson(40_000.0, 0.05, 9);
        expected.truncate_to_multiple_of(4);
        let cutoff = 0.02e9 as u64;
        // The epoch-aligned cut: shard s's epoch e is warmup iff its
        // first arrival (index s + shards·group·e) is before the cutoff.
        let (shards, group) = (2usize, 2usize);
        let epochs_per_shard = expected.len() / shards / group;
        let expected_warm: u64 = (0..shards)
            .map(|s| {
                (0..epochs_per_shard)
                    .take_while(|&e| expected.start_ns(s + shards * group * e) < cutoff)
                    .count() as u64
                    * group as u64
            })
            .sum();
        let out = run_load(spec);
        assert!(expected_warm > 0, "cutoff must cover some epochs");
        assert_eq!(out.warmup_ops, expected_warm);
        assert_eq!(out.all_ops(), expected.len() as u64);
        assert_eq!(out.total_ops(), expected.len() as u64 - expected_warm);
        assert_eq!(out.total_wins() + out.warmup_wins, out.resolutions());
        // Epoch alignment makes the per-shard win accounting exact and
        // deterministic: measured wins == measured epochs on every shard.
        for cell in out.recorder.shard_stats() {
            assert_eq!(cell.ops % group as u64, 0);
            assert_eq!(cell.wins, cell.ops / group as u64);
        }
    }

    #[test]
    fn open_loop_completes_schedule_exactly() {
        let spec = LoadSpec {
            backend: Backend::LogStar,
            threads: 4,
            shards: 2,
            mode: Mode::Open {
                rate: 40_000.0,
                duration_secs: 0.05,
            },
            seed: 9,
            churn: None,
            warmup: Warmup::None,
            pipeline: 1,
            conns: None,
        };
        let mut expected = ArrivalSchedule::poisson(40_000.0, 0.05, 9);
        expected.truncate_to_multiple_of(4);
        let out = run_load(spec);
        assert_eq!(out.total_ops(), expected.len() as u64);
        assert_eq!(out.total_wins(), out.resolutions());
    }

    #[test]
    fn report_shape_per_shard_plus_total() {
        let out = run_load(closed_spec(2, 2, 100));
        let report = out.bench_report();
        assert_eq!(report.name(), "native_load");
        assert_eq!(report.rows().len(), 3, "2 shard rows + 1 total row");
        let total = report.rows().last().unwrap();
        assert!(total.labels.contains(&("scope".into(), "total".into())));
        assert!(total.labels.contains(&("gate".into(), "wall".into())));
        // Pipelining depth is row identity: baselines taken at depth 1
        // never silently compare against pipelined runs.
        for row in report.rows() {
            assert!(row.labels.contains(&("pipeline".into(), "1".into())));
        }
        assert_eq!(total.trials, 100);
        // Error classes ride the total row — zero on a clean network,
        // but always present so degraded runs diff structurally.
        for key in [
            "err_timeouts",
            "err_retries",
            "err_reconnects",
            "err_reclaimed",
        ] {
            assert!(
                total.extra.iter().any(|(k, v)| k == key && *v == 0.0),
                "{key} present and zero on a clean run"
            );
        }
        // Round-trips through the JSON machinery like every report.
        let parsed = BenchReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(parsed, report);
    }

    #[test]
    fn slo_violations_fire_only_beyond_limits() {
        let out = run_load(closed_spec(2, 1, 50));
        let lenient = Slo {
            p50_us: Some(1e9),
            p99_us: Some(1e9),
        };
        assert!(lenient.violations(&out).is_empty());
        let strict = Slo {
            p50_us: Some(0.0),
            p99_us: None,
        };
        assert_eq!(strict.violations(&out).len(), 1);
    }

    #[test]
    fn slo_fails_a_run_that_did_nothing() {
        // 10 ops/s for 0.1s rounds to ~1 arrival, truncated to 0 by the
        // 4-thread striping: the run completes zero operations and any
        // configured SLO must fail rather than vacuously pass.
        let out = run_load(LoadSpec {
            backend: Backend::LogStar,
            threads: 4,
            shards: 2,
            mode: Mode::Open {
                rate: 10.0,
                duration_secs: 0.1,
            },
            seed: 1,
            churn: None,
            warmup: Warmup::None,
            pipeline: 1,
            conns: None,
        });
        assert_eq!(out.total_ops(), 0);
        let slo = Slo {
            p50_us: None,
            p99_us: Some(5_000.0),
        };
        let violations = slo.violations(&out);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("zero operations"));
        // With no SLO configured, an empty run is not a violation.
        assert!(Slo::default().violations(&out).is_empty());
    }

    #[test]
    #[should_panic(expected = "multiple of shards")]
    fn mismatched_threads_shards_rejected() {
        run_load(closed_spec(3, 2, 10));
    }

    #[test]
    #[should_panic(expected = "pipeline depth must be at least 1")]
    fn zero_pipeline_rejected() {
        let mut spec = closed_spec(2, 1, 10);
        spec.pipeline = 0;
        run_load(spec);
    }

    #[test]
    #[should_panic(expected = "requires threads == shards")]
    fn pipelining_with_peer_groups_rejected() {
        let mut spec = closed_spec(4, 2, 10);
        spec.pipeline = 4;
        run_load(spec);
    }

    #[test]
    #[should_panic(expected = "positive multiple of threads")]
    fn conns_must_divide_evenly_across_workers() {
        let mut spec = closed_spec(4, 2, 10);
        spec.conns = Some(6); // 6 % 4 != 0
        spec.validate();
    }

    #[test]
    #[should_panic(expected = "lockstep axis")]
    fn conns_with_pipelining_rejected() {
        let mut spec = closed_spec(2, 2, 10);
        spec.pipeline = 2;
        spec.conns = Some(4);
        spec.validate();
    }

    #[test]
    #[should_panic(expected = "remote axis")]
    fn conns_against_the_native_target_rejected() {
        let mut spec = closed_spec(2, 1, 10);
        spec.conns = Some(4);
        run_load(spec);
    }

    #[test]
    fn conns_label_marks_every_fan_out_row() {
        let spec = closed_spec(2, 1, 100);
        let mut out = run_load(spec);
        // Native reports carry no conns label...
        let plain = out.bench_report();
        assert!(plain
            .rows()
            .iter()
            .all(|r| !r.labels.iter().any(|(k, _)| k == "conns")));
        // ...while a fan-out outcome labels every row, and the report
        // lands under the dedicated c10k name.
        out.spec.conns = Some(8);
        out.target = TargetKind::C10k;
        let fanned = out.bench_report();
        assert_eq!(fanned.name(), "svc_c10k");
        assert!(fanned
            .rows()
            .iter()
            .all(|r| r.labels.iter().any(|(k, v)| k == "conns" && v == "8")));
    }

    #[test]
    #[should_panic(expected = "churn is a closed-loop axis")]
    fn open_loop_churn_rejected() {
        let mut spec = closed_spec(2, 1, 10);
        spec.mode = Mode::Open {
            rate: 1000.0,
            duration_secs: 0.01,
        };
        spec.churn = Some(5);
        run_load(spec);
    }

    #[test]
    #[should_panic(expected = "Warmup::Ops is a closed-loop axis")]
    fn open_loop_op_warmup_rejected() {
        let mut spec = closed_spec(2, 1, 10);
        spec.mode = Mode::Open {
            rate: 1000.0,
            duration_secs: 0.01,
        };
        spec.warmup = Warmup::Ops(10);
        run_load(spec);
    }

    #[test]
    #[should_panic(expected = "Warmup::Secs is an open-loop axis")]
    fn closed_loop_secs_warmup_rejected() {
        let mut spec = closed_spec(2, 1, 10);
        spec.warmup = Warmup::Secs(0.5);
        run_load(spec);
    }

    #[test]
    #[should_panic(expected = "shorter")]
    fn warmup_longer_than_schedule_rejected() {
        let mut spec = closed_spec(2, 1, 10);
        spec.mode = Mode::Open {
            rate: 1000.0,
            duration_secs: 0.01,
        };
        spec.warmup = Warmup::Secs(0.5);
        run_load(spec);
    }

    #[test]
    fn default_shards_always_divides_threads() {
        for threads in 1..=64 {
            let shards = default_shards(threads);
            assert!(shards >= 1);
            assert_eq!(threads % shards, 0, "threads={threads} shards={shards}");
        }
        assert_eq!(default_shards(8), 4);
        assert_eq!(default_shards(6), 3);
        assert_eq!(default_shards(5), 1, "prime: solo shard");
        assert_eq!(default_shards(12), 6);
        assert_eq!(default_shards(0), 1);
    }

    #[test]
    fn backend_labels_round_trip() {
        for backend in [
            Backend::LogStar,
            Backend::LogLog,
            Backend::RatRace,
            Backend::Combined,
        ] {
            assert_eq!(parse_backend(backend_label(backend)), Some(backend));
        }
        assert_eq!(parse_backend("nope"), None);
    }
}
