//! Wall-clock benches for simulated step complexity (E2/E3/E4
//! companions).
//!
//! Measures whole simulated executions; the interesting output is the
//! *relative* cost across algorithms at equal contention, which tracks
//! their step complexity since per-step cost is uniform in the simulator.

use std::sync::Arc;

use rtas::algorithms::{LogLogLe, LogStarLe, SpaceEfficientRatRace};
use rtas::primitives::LeaderElect;
use rtas::sim::adversary::RandomSchedule;
use rtas::sim::executor::Execution;
use rtas::sim::memory::Memory;
use rtas::sim::protocol::Protocol;
use rtas_bench::microbench::Micro;

fn run_le(build: impl Fn(&mut Memory) -> Arc<dyn LeaderElect>, k: usize, seed: u64) -> u64 {
    let mut mem = Memory::new();
    let le = build(&mut mem);
    let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
    let res = Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed));
    assert!(res.all_finished());
    res.steps().total()
}

fn main() {
    let micro = Micro::from_env();
    micro.group("simulated-election");
    for k in [16usize, 64, 256] {
        micro.bench(&format!("logstar/{k}"), |seed| {
            run_le(|m| Arc::new(LogStarLe::new(m, k)), k, seed)
        });
        micro.bench(&format!("loglog/{k}"), |seed| {
            run_le(|m| Arc::new(LogLogLe::new(m, k)), k, seed)
        });
        micro.bench(&format!("ratrace/{k}"), |seed| {
            run_le(|m| Arc::new(SpaceEfficientRatRace::new(m, k)), k, seed)
        });
    }
}
