//! Criterion benches for simulated step complexity (E2/E3/E4 companions).
//!
//! Criterion measures wall-clock of whole simulated executions; the
//! interesting output is the *relative* cost across algorithms at equal
//! contention, which tracks their step complexity since per-step cost is
//! uniform in the simulator.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtas::algorithms::{LogLogLe, LogStarLe, SpaceEfficientRatRace};
use rtas::primitives::LeaderElect;
use rtas::sim::adversary::RandomSchedule;
use rtas::sim::executor::Execution;
use rtas::sim::memory::Memory;
use rtas::sim::protocol::Protocol;

fn run_le(build: impl Fn(&mut Memory) -> Arc<dyn LeaderElect>, k: usize, seed: u64) -> u64 {
    let mut mem = Memory::new();
    let le = build(&mut mem);
    let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
    let res = Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed));
    assert!(res.all_finished());
    res.steps().total()
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulated-election");
    for k in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("logstar", k), &k, |b, &k| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_le(|m| Arc::new(LogStarLe::new(m, k)), k, seed)
            });
        });
        group.bench_with_input(BenchmarkId::new("loglog", k), &k, |b, &k| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_le(|m| Arc::new(LogLogLe::new(m, k)), k, seed)
            });
        });
        group.bench_with_input(BenchmarkId::new("ratrace", k), &k, |b, &k| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_le(|m| Arc::new(SpaceEfficientRatRace::new(m, k)), k, seed)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_algorithms
}
criterion_main!(benches);
