//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! * `geometric-ell` — Figure 1's array parameter ℓ: the paper uses
//!   ℓ = ⌈log₂ n⌉; shrinking it degrades the performance parameter.
//! * `logstar-real-levels` — Theorem 2.3's dummy-tail replacement: how
//!   many real (geometric) levels are actually needed before dummies take
//!   over without hurting step complexity.
//! * `sifting-pi` — the write-probability schedule of the sifting round:
//!   π = 1/√k is the optimum; the bench brackets it.

use std::sync::Arc;

use rtas::algorithms::group_elect::{run_group_election, GeometricGroupElect, SiftingGroupElect};
use rtas::algorithms::LogStarLe;
use rtas::primitives::LeaderElect;
use rtas::sim::adversary::RandomSchedule;
use rtas::sim::executor::Execution;
use rtas::sim::memory::Memory;
use rtas::sim::protocol::Protocol;
use rtas_bench::microbench::Micro;

fn bench_geometric_ell(micro: &Micro) {
    micro.group("geometric-ell");
    let k = 128;
    for ell in [2u64, 4, 8, 16] {
        micro.bench(&format!("ell/{ell}"), |seed| {
            let mut mem = Memory::new();
            let ge = GeometricGroupElect::with_ell(&mut mem, ell, "ge");
            run_group_election(mem, &ge, k, seed, &mut RandomSchedule::new(seed))
        });
    }
}

fn bench_logstar_real_levels(micro: &Micro) {
    micro.group("logstar-real-levels");
    let k = 64;
    for levels in [1usize, 4, 12, 32] {
        micro.bench(&format!("levels/{levels}"), |seed| {
            let mut mem = Memory::new();
            let le = LogStarLe::with_real_levels(&mut mem, k, levels);
            let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| LeaderElect::elect(&le)).collect();
            let res = Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed ^ 0xab));
            assert!(res.all_finished());
            res.steps().max()
        });
    }
}

fn bench_sifting_pi(micro: &Micro) {
    micro.group("sifting-pi");
    let k = 256usize;
    let opt = 1.0 / (k as f64).sqrt();
    for (name, pi) in [
        ("quarter-opt", opt / 4.0),
        ("optimal", opt),
        ("4x-opt", (opt * 4.0).min(1.0)),
    ] {
        micro.bench(name, |seed| {
            let mut mem = Memory::new();
            let ge = SiftingGroupElect::new(&mut mem, pi, "sift");
            run_group_election(mem, &ge, k, seed, &mut RandomSchedule::new(seed))
        });
    }
}

fn bench_combined_overhead(micro: &Micro) {
    // The combiner interleaves two executions: measure its constant-factor
    // overhead against plain RatRace at equal contention.
    use rtas::algorithms::{Combined, SpaceEfficientRatRace};
    micro.group("combiner-overhead");
    let k = 64;
    micro.bench("ratrace-alone", |seed| {
        let mut mem = Memory::new();
        let le = SpaceEfficientRatRace::new(&mut mem, k);
        let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| LeaderElect::elect(&le)).collect();
        Execution::new(mem, protos, seed)
            .run(&mut RandomSchedule::new(seed))
            .steps()
            .total()
    });
    micro.bench("combined", |seed| {
        let mut mem = Memory::new();
        let weak = Arc::new(LogStarLe::new(&mut mem, k));
        let le = Combined::new(&mut mem, weak, k);
        let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| LeaderElect::elect(&le)).collect();
        Execution::new(mem, protos, seed)
            .run(&mut RandomSchedule::new(seed))
            .steps()
            .total()
    });
}

fn main() {
    let micro = Micro::from_env();
    bench_geometric_ell(&micro);
    bench_logstar_real_levels(&micro);
    bench_sifting_pi(&micro);
    bench_combined_overhead(&micro);
}
