//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! * `geometric-ell` — Figure 1's array parameter ℓ: the paper uses
//!   ℓ = ⌈log₂ n⌉; shrinking it degrades the performance parameter.
//! * `logstar-real-levels` — Theorem 2.3's dummy-tail replacement: how
//!   many real (geometric) levels are actually needed before dummies take
//!   over without hurting step complexity.
//! * `sifting-pi` — the write-probability schedule of the sifting round:
//!   π = 1/√k is the optimum; the bench brackets it.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtas::algorithms::group_elect::{run_group_election, GeometricGroupElect, SiftingGroupElect};
use rtas::algorithms::LogStarLe;
use rtas::primitives::LeaderElect;
use rtas::sim::adversary::RandomSchedule;
use rtas::sim::executor::Execution;
use rtas::sim::memory::Memory;
use rtas::sim::protocol::Protocol;

fn bench_geometric_ell(c: &mut Criterion) {
    let mut group = c.benchmark_group("geometric-ell");
    let k = 128;
    for ell in [2u64, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(ell), &ell, |b, &ell| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut mem = Memory::new();
                let ge = GeometricGroupElect::with_ell(&mut mem, ell, "ge");
                run_group_election(mem, &ge, k, seed, &mut RandomSchedule::new(seed))
            });
        });
    }
    group.finish();
}

fn bench_logstar_real_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("logstar-real-levels");
    let k = 64;
    for levels in [1usize, 4, 12, 32] {
        group.bench_with_input(
            BenchmarkId::from_parameter(levels),
            &levels,
            |b, &levels| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut mem = Memory::new();
                    let le = LogStarLe::with_real_levels(&mut mem, k, levels);
                    let protos: Vec<Box<dyn Protocol>> =
                        (0..k).map(|_| LeaderElect::elect(&le)).collect();
                    let res = Execution::new(mem, protos, seed)
                        .run(&mut RandomSchedule::new(seed ^ 0xab));
                    assert!(res.all_finished());
                    res.steps().max()
                });
            },
        );
    }
    group.finish();
}

fn bench_sifting_pi(c: &mut Criterion) {
    let mut group = c.benchmark_group("sifting-pi");
    let k = 256usize;
    let opt = 1.0 / (k as f64).sqrt();
    for (name, pi) in [
        ("quarter-opt", opt / 4.0),
        ("optimal", opt),
        ("4x-opt", (opt * 4.0).min(1.0)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &pi, |b, &pi| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut mem = Memory::new();
                let ge = SiftingGroupElect::new(&mut mem, pi, "sift");
                run_group_election(mem, &ge, k, seed, &mut RandomSchedule::new(seed))
            });
        });
    }
    group.finish();
}

fn bench_combined_overhead(c: &mut Criterion) {
    // The combiner interleaves two executions: measure its constant-factor
    // overhead against plain RatRace at equal contention.
    use rtas::algorithms::{Combined, SpaceEfficientRatRace};
    let mut group = c.benchmark_group("combiner-overhead");
    let k = 64;
    group.bench_function("ratrace-alone", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut mem = Memory::new();
            let le = SpaceEfficientRatRace::new(&mut mem, k);
            let protos: Vec<Box<dyn Protocol>> =
                (0..k).map(|_| LeaderElect::elect(&le)).collect();
            Execution::new(mem, protos, seed)
                .run(&mut RandomSchedule::new(seed))
                .steps()
                .total()
        });
    });
    group.bench_function("combined", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut mem = Memory::new();
            let weak = Arc::new(LogStarLe::new(&mut mem, k));
            let le = Combined::new(&mut mem, weak, k);
            let protos: Vec<Box<dyn Protocol>> =
                (0..k).map(|_| LeaderElect::elect(&le)).collect();
            Execution::new(mem, protos, seed)
                .run(&mut RandomSchedule::new(seed))
                .steps()
                .total()
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_geometric_ell, bench_logstar_real_levels, bench_sifting_pi, bench_combined_overhead
}
criterion_main!(benches);
