//! Criterion benches for structure construction cost and space (E4
//! companion): building the Θ(n) space-efficient RatRace vs declaring the
//! Θ(n³) original, across n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtas::algorithms::{LogLogLe, LogStarLe, OriginalRatRace, SpaceEfficientRatRace};
use rtas::sim::memory::Memory;

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    for n in [64usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::new("logstar", n), &n, |b, &n| {
            b.iter(|| {
                let mut mem = Memory::new();
                let le = LogStarLe::new(&mut mem, n);
                (le.levels(), mem.declared_registers())
            });
        });
        group.bench_with_input(BenchmarkId::new("loglog", n), &n, |b, &n| {
            b.iter(|| {
                let mut mem = Memory::new();
                let le = LogLogLe::new(&mut mem, n);
                (le.stages(), mem.declared_registers())
            });
        });
        group.bench_with_input(BenchmarkId::new("ratrace-space-eff", n), &n, |b, &n| {
            b.iter(|| {
                let mut mem = Memory::new();
                let rr = SpaceEfficientRatRace::new(&mut mem, n);
                (rr.height(), mem.declared_registers())
            });
        });
        group.bench_with_input(BenchmarkId::new("ratrace-original", n), &n, |b, &n| {
            b.iter(|| {
                let mut mem = Memory::new();
                let rr = OriginalRatRace::new(&mut mem, n);
                (rr.tree_height(), mem.declared_registers())
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_construction
}
criterion_main!(benches);
