//! Wall-clock benches for structure construction cost and space (E4
//! companion): building the Θ(n) space-efficient RatRace vs declaring the
//! Θ(n³) original, across n.

use rtas::algorithms::{LogLogLe, LogStarLe, OriginalRatRace, SpaceEfficientRatRace};
use rtas::sim::memory::Memory;
use rtas_bench::microbench::Micro;

fn main() {
    let micro = Micro::from_env();
    micro.group("construction");
    for n in [64usize, 256, 1024] {
        micro.bench(&format!("logstar/{n}"), |_| {
            let mut mem = Memory::new();
            let le = LogStarLe::new(&mut mem, n);
            (le.levels(), mem.declared_registers())
        });
        micro.bench(&format!("loglog/{n}"), |_| {
            let mut mem = Memory::new();
            let le = LogLogLe::new(&mut mem, n);
            (le.stages(), mem.declared_registers())
        });
        micro.bench(&format!("ratrace-space-eff/{n}"), |_| {
            let mut mem = Memory::new();
            let rr = SpaceEfficientRatRace::new(&mut mem, n);
            (rr.height(), mem.declared_registers())
        });
        micro.bench(&format!("ratrace-original/{n}"), |_| {
            let mut mem = Memory::new();
            let rr = OriginalRatRace::new(&mut mem, n);
            (rr.tree_height(), mem.declared_registers())
        });
    }
}
