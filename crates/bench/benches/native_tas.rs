//! Criterion benches for the native (real-atomics) objects.
//!
//! Measures the wall-clock latency of a full `test_and_set` resolution
//! with `k` concurrent threads per backend — the "would you actually use
//! this" numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtas::{Backend, TestAndSet};

fn resolve_once(backend: Backend, threads: usize) -> usize {
    let tas = TestAndSet::with_backend(backend, threads);
    let winners: usize = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| s.spawn(|_| tas.test_and_set()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&already| !already)
            .count()
    })
    .unwrap();
    assert_eq!(winners, 1);
    winners
}

fn bench_native(c: &mut Criterion) {
    let mut group = c.benchmark_group("native-tas");
    for threads in [2usize, 4, 8] {
        for backend in [Backend::LogStar, Backend::RatRace, Backend::Combined] {
            group.bench_with_input(
                BenchmarkId::new(format!("{backend:?}"), threads),
                &threads,
                |b, &threads| b.iter(|| resolve_once(backend, threads)),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_native
}
criterion_main!(benches);
