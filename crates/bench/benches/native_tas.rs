//! Wall-clock benches for the native (real-atomics) objects.
//!
//! Measures the latency of a full `test_and_set` resolution with `k`
//! concurrent threads per backend — the "would you actually use this"
//! numbers.

use rtas::{Backend, TestAndSet};
use rtas_bench::microbench::Micro;

fn resolve_once(backend: Backend, threads: usize) -> usize {
    let tas = TestAndSet::with_backend(backend, threads);
    let winners: usize = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| s.spawn(|| tas.test_and_set()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&already_set| !already_set)
            .count()
    });
    assert_eq!(winners, 1);
    winners
}

fn main() {
    let micro = Micro::from_env();
    micro.group("native-tas");
    for threads in [2usize, 4, 8] {
        for backend in [Backend::LogStar, Backend::RatRace, Backend::Combined] {
            micro.bench(&format!("{backend:?}/{threads}"), |_| {
                resolve_once(backend, threads)
            });
        }
    }
}
