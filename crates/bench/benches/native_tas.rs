//! Wall-clock benches for the native (real-atomics) objects.
//!
//! Measures the cost of a full test-and-set *resolution* with `k`
//! concurrent threads per backend — the "would you actually use this"
//! numbers. Operations go through the `rtas-load` sharded arena: one
//! pool of objects is built per configuration and recycled by epoch
//! across every sample, so the timed section contains resolution cost
//! only — not the construction of a fresh `TestAndSet` per iteration
//! (which used to dominate and made the old numbers constructor
//! benchmarks in disguise).

use std::sync::Arc;

use rtas::Backend;
use rtas_bench::microbench::Micro;
use rtas_load::driver::{run_load_on, LoadSpec, Mode, Warmup};
use rtas_load::TasArena;

/// Epochs per timed sample: enough to amortize thread spawn/join out of
/// the per-resolution figure.
const EPOCHS_PER_SAMPLE: u64 = 200;

fn bench_backend(micro: &Micro, backend: Backend, threads: usize) {
    // One shard, all threads in its group: the maximal-contention
    // resolution the old bench was after. The arena (and its registers)
    // lives across all samples; only epochs advance.
    let arena = Arc::new(TasArena::new(backend, 1, threads));
    let spec = LoadSpec {
        backend,
        threads,
        shards: 1,
        mode: Mode::Closed {
            total_ops: EPOCHS_PER_SAMPLE * threads as u64,
        },
        seed: 0,
        churn: None,
        warmup: Warmup::None,
        pipeline: 1,
        conns: None,
    };
    micro.bench(
        &format!("{backend:?}/{threads}thr x{EPOCHS_PER_SAMPLE}res"),
        |_| {
            let out = run_load_on(&arena, spec);
            assert_eq!(
                out.total_wins(),
                EPOCHS_PER_SAMPLE,
                "exactly one winner per resolution"
            );
            out.total_ops()
        },
    );
}

fn main() {
    let micro = Micro::from_env();
    micro.group("native-tas (per-sample: 200 arena resolutions, objects recycled not rebuilt)");
    for threads in [2usize, 4, 8] {
        for backend in [Backend::LogStar, Backend::RatRace, Backend::Combined] {
            bench_backend(&micro, backend, threads);
        }
    }
}
