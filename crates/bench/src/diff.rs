//! The perf-regression gate: compare two sets of `BENCH_*.json` reports.
//!
//! The experiments binary emits distributional rows (see
//! [`crate::report`]); committed baselines live under `baselines/` in
//! the repository. This module compares a freshly emitted report
//! directory against those baselines with *noise-aware, per-metric*
//! relative thresholds:
//!
//! * `mean`, `p50`, `p90` — the stable center of the distribution —
//!   gate at the tight [`Tolerances::mean`] (default 10%);
//! * `worst`, `p99` — tail statistics with genuine sampling noise —
//!   gate at the wider [`Tolerances::tail`] (default 25%);
//! * `wall_ms` — wall-clock, machine-dependent — gates at the very wide
//!   [`Tolerances::wall`] (default 9.0, i.e. a 10× slowdown fails) and
//!   can be disabled entirely with [`Tolerances::check_wall`] for
//!   cross-machine comparisons (CI runners vs. the laptop that recorded
//!   the baselines);
//! * `min`, `stddev`, `ci95`, and the experiment-specific extras are
//!   informational only — their regression direction is
//!   metric-dependent (a higher `mean_finished` is *better*), so they
//!   never gate on tolerance. Extras *do* gate structurally: a key
//!   appearing or vanishing, or a value flipping between finite and
//!   null, fails the comparison (the error-class counters on the load
//!   reports rely on this — `err_timeouts` silently disappearing would
//!   otherwise look like a clean run).
//!
//! **Wall-derived rows.** A row labeled `gate=wall` (the
//! `BENCH_native_load.json` rows: throughput and latency quantiles
//! measured on real threads) is wall-clock-derived in *every* metric,
//! not just `wall_ms`. Such rows are validated structurally — the row
//! must exist, its `trials` (operation count) must match, and no metric
//! may flip between finite and null — but they are **skipped by
//! tolerance gating** unless [`Tolerances::gate_wall_rows`] is enabled
//! (the `bench-diff` binary's `--gate-wall` flag), in which case the
//! nine core metrics (the latency distribution plus `wall_ms`) gate at
//! the wide wall tolerance. Extras (`throughput_ops_s`, `ops`, ...)
//! remain informational even then, per the global rule above — their
//! regression direction is metric-dependent (higher throughput is
//! *better*). The default keeps cross-machine CI runs honest: a slower
//! runner must not fail the gate, but a vanished shard or a changed op
//! count must.
//!
//! Step-count metrics are bit-deterministic per seed, so any drift in
//! them is a real behavioral change, not noise; the tolerances exist to
//! let intentional small algorithm changes through while catching
//! order-of-magnitude regressions. Structural drift — rows added or
//! removed, trial counts changed — always fails, because the comparison
//! is meaningless; refresh the baselines instead (commit with
//! `[bench-reset]`, see the README).
//!
//! The `bench-diff` binary (`crates/bench/src/bin/bench_diff.rs`) wraps
//! [`diff_dirs`] with a CLI, prints the markdown delta table, and exits
//! non-zero on regression.

use std::collections::BTreeMap;
use std::path::Path;

use crate::report::{BenchReport, BenchRow};

/// Deterministic metrics never drift without a real change; the wall
/// clock jitters by whole milliseconds even on one machine.
const STEP_ABS_SLACK: f64 = 1e-9;
const WALL_ABS_SLACK_MS: f64 = 1.0;

/// Relative tolerances for the regression gate, per metric class.
#[derive(Debug, Clone, PartialEq)]
pub struct Tolerances {
    /// Center statistics: `mean`, `p50`, `p90`.
    pub mean: f64,
    /// Tail statistics: `worst`, `p99`.
    pub tail: f64,
    /// Wall clock: `wall_ms`. `9.0` means "allow up to 10× slower".
    pub wall: f64,
    /// Whether `wall_ms` gates at all. Disable when baseline and
    /// current ran on different machines.
    pub check_wall: bool,
    /// Whether rows labeled `gate=wall` (entirely wall-clock-derived,
    /// e.g. the native load harness's latency rows) gate at all. Off by
    /// default — they are structurally validated only; enable via the
    /// binary's `--gate-wall` for same-machine comparisons, which gates
    /// the nine core metrics of such rows at the wide
    /// [`Tolerances::wall`] (extras stay informational, as everywhere).
    pub gate_wall_rows: bool,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            mean: 0.10,
            tail: 0.25,
            wall: 9.0,
            check_wall: true,
            gate_wall_rows: false,
        }
    }
}

impl Tolerances {
    /// The (relative tolerance, absolute slack) this metric gates at,
    /// or `None` if it is informational only.
    fn for_metric(&self, metric: &str) -> Option<(f64, f64)> {
        match metric {
            "mean" | "p50" | "p90" => Some((self.mean, STEP_ABS_SLACK)),
            "worst" | "p99" => Some((self.tail, STEP_ABS_SLACK)),
            "wall_ms" if self.check_wall => Some((self.wall, WALL_ABS_SLACK_MS)),
            _ => None,
        }
    }
}

/// Verdict for one gated metric of one row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Within tolerance of the baseline.
    Ok,
    /// Current is better than the baseline by more than the tolerance.
    Improved,
    /// Current is worse than the baseline by more than the tolerance.
    Regressed,
}

/// One gated metric comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// The row's identity: `k` plus labels (see [`BenchRow::key`]).
    pub row: String,
    /// Metric name (`mean`, `p99`, `wall_ms`, ...).
    pub metric: &'static str,
    /// Baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub current: f64,
    /// Relative tolerance the metric gated at.
    pub tolerance: f64,
    /// Verdict.
    pub status: Status,
}

impl MetricDelta {
    /// Relative change in percent (`+` is worse for gated metrics).
    pub fn delta_percent(&self) -> f64 {
        if self.baseline == 0.0 {
            if self.current == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.current - self.baseline) / self.baseline * 100.0
        }
    }
}

/// The comparison of one experiment's report against its baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportDiff {
    /// Experiment name.
    pub experiment: String,
    /// Per-metric verdicts, in row order.
    pub deltas: Vec<MetricDelta>,
    /// In-row structural mismatches (trial counts changed, non-finite
    /// vs finite metric). Any entry fails the gate.
    pub structural: Vec<String>,
    /// Row keys present in the baseline but absent from this run — the
    /// "which rows vanished" half of structural drift. Any entry fails
    /// the gate.
    pub missing_rows: Vec<String>,
    /// Row keys present in this run but absent from the baseline — the
    /// "which rows appeared" half of structural drift. Any entry fails
    /// the gate.
    pub extra_rows: Vec<String>,
}

impl ReportDiff {
    /// Whether this report fails the gate.
    pub fn regressed(&self) -> bool {
        !self.structural.is_empty()
            || !self.missing_rows.is_empty()
            || !self.extra_rows.is_empty()
            || self.deltas.iter().any(|d| d.status == Status::Regressed)
    }

    /// Count of structural failures (in-row mismatches plus missing and
    /// extra rows).
    pub fn structural_failures(&self) -> usize {
        self.structural.len() + self.missing_rows.len() + self.extra_rows.len()
    }

    /// Deltas that changed beyond tolerance, either way.
    pub fn changed(&self) -> impl Iterator<Item = &MetricDelta> {
        self.deltas.iter().filter(|d| d.status != Status::Ok)
    }
}

fn compare_rows(base: &BenchRow, cur: &BenchRow, tol: &Tolerances, out: &mut ReportDiff) {
    let key = cur.key();
    if base.trials != cur.trials {
        out.structural.push(format!(
            "{key}: trials changed {} -> {} (baseline is stale; refresh with [bench-reset])",
            base.trials, cur.trials
        ));
        return;
    }
    // A `gate=wall` label marks every metric of the row as
    // wall-clock-derived: structural checks always apply, tolerance
    // gating only under `gate_wall_rows` (see the module docs).
    let wall_row = cur
        .labels
        .iter()
        .any(|(name, value)| name == "gate" && value == "wall");
    let base_metrics = base.metrics();
    for (metric, cur_value) in cur.metrics() {
        let gating = if wall_row {
            tol.gate_wall_rows.then_some((tol.wall, WALL_ABS_SLACK_MS))
        } else {
            tol.for_metric(metric)
        };
        if gating.is_none() && !wall_row {
            continue;
        }
        let base_value = base_metrics
            .iter()
            .find(|(name, _)| *name == metric)
            .expect("metrics() is a fixed set")
            .1;
        if !base_value.is_finite() || !cur_value.is_finite() {
            if base_value.is_finite() != cur_value.is_finite() {
                out.structural.push(format!(
                    "{key}: {metric} flipped finiteness ({base_value} -> {cur_value})"
                ));
            }
            continue;
        }
        let Some((rel, abs)) = gating else {
            continue;
        };
        // The improvement band is ratio-symmetric with the regression
        // band (base/(1+rel), not base*(1-rel)): with a wide tolerance
        // like wall's 9.0 the linear form would go negative and real
        // speedups would never be reported.
        let status = if cur_value > base_value * (1.0 + rel) + abs {
            Status::Regressed
        } else if cur_value < base_value / (1.0 + rel) - abs {
            Status::Improved
        } else {
            Status::Ok
        };
        out.deltas.push(MetricDelta {
            row: key.clone(),
            metric,
            baseline: base_value,
            current: cur_value,
            tolerance: rel,
            status,
        });
    }
    // Extras never gate on tolerance (their regression direction is
    // metric-dependent), but their *shape* is part of the report
    // schema: a key appearing or vanishing, or a value flipping
    // between finite and null, means producer and baseline no longer
    // describe the same experiment.
    for (name, cur_value) in &cur.extra {
        match base.extra.iter().find(|(n, _)| n == name) {
            None => out.structural.push(format!(
                "{key}: extra metric {name} has no baseline value \
                 (schema changed; refresh with [bench-reset])"
            )),
            Some((_, base_value)) => {
                if base_value.is_finite() != cur_value.is_finite() {
                    out.structural.push(format!(
                        "{key}: {name} flipped finiteness ({base_value} -> {cur_value})"
                    ));
                }
            }
        }
    }
    for (name, _) in &base.extra {
        if !cur.extra.iter().any(|(n, _)| n == name) {
            out.structural
                .push(format!("{key}: extra metric {name} vanished from this run"));
        }
    }
}

/// Compare one freshly measured report against its baseline.
pub fn diff_reports(baseline: &BenchReport, current: &BenchReport, tol: &Tolerances) -> ReportDiff {
    let mut out = ReportDiff {
        experiment: current.name().to_string(),
        deltas: Vec::new(),
        structural: Vec::new(),
        missing_rows: Vec::new(),
        extra_rows: Vec::new(),
    };
    if baseline.name() != current.name() {
        out.structural.push(format!(
            "experiment name changed {:?} -> {:?}",
            baseline.name(),
            current.name()
        ));
    }
    let base_rows: BTreeMap<String, &BenchRow> =
        baseline.rows().iter().map(|r| (r.key(), r)).collect();
    if base_rows.len() != baseline.rows().len() {
        out.structural
            .push("baseline has duplicate row keys".to_string());
    }
    let cur_keys: std::collections::BTreeSet<String> =
        current.rows().iter().map(|r| r.key()).collect();
    if cur_keys.len() != current.rows().len() {
        out.structural
            .push("current report has duplicate row keys".to_string());
    }
    for row in current.rows() {
        match base_rows.get(&row.key()) {
            Some(base) => compare_rows(base, row, tol, &mut out),
            None => out.extra_rows.push(row.key()),
        }
    }
    for key in base_rows.keys() {
        if !cur_keys.contains(key) {
            out.missing_rows.push(key.clone());
        }
    }
    out
}

/// The outcome of comparing two report directories.
#[derive(Debug, Clone, Default)]
pub struct DirDiff {
    /// The baseline directory compared, as given to [`diff_dirs`].
    pub baseline_dir: String,
    /// The freshly measured directory compared.
    pub current_dir: String,
    /// Per-experiment comparisons, in file-name order.
    pub diffs: Vec<ReportDiff>,
    /// Current reports with no committed baseline (informational: new
    /// experiments pass until a baseline is committed).
    pub missing_baseline: Vec<String>,
    /// Baselines the current run did not emit (informational: smoke
    /// runs cover a subset of experiments).
    pub missing_current: Vec<String>,
}

impl DirDiff {
    /// Whether any compared report fails the gate.
    pub fn regressed(&self) -> bool {
        self.diffs.iter().any(|d| d.regressed())
    }
}

fn bench_files(dir: &Path) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            names.push(name);
        }
    }
    names.sort();
    Ok(names)
}

fn load_report(path: &Path) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    BenchReport::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Compare every `BENCH_*.json` in `current_dir` against the same-named
/// file in `baseline_dir`. IO or parse failures are hard errors (the
/// gate cannot run), not regressions.
pub fn diff_dirs(
    baseline_dir: &Path,
    current_dir: &Path,
    tol: &Tolerances,
) -> Result<DirDiff, String> {
    let baseline_files = bench_files(baseline_dir)?;
    let current_files = bench_files(current_dir)?;
    let mut out = DirDiff {
        baseline_dir: baseline_dir.display().to_string(),
        current_dir: current_dir.display().to_string(),
        ..DirDiff::default()
    };
    for name in &current_files {
        if baseline_files.contains(name) {
            let base = load_report(&baseline_dir.join(name))?;
            let cur = load_report(&current_dir.join(name))?;
            out.diffs.push(diff_reports(&base, &cur, tol));
        } else {
            out.missing_baseline.push(name.clone());
        }
    }
    for name in &baseline_files {
        if !current_files.contains(name) {
            out.missing_current.push(name.clone());
        }
    }
    Ok(out)
}

/// The outcome of a two-report A/B latency comparison (see [`ab_p50`]).
#[derive(Debug, Clone, PartialEq)]
pub struct AbOutcome {
    /// The A side's `scope=total` median latency, microseconds.
    pub base_p50: f64,
    /// The B side's `scope=total` median latency, microseconds.
    pub current_p50: f64,
    /// `current_p50 / base_p50`.
    pub ratio: f64,
    /// The ceiling the ratio gates at.
    pub max_ratio: f64,
}

impl AbOutcome {
    /// Whether the B side's median is within `max_ratio` of the A side's.
    pub fn passed(&self) -> bool {
        self.ratio <= self.max_ratio
    }

    /// One human-readable verdict line.
    pub fn summary(&self) -> String {
        format!(
            "A/B p50: {:.1}us vs {:.1}us = {:.2}x (ceiling {:.2}x) — {}",
            self.base_p50,
            self.current_p50,
            self.ratio,
            self.max_ratio,
            if self.passed() { "PASS" } else { "FAIL" }
        )
    }
}

fn total_p50(report: &BenchReport, side: &str) -> Result<f64, String> {
    let row = report
        .rows()
        .iter()
        .find(|r| {
            r.labels
                .iter()
                .any(|(name, value)| name == "scope" && value == "total")
        })
        .ok_or_else(|| format!("{side} report {:?} has no scope=total row", report.name()))?;
    if !row.p50.is_finite() {
        return Err(format!(
            "{side} report {:?}: total-row p50 is not finite",
            report.name()
        ));
    }
    Ok(row.p50)
}

/// Same-machine A/B gate: compare the `scope=total` rows' median
/// latencies of two load reports (typically `BENCH_native_load.json`
/// as A and `BENCH_svc_load.json` as B, run back to back at the same
/// offered load) and fail if B's median exceeds `max_ratio` × A's.
/// This is the absolute remote-vs-native overhead bound that the
/// relative baseline diff cannot express: the baselines could both
/// drift slower in lockstep and still pass [`diff_dirs`].
///
/// Unlike the directory diff, both inputs are fresh measurements from
/// the same run on the same machine, so the ratio is meaningful
/// regardless of how fast the runner is.
pub fn ab_p50(
    base: &BenchReport,
    current: &BenchReport,
    max_ratio: f64,
) -> Result<AbOutcome, String> {
    if !(max_ratio.is_finite() && max_ratio > 0.0) {
        return Err(format!(
            "A/B ratio ceiling {max_ratio} must be positive and finite"
        ));
    }
    let base_p50 = total_p50(base, "A")?;
    let current_p50 = total_p50(current, "B")?;
    if base_p50 <= 0.0 {
        return Err(format!(
            "A report {:?}: total-row p50 {base_p50} must be positive to form a ratio",
            base.name()
        ));
    }
    let ratio = current_p50 / base_p50;
    if !ratio.is_finite() {
        return Err(format!("A/B ratio {current_p50}/{base_p50} is not finite"));
    }
    Ok(AbOutcome {
        base_p50,
        current_p50,
        ratio,
        max_ratio,
    })
}

/// [`ab_p50`] over two report *files* (the `bench-diff --ab` path).
pub fn ab_p50_files(base: &Path, current: &Path, max_ratio: f64) -> Result<AbOutcome, String> {
    let base = load_report(base)?;
    let current = load_report(current)?;
    ab_p50(&base, &current, max_ratio)
}

fn fmt_value(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

/// Render the comparison as a markdown delta table plus a verdict line.
///
/// `verbose` includes in-tolerance metrics; otherwise only changed
/// metrics and structural failures are listed (an all-quiet run prints
/// just the verdict).
pub fn markdown_summary(diff: &DirDiff, verbose: bool) -> String {
    let mut out = String::new();
    out.push_str("## bench-diff\n\n");
    // Name both directories unconditionally: a failure whose only
    // symptom is a missing/extra row used to print nothing that
    // identified WHERE the comparison ran, leaving CI logs unactionable.
    if !diff.baseline_dir.is_empty() || !diff.current_dir.is_empty() {
        out.push_str(&format!(
            "baseline `{}` vs current `{}`\n\n",
            diff.baseline_dir, diff.current_dir
        ));
    }
    let mut any_rows = false;
    for report in &diff.diffs {
        let listed: Vec<&MetricDelta> = report
            .deltas
            .iter()
            .filter(|d| verbose || d.status != Status::Ok)
            .collect();
        if listed.is_empty() && report.structural.is_empty() {
            continue;
        }
        if !any_rows {
            out.push_str("| experiment | row | metric | baseline | current | Δ% | status |\n");
            out.push_str("|---|---|---|---:|---:|---:|---|\n");
            any_rows = true;
        }
        for d in &listed {
            let status = match d.status {
                Status::Ok => "ok",
                Status::Improved => "improved",
                Status::Regressed => "**REGRESSED**",
            };
            let delta = d.delta_percent();
            let delta = if delta.is_finite() {
                format!("{delta:+.1}%")
            } else {
                "n/a".to_string()
            };
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} |\n",
                report.experiment,
                d.row,
                d.metric,
                fmt_value(d.baseline),
                fmt_value(d.current),
                delta,
                status
            ));
        }
        for s in &report.structural {
            out.push_str(&format!(
                "| {} | {s} | — | — | — | — | **STRUCTURAL** |\n",
                report.experiment
            ));
        }
    }
    if any_rows {
        out.push('\n');
    }
    // Structural drift, spelled out: WHICH rows went missing and which
    // appeared, per experiment — not just that the comparison failed.
    for report in &diff.diffs {
        for key in &report.missing_rows {
            out.push_str(&format!(
                "- `{}`: missing row `{key}` (in baseline, absent from this run)\n",
                report.experiment
            ));
        }
        for key in &report.extra_rows {
            out.push_str(&format!(
                "- `{}`: extra row `{key}` (in this run, not in baseline)\n",
                report.experiment
            ));
        }
    }
    for name in &diff.missing_baseline {
        out.push_str(&format!(
            "- `{name}`: extra file — no baseline committed (skipped)\n"
        ));
    }
    for name in &diff.missing_current {
        out.push_str(&format!(
            "- `{name}`: missing file — baseline present, not emitted by this run (skipped)\n"
        ));
    }
    let compared: usize = diff.diffs.iter().map(|d| d.deltas.len()).sum();
    let regressions: usize = diff
        .diffs
        .iter()
        .map(|d| {
            d.structural_failures()
                + d.deltas
                    .iter()
                    .filter(|x| x.status == Status::Regressed)
                    .count()
        })
        .sum();
    let improvements: usize = diff
        .diffs
        .iter()
        .flat_map(|d| d.deltas.iter())
        .filter(|x| x.status == Status::Improved)
        .count();
    out.push_str(&format!(
        "\n**{}**: {} report(s), {compared} metric(s) compared, \
         {improvements} improved, {regressions} regression(s).\n",
        if diff.regressed() { "FAIL" } else { "PASS" },
        diff.diffs.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(name: &str, rows: Vec<BenchRow>) -> BenchReport {
        let mut r = BenchReport::new(name.to_string(), 1);
        for row in rows {
            r.push(row);
        }
        r
    }

    fn row(k: u64, mean: f64) -> BenchRow {
        let mut r = BenchRow::empty(k, 8);
        r.mean = mean;
        r.worst = mean * 2.0;
        r.min = mean / 2.0;
        r.p50 = mean;
        r.p90 = mean * 1.5;
        r.p99 = mean * 1.9;
        r.wall_ms = 10.0;
        r
    }

    #[test]
    fn self_comparison_is_clean() {
        let r = report_with("e", vec![row(2, 4.0), row(8, 6.0)]);
        let d = diff_reports(&r, &r, &Tolerances::default());
        assert!(!d.regressed());
        assert!(d.structural.is_empty());
        assert!(d.deltas.iter().all(|x| x.status == Status::Ok));
        // Every gated metric of every row was compared.
        assert_eq!(d.deltas.len(), 2 * 6);
    }

    #[test]
    fn mean_regression_beyond_tolerance_fails() {
        let base = report_with("e", vec![row(2, 10.0)]);
        let mut worse = row(2, 10.0);
        worse.mean = 11.5; // +15% > 10%
        let cur = report_with("e", vec![worse]);
        let d = diff_reports(&base, &cur, &Tolerances::default());
        assert!(d.regressed());
        let bad: Vec<_> = d
            .deltas
            .iter()
            .filter(|x| x.status == Status::Regressed)
            .collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].metric, "mean");
        assert!((bad[0].delta_percent() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn tail_gets_wider_tolerance_than_mean() {
        let base = report_with("e", vec![row(2, 10.0)]);
        let mut jittery = row(2, 10.0);
        jittery.p99 *= 1.2; // +20% < 25% tail tolerance
        jittery.p90 *= 1.2; // +20% > 10% mean-class tolerance
        let cur = report_with("e", vec![jittery]);
        let d = diff_reports(&base, &cur, &Tolerances::default());
        let by_metric = |m: &str| {
            d.deltas
                .iter()
                .find(|x| x.metric == m)
                .expect("metric gated")
                .status
        };
        assert_eq!(by_metric("p99"), Status::Ok);
        assert_eq!(by_metric("p90"), Status::Regressed);
    }

    #[test]
    fn wall_clock_gate_is_wide_and_optional() {
        let base = report_with("e", vec![row(2, 10.0)]);
        let mut slow = row(2, 10.0);
        slow.wall_ms = 150.0; // 15x the baseline's 10ms
        let cur = report_with("e", vec![slow.clone()]);
        let d = diff_reports(&base, &cur, &Tolerances::default());
        assert!(
            d.regressed(),
            "15x wall slowdown must fail the default gate"
        );
        let no_wall = Tolerances {
            check_wall: false,
            ..Tolerances::default()
        };
        let d = diff_reports(&base, &report_with("e", vec![slow]), &no_wall);
        assert!(!d.regressed());
    }

    #[test]
    fn wall_clock_speedups_are_reported_as_improved() {
        // The ratio-symmetric improvement band: a 15x wall speedup must
        // show as Improved even at the wide 10x-slower tolerance (the
        // linear base*(1-rel) form would make this unreachable).
        let mut was_slow = row(2, 10.0);
        was_slow.wall_ms = 150.0;
        let base = report_with("e", vec![was_slow]);
        let cur = report_with("e", vec![row(2, 10.0)]); // wall back to 10ms
        let d = diff_reports(&base, &cur, &Tolerances::default());
        assert!(!d.regressed());
        let wall = d
            .deltas
            .iter()
            .find(|x| x.metric == "wall_ms")
            .expect("wall gated");
        assert_eq!(wall.status, Status::Improved);
    }

    #[test]
    fn improvements_pass_and_are_reported() {
        let base = report_with("e", vec![row(2, 10.0)]);
        let cur = report_with("e", vec![row(2, 5.0)]);
        let d = diff_reports(&base, &cur, &Tolerances::default());
        assert!(!d.regressed());
        assert!(d.deltas.iter().any(|x| x.status == Status::Improved));
    }

    #[test]
    fn structural_drift_fails_and_names_missing_vs_extra_rows() {
        let base = report_with("e", vec![row(2, 4.0), row(8, 6.0)]);
        let cur = report_with("e", vec![row(2, 4.0), row(32, 5.0)]);
        let d = diff_reports(&base, &cur, &Tolerances::default());
        assert!(d.regressed(), "missing/extra rows fail the gate");
        assert_eq!(d.missing_rows, vec!["k=8".to_string()]);
        assert_eq!(d.extra_rows, vec!["k=32".to_string()]);
        assert_eq!(d.structural_failures(), 2);
        assert!(
            d.structural.is_empty(),
            "missing/extra rows are reported once, through their own \
             fields: {:?}",
            d.structural
        );

        let mut retried = row(2, 4.0);
        retried.trials = 16;
        let d = diff_reports(
            &base,
            &report_with("e", vec![retried, row(8, 6.0)]),
            &Tolerances::default(),
        );
        assert!(d.regressed());
        assert!(d.structural.iter().any(|s| s.contains("trials changed")));
        assert!(d.missing_rows.is_empty() && d.extra_rows.is_empty());
    }

    fn wall_row(k: u64, mean: f64) -> BenchRow {
        row(k, mean)
            .with("throughput_ops_s", 1000.0 * mean)
            .with_label("backend", "combined")
            .with_label("gate", "wall")
    }

    #[test]
    fn wall_rows_skip_tolerance_gating_by_default() {
        let base = report_with("native_load", vec![wall_row(0, 10.0)]);
        // 10x slower latencies: machine-dependent, must pass the default
        // gate untouched.
        let cur = report_with("native_load", vec![wall_row(0, 100.0)]);
        let d = diff_reports(&base, &cur, &Tolerances::default());
        assert!(!d.regressed(), "{:?}", d.structural);
        assert!(d.deltas.is_empty(), "no metric gated: {:?}", d.deltas);
    }

    #[test]
    fn wall_rows_gate_at_wall_tolerance_when_enabled() {
        let base = report_with("native_load", vec![wall_row(0, 10.0)]);
        let tol = Tolerances {
            gate_wall_rows: true,
            ..Tolerances::default()
        };
        // Within 10x: passes, but the metrics are compared now.
        let d = diff_reports(
            &base,
            &report_with("native_load", vec![wall_row(0, 30.0)]),
            &tol,
        );
        assert!(!d.regressed());
        assert!(!d.deltas.is_empty());
        // Beyond 10x: fails.
        let d = diff_reports(
            &base,
            &report_with("native_load", vec![wall_row(0, 150.0)]),
            &tol,
        );
        assert!(d.regressed());
    }

    #[test]
    fn wall_rows_still_fail_structurally() {
        let base = report_with("native_load", vec![wall_row(0, 10.0), wall_row(1, 10.0)]);
        // A shard row vanished: structural, fails even with gating off.
        let cur = report_with("native_load", vec![wall_row(0, 10.0)]);
        let d = diff_reports(&base, &cur, &Tolerances::default());
        assert!(d.regressed());

        // Op count (trials) changed: structural.
        let mut fewer = wall_row(0, 10.0);
        fewer.trials = 4;
        let d = diff_reports(
            &base,
            &report_with("native_load", vec![fewer, wall_row(1, 10.0)]),
            &Tolerances::default(),
        );
        assert!(d.regressed());
        assert!(d.structural.iter().any(|s| s.contains("trials changed")));

        // A metric flipping finite -> null: structural.
        let mut broken = wall_row(0, 10.0);
        broken.p99 = f64::NAN;
        let d = diff_reports(
            &base,
            &report_with("native_load", vec![broken, wall_row(1, 10.0)]),
            &Tolerances::default(),
        );
        assert!(d.regressed());
        assert!(d
            .structural
            .iter()
            .any(|s| s.contains("flipped finiteness")));
    }

    #[test]
    fn extras_gate_structurally_but_not_on_tolerance() {
        let base = report_with("e", vec![row(2, 10.0).with("err_timeouts", 0.0)]);
        // Any magnitude drift in an extra is informational: never gates.
        let cur = report_with("e", vec![row(2, 10.0).with("err_timeouts", 500.0)]);
        let d = diff_reports(&base, &cur, &Tolerances::default());
        assert!(!d.regressed(), "{:?}", d.structural);

        // A vanished extra key is structural drift.
        let d = diff_reports(
            &base,
            &report_with("e", vec![row(2, 10.0)]),
            &Tolerances::default(),
        );
        assert!(d.regressed());
        assert!(
            d.structural
                .iter()
                .any(|s| s.contains("err_timeouts vanished")),
            "{:?}",
            d.structural
        );

        // So is a new extra key with no baseline value...
        let d = diff_reports(
            &report_with("e", vec![row(2, 10.0)]),
            &base,
            &Tolerances::default(),
        );
        assert!(d.regressed());
        assert!(
            d.structural
                .iter()
                .any(|s| s.contains("err_timeouts has no baseline value")),
            "{:?}",
            d.structural
        );

        // ...and an extra flipping finite -> null.
        let cur = report_with("e", vec![row(2, 10.0).with("err_timeouts", f64::NAN)]);
        let d = diff_reports(&base, &cur, &Tolerances::default());
        assert!(d.regressed());
        assert!(
            d.structural
                .iter()
                .any(|s| s.contains("err_timeouts flipped finiteness")),
            "{:?}",
            d.structural
        );
    }

    #[test]
    fn rows_are_matched_by_labels_not_position() {
        let a = row(2, 4.0).with_label("algorithm", "ratrace");
        let b = row(2, 9.0).with_label("algorithm", "combined");
        let base = report_with("e", vec![a.clone(), b.clone()]);
        // Same rows, swapped order: identical comparison.
        let cur = report_with("e", vec![b, a]);
        let d = diff_reports(&base, &cur, &Tolerances::default());
        assert!(!d.regressed(), "{:?}", d.structural);
    }

    #[test]
    fn dir_diff_and_markdown_end_to_end() {
        let tmp = std::env::temp_dir().join(format!("bench_diff_test_{}", std::process::id()));
        let base_dir = tmp.join("baselines");
        let cur_dir = tmp.join("current");
        std::fs::create_dir_all(&base_dir).unwrap();
        std::fs::create_dir_all(&cur_dir).unwrap();
        let base = report_with("steps", vec![row(2, 10.0)]);
        std::fs::write(base_dir.join("BENCH_steps.json"), base.to_json()).unwrap();
        std::fs::write(base_dir.join("BENCH_only_base.json"), base.to_json()).unwrap();

        // Self-comparison: clean.
        std::fs::write(cur_dir.join("BENCH_steps.json"), base.to_json()).unwrap();
        let d = diff_dirs(&base_dir, &cur_dir, &Tolerances::default()).unwrap();
        assert!(!d.regressed());
        assert_eq!(d.missing_current, vec!["BENCH_only_base.json"]);
        let md = markdown_summary(&d, false);
        assert!(md.contains("PASS"), "{md}");

        // Synthetic regression: fails, and the table names it.
        let mut worse = row(2, 10.0);
        worse.mean = 20.0;
        let cur = report_with("steps", vec![worse]);
        std::fs::write(cur_dir.join("BENCH_steps.json"), cur.to_json()).unwrap();
        std::fs::write(cur_dir.join("BENCH_new_exp.json"), cur.to_json()).unwrap();
        let d = diff_dirs(&base_dir, &cur_dir, &Tolerances::default()).unwrap();
        assert!(d.regressed());
        assert_eq!(d.missing_baseline, vec!["BENCH_new_exp.json"]);
        let md = markdown_summary(&d, false);
        assert!(md.contains("REGRESSED"), "{md}");
        assert!(md.contains("FAIL"), "{md}");
        assert!(md.contains("+100.0%"), "{md}");
        assert!(
            md.contains("`BENCH_new_exp.json`: extra file"),
            "extra files are named: {md}"
        );

        // Structural drift: the markdown names WHICH row vanished and
        // which appeared, and which baseline file went unemitted.
        let drifted = report_with("steps", vec![row(4, 10.0)]);
        std::fs::write(cur_dir.join("BENCH_steps.json"), drifted.to_json()).unwrap();
        std::fs::remove_file(cur_dir.join("BENCH_new_exp.json")).unwrap();
        let d = diff_dirs(&base_dir, &cur_dir, &Tolerances::default()).unwrap();
        assert!(d.regressed());
        let md = markdown_summary(&d, false);
        assert!(
            md.contains("missing row `k=2`"),
            "missing rows are named: {md}"
        );
        assert!(md.contains("extra row `k=4`"), "extra rows are named: {md}");
        assert!(
            md.contains("`BENCH_only_base.json`: missing file"),
            "missing files are named: {md}"
        );
        // Here only row-level drift failed (no metric table rendered):
        // the header must still name both directories, or the CI log
        // would never say where the comparison ran.
        assert!(
            md.contains(&format!("baseline `{}`", base_dir.display()))
                && md.contains(&format!("current `{}`", cur_dir.display())),
            "directories are named even when only rows drift: {md}"
        );

        std::fs::remove_dir_all(&tmp).ok();
    }

    fn total_row(p50: f64) -> BenchRow {
        let mut r = row(0, p50);
        r.p50 = p50;
        r.with_label("scope", "total").with_label("gate", "wall")
    }

    #[test]
    fn ab_p50_gates_on_the_total_row_ratio() {
        let native = report_with("native_load", vec![row(0, 5.0), total_row(100.0)]);
        let remote = report_with("svc_load", vec![row(0, 9.0), total_row(180.0)]);
        let out = ab_p50(&native, &remote, 2.0).expect("comparable");
        assert!(
            out.passed(),
            "1.8x is under the 2x ceiling: {}",
            out.summary()
        );
        assert!((out.ratio - 1.8).abs() < 1e-12);
        assert!(out.summary().contains("PASS"));

        let slow = report_with("svc_load", vec![total_row(250.0)]);
        let out = ab_p50(&native, &slow, 2.0).expect("comparable");
        assert!(!out.passed(), "2.5x must fail the 2x ceiling");
        assert!(out.summary().contains("FAIL"));

        // The ceiling is a parameter: the same pair passes at 3x.
        assert!(ab_p50(&native, &slow, 3.0).unwrap().passed());
    }

    #[test]
    fn ab_p50_rejects_uncomparable_inputs() {
        let with_total = report_with("a", vec![total_row(100.0)]);
        let no_total = report_with("b", vec![row(0, 5.0)]);
        assert!(ab_p50(&no_total, &with_total, 2.0)
            .unwrap_err()
            .contains("no scope=total row"));
        assert!(ab_p50(&with_total, &no_total, 2.0)
            .unwrap_err()
            .contains("no scope=total row"));
        // A zero-latency A side cannot form a ratio — error, not PASS.
        let zero = report_with("a", vec![total_row(0.0)]);
        assert!(ab_p50(&zero, &with_total, 2.0)
            .unwrap_err()
            .contains("must be positive"));
        // NaN medians are structural, not a verdict.
        let broken = report_with("a", vec![total_row(f64::NAN)]);
        assert!(ab_p50(&broken, &with_total, 2.0)
            .unwrap_err()
            .contains("not finite"));
        // And the ceiling itself must be sane.
        assert!(ab_p50(&with_total, &with_total, 0.0).is_err());
        assert!(ab_p50(&with_total, &with_total, f64::INFINITY).is_err());
    }

    #[test]
    fn ab_p50_files_end_to_end() {
        let tmp = std::env::temp_dir().join(format!("bench_ab_test_{}", std::process::id()));
        std::fs::create_dir_all(&tmp).unwrap();
        let native = report_with("native_load", vec![total_row(100.0)]);
        let remote = report_with("svc_load", vec![total_row(150.0)]);
        let a = tmp.join("BENCH_native_load.json");
        let b = tmp.join("BENCH_svc_load.json");
        std::fs::write(&a, native.to_json()).unwrap();
        std::fs::write(&b, remote.to_json()).unwrap();
        let out = ab_p50_files(&a, &b, 2.0).expect("comparable");
        assert!(out.passed());
        assert!((out.ratio - 1.5).abs() < 1e-12);
        assert!(ab_p50_files(&tmp.join("nope.json"), &b, 2.0).is_err());
        std::fs::remove_dir_all(&tmp).ok();
    }

    #[test]
    fn parse_failure_is_an_error_not_a_regression() {
        let tmp = std::env::temp_dir().join(format!("bench_diff_bad_{}", std::process::id()));
        let base_dir = tmp.join("baselines");
        let cur_dir = tmp.join("current");
        std::fs::create_dir_all(&base_dir).unwrap();
        std::fs::create_dir_all(&cur_dir).unwrap();
        std::fs::write(base_dir.join("BENCH_x.json"), "{not json").unwrap();
        std::fs::write(
            cur_dir.join("BENCH_x.json"),
            BenchReport::new("x", 1).to_json(),
        )
        .unwrap();
        assert!(diff_dirs(&base_dir, &cur_dir, &Tolerances::default()).is_err());
        std::fs::remove_dir_all(&tmp).ok();
    }
}
