//! # rtas-bench — the experiment harness
//!
//! One function per experiment (E1–E10 from DESIGN.md §2, plus the E11
//! scenario grid and the E12 epoch-reuse check), each regenerating the
//! corresponding quantitative claim of the paper as a printed table.
//! `cargo run -p rtas-bench --release --bin experiments` runs them all;
//! EXPERIMENTS.md records paper-vs-measured for each.

pub mod diff;
pub mod experiments;
pub mod microbench;
pub mod report;
pub mod runner;
pub mod scenarios;
pub mod stats;

/// Scale knobs shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Largest contention / structure size used in sweeps.
    pub max_k: usize,
    /// Trials per data point.
    pub trials: u64,
    /// Base seed (vary for independent repetitions).
    pub seed: u64,
}

impl Scale {
    /// Full scale: the numbers recorded in EXPERIMENTS.md.
    pub fn full() -> Self {
        Scale {
            max_k: 1 << 10,
            trials: 24,
            seed: 0xdead_beef,
        }
    }

    /// Reduced scale for CI and smoke runs (`--fast`).
    pub fn fast() -> Self {
        Scale {
            max_k: 1 << 7,
            trials: 8,
            seed: 0xdead_beef,
        }
    }
}
