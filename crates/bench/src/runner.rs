//! The batch trial engine: deterministic Monte Carlo sweeps across OS
//! threads.
//!
//! Every quantitative claim of the paper is verified by repeated
//! independent executions ("trials") over a sweep of contention values.
//! Trials are embarrassingly parallel, and [`TrialRunner`] fans them out
//! over `std::thread::scope` workers while keeping the results **bit
//! identical** to a serial run:
//!
//! * each trial's randomness is a pure function of `(base_seed, trial
//!   index)` — derived with [`SplitMix64::split`], never from thread
//!   identity or scheduling;
//! * workers pull trial indices from an atomic counter and deposit each
//!   result into its trial's dedicated slot;
//! * results are folded into [`StatsAccumulator`] statistics *in
//!   trial-index order* after all workers join, so even floating-point
//!   summation order is independent of the thread count.
//!
//! Consequently `TrialRunner::new(1)` and `TrialRunner::new(32)` produce
//! identical statistics for the same seed — the thread count only changes
//! wall-clock time. This property is asserted by the
//! `runner_determinism` integration tests.
//!
//! Workers can also keep per-thread scratch state (a warm [`Execution`]
//! reused via [`Execution::reset`]) through [`TrialRunner::run_trials_with`],
//! which is what makes the executor's allocation-light reuse path usable
//! from a parallel sweep: each worker builds its simulated memory once and
//! re-runs trials in place.
//!
//! [`Execution`]: rtas::sim::executor::Execution
//! [`Execution::reset`]: rtas::sim::executor::Execution::reset
//!
//! ```
//! use rtas_bench::runner::{Trial, TrialRunner};
//!
//! let runner = TrialRunner::new(4);
//! let agg = runner.aggregate(100, 0xd00d, |trial: Trial| {
//!     // any deterministic function of trial.seed
//!     (trial.seed % 7) as f64
//! });
//! assert_eq!(agg.count(), 100);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rtas::sim::rng::SplitMix64;

use crate::stats::{StatsAccumulator, Summary};

/// One trial's identity: its index within the batch and its derived seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trial {
    /// Trial index in `0..trials`.
    pub index: u64,
    /// Seed for this trial, derived deterministically from the batch's
    /// base seed and `index` via [`SplitMix64::split`].
    pub seed: u64,
}

impl Trial {
    fn derive(base_seed: u64, index: u64) -> Trial {
        Trial {
            index,
            seed: SplitMix64::split(base_seed, index).next_u64(),
        }
    }

    /// An independent-looking substream of this trial's seed, for closures
    /// that need several seeds (e.g. one for coins, one for the schedule).
    pub fn subseed(&self, stream: u64) -> u64 {
        SplitMix64::split(self.seed, stream).next_u64()
    }
}

/// Fans independent trials out across OS threads, deterministically.
///
/// See the [module docs](self) for the determinism contract.
#[derive(Debug, Clone)]
pub struct TrialRunner {
    threads: usize,
}

impl TrialRunner {
    /// A runner using `threads` worker threads (clamped to at least 1).
    /// `TrialRunner::new(1)` runs everything inline on the caller's
    /// thread.
    pub fn new(threads: usize) -> Self {
        TrialRunner {
            threads: threads.max(1),
        }
    }

    /// A serial runner (one thread, no spawning).
    pub fn serial() -> Self {
        TrialRunner::new(1)
    }

    /// A runner sized from the environment: `RTAS_THREADS` if set,
    /// otherwise the host's available parallelism.
    pub fn from_env() -> Self {
        let threads = std::env::var("RTAS_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        TrialRunner::new(threads)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `trials` independent trials and return their results in trial
    /// order.
    ///
    /// `init` builds one scratch value per worker thread; `trial` receives
    /// it mutably along with the trial identity. The scratch is how
    /// workers keep a warm `Execution`/`Memory` between trials; it must
    /// not carry information *between* trials that affects results, or
    /// determinism across thread counts is lost (trial assignment to
    /// workers is scheduling-dependent).
    ///
    /// Panics in `trial` propagate to the caller (the batch aborts).
    pub fn run_trials_with<S, R, I, F>(
        &self,
        trials: u64,
        base_seed: u64,
        init: I,
        trial: F,
    ) -> Vec<R>
    where
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, Trial) -> R + Sync,
    {
        let workers = self.threads.min(trials as usize);
        if workers <= 1 {
            let mut scratch = init();
            return (0..trials)
                .map(|t| trial(&mut scratch, Trial::derive(base_seed, t)))
                .collect();
        }
        // One slot per trial: workers race only on the index counter, and
        // each result lands in its own slot, keyed by trial index.
        let slots: Vec<Mutex<Option<R>>> = (0..trials as usize).map(|_| Mutex::new(None)).collect();
        let next = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut scratch = init();
                    loop {
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        if t >= trials {
                            break;
                        }
                        let r = trial(&mut scratch, Trial::derive(base_seed, t));
                        *slots[t as usize].lock().expect("trial slot poisoned") = Some(r);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("trial slot poisoned")
                    .expect("worker exited without filling its slot")
            })
            .collect()
    }

    /// [`TrialRunner::run_trials_with`] without per-worker scratch.
    pub fn run_trials<R, F>(&self, trials: u64, base_seed: u64, trial: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Trial) -> R + Sync,
    {
        self.run_trials_with(trials, base_seed, || (), |(), t| trial(t))
    }

    /// Run trials that each produce one observation, folded into a
    /// [`StatsAccumulator`] in trial order (thread-count independent).
    pub fn aggregate<F>(&self, trials: u64, base_seed: u64, trial: F) -> StatsAccumulator
    where
        F: Fn(Trial) -> f64 + Sync,
    {
        self.aggregate_with(trials, base_seed, || (), |(), t| trial(t))
    }

    /// [`TrialRunner::aggregate`] with per-worker scratch state.
    pub fn aggregate_with<S, I, F>(
        &self,
        trials: u64,
        base_seed: u64,
        init: I,
        trial: F,
    ) -> StatsAccumulator
    where
        I: Fn() -> S + Sync,
        F: Fn(&mut S, Trial) -> f64 + Sync,
    {
        let values = self.run_trials_with(trials, base_seed, init, trial);
        let mut agg = StatsAccumulator::new();
        for v in values {
            agg.push(v);
        }
        agg
    }
}

impl Default for TrialRunner {
    fn default() -> Self {
        TrialRunner::from_env()
    }
}

/// One measured point of a [`Sweep`]: distribution statistics plus the
/// wall-clock cost of producing them.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The sweep parameter (contention, structure size, round, ...).
    pub k: usize,
    /// Trials aggregated into `stats`.
    pub trials: u64,
    /// Full distribution statistics over the per-trial observations.
    pub stats: StatsAccumulator,
    /// Wall-clock time for the whole batch of trials.
    pub wall: Duration,
}

impl SweepPoint {
    /// Mean observation.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Worst (maximum) observation.
    pub fn worst(&self) -> f64 {
        self.stats.max()
    }

    /// Best (minimum) observation.
    pub fn best(&self) -> f64 {
        self.stats.min()
    }

    /// Median observation estimate.
    pub fn p50(&self) -> f64 {
        self.stats.p50()
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> f64 {
        self.stats.p90()
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.stats.p99()
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.stats.stddev()
    }

    /// Half-width of the normal-approx 95% CI for the mean.
    pub fn ci95(&self) -> f64 {
        self.stats.ci95_half_width()
    }

    /// Snapshot of every derived statistic.
    pub fn summary(&self) -> Summary {
        self.stats.summary()
    }

    /// Wall-clock in fractional milliseconds.
    pub fn wall_ms(&self) -> f64 {
        self.wall.as_secs_f64() * 1e3
    }
}

/// A parameter sweep driven through one [`TrialRunner`].
///
/// `Sweep` owns the trial count and base seed shared by all points, and
/// derives an independent seed stream per parameter value, so adding or
/// reordering points does not perturb any point's results.
#[derive(Debug, Clone)]
pub struct Sweep<'r> {
    runner: &'r TrialRunner,
    trials: u64,
    base_seed: u64,
}

impl<'r> Sweep<'r> {
    /// A sweep of `trials` trials per point with the given base seed.
    pub fn new(runner: &'r TrialRunner, trials: u64, base_seed: u64) -> Self {
        Sweep {
            runner,
            trials,
            base_seed,
        }
    }

    /// Trials per point.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// The seed stream for parameter value `k` — exposed so callers that
    /// need side measurements (e.g. one reference execution per `k`) can
    /// stay inside the sweep's reproducibility envelope.
    pub fn point_seed(&self, k: usize) -> u64 {
        SplitMix64::split(self.base_seed, k as u64).next_u64()
    }

    /// Measure one sweep point: run the batch of trials for parameter `k`
    /// with per-worker scratch, timing the whole batch.
    pub fn measure_with<S, I, F>(&self, k: usize, init: I, trial: F) -> SweepPoint
    where
        I: Fn() -> S + Sync,
        F: Fn(&mut S, Trial) -> f64 + Sync,
    {
        let start = Instant::now();
        let stats = self
            .runner
            .aggregate_with(self.trials, self.point_seed(k), init, trial);
        SweepPoint {
            k,
            trials: self.trials,
            stats,
            wall: start.elapsed(),
        }
    }

    /// [`Sweep::measure_with`] without per-worker scratch.
    pub fn measure<F>(&self, k: usize, trial: F) -> SweepPoint
    where
        F: Fn(Trial) -> f64 + Sync,
    {
        self.measure_with(k, || (), |(), t| trial(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_seeds_are_deterministic_and_distinct() {
        let a = Trial::derive(7, 0);
        let b = Trial::derive(7, 1);
        assert_eq!(a, Trial::derive(7, 0));
        assert_ne!(a.seed, b.seed);
        assert_ne!(Trial::derive(8, 0).seed, a.seed);
        assert_ne!(a.subseed(0), a.subseed(1));
    }

    #[test]
    fn serial_and_parallel_agree_exactly() {
        let f = |t: Trial| (t.seed % 1000) as f64 + t.index as f64;
        let serial = TrialRunner::serial().aggregate(64, 42, f);
        for threads in [2, 3, 8] {
            let par = TrialRunner::new(threads).aggregate(64, 42, f);
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn results_come_back_in_trial_order() {
        let vals = TrialRunner::new(4).run_trials(32, 0, |t| t.index);
        assert_eq!(vals, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn zero_trials_is_empty() {
        let vals = TrialRunner::new(4).run_trials(0, 0, |t| t.index);
        assert!(vals.is_empty());
        assert_eq!(TrialRunner::new(4).aggregate(0, 0, |_| 1.0).count(), 0);
    }

    #[test]
    fn scratch_is_per_worker_and_reused() {
        // With one thread the scratch must be built exactly once.
        let runner = TrialRunner::serial();
        let vals = runner.run_trials_with(
            10,
            0,
            || 0u64,
            |calls, _t| {
                *calls += 1;
                *calls
            },
        );
        assert_eq!(vals, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_points_are_independent_of_order() {
        let runner = TrialRunner::new(2);
        let sweep = Sweep::new(&runner, 16, 99);
        let first = sweep.measure(8, |t| t.seed as f64);
        let _other = sweep.measure(16, |t| t.seed as f64);
        let again = sweep.measure(8, |t| t.seed as f64);
        assert_eq!(first.stats, again.stats);
        assert_eq!(first.k, 8);
        assert_eq!(first.trials, 16);
    }

    #[test]
    fn threads_clamped_to_one() {
        assert_eq!(TrialRunner::new(0).threads(), 1);
    }
}
