//! Regenerate every table of EXPERIMENTS.md, and the machine-readable
//! `BENCH_*.json` perf baselines.
//!
//! ```text
//! cargo run -p rtas-bench --release --bin experiments          # full scale
//! cargo run -p rtas-bench --release --bin experiments -- --fast
//! cargo run -p rtas-bench --release --bin experiments -- e4 e7 # subset
//! cargo run -p rtas-bench --release --bin experiments -- --threads 8 e2
//! cargo run -p rtas-bench --release --bin experiments -- --list-scenarios
//! cargo run -p rtas-bench --release --bin experiments -- \
//!     --scenario staggered+churn+laggard-first
//! ```
//!
//! `--list-scenarios` prints every cell of the E11 scenario grid
//! (arrivals × faults × strategies); `--scenario <name>` runs exactly
//! that cell across all three algorithms instead of the full grid.
//!
//! Trials fan out over OS threads (`--threads N`, or the `RTAS_THREADS`
//! environment variable, defaulting to the host's available parallelism);
//! results are bit-identical at every thread count. Every experiment
//! additionally writes `BENCH_<name>.json` rows — distributional
//! statistics per sweep point (mean, worst/min, stddev, 95% CI,
//! p50/p90/p99) plus wall-clock — to `RTAS_BENCH_DIR` (default: current
//! directory) so the simulator's perf trajectory is tracked across PRs
//! and gated by the `bench-diff` binary against the committed
//! `baselines/`. Pass `--no-json` to skip the files.

use rtas_bench::experiments;
use rtas_bench::report::{BenchReport, BenchRow};
use rtas_bench::runner::TrialRunner;
use rtas_bench::scenarios;
use rtas_bench::Scale;

fn write_report(report: BenchReport) {
    match report.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write {}: {err}", report.path().display()),
    }
}

fn report_from_rows(
    name: &'static str,
    threads: usize,
    rows: impl IntoIterator<Item = BenchRow>,
) -> BenchReport {
    let mut report = BenchReport::new(name, threads);
    for row in rows {
        report.push(row);
    }
    report
}

fn scenario_grid_report(
    name: &'static str,
    rows: &[experiments::E11Row],
    threads: usize,
) -> BenchReport {
    let mut report = BenchReport::new(name, threads);
    for row in rows {
        report.push(row.bench_row());
    }
    report
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let no_json = args.iter().any(|a| a == "--no-json");
    // One pass: `--threads` takes a mandatory numeric value; everything
    // else that is not a flag selects experiments.
    let mut threads = None;
    let mut scenario_name: Option<String> = None;
    let mut wanted: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--threads" {
            let value = iter.next().unwrap_or_else(|| {
                eprintln!("error: --threads requires a value");
                std::process::exit(2);
            });
            threads = Some(value.parse::<usize>().unwrap_or_else(|_| {
                eprintln!("error: --threads value {value:?} is not a number");
                std::process::exit(2);
            }));
        } else if arg == "--scenario" {
            let value = iter.next().unwrap_or_else(|| {
                eprintln!("error: --scenario requires a cell name (see --list-scenarios)");
                std::process::exit(2);
            });
            scenario_name = Some(value.clone());
        } else if !arg.starts_with("--") {
            wanted.push(arg.as_str());
        }
    }
    let runner = match threads {
        Some(n) => TrialRunner::new(n),
        None => TrialRunner::from_env(),
    };
    let scale = if fast { Scale::fast() } else { Scale::full() };

    if args.iter().any(|a| a == "--list-scenarios") {
        let k = experiments::e11_contention(scale);
        println!("E11 scenario grid cells (k={k}), one per arrival+fault+strategy:");
        for cell in scenarios::grid(k) {
            println!("  {}", cell.name());
        }
        return;
    }
    if let Some(name) = scenario_name {
        let k = experiments::e11_contention(scale);
        let Some(cell) = scenarios::find(k, &name) else {
            eprintln!("error: unknown scenario {name:?}; see --list-scenarios");
            std::process::exit(2);
        };
        let rows = experiments::e11_cells(scale, &runner, std::slice::from_ref(&cell), k);
        if !no_json {
            // A distinct file name, so drilling into one cell never
            // clobbers the full-grid BENCH_scenario_grid.json.
            write_report(scenario_grid_report(
                "scenario_cell",
                &rows,
                runner.threads(),
            ));
        }
        return;
    }

    let run = |id: &str| wanted.is_empty() || wanted.contains(&id);

    println!(
        "randomized test-and-set reproduction — experiments (scale: {scale:?}, threads: {})",
        runner.threads()
    );
    let threads = runner.threads();
    if run("e1") {
        let rows = experiments::e1_group_election_performance(scale, &runner);
        if !no_json {
            write_report(report_from_rows(
                "group_election",
                threads,
                rows.iter().map(|r| r.bench_row()),
            ));
        }
    }
    if run("e2") {
        let rows = experiments::e2_logstar_steps(scale, &runner);
        if !no_json {
            write_report(report_from_rows(
                "step_complexity",
                threads,
                rows.iter().map(|r| {
                    r.steps
                        .bench_row()
                        .with("log_star", r.log_star as f64)
                        .with("registers", r.registers as f64)
                }),
            ));
        }
    }
    if run("e3") {
        let rows = experiments::e3_loglog_steps(scale, &runner);
        if !no_json {
            write_report(report_from_rows(
                "loglog_steps",
                threads,
                rows.iter().map(|r| {
                    r.steps
                        .bench_row()
                        .with("baseline_mean", r.baseline.mean_max_steps)
                }),
            ));
        }
    }
    if run("e4") {
        let rows = experiments::e4_ratrace(scale, &runner);
        if !no_json {
            write_report(report_from_rows(
                "ratrace",
                threads,
                rows.iter().map(|r| {
                    r.steps
                        .bench_row()
                        .with("regs_space_efficient", r.regs_space_efficient as f64)
                        .with("regs_original_declared", r.regs_original_declared as f64)
                        .with("regs_original_touched", r.regs_original_touched as f64)
                }),
            ));
        }
    }
    if run("e5") {
        let rows = experiments::e5_combiner(scale, &runner);
        if !no_json {
            write_report(report_from_rows(
                "combiner",
                threads,
                rows.iter().map(|r| r.bench_row()),
            ));
        }
    }
    if run("e6") {
        let rows = experiments::e6_space_lower_bound(scale, &runner);
        if !no_json {
            // The recurrence is exact, not sampled: one deterministic
            // observation per n, so the distribution fields are the
            // honest single-value summary (quantiles = the value,
            // stddev/ci = 0). Wall-clock is not measured per row: null.
            write_report(report_from_rows(
                "space_recurrence",
                threads,
                rows.iter().map(|&(n, rec, closed)| {
                    let single = rtas_bench::stats::StatsAccumulator::from_value(rec as f64);
                    BenchRow::from_summary(n, &single.summary(), f64::NAN)
                        .with("closed_form", closed as f64)
                }),
            ));
        }
    }
    if run("e7") {
        let rows = experiments::e7_two_process_tail(scale, &runner);
        if !no_json {
            // Only the mean and max tail probabilities exist here (the
            // schedule search reports per-schedule tails, not a trial
            // distribution); the unavailable fields serialize as null
            // rather than fabricated zeros.
            write_report(report_from_rows(
                "two_process_tail",
                threads,
                rows.iter().map(|r| {
                    BenchRow::from_mean_worst(
                        r.t as u64,
                        r.schedules as u64,
                        r.mean_tail,
                        r.max_tail,
                    )
                    .with("bound", r.bound)
                }),
            ));
        }
    }
    if run("e8") {
        let rows = experiments::e8_sifting_rounds(scale, &runner);
        if !no_json {
            write_report(report_from_rows(
                "sifting_rounds",
                threads,
                rows.iter().map(|r| r.bench_row()),
            ));
        }
    }
    if run("e9") {
        let rows = experiments::e9_adaptive_attack(scale, &runner);
        if !no_json {
            write_report(report_from_rows(
                "adaptive_attack",
                threads,
                rows.iter().flat_map(|r| r.bench_rows()),
            ));
        }
    }
    if run("e10") {
        let rows = experiments::e10_ladder_depth(scale, &runner);
        if !no_json {
            write_report(report_from_rows(
                "ladder_depth",
                threads,
                rows.iter().map(|r| r.bench_row()),
            ));
        }
    }
    if run("e11") {
        let rows = experiments::e11_scenario_grid(scale, &runner);
        if !no_json {
            write_report(scenario_grid_report("scenario_grid", &rows, threads));
        }
    }
    if run("e12") {
        let rows = experiments::e12_epoch_reuse(scale, &runner);
        if !no_json {
            write_report(report_from_rows(
                "epoch_reuse",
                threads,
                rows.iter().map(|r| r.bench_row()),
            ));
        }
    }
}
