//! Regenerate every table of EXPERIMENTS.md, and the machine-readable
//! `BENCH_*.json` perf baselines.
//!
//! ```text
//! cargo run -p rtas-bench --release --bin experiments          # full scale
//! cargo run -p rtas-bench --release --bin experiments -- --fast
//! cargo run -p rtas-bench --release --bin experiments -- e4 e7 # subset
//! cargo run -p rtas-bench --release --bin experiments -- --threads 8 e2
//! cargo run -p rtas-bench --release --bin experiments -- --list-scenarios
//! cargo run -p rtas-bench --release --bin experiments -- \
//!     --scenario staggered+churn+laggard-first
//! ```
//!
//! `--list-scenarios` prints every cell of the E11 scenario grid
//! (arrivals × faults × strategies); `--scenario <name>` runs exactly
//! that cell across all three algorithms instead of the full grid.
//!
//! Trials fan out over OS threads (`--threads N`, or the `RTAS_THREADS`
//! environment variable, defaulting to the host's available parallelism);
//! results are bit-identical at every thread count. Experiments with
//! step-complexity sweeps additionally write `BENCH_<name>.json` rows
//! (per-k mean/worst steps plus wall-clock) to `RTAS_BENCH_DIR` (default:
//! current directory) so the simulator's perf trajectory is tracked
//! across PRs. Pass `--no-json` to skip the files.

use rtas_bench::experiments;
use rtas_bench::report::BenchReport;
use rtas_bench::runner::TrialRunner;
use rtas_bench::scenarios;
use rtas_bench::Scale;

fn write_report(report: BenchReport) {
    match report.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write {}: {err}", report.path().display()),
    }
}

fn scenario_grid_report(
    name: &'static str,
    rows: &[experiments::E11Row],
    threads: usize,
) -> BenchReport {
    let mut report = BenchReport::new(name, threads);
    for row in rows {
        report.push(row.bench_row());
    }
    report
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let no_json = args.iter().any(|a| a == "--no-json");
    // One pass: `--threads` takes a mandatory numeric value; everything
    // else that is not a flag selects experiments.
    let mut threads = None;
    let mut scenario_name: Option<String> = None;
    let mut wanted: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--threads" {
            let value = iter.next().unwrap_or_else(|| {
                eprintln!("error: --threads requires a value");
                std::process::exit(2);
            });
            threads = Some(value.parse::<usize>().unwrap_or_else(|_| {
                eprintln!("error: --threads value {value:?} is not a number");
                std::process::exit(2);
            }));
        } else if arg == "--scenario" {
            let value = iter.next().unwrap_or_else(|| {
                eprintln!("error: --scenario requires a cell name (see --list-scenarios)");
                std::process::exit(2);
            });
            scenario_name = Some(value.clone());
        } else if !arg.starts_with("--") {
            wanted.push(arg.as_str());
        }
    }
    let runner = match threads {
        Some(n) => TrialRunner::new(n),
        None => TrialRunner::from_env(),
    };
    let scale = if fast { Scale::fast() } else { Scale::full() };

    if args.iter().any(|a| a == "--list-scenarios") {
        let k = experiments::e11_contention(scale);
        println!("E11 scenario grid cells (k={k}), one per arrival+fault+strategy:");
        for cell in scenarios::grid(k) {
            println!("  {}", cell.name());
        }
        return;
    }
    if let Some(name) = scenario_name {
        let k = experiments::e11_contention(scale);
        let Some(cell) = scenarios::find(k, &name) else {
            eprintln!("error: unknown scenario {name:?}; see --list-scenarios");
            std::process::exit(2);
        };
        let rows = experiments::e11_cells(scale, &runner, std::slice::from_ref(&cell), k);
        if !no_json {
            // A distinct file name, so drilling into one cell never
            // clobbers the full-grid BENCH_scenario_grid.json.
            write_report(scenario_grid_report(
                "scenario_cell",
                &rows,
                runner.threads(),
            ));
        }
        return;
    }

    let run = |id: &str| wanted.is_empty() || wanted.contains(&id);

    println!(
        "randomized test-and-set reproduction — experiments (scale: {scale:?}, threads: {})",
        runner.threads()
    );
    if run("e1") {
        experiments::e1_group_election_performance(scale, &runner);
    }
    if run("e2") {
        let rows = experiments::e2_logstar_steps(scale, &runner);
        if !no_json {
            let mut report = BenchReport::new("step_complexity", runner.threads());
            for r in &rows {
                report.push(
                    r.steps
                        .bench_row(scale.trials)
                        .with("log_star", r.log_star as f64)
                        .with("registers", r.registers as f64),
                );
            }
            write_report(report);
        }
    }
    if run("e3") {
        let rows = experiments::e3_loglog_steps(scale, &runner);
        if !no_json {
            let mut report = BenchReport::new("loglog_steps", runner.threads());
            for r in &rows {
                report.push(
                    r.steps
                        .bench_row(scale.trials)
                        .with("baseline_mean", r.baseline.mean_max_steps),
                );
            }
            write_report(report);
        }
    }
    if run("e4") {
        let rows = experiments::e4_ratrace(scale, &runner);
        if !no_json {
            let mut report = BenchReport::new("ratrace", runner.threads());
            for r in &rows {
                report.push(
                    r.steps
                        .bench_row(scale.trials)
                        .with("regs_space_efficient", r.regs_space_efficient as f64)
                        .with("regs_original_declared", r.regs_original_declared as f64)
                        .with("regs_original_touched", r.regs_original_touched as f64),
                );
            }
            write_report(report);
        }
    }
    if run("e5") {
        experiments::e5_combiner(scale, &runner);
    }
    if run("e6") {
        experiments::e6_space_lower_bound(scale, &runner);
    }
    if run("e7") {
        experiments::e7_two_process_tail(scale, &runner);
    }
    if run("e8") {
        experiments::e8_sifting_rounds(scale, &runner);
    }
    if run("e9") {
        experiments::e9_adaptive_attack(scale, &runner);
    }
    if run("e10") {
        experiments::e10_ladder_depth(scale, &runner);
    }
    if run("e11") {
        let rows = experiments::e11_scenario_grid(scale, &runner);
        if !no_json {
            write_report(scenario_grid_report(
                "scenario_grid",
                &rows,
                runner.threads(),
            ));
        }
    }
}
