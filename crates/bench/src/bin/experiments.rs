//! Regenerate every table of EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p rtas-bench --release --bin experiments          # full scale
//! cargo run -p rtas-bench --release --bin experiments -- --fast
//! cargo run -p rtas-bench --release --bin experiments -- e4 e7 # subset
//! ```

use rtas_bench::experiments;
use rtas_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let scale = if fast { Scale::fast() } else { Scale::full() };
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let run = |id: &str| wanted.is_empty() || wanted.contains(&id);

    println!("randomized test-and-set reproduction — experiments (scale: {scale:?})");
    if run("e1") {
        experiments::e1_group_election_performance(scale);
    }
    if run("e2") {
        experiments::e2_logstar_steps(scale);
    }
    if run("e3") {
        experiments::e3_loglog_steps(scale);
    }
    if run("e4") {
        experiments::e4_ratrace(scale);
    }
    if run("e5") {
        experiments::e5_combiner(scale);
    }
    if run("e6") {
        experiments::e6_space_lower_bound(scale);
    }
    if run("e7") {
        experiments::e7_two_process_tail(scale);
    }
    if run("e8") {
        experiments::e8_sifting_rounds(scale);
    }
    if run("e9") {
        experiments::e9_adaptive_attack(scale);
    }
    if run("e10") {
        experiments::e10_ladder_depth(scale);
    }
}
