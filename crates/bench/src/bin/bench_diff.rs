//! `bench-diff` — the perf-regression gate over `BENCH_*.json` reports.
//!
//! ```text
//! bench-diff <baseline-dir> <current-dir> [options]
//! bench-diff --ab <a-report.json> <b-report.json> [--p50-ratio r] [--gate-wall]
//!
//! options:
//!   --mean-tol <f>   relative tolerance on mean/p50/p90   (default 0.10)
//!   --tail-tol <f>   relative tolerance on worst/p99      (default 0.25)
//!   --wall-tol <f>   relative tolerance on wall_ms        (default 9.0)
//!   --no-wall        do not gate wall_ms at all (cross-machine runs)
//!   --gate-wall      also tolerance-gate the core (latency + wall)
//!                    metrics of rows labeled `gate=wall`
//!                    (wall-clock-derived reports like
//!                    BENCH_native_load.json) at the wall tolerance;
//!                    by default such rows are validated structurally
//!                    (row set, op counts, finiteness) but not gated.
//!                    Extras (throughput_ops_s, ...) stay
//!                    informational either way
//!   --verbose        list in-tolerance metrics too
//!
//! --ab mode: the two positional arguments are report FILES, not
//! directories. Their `scope=total` rows' median latencies are
//! compared as a ratio (B over A) and printed; with --gate-wall the
//! comparison also GATES — exit 1 when the ratio exceeds --p50-ratio
//! (default 2.0). Used by CI's same-machine native-vs-remote A/B: the
//! two reports come from the same run on the same runner, so the
//! absolute ratio is meaningful where cross-machine tolerances are not.
//! ```
//!
//! Compares every `BENCH_*.json` in `<current-dir>` against the
//! same-named file in `<baseline-dir>` (typically the committed
//! `baselines/` directory) with noise-aware per-metric thresholds, and
//! prints a markdown delta table. Exit codes: `0` — within tolerance,
//! `1` — regression or structural drift, `2` — usage / IO / parse
//! error. See the "Perf baselines & regression gating" section of the
//! README for the baseline-refresh workflow (`[bench-reset]`).

use std::path::PathBuf;
use std::process::ExitCode;

use rtas_bench::diff::{ab_p50_files, diff_dirs, markdown_summary, Tolerances};

fn usage() -> ! {
    eprintln!(
        "usage: bench-diff <baseline-dir> <current-dir> \
         [--mean-tol f] [--tail-tol f] [--wall-tol f] [--no-wall] \
         [--gate-wall] [--verbose]\n       \
         bench-diff --ab <a.json> <b.json> [--p50-ratio r] [--gate-wall]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut tol = Tolerances::default();
    let mut verbose = false;
    let mut ab = false;
    let mut p50_ratio = 2.0f64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut tol_value = |name: &str| -> f64 {
            let Some(value) = iter.next() else {
                eprintln!("error: {name} requires a value");
                usage();
            };
            value.parse::<f64>().unwrap_or_else(|_| {
                eprintln!("error: {name} value {value:?} is not a number");
                usage();
            })
        };
        match arg.as_str() {
            "--mean-tol" => tol.mean = tol_value("--mean-tol"),
            "--tail-tol" => tol.tail = tol_value("--tail-tol"),
            "--wall-tol" => tol.wall = tol_value("--wall-tol"),
            "--no-wall" => tol.check_wall = false,
            "--gate-wall" => tol.gate_wall_rows = true,
            "--ab" => ab = true,
            "--p50-ratio" => p50_ratio = tol_value("--p50-ratio"),
            "--verbose" => verbose = true,
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => {
                eprintln!("error: unknown flag {flag}");
                usage();
            }
            path => paths.push(PathBuf::from(path)),
        }
    }
    if paths.len() != 2 {
        usage();
    }
    if ab {
        return match ab_p50_files(&paths[0], &paths[1], p50_ratio) {
            Ok(outcome) => {
                println!("{}", outcome.summary());
                // Like the directory mode, wall-clock ratios only GATE
                // under --gate-wall; without it the A/B is informational
                // (printed, never failing).
                if tol.gate_wall_rows && !outcome.passed() {
                    ExitCode::from(1)
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(err) => {
                eprintln!("bench-diff: {err}");
                ExitCode::from(2)
            }
        };
    }
    match diff_dirs(&paths[0], &paths[1], &tol) {
        Ok(outcome) => {
            print!("{}", markdown_summary(&outcome, verbose));
            if outcome.regressed() {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(err) => {
            eprintln!("bench-diff: {err}");
            ExitCode::from(2)
        }
    }
}
