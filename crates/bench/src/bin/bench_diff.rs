//! `bench-diff` — the perf-regression gate over `BENCH_*.json` reports.
//!
//! ```text
//! bench-diff <baseline-dir> <current-dir> [options]
//!
//! options:
//!   --mean-tol <f>   relative tolerance on mean/p50/p90   (default 0.10)
//!   --tail-tol <f>   relative tolerance on worst/p99      (default 0.25)
//!   --wall-tol <f>   relative tolerance on wall_ms        (default 9.0)
//!   --no-wall        do not gate wall_ms at all (cross-machine runs)
//!   --gate-wall      also tolerance-gate the core (latency + wall)
//!                    metrics of rows labeled `gate=wall`
//!                    (wall-clock-derived reports like
//!                    BENCH_native_load.json) at the wall tolerance;
//!                    by default such rows are validated structurally
//!                    (row set, op counts, finiteness) but not gated.
//!                    Extras (throughput_ops_s, ...) stay
//!                    informational either way
//!   --verbose        list in-tolerance metrics too
//! ```
//!
//! Compares every `BENCH_*.json` in `<current-dir>` against the
//! same-named file in `<baseline-dir>` (typically the committed
//! `baselines/` directory) with noise-aware per-metric thresholds, and
//! prints a markdown delta table. Exit codes: `0` — within tolerance,
//! `1` — regression or structural drift, `2` — usage / IO / parse
//! error. See the "Perf baselines & regression gating" section of the
//! README for the baseline-refresh workflow (`[bench-reset]`).

use std::path::PathBuf;
use std::process::ExitCode;

use rtas_bench::diff::{diff_dirs, markdown_summary, Tolerances};

fn usage() -> ! {
    eprintln!(
        "usage: bench-diff <baseline-dir> <current-dir> \
         [--mean-tol f] [--tail-tol f] [--wall-tol f] [--no-wall] \
         [--gate-wall] [--verbose]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut tol = Tolerances::default();
    let mut verbose = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut tol_value = |name: &str| -> f64 {
            let Some(value) = iter.next() else {
                eprintln!("error: {name} requires a value");
                usage();
            };
            value.parse::<f64>().unwrap_or_else(|_| {
                eprintln!("error: {name} value {value:?} is not a number");
                usage();
            })
        };
        match arg.as_str() {
            "--mean-tol" => tol.mean = tol_value("--mean-tol"),
            "--tail-tol" => tol.tail = tol_value("--tail-tol"),
            "--wall-tol" => tol.wall = tol_value("--wall-tol"),
            "--no-wall" => tol.check_wall = false,
            "--gate-wall" => tol.gate_wall_rows = true,
            "--verbose" => verbose = true,
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => {
                eprintln!("error: unknown flag {flag}");
                usage();
            }
            dir => dirs.push(PathBuf::from(dir)),
        }
    }
    if dirs.len() != 2 {
        usage();
    }
    match diff_dirs(&dirs[0], &dirs[1], &tol) {
        Ok(outcome) => {
            print!("{}", markdown_summary(&outcome, verbose));
            if outcome.regressed() {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(err) => {
            eprintln!("bench-diff: {err}");
            ExitCode::from(2)
        }
    }
}
