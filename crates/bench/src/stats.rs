//! Tiny statistics helpers for the experiment tables.
//!
//! The reproduction targets are growth *shapes*: "flat in k", "linear in
//! k", "logarithmic in k". [`log_log_slope`] estimates the exponent `p`
//! of a power law `y ≈ c·k^p` by least squares on `(ln k, ln y)`; the
//! experiment assertions then read naturally: the attacked log* algorithm
//! has slope ≈ 1, the friendly one ≈ 0.

/// Least-squares slope of `ln y` against `ln x`.
///
/// Returns the estimated power-law exponent. Points with non-positive
/// coordinates are skipped.
///
/// # Panics
///
/// Panics if fewer than two usable points remain.
pub fn log_log_slope(points: &[(f64, f64)]) -> f64 {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    assert!(logs.len() >= 2, "need at least two positive points");
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-12, "x values are degenerate");
    (n * sxy - sx * sy) / denom
}

/// Pearson correlation between `x` and `y`.
///
/// # Panics
///
/// Panics if the slices differ in length or have fewer than two points.
pub fn correlation(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "length mismatch");
    assert!(x.len() >= 2, "need at least two points");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..x.len() {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_linear_data_is_one() {
        let pts: Vec<(f64, f64)> = (1..=6).map(|k| (k as f64, 3.0 * k as f64)).collect();
        assert!((log_log_slope(&pts) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn slope_of_quadratic_data_is_two() {
        let pts: Vec<(f64, f64)> = (1..=6)
            .map(|k| (k as f64, 0.5 * (k as f64).powi(2)))
            .collect();
        assert!((log_log_slope(&pts) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn slope_of_constant_data_is_zero() {
        let pts: Vec<(f64, f64)> = (1..=6).map(|k| (k as f64, 7.0)).collect();
        assert!(log_log_slope(&pts).abs() < 1e-9);
    }

    #[test]
    fn slope_of_logarithmic_data_is_small() {
        let pts: Vec<(f64, f64)> = (2..=64)
            .step_by(8)
            .map(|k| (k as f64, (k as f64).log2() + 5.0))
            .collect();
        let s = log_log_slope(&pts);
        assert!(s > 0.0 && s < 0.5, "slope {s}");
    }

    #[test]
    #[should_panic(expected = "two positive points")]
    fn too_few_points_panics() {
        let _ = log_log_slope(&[(1.0, 1.0)]);
    }

    #[test]
    fn correlation_extremes() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y_pos = [2.0, 4.0, 6.0, 8.0];
        let y_neg = [8.0, 6.0, 4.0, 2.0];
        assert!((correlation(&x, &y_pos) - 1.0).abs() < 1e-9);
        assert!((correlation(&x, &y_neg) + 1.0).abs() < 1e-9);
        let flat = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(correlation(&x, &flat), 0.0);
    }
}
