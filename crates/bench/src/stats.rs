//! The statistics engine behind the experiment tables and `BENCH_*.json`
//! reports.
//!
//! Two layers live here:
//!
//! * [`StatsAccumulator`] — a streaming, mergeable accumulator producing
//!   the *distributional* row statistics the paper's claims are actually
//!   about (expected step complexity is a tail statement, not a point
//!   mean): count, mean and variance via Welford's method, exact
//!   min/max, p50/p90/p99 via a fixed-log-bin histogram, and a
//!   normal-approximation 95% confidence half-width.
//! * shape regressions — [`log_log_slope`] and [`correlation`], the tiny
//!   least-squares helpers the experiment assertions use to check growth
//!   *shapes* ("flat in k", "linear in k") rather than absolute
//!   constants.
//!
//! # Degenerate-input policy
//!
//! All functions in this module follow one contract, asserted by tests:
//!
//! * **Structural misuse panics**: mismatched slice lengths, fewer than
//!   two (usable) points, a degenerate *predictor* (zero variance in
//!   `x`, where the question "how does y grow with x" is ill-posed), or
//!   pushing a non-finite observation into an accumulator.
//! * **Degenerate *response* data yields `0.0`**: flat `y` has no trend,
//!   so [`correlation`] returns `0.0` and [`log_log_slope`] naturally
//!   computes a zero slope. Queries on an *empty* accumulator return
//!   `0.0` for every statistic (there is nothing to report).
//!
//! # Determinism and merging
//!
//! [`StatsAccumulator::merge`] is associative on every *gate-relevant*
//! statistic: `count`, `min`, `max`, and the histogram bins are integers
//! or exact float comparisons, so the quantile estimates are **bit
//! identical** under any merge order or chunking. The floating-point
//! moments (`mean`, `m2`) merge via Chan's parallel formula, which is
//! algebraically associative; for integer-valued observations below
//! 2⁵³ (step counts — the common case) the sums involved are exact, and
//! for general floats chunked merges agree with a serial fold to ~1e-12
//! relative. The [`crate::runner`] keeps `BENCH_*.json` bit-identical at
//! any thread count the stronger way: results are folded *in trial-index
//! order* on one thread after the workers join.

/// Number of linear sub-bins per power-of-two octave. Eight sub-bins
/// bound the histogram's relative quantile error by `1/16` (each bin
/// spans a ratio of at most `9/8`; the reported midpoint is within
/// ±6.25% of every value in the bin).
const SUB_BINS: u64 = 8;
/// Smallest octave tracked exactly: values in `[2^-32, 2^96)` land in a
/// dedicated bin; smaller positives clamp to the first bin, larger to
/// the last. Step counts, register counts, and wall-clock milliseconds
/// all live comfortably inside this range.
const MIN_EXP: i64 = -32;
const MAX_EXP: i64 = 95;
const OCTAVES: usize = (MAX_EXP - MIN_EXP + 1) as usize;

/// Total histogram bins in the log-bin scheme ([`bin_index`] returns
/// values in `0..BINS`). Public so other consumers — the `rtas-obs`
/// metrics plane's lock-free latency histograms — can size their bin
/// arrays to the exact same layout and stay merge-compatible with
/// [`StatsAccumulator`]'s quantile semantics.
pub const BINS: usize = OCTAVES * SUB_BINS as usize;

/// Histogram bin for a finite positive value: octave from the f64
/// exponent bits, sub-bin from the top three mantissa bits. Pure bit
/// arithmetic — no rounding-sensitive float ops — so binning is exactly
/// reproducible everywhere. Public as the shared binning scheme behind
/// both [`StatsAccumulator`] and the `rtas-obs` atomic histograms.
pub fn bin_index(v: f64) -> usize {
    debug_assert!(v.is_finite() && v > 0.0);
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i64 - 1023;
    if exp < MIN_EXP {
        return 0;
    }
    if exp > MAX_EXP {
        return BINS - 1;
    }
    let sub = (bits >> 49) & 0x7;
    ((exp - MIN_EXP) as u64 * SUB_BINS + sub) as usize
}

/// Midpoint of histogram bin `idx`: `2^e · (1 + (sub + ½)/8)` — the
/// value a [`bin_index`]-binned quantile reports for that bin.
pub fn bin_midpoint(idx: usize) -> f64 {
    let exp = (idx / SUB_BINS as usize) as i64 + MIN_EXP;
    let sub = (idx % SUB_BINS as usize) as f64;
    (exp as f64).exp2() * (1.0 + (sub + 0.5) / SUB_BINS as f64)
}

/// Streaming distribution statistics over one batch of observations.
///
/// Push observations one at a time (or [`merge`](Self::merge) whole
/// accumulators); query mean, variance, min/max, quantiles, and a
/// normal-approx confidence interval at any point. All queries on an
/// empty accumulator return `0.0`.
///
/// # Panics
///
/// [`push`](Self::push) panics on a non-finite observation — every
/// simulator metric is a finite count or duration, so NaN/∞ here is a
/// bug upstream, not data (see the module-level degenerate-input
/// policy).
#[derive(Debug, Clone, PartialEq)]
pub struct StatsAccumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    /// Observations `<= 0` (the histogram covers positives only); their
    /// exact magnitudes are folded into `min`/`mean` as usual.
    nonpositive: u64,
    /// Log-bin histogram counts; empty until the first positive push,
    /// then `BINS` entries.
    bins: Vec<u64>,
}

impl Default for StatsAccumulator {
    fn default() -> Self {
        StatsAccumulator::new()
    }
}

impl StatsAccumulator {
    /// Empty accumulator.
    pub fn new() -> Self {
        StatsAccumulator {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            nonpositive: 0,
            bins: Vec::new(),
        }
    }

    /// An accumulator holding exactly one observation.
    pub fn from_value(value: f64) -> Self {
        let mut acc = StatsAccumulator::new();
        acc.push(value);
        acc
    }

    /// Add one observation. Panics if `value` is not finite.
    pub fn push(&mut self, value: f64) {
        assert!(
            value.is_finite(),
            "non-finite observation {value} pushed into StatsAccumulator"
        );
        self.count += 1;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        if value > 0.0 {
            if self.bins.is_empty() {
                self.bins = vec![0; BINS];
            }
            self.bins[bin_index(value)] += 1;
        } else {
            self.nonpositive += 1;
        }
    }

    /// Fold `other` into `self` (Chan's parallel moments formula plus
    /// exact integer histogram/min/max merges). See the module docs for
    /// the associativity guarantees.
    pub fn merge(&mut self, other: &StatsAccumulator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let n = n1 + n2;
        let delta = other.mean - self.mean;
        self.mean += delta * (n2 / n);
        self.m2 += other.m2 + delta * delta * (n1 * n2 / n);
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.nonpositive += other.nonpositive;
        if !other.bins.is_empty() {
            if self.bins.is_empty() {
                self.bins = other.bins.clone();
            } else {
                for (a, b) in self.bins.iter_mut().zip(&other.bins) {
                    *a += b;
                }
            }
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean observation (`0.0` if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Minimum observation (`0.0` if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum observation (`0.0` if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sample variance (Bessel-corrected; `0.0` with fewer than two
    /// observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).max(0.0)
        }
    }

    /// Sample standard deviation (`0.0` with fewer than two
    /// observations).
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Half-width of the normal-approximation 95% confidence interval
    /// for the mean: `1.96·s/√n` (`0.0` with fewer than two
    /// observations). The experiments' trial counts are modest, so treat
    /// this as a noise yardstick, not an exact coverage statement.
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.stddev() / (self.count as f64).sqrt()
        }
    }

    /// Nearest-rank quantile estimate from the log-bin histogram,
    /// clamped to the exact `[min, max]`. Relative error is bounded by
    /// the bin width (±6.25%); `q` outside `[0, 1]` panics.
    ///
    /// Bit-identical under any merge order: ranks come from integer bin
    /// counts and the clamp uses exact min/max.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return 0.0;
        }
        if q == 0.0 {
            return self.min;
        }
        if q == 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = self.nonpositive;
        if rank <= cum {
            // All non-positive observations sit below every histogram
            // bin; the best available estimate down there is the exact
            // minimum.
            return self.min;
        }
        for (idx, &b) in self.bins.iter().enumerate() {
            cum += b;
            if cum >= rank {
                return bin_midpoint(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate — the tail the paper's adversary
    /// arguments are about.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Snapshot of every derived statistic, for row types that want a
    /// `Copy` value.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            stddev: self.stddev(),
            ci95: self.ci95_half_width(),
            min: self.min(),
            max: self.max(),
            p50: self.p50(),
            p90: self.p90(),
            p99: self.p99(),
        }
    }
}

/// A `Copy` snapshot of a [`StatsAccumulator`]'s derived statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Mean observation.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Half-width of the normal-approx 95% CI for the mean.
    pub ci95: f64,
    /// Exact minimum.
    pub min: f64,
    /// Exact maximum.
    pub max: f64,
    /// Median estimate (log-bin histogram, clamped to `[min, max]`).
    pub p50: f64,
    /// 90th-percentile estimate.
    pub p90: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

/// Least-squares slope of `ln y` against `ln x`.
///
/// Returns the estimated power-law exponent. Points with non-positive
/// coordinates are skipped. Flat `y` yields slope `0.0` (a degenerate
/// response is a valid "no growth" answer).
///
/// # Panics
///
/// Panics if fewer than two usable points remain, or if the usable `x`
/// values are degenerate (zero variance) — see the module-level policy.
pub fn log_log_slope(points: &[(f64, f64)]) -> f64 {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    assert!(logs.len() >= 2, "need at least two positive points");
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-12, "x values are degenerate");
    (n * sxy - sx * sy) / denom
}

/// Pearson correlation between `x` and `y`.
///
/// Flat `y` yields `0.0` (no trend in the response).
///
/// # Panics
///
/// Panics if the slices differ in length, have fewer than two points,
/// or if `x` is degenerate (zero variance) — see the module-level
/// policy. Before this contract was harmonized, a degenerate `x`
/// silently returned `0.0` while [`log_log_slope`] panicked on the same
/// input.
pub fn correlation(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "length mismatch");
    assert!(x.len() >= 2, "need at least two points");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..x.len() {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    assert!(vx > 0.0, "x values are degenerate");
    if vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_linear_data_is_one() {
        let pts: Vec<(f64, f64)> = (1..=6).map(|k| (k as f64, 3.0 * k as f64)).collect();
        assert!((log_log_slope(&pts) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn slope_of_quadratic_data_is_two() {
        let pts: Vec<(f64, f64)> = (1..=6)
            .map(|k| (k as f64, 0.5 * (k as f64).powi(2)))
            .collect();
        assert!((log_log_slope(&pts) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn slope_of_constant_data_is_zero() {
        let pts: Vec<(f64, f64)> = (1..=6).map(|k| (k as f64, 7.0)).collect();
        assert!(log_log_slope(&pts).abs() < 1e-9);
    }

    #[test]
    fn slope_of_logarithmic_data_is_small() {
        let pts: Vec<(f64, f64)> = (2..=64)
            .step_by(8)
            .map(|k| (k as f64, (k as f64).log2() + 5.0))
            .collect();
        let s = log_log_slope(&pts);
        assert!(s > 0.0 && s < 0.5, "slope {s}");
    }

    #[test]
    #[should_panic(expected = "two positive points")]
    fn too_few_points_panics() {
        let _ = log_log_slope(&[(1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "x values are degenerate")]
    fn slope_with_degenerate_x_panics() {
        let _ = log_log_slope(&[(3.0, 1.0), (3.0, 2.0), (3.0, 4.0)]);
    }

    #[test]
    #[should_panic(expected = "x values are degenerate")]
    fn correlation_with_degenerate_x_panics() {
        let x = [2.0, 2.0, 2.0];
        let y = [1.0, 2.0, 3.0];
        let _ = correlation(&x, &y);
    }

    #[test]
    fn correlation_extremes() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y_pos = [2.0, 4.0, 6.0, 8.0];
        let y_neg = [8.0, 6.0, 4.0, 2.0];
        assert!((correlation(&x, &y_pos) - 1.0).abs() < 1e-9);
        assert!((correlation(&x, &y_neg) + 1.0).abs() < 1e-9);
        // Degenerate *response* (flat y) is a valid "no trend" answer,
        // consistent with log_log_slope's zero slope on flat data.
        let flat = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(correlation(&x, &flat), 0.0);
    }

    #[test]
    fn empty_accumulator_reports_zeros() {
        let acc = StatsAccumulator::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.min(), 0.0);
        assert_eq!(acc.max(), 0.0);
        assert_eq!(acc.stddev(), 0.0);
        assert_eq!(acc.ci95_half_width(), 0.0);
        assert_eq!(acc.p50(), 0.0);
        assert_eq!(acc.p99(), 0.0);
    }

    #[test]
    fn single_value_statistics_are_exact() {
        let acc = StatsAccumulator::from_value(7.5);
        assert_eq!(acc.count(), 1);
        assert_eq!(acc.mean(), 7.5);
        assert_eq!(acc.min(), 7.5);
        assert_eq!(acc.max(), 7.5);
        assert_eq!(acc.variance(), 0.0);
        // The clamp to [min, max] makes single-value quantiles exact.
        assert_eq!(acc.p50(), 7.5);
        assert_eq!(acc.p99(), 7.5);
    }

    #[test]
    fn welford_matches_direct_formulas() {
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut acc = StatsAccumulator::new();
        for v in values {
            acc.push(v);
        }
        assert!((acc.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic set is 32/7.
        assert!((acc.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(acc.min(), 2.0);
        assert_eq!(acc.max(), 9.0);
        let expected_ci = 1.96 * (32.0f64 / 7.0).sqrt() / 8.0f64.sqrt();
        assert!((acc.ci95_half_width() - expected_ci).abs() < 1e-12);
    }

    #[test]
    fn quantiles_of_uniform_ladder_are_close() {
        let mut acc = StatsAccumulator::new();
        for v in 1..=1000 {
            acc.push(v as f64);
        }
        for (q, exact) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
            let est = acc.quantile(q);
            let rel = (est - exact).abs() / exact;
            assert!(rel < 0.08, "q={q}: est {est} vs exact {exact}");
        }
        assert_eq!(acc.quantile(0.0), 1.0);
        assert_eq!(acc.quantile(1.0), 1000.0);
    }

    #[test]
    fn nonpositive_values_are_tracked() {
        let mut acc = StatsAccumulator::new();
        for v in [-2.0, 0.0, 0.0, 1.0] {
            acc.push(v);
        }
        assert_eq!(acc.min(), -2.0);
        assert_eq!(acc.max(), 1.0);
        // Ranks 1..=3 are the non-positive mass: estimated by min.
        assert_eq!(acc.p50(), -2.0);
        assert_eq!(acc.quantile(1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-finite observation")]
    fn pushing_nan_panics() {
        StatsAccumulator::new().push(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn quantile_out_of_range_panics() {
        StatsAccumulator::from_value(1.0).quantile(1.5);
    }

    #[test]
    fn merge_matches_serial_fold() {
        let values: Vec<f64> = (0..97).map(|i| ((i * 37) % 101) as f64).collect();
        let mut serial = StatsAccumulator::new();
        for &v in &values {
            serial.push(v);
        }
        for chunk_size in [1usize, 7, 32, 97] {
            let mut merged = StatsAccumulator::new();
            for chunk in values.chunks(chunk_size) {
                let mut part = StatsAccumulator::new();
                for &v in chunk {
                    part.push(v);
                }
                merged.merge(&part);
            }
            assert_eq!(merged.count(), serial.count(), "chunk={chunk_size}");
            assert_eq!(merged.min(), serial.min());
            assert_eq!(merged.max(), serial.max());
            // Quantiles are integer-rank lookups over integer bins:
            // exactly merge-order independent.
            assert_eq!(merged.p50(), serial.p50());
            assert_eq!(merged.p90(), serial.p90());
            assert_eq!(merged.p99(), serial.p99());
            assert!((merged.mean() - serial.mean()).abs() < 1e-9);
            assert!((merged.variance() - serial.variance()).abs() < 1e-6);
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut acc = StatsAccumulator::from_value(3.0);
        acc.push(5.0);
        let snapshot = acc.clone();
        acc.merge(&StatsAccumulator::new());
        assert_eq!(acc, snapshot);
        let mut empty = StatsAccumulator::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn bin_index_is_monotone_and_midpoint_brackets() {
        let mut prev = 0usize;
        for i in 1..4000u64 {
            let v = i as f64 * 0.25;
            let idx = bin_index(v);
            assert!(idx >= prev, "v={v}");
            prev = idx;
            let mid = bin_midpoint(idx);
            // The midpoint is within one bin width of the value.
            assert!(mid / v < 1.07 && v / mid < 1.07, "v={v} mid={mid}");
        }
    }

    #[test]
    fn out_of_range_magnitudes_clamp() {
        let mut acc = StatsAccumulator::new();
        acc.push(1e-300); // far below 2^-32: clamps to the first bin
        acc.push(1e300); // far above 2^96: clamps to the last bin
        assert_eq!(acc.count(), 2);
        assert_eq!(acc.min(), 1e-300);
        assert_eq!(acc.max(), 1e300);
        // Clamped bins still honor the exact min/max clamp.
        assert_eq!(acc.quantile(0.0), 1e-300);
        assert_eq!(acc.quantile(1.0), 1e300);
    }

    #[test]
    fn summary_mirrors_accessors() {
        let mut acc = StatsAccumulator::new();
        for v in [1.0, 2.0, 3.0, 10.0] {
            acc.push(v);
        }
        let s = acc.summary();
        assert_eq!(s.count, acc.count());
        assert_eq!(s.mean, acc.mean());
        assert_eq!(s.stddev, acc.stddev());
        assert_eq!(s.ci95, acc.ci95_half_width());
        assert_eq!(s.min, acc.min());
        assert_eq!(s.max, acc.max());
        assert_eq!(s.p50, acc.p50());
        assert_eq!(s.p90, acc.p90());
        assert_eq!(s.p99, acc.p99());
    }
}
