//! A tiny wall-clock micro-bench harness (std-only).
//!
//! This environment has no external crates, so the `benches/` targets use
//! this harness instead of criterion: each benchmark runs a warmup pass
//! and then `samples` timed iterations, printing mean/min/max per
//! iteration in a pipe-separated table. Not statistically rigorous — the
//! interesting output is *relative* cost across parameter points, which
//! this resolves fine.
//!
//! Sample count comes from `RTAS_BENCH_SAMPLES` (default 10); raise it
//! for less noisy numbers.

use std::time::Instant;

/// Micro-benchmark driver: prints one table row per benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Micro {
    samples: u32,
}

impl Micro {
    /// A driver with the sample count from `RTAS_BENCH_SAMPLES`
    /// (default 10).
    pub fn from_env() -> Self {
        let samples = std::env::var("RTAS_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        Micro {
            samples: samples.max(1),
        }
    }

    /// A driver with an explicit sample count (at least 1).
    pub fn with_samples(samples: u32) -> Self {
        Micro {
            samples: samples.max(1),
        }
    }

    /// Print the table header for a named benchmark group.
    pub fn group(&self, name: &str) {
        println!();
        println!("== {name} ({} samples)", self.samples);
        println!("benchmark | mean ms | min ms | max ms");
    }

    /// Time `f` over the configured samples and print one row.
    ///
    /// `f` receives the 1-based iteration index — benchmarks that need a
    /// fresh seed per iteration use it directly, keeping runs
    /// reproducible.
    pub fn bench<R>(&self, label: &str, mut f: impl FnMut(u64) -> R) {
        // Warmup (not timed).
        std::hint::black_box(f(0));
        let mut total = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        for i in 1..=self.samples {
            let start = Instant::now();
            std::hint::black_box(f(i as u64));
            let ms = start.elapsed().as_secs_f64() * 1e3;
            total += ms;
            min = min.min(ms);
            max = max.max(ms);
        }
        println!(
            "{label} | {:.4} | {min:.4} | {max:.4}",
            total / self.samples as f64
        );
    }
}

impl Default for Micro {
    fn default() -> Self {
        Micro::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_warmup_plus_samples() {
        let micro = Micro::with_samples(3);
        let mut calls = 0u64;
        micro.bench("count", |_| calls += 1);
        assert_eq!(calls, 4, "one warmup + three samples");
    }

    #[test]
    fn samples_clamped_to_one() {
        assert_eq!(Micro::with_samples(0).samples, 1);
    }
}
