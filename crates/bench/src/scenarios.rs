//! The named scenario cells of the E11 grid, shared by the experiment
//! and the CLI (`--scenario` / `--list-scenarios`).
//!
//! The grid is the cross product of three axes sized for a contention of
//! `k` processes:
//!
//! * **arrivals** — simultaneous, staggered, batched, random-late;
//! * **faults** — none, crash-slot, crash-ops, churn (a quarter of the
//!   processes are victims);
//! * **strategies** — random, contention-max, laggard-first,
//!   write-chaser, plus the Section 4 ascending-write attack.
//!
//! Every cell name is `arrival+fault+strategy`, e.g.
//! `staggered+churn+laggard-first`.

use rtas::algorithms::attacks::AscendingWriteAttack;
use rtas::sim::scenario::{ArrivalSpec, FaultSpec, Scenario, StrategySpec};

/// The arrival axis of the grid, sized for `k` processes.
pub fn arrival_axis(k: usize) -> Vec<ArrivalSpec> {
    vec![
        ArrivalSpec::Simultaneous,
        ArrivalSpec::Staggered { gap: 3 },
        ArrivalSpec::Batched {
            size: (k / 4).max(1),
            gap: 2 * k as u64,
        },
        ArrivalSpec::RandomLate {
            max_delay: 4 * k as u64,
        },
    ]
}

/// The fault axis of the grid, sized for `k` processes: a quarter of the
/// processes are victims.
pub fn fault_axis(k: usize) -> Vec<FaultSpec> {
    let victims = (k / 4).max(1);
    vec![
        FaultSpec::None,
        FaultSpec::CrashAtSlot {
            victims,
            slot: k as u64,
        },
        FaultSpec::CrashAfterOps { victims, ops: 3 },
        FaultSpec::Churn { victims, ops: 3 },
    ]
}

/// The strategy axis of the grid.
pub fn strategy_axis() -> Vec<StrategySpec> {
    vec![
        StrategySpec::random(),
        StrategySpec::contention_max(),
        StrategySpec::laggard_first(),
        StrategySpec::write_chaser(),
        AscendingWriteAttack::spec(),
    ]
}

/// Every cell of the grid (arrivals × faults × strategies), named
/// `arrival+fault+strategy`.
pub fn grid(k: usize) -> Vec<Scenario> {
    let mut cells = Vec::new();
    for arrivals in arrival_axis(k) {
        for faults in fault_axis(k) {
            for strategy in &strategy_axis() {
                cells.push(
                    Scenario::builder()
                        .arrivals(arrivals)
                        .faults(faults)
                        .strategy(strategy.clone())
                        .build(),
                );
            }
        }
    }
    cells
}

/// Look a cell up by its `arrival+fault+strategy` name.
pub fn find(k: usize, name: &str) -> Option<Scenario> {
    grid(k).into_iter().find(|s| s.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn grid_covers_all_axis_combinations() {
        let k = 16;
        let cells = grid(k);
        assert_eq!(
            cells.len(),
            arrival_axis(k).len() * fault_axis(k).len() * strategy_axis().len()
        );
        let names: HashSet<&str> = cells.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), cells.len(), "cell names are unique");
        assert!(names.contains("staggered+churn+laggard-first"));
        assert!(names.contains("simultaneous+none+random"));
    }

    #[test]
    fn find_resolves_names() {
        let cell = find(8, "batched+crash-ops+write-chaser").expect("cell exists");
        assert_eq!(cell.name(), "batched+crash-ops+write-chaser");
        assert!(find(8, "no-such-cell").is_none());
    }
}
