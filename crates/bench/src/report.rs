//! Machine-readable benchmark reports: `BENCH_<name>.json`.
//!
//! The experiments binary emits one JSON file per tracked experiment so
//! the perf trajectory of the simulator can be compared across PRs
//! without scraping the printed tables. The format is a single JSON
//! object:
//!
//! ```json
//! {
//!   "experiment": "step_complexity",
//!   "threads": 8,
//!   "total_wall_ms": 1234.5,
//!   "rows": [
//!     {"k": 2, "trials": 24, "mean": 3.1, "worst": 5.0, "min": 2.0,
//!      "stddev": 0.9, "ci95": 0.36, "p50": 3.0, "p90": 4.8, "p99": 5.0,
//!      "wall_ms": 10.2, "registers": 141.0, "algorithm": "logstar"}
//!   ]
//! }
//! ```
//!
//! Every row carries the sweep parameter `k`, the per-trial
//! *distribution* statistics (mean, worst/min, sample stddev, the
//! normal-approx 95% CI half-width, and p50/p90/p99 from the log-bin
//! histogram — see [`crate::stats`]), and the wall-clock cost of the
//! batch; experiments may append extra named numeric fields
//! (`registers` above) and string labels (`algorithm`). No external
//! JSON crate is available in this environment, so both serialization
//! **and parsing** are done by hand: [`BenchReport::to_json`] emits the
//! canonical shape above, [`BenchReport::from_json`] reads any
//! whitespace/field order back, and the pair round-trips exactly —
//! `BenchReport::from_json(&r.to_json()) == r`. Non-finite floats
//! serialize as `null` and parse back as NaN; report equality treats
//! all non-finite values as equal, so the round-trip law holds for them
//! too.
//!
//! Files are written to the directory named by `RTAS_BENCH_DIR`
//! (default: the current working directory). The `bench-diff` binary
//! compares two directories of these files (see [`crate::diff`]).

use std::io::Write as _;
use std::path::PathBuf;

use crate::runner::SweepPoint;

/// One row of a report: a sweep point plus optional extra fields.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Sweep parameter.
    pub k: u64,
    /// Trials aggregated into the statistics.
    pub trials: u64,
    /// Mean observation.
    pub mean: f64,
    /// Worst (maximum) observation.
    pub worst: f64,
    /// Best (minimum) observation.
    pub min: f64,
    /// Sample standard deviation over the trials.
    pub stddev: f64,
    /// Half-width of the normal-approx 95% confidence interval.
    pub ci95: f64,
    /// Median estimate.
    pub p50: f64,
    /// 90th-percentile estimate.
    pub p90: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
    /// Wall-clock cost of the batch, in milliseconds.
    pub wall_ms: f64,
    /// Extra named numeric fields, appended verbatim to the row object.
    pub extra: Vec<(String, f64)>,
    /// Extra named string fields (scenario axis names, algorithm names),
    /// appended after the numeric extras.
    pub labels: Vec<(String, String)>,
}

impl From<&SweepPoint> for BenchRow {
    fn from(p: &SweepPoint) -> Self {
        BenchRow {
            k: p.k as u64,
            trials: p.trials,
            mean: p.mean(),
            worst: p.worst(),
            min: p.best(),
            stddev: p.stddev(),
            ci95: p.ci95(),
            p50: p.p50(),
            p90: p.p90(),
            p99: p.p99(),
            wall_ms: p.wall_ms(),
            extra: Vec::new(),
            labels: Vec::new(),
        }
    }
}

/// Float equality with all non-finite values identified: `null` in the
/// JSON collapses NaN and ±∞, so equality must too for the round-trip
/// law to hold.
fn f64_eq(a: f64, b: f64) -> bool {
    a == b || (!a.is_finite() && !b.is_finite())
}

impl PartialEq for BenchRow {
    fn eq(&self, other: &Self) -> bool {
        self.k == other.k
            && self.trials == other.trials
            && f64_eq(self.mean, other.mean)
            && f64_eq(self.worst, other.worst)
            && f64_eq(self.min, other.min)
            && f64_eq(self.stddev, other.stddev)
            && f64_eq(self.ci95, other.ci95)
            && f64_eq(self.p50, other.p50)
            && f64_eq(self.p90, other.p90)
            && f64_eq(self.p99, other.p99)
            && f64_eq(self.wall_ms, other.wall_ms)
            && self.extra.len() == other.extra.len()
            && self
                .extra
                .iter()
                .zip(&other.extra)
                .all(|((ka, va), (kb, vb))| ka == kb && f64_eq(*va, *vb))
            && self.labels == other.labels
    }
}

impl BenchRow {
    /// A zeroed row for sweep parameter `k` over `trials` trials —
    /// callers fill the statistics they have.
    pub fn empty(k: u64, trials: u64) -> Self {
        BenchRow {
            k,
            trials,
            mean: 0.0,
            worst: 0.0,
            min: 0.0,
            stddev: 0.0,
            ci95: 0.0,
            p50: 0.0,
            p90: 0.0,
            p99: 0.0,
            wall_ms: 0.0,
            extra: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// A row for an experiment that only measures a mean and a worst
    /// value (no per-trial distribution): every other statistic is NaN,
    /// which serializes as `null` — unavailable, never a fabricated
    /// zero. New statistic fields added to `BenchRow` inherit the
    /// policy automatically.
    pub fn from_mean_worst(k: u64, trials: u64, mean: f64, worst: f64) -> Self {
        BenchRow {
            mean,
            worst,
            min: f64::NAN,
            stddev: f64::NAN,
            ci95: f64::NAN,
            p50: f64::NAN,
            p90: f64::NAN,
            p99: f64::NAN,
            wall_ms: f64::NAN,
            ..BenchRow::empty(k, trials)
        }
    }

    /// A row carrying a full distribution [`Summary`].
    ///
    /// [`Summary`]: crate::stats::Summary
    pub fn from_summary(k: u64, s: &crate::stats::Summary, wall_ms: f64) -> Self {
        BenchRow {
            k,
            trials: s.count,
            mean: s.mean,
            worst: s.max,
            min: s.min,
            stddev: s.stddev,
            ci95: s.ci95,
            p50: s.p50,
            p90: s.p90,
            p99: s.p99,
            wall_ms,
            extra: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Append an extra named numeric field to this row.
    pub fn with(mut self, key: impl Into<String>, value: f64) -> Self {
        self.extra.push((key.into(), value));
        self
    }

    /// Append an extra named string field to this row.
    pub fn with_label(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.labels.push((key.into(), value.into()));
        self
    }

    /// The row's identity within a report: `k` plus every label value,
    /// in order. Two reports are compared row-by-row on this key.
    pub fn key(&self) -> String {
        let mut key = format!("k={}", self.k);
        for (name, value) in &self.labels {
            key.push_str(&format!(" {name}={value}"));
        }
        key
    }

    /// Core gated metrics by name, in emission order (extras excluded).
    pub fn metrics(&self) -> [(&'static str, f64); 9] {
        [
            ("mean", self.mean),
            ("worst", self.worst),
            ("min", self.min),
            ("stddev", self.stddev),
            ("ci95", self.ci95),
            ("p50", self.p50),
            ("p90", self.p90),
            ("p99", self.p99),
            ("wall_ms", self.wall_ms),
        ]
    }
}

/// A named collection of [`BenchRow`]s, serializable to
/// `BENCH_<name>.json` and parseable back via
/// [`BenchReport::from_json`].
#[derive(Debug, Clone)]
pub struct BenchReport {
    name: String,
    threads: usize,
    rows: Vec<BenchRow>,
    total_wall_ms: f64,
}

impl PartialEq for BenchReport {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.threads == other.threads
            && f64_eq(self.total_wall_ms, other.total_wall_ms)
            && self.rows == other.rows
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Minimal JSON string escaping: quotes, backslashes, and control
/// characters (label values are short identifiers, but stay safe).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl BenchReport {
    /// An empty report for experiment `name` measured with `threads`
    /// worker threads. `name` becomes part of the file name — keep it
    /// `[a-z0-9_]`.
    pub fn new(name: impl Into<String>, threads: usize) -> Self {
        BenchReport {
            name: name.into(),
            threads,
            rows: Vec::new(),
            total_wall_ms: 0.0,
        }
    }

    /// Experiment name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Worker threads the report was measured with. Informational only:
    /// results are bit-identical at every thread count, so `bench-diff`
    /// ignores this field.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The rows pushed so far.
    pub fn rows(&self) -> &[BenchRow] {
        &self.rows
    }

    /// Total wall-clock milliseconds accrued across pushed rows.
    pub fn total_wall_ms(&self) -> f64 {
        self.total_wall_ms
    }

    /// Append a row; the row's wall-clock accrues to the report total.
    pub fn push(&mut self, row: BenchRow) {
        if row.wall_ms.is_finite() {
            self.total_wall_ms += row.wall_ms.max(0.0);
        }
        self.rows.push(row);
    }

    /// Append a sweep point as a plain row.
    pub fn push_point(&mut self, point: &SweepPoint) {
        self.push(BenchRow::from(point));
    }

    /// Number of rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the report has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Serialize to the JSON format documented at the [module level](self).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"experiment\": {},\n", json_str(&self.name)));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!(
            "  \"total_wall_ms\": {},\n",
            json_f64(self.total_wall_ms)
        ));
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"k\": {}, \"trials\": {}",
                row.k, row.trials
            ));
            for (name, value) in row.metrics() {
                out.push_str(&format!(", \"{}\": {}", name, json_f64(value)));
            }
            for (key, value) in &row.extra {
                out.push_str(&format!(", {}: {}", json_str(key), json_f64(*value)));
            }
            for (key, value) in &row.labels {
                out.push_str(&format!(", {}: {}", json_str(key), json_str(value)));
            }
            out.push('}');
            if i + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse a report back from its JSON form.
    ///
    /// Accepts any whitespace and field order; unknown numeric row
    /// fields become [`BenchRow::extra`] entries and unknown string
    /// fields become [`BenchRow::labels`], both in document order —
    /// exactly inverting [`BenchReport::to_json`]. `null` parses as NaN.
    pub fn from_json(input: &str) -> Result<BenchReport, String> {
        Parser::new(input).parse_report()
    }

    /// The file this report writes to: `RTAS_BENCH_DIR` (or `.`) joined
    /// with `BENCH_<name>.json`.
    pub fn path(&self) -> PathBuf {
        let dir = std::env::var_os("RTAS_BENCH_DIR").unwrap_or_else(|| ".".into());
        PathBuf::from(dir).join(format!("BENCH_{}.json", self.name))
    }

    /// Write the report to [`BenchReport::path`], returning the path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = self.path();
        let mut file = std::fs::File::create(&path)?;
        file.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }
}

/// Parse one **flat** JSON object of numeric fields — the shape tool
/// surfaces like `rtas-svc stats --json` and `rtas-svc top --json`
/// emit — into `(name, value)` pairs in document order.
///
/// Reuses the report parser, so strings, escapes, numbers and `null`
/// (→ NaN) behave exactly as in [`BenchReport::from_json`]. String
/// values, nested objects/arrays, and trailing data are errors: the
/// scrapers built on this want numbers or a loud failure, never a
/// silent partial parse.
pub fn parse_json_object(input: &str) -> Result<Vec<(String, f64)>, String> {
    let mut p = Parser::new(input);
    p.expect(b'{')?;
    let mut out = Vec::new();
    loop {
        if p.peek() == Some(b'}') {
            p.pos += 1;
            break;
        }
        let key = p.parse_string()?;
        p.expect(b':')?;
        match p.parse_scalar()? {
            Scalar::Num(v) => out.push((key, v)),
            Scalar::Str(_) => return Err(p.err(&format!("field {key:?} is not numeric"))),
        }
        if p.peek() == Some(b',') {
            p.pos += 1;
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after object"));
    }
    Ok(out)
}

/// One parsed JSON scalar: everything a report row can contain.
enum Scalar {
    Num(f64),
    Str(String),
}

/// Hand-rolled recursive-descent parser for the report shape: objects,
/// arrays, strings (with escapes), numbers, and `null`. Errors carry
/// the byte offset.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-utf8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full sequence through.
                    let start = self.pos - 1;
                    let len = if b < 0x80 {
                        1
                    } else if b >> 5 == 0b110 {
                        2
                    } else if b >> 4 == 0b1110 {
                        3
                    } else {
                        4
                    };
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated utf8"))?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| self.err("invalid utf8"))?);
                    self.pos = end;
                }
            }
        }
    }

    /// A number or `null` (→ NaN).
    fn parse_number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            return Ok(f64::NAN);
        }
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn parse_scalar(&mut self) -> Result<Scalar, String> {
        match self.peek() {
            Some(b'"') => Ok(Scalar::Str(self.parse_string()?)),
            Some(_) => Ok(Scalar::Num(self.parse_number()?)),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_row(&mut self) -> Result<BenchRow, String> {
        self.expect(b'{')?;
        let mut row = BenchRow::empty(0, 0);
        loop {
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(row);
            }
            let key = self.parse_string()?;
            self.expect(b':')?;
            match self.parse_scalar()? {
                Scalar::Num(v) => match key.as_str() {
                    "k" => row.k = v as u64,
                    "trials" => row.trials = v as u64,
                    "mean" => row.mean = v,
                    "worst" => row.worst = v,
                    "min" => row.min = v,
                    "stddev" => row.stddev = v,
                    "ci95" => row.ci95 = v,
                    "p50" => row.p50 = v,
                    "p90" => row.p90 = v,
                    "p99" => row.p99 = v,
                    "wall_ms" => row.wall_ms = v,
                    _ => row.extra.push((key, v)),
                },
                Scalar::Str(s) => row.labels.push((key, s)),
            }
            if self.peek() == Some(b',') {
                self.pos += 1;
            }
        }
    }

    fn parse_report(&mut self) -> Result<BenchReport, String> {
        self.expect(b'{')?;
        let mut report = BenchReport::new(String::new(), 0);
        let mut total_wall_ms = 0.0;
        loop {
            if self.peek() == Some(b'}') {
                self.pos += 1;
                break;
            }
            let key = self.parse_string()?;
            self.expect(b':')?;
            match key.as_str() {
                "experiment" => report.name = self.parse_string()?,
                "threads" => report.threads = self.parse_number()? as usize,
                "total_wall_ms" => total_wall_ms = self.parse_number()?,
                "rows" => {
                    self.expect(b'[')?;
                    loop {
                        if self.peek() == Some(b']') {
                            self.pos += 1;
                            break;
                        }
                        let row = self.parse_row()?;
                        report.rows.push(row);
                        if self.peek() == Some(b',') {
                            self.pos += 1;
                        }
                    }
                }
                other => return Err(self.err(&format!("unknown report field {other:?}"))),
            }
            if self.peek() == Some(b',') {
                self.pos += 1;
            }
        }
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing data after report"));
        }
        // The recorded total is authoritative — push() accrual would
        // re-derive it, but parsing must preserve the document exactly.
        report.total_wall_ms = total_wall_ms;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(k: u64) -> BenchRow {
        BenchRow {
            mean: 1.5,
            worst: 3.0,
            min: 1.0,
            stddev: 0.5,
            ci95: 0.49,
            p50: 1.5,
            p90: 2.75,
            p99: 3.0,
            wall_ms: 2.25,
            ..BenchRow::empty(k, 4)
        }
    }

    #[test]
    fn json_shape_is_stable() {
        let mut r = BenchReport::new("demo", 2);
        r.push(row(2));
        r.push(row(8).with("registers", 17.0));
        let json = r.to_json();
        assert!(json.contains("\"experiment\": \"demo\""));
        assert!(json.contains("\"threads\": 2"));
        assert!(json.contains(
            "{\"k\": 2, \"trials\": 4, \"mean\": 1.5, \"worst\": 3, \"min\": 1, \
             \"stddev\": 0.5, \"ci95\": 0.49, \"p50\": 1.5, \"p90\": 2.75, \
             \"p99\": 3, \"wall_ms\": 2.25}"
        ));
        assert!(json.contains("\"registers\": 17"));
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(0.5), "0.5");
    }

    #[test]
    fn total_wall_accumulates() {
        let mut r = BenchReport::new("t", 1);
        r.push(row(1));
        r.push(row(2));
        let json = r.to_json();
        assert!(json.contains("\"total_wall_ms\": 4.5"), "{json}");
        assert_eq!(r.total_wall_ms(), 4.5);
    }

    #[test]
    fn path_uses_env_dir() {
        let r = BenchReport::new("pathy", 1);
        assert!(r.path().to_string_lossy().ends_with("BENCH_pathy.json"));
    }

    #[test]
    fn round_trip_is_exact() {
        let mut r = BenchReport::new("round_trip", 8);
        r.push(row(2));
        r.push(
            row(8)
                .with("registers", 141.25)
                .with("log_star", 3.0)
                .with_label("algorithm", "logstar")
                .with_label("scenario", "staggered+churn+laggard-first"),
        );
        let parsed = BenchReport::from_json(&r.to_json()).expect("parses");
        assert_eq!(parsed, r);
        // And a second cycle is a fixed point.
        assert_eq!(parsed.to_json(), r.to_json());
    }

    #[test]
    fn round_trip_preserves_null_as_nan() {
        let mut r = BenchReport::new("nulls", 1);
        let mut bad = row(3);
        bad.ci95 = f64::NAN;
        bad.p99 = f64::INFINITY;
        r.push(bad.with("broken", f64::NAN));
        let json = r.to_json();
        assert!(json.contains("\"ci95\": null"));
        assert!(json.contains("\"p99\": null"));
        assert!(json.contains("\"broken\": null"));
        let parsed = BenchReport::from_json(&json).expect("parses");
        assert!(parsed.rows()[0].ci95.is_nan());
        assert!(parsed.rows()[0].p99.is_nan());
        assert!(parsed.rows()[0].extra[0].1.is_nan());
        // Equality identifies all non-finite values, so the round-trip
        // law holds even though ∞ collapsed to NaN.
        assert_eq!(parsed, r);
    }

    #[test]
    fn parser_accepts_any_whitespace_and_order() {
        let json = "{\"rows\":[{\"mean\":2,\"k\":4,\"trials\":6,\"tag\":\"x\"}],\
                    \"threads\":3,\"total_wall_ms\":1.5,\"experiment\":\"dense\"}";
        let r = BenchReport::from_json(json).expect("parses");
        assert_eq!(r.name(), "dense");
        assert_eq!(r.threads(), 3);
        assert_eq!(r.total_wall_ms(), 1.5);
        assert_eq!(r.rows().len(), 1);
        assert_eq!(r.rows()[0].k, 4);
        assert_eq!(r.rows()[0].trials, 6);
        assert_eq!(r.rows()[0].mean, 2.0);
        assert_eq!(
            r.rows()[0].labels,
            vec![("tag".to_string(), "x".to_string())]
        );
    }

    #[test]
    fn parser_unescapes_strings() {
        let json = "{\"experiment\":\"a\\\"b\\\\c\\u0041\",\"threads\":1,\
                    \"total_wall_ms\":0,\"rows\":[]}";
        let r = BenchReport::from_json(json).expect("parses");
        assert_eq!(r.name(), "a\"b\\cA");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(BenchReport::from_json("").is_err());
        assert!(BenchReport::from_json("{").is_err());
        assert!(BenchReport::from_json("{\"experiment\": 3}").is_err());
        assert!(BenchReport::from_json("{\"bogus\": 1}").is_err());
        let valid = BenchReport::new("x", 1).to_json();
        assert!(BenchReport::from_json(&format!("{valid}trailing")).is_err());
    }

    #[test]
    fn flat_objects_parse_to_ordered_numeric_pairs() {
        let pairs =
            parse_json_object("{\"keys\":1,\"ops\":2.5,\"p99\":null}").expect("valid object");
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[0], ("keys".to_string(), 1.0));
        assert_eq!(pairs[1], ("ops".to_string(), 2.5));
        assert_eq!(pairs[2].0, "p99");
        assert!(pairs[2].1.is_nan(), "null parses as NaN");
        assert_eq!(parse_json_object("{}").unwrap(), vec![]);
        // Whitespace-insensitive, like the report parser.
        assert_eq!(
            parse_json_object(" { \"a\" : 7 } ").unwrap(),
            vec![("a".to_string(), 7.0)]
        );
    }

    #[test]
    fn flat_object_parser_rejects_strings_nesting_and_trailing_data() {
        assert!(parse_json_object("").is_err());
        assert!(parse_json_object("{\"a\":\"text\"}")
            .unwrap_err()
            .contains("not numeric"));
        assert!(parse_json_object("{\"a\":{\"b\":1}}").is_err());
        assert!(parse_json_object("{\"a\":[1]}").is_err());
        assert!(parse_json_object("{\"a\":1}x")
            .unwrap_err()
            .contains("trailing"));
    }

    #[test]
    fn row_key_includes_labels_in_order() {
        let r = row(4)
            .with_label("algorithm", "ratrace")
            .with_label("scenario", "baseline");
        assert_eq!(r.key(), "k=4 algorithm=ratrace scenario=baseline");
        assert_eq!(row(2).key(), "k=2");
    }
}
