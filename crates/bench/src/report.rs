//! Machine-readable benchmark reports: `BENCH_<name>.json`.
//!
//! The experiments binary emits one JSON file per tracked experiment so
//! the perf trajectory of the simulator can be compared across PRs
//! without scraping the printed tables. The format is a single JSON
//! object:
//!
//! ```json
//! {
//!   "experiment": "step_complexity",
//!   "threads": 8,
//!   "total_wall_ms": 1234.5,
//!   "rows": [
//!     {"k": 2, "trials": 24, "mean": 3.1, "worst": 5.0, "wall_ms": 10.2},
//!     {"k": 8, "trials": 24, "mean": 4.9, "worst": 8.0, "wall_ms": 15.7,
//!      "registers": 141.0}
//!   ]
//! }
//! ```
//!
//! Every row carries the sweep parameter `k`, the per-trial statistics,
//! and the wall-clock cost of the batch; experiments may append extra
//! named numeric fields (`registers` above). No external JSON crate is
//! available in this environment, so serialization is done by hand — all
//! emitted values are numbers or fixed-shape strings, and non-finite
//! floats serialize as `null`.
//!
//! Files are written to the directory named by `RTAS_BENCH_DIR` (default:
//! the current working directory).

use std::io::Write as _;
use std::path::PathBuf;
use std::time::Duration;

use crate::runner::SweepPoint;

/// One row of a report: a sweep point plus optional extra numeric fields.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Sweep parameter.
    pub k: u64,
    /// Trials aggregated into `mean`/`worst`.
    pub trials: u64,
    /// Mean observation.
    pub mean: f64,
    /// Worst observation.
    pub worst: f64,
    /// Wall-clock cost of the batch, in milliseconds.
    pub wall_ms: f64,
    /// Extra named numeric fields, appended verbatim to the row object.
    pub extra: Vec<(&'static str, f64)>,
    /// Extra named string fields (scenario axis names, algorithm names),
    /// appended after the numeric extras.
    pub labels: Vec<(&'static str, String)>,
}

impl From<&SweepPoint> for BenchRow {
    fn from(p: &SweepPoint) -> Self {
        BenchRow {
            k: p.k as u64,
            trials: p.trials,
            mean: p.mean(),
            worst: p.worst(),
            wall_ms: p.wall_ms(),
            extra: Vec::new(),
            labels: Vec::new(),
        }
    }
}

impl BenchRow {
    /// Append an extra named numeric field to this row.
    pub fn with(mut self, key: &'static str, value: f64) -> Self {
        self.extra.push((key, value));
        self
    }

    /// Append an extra named string field to this row.
    pub fn with_label(mut self, key: &'static str, value: impl Into<String>) -> Self {
        self.labels.push((key, value.into()));
        self
    }
}

/// A named collection of [`BenchRow`]s, serializable to `BENCH_<name>.json`.
#[derive(Debug, Clone)]
pub struct BenchReport {
    name: &'static str,
    threads: usize,
    rows: Vec<BenchRow>,
    total_wall: Duration,
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Minimal JSON string escaping: quotes, backslashes, and control
/// characters (label values are short identifiers, but stay safe).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl BenchReport {
    /// An empty report for experiment `name` measured with `threads`
    /// worker threads. `name` becomes part of the file name — keep it
    /// `[a-z0-9_]`.
    pub fn new(name: &'static str, threads: usize) -> Self {
        BenchReport {
            name,
            threads,
            rows: Vec::new(),
            total_wall: Duration::ZERO,
        }
    }

    /// Append a row; the row's wall-clock accrues to the report total.
    pub fn push(&mut self, row: BenchRow) {
        self.total_wall += Duration::from_secs_f64(row.wall_ms.max(0.0) / 1e3);
        self.rows.push(row);
    }

    /// Append a sweep point as a plain row.
    pub fn push_point(&mut self, point: &SweepPoint) {
        self.push(BenchRow::from(point));
    }

    /// Number of rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the report has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Serialize to the JSON format documented at the [module level](self).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"experiment\": \"{}\",\n", self.name));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!(
            "  \"total_wall_ms\": {},\n",
            json_f64(self.total_wall.as_secs_f64() * 1e3)
        ));
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"k\": {}, \"trials\": {}, \"mean\": {}, \"worst\": {}, \"wall_ms\": {}",
                row.k,
                row.trials,
                json_f64(row.mean),
                json_f64(row.worst),
                json_f64(row.wall_ms)
            ));
            for (key, value) in &row.extra {
                out.push_str(&format!(", \"{}\": {}", key, json_f64(*value)));
            }
            for (key, value) in &row.labels {
                out.push_str(&format!(", \"{}\": {}", key, json_str(value)));
            }
            out.push('}');
            if i + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The file this report writes to: `RTAS_BENCH_DIR` (or `.`) joined
    /// with `BENCH_<name>.json`.
    pub fn path(&self) -> PathBuf {
        let dir = std::env::var_os("RTAS_BENCH_DIR").unwrap_or_else(|| ".".into());
        PathBuf::from(dir).join(format!("BENCH_{}.json", self.name))
    }

    /// Write the report to [`BenchReport::path`], returning the path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = self.path();
        let mut file = std::fs::File::create(&path)?;
        file.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(k: u64) -> BenchRow {
        BenchRow {
            k,
            trials: 4,
            mean: 1.5,
            worst: 3.0,
            wall_ms: 2.25,
            extra: Vec::new(),
            labels: Vec::new(),
        }
    }

    #[test]
    fn json_shape_is_stable() {
        let mut r = BenchReport::new("demo", 2);
        r.push(row(2));
        r.push(row(8).with("registers", 17.0));
        let json = r.to_json();
        assert!(json.contains("\"experiment\": \"demo\""));
        assert!(json.contains("\"threads\": 2"));
        assert!(json
            .contains("{\"k\": 2, \"trials\": 4, \"mean\": 1.5, \"worst\": 3, \"wall_ms\": 2.25}"));
        assert!(json.contains("\"registers\": 17"));
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(0.5), "0.5");
    }

    #[test]
    fn total_wall_accumulates() {
        let mut r = BenchReport::new("t", 1);
        r.push(row(1));
        r.push(row(2));
        let json = r.to_json();
        assert!(json.contains("\"total_wall_ms\": 4.5"), "{json}");
    }

    #[test]
    fn path_uses_env_dir() {
        let r = BenchReport::new("pathy", 1);
        assert!(r.path().to_string_lossy().ends_with("BENCH_pathy.json"));
    }
}
