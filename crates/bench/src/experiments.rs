//! Experiments E1–E10: one per quantitative claim of the paper.
//!
//! Every function prints a table (pipe-separated, one row per parameter
//! point) and returns the raw rows so integration tests can assert the
//! claims' *shape* (who wins, growth order, crossovers) rather than
//! absolute constants.

use std::sync::Arc;

use rtas::algorithms::attacks::AscendingWriteAttack;
use rtas::algorithms::group_elect::{run_group_election, GeometricGroupElect, SiftingGroupElect};
use rtas::algorithms::logstar::log_star;
use rtas::algorithms::{Combined, LogLogLe, LogStarLe, OriginalRatRace, SpaceEfficientRatRace};
use rtas::lowerbound::hitting_time::{geometric_ge_rate, iterated_rate_depth};
use rtas::lowerbound::recurrence::{closed_form_f, f_sequence};
use rtas::lowerbound::yao::schedule_tail_probabilities;
use rtas::lowerbound::covering::covering_base_case;
use rtas::primitives::{LeaderElect, RoleLeaderElect, TwoProcessLe};
use rtas::sim::adversary::{Adversary, RandomSchedule};
use rtas::sim::executor::Execution;
use rtas::sim::memory::Memory;
use rtas::sim::metrics::Aggregate;
use rtas::sim::protocol::{ret, Protocol};

use crate::Scale;

/// One row of a step-complexity sweep.
#[derive(Debug, Clone, Copy)]
pub struct StepRow {
    /// Contention.
    pub k: usize,
    /// Mean over trials of the max steps taken by any process.
    pub mean_max_steps: f64,
    /// Max over trials.
    pub worst_max_steps: f64,
}

fn k_sweep(max_k: usize) -> Vec<usize> {
    let mut ks = Vec::new();
    let mut k = 2;
    while k <= max_k {
        ks.push(k);
        k *= 4;
    }
    if *ks.last().unwrap() != max_k {
        ks.push(max_k);
    }
    ks
}

fn measure_steps<F>(k: usize, trials: u64, seed: u64, mut build: F) -> StepRow
where
    F: FnMut(&mut Memory) -> Arc<dyn LeaderElect>,
{
    let mut agg = Aggregate::new();
    for t in 0..trials {
        let mut mem = Memory::new();
        let le = build(&mut mem);
        let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
        let run_seed = seed.wrapping_add(t.wrapping_mul(0x9e37));
        let res = Execution::new(mem, protos, run_seed)
            .run(&mut RandomSchedule::new(run_seed ^ 0x5c4e));
        assert!(res.all_finished(), "k={k} trial={t} did not finish");
        assert_eq!(
            res.processes_with_outcome(ret::WIN).len(),
            1,
            "k={k} trial={t}: winner count wrong"
        );
        agg.push(res.steps().max() as f64);
    }
    StepRow { k, mean_max_steps: agg.mean(), worst_max_steps: agg.max() }
}

fn print_header(id: &str, claim: &str) {
    println!();
    println!("== {id}: {claim}");
}

/// E1 — Lemma 2.2: the geometric group election's performance parameter
/// stays below `2·log₂ k + 6`.
pub fn e1_group_election_performance(scale: Scale) -> Vec<(usize, f64, f64)> {
    print_header("E1", "Fig.1 group election: E[elected] <= 2 log2 k + 6");
    println!("k | mean elected | bound");
    let mut rows = Vec::new();
    for k in k_sweep(scale.max_k) {
        let mut agg = Aggregate::new();
        for t in 0..scale.trials {
            let mut mem = Memory::new();
            let ge = GeometricGroupElect::new(&mut mem, scale.max_k.max(2), "ge");
            let seed = scale.seed + t * 131 + k as u64;
            let (elected, _) =
                run_group_election(mem, &ge, k, seed, &mut RandomSchedule::new(seed));
            agg.push(elected as f64);
        }
        let bound = 2.0 * (k as f64).log2() + 6.0;
        println!("{k} | {:.2} | {:.2}", agg.mean(), bound);
        rows.push((k, agg.mean(), bound));
    }
    rows
}

/// E2 — Theorem 2.3: O(log* k) step complexity of the log* algorithm,
/// with its register count.
pub fn e2_logstar_steps(scale: Scale) -> Vec<(StepRow, u32, u64)> {
    print_header(
        "E2",
        "Theorem 2.3: log* LE steps vs k (random oblivious schedules)",
    );
    println!("k | mean max steps | worst | log* k | registers");
    let mut rows = Vec::new();
    for k in k_sweep(scale.max_k) {
        let row = measure_steps(k, scale.trials, scale.seed, |mem| {
            Arc::new(LogStarLe::new(mem, k))
        });
        let mut mem = Memory::new();
        let _ = LogStarLe::new(&mut mem, k);
        let regs = mem.declared_registers();
        let ls = log_star(k as f64);
        println!(
            "{k} | {:.1} | {:.0} | {ls} | {regs}",
            row.mean_max_steps, row.worst_max_steps
        );
        rows.push((row, ls, regs));
    }
    rows
}

/// E3 — Theorem 2.4: O(log log k) step complexity of the sifting ladder,
/// next to the non-adaptive Alistarh–Aspnes baseline it improves on.
pub fn e3_loglog_steps(scale: Scale) -> Vec<(StepRow, f64)> {
    print_header(
        "E3",
        "Theorem 2.4: adaptive sifting LE steps vs k (with non-adaptive AA baseline)",
    );
    println!("k | adaptive mean max steps | worst | AA baseline (n=max_k) | log2 log2 k");
    let mut rows = Vec::new();
    let n_big = scale.max_k;
    for k in k_sweep(scale.max_k) {
        let row = measure_steps(k, scale.trials, scale.seed + 7, |mem| {
            Arc::new(LogLogLe::new(mem, k))
        });
        // The baseline is sized for n = max_k regardless of k: its step
        // count depends on n, which is exactly the non-adaptivity the
        // theorem removes.
        let baseline = measure_steps(k, scale.trials.min(8), scale.seed + 9, |mem| {
            Arc::new(rtas::algorithms::AaLe::new(mem, n_big))
        });
        let ll = (k as f64).log2().max(1.0).log2().max(0.0);
        println!(
            "{k} | {:.1} | {:.0} | {:.1} | {ll:.2}",
            row.mean_max_steps, row.worst_max_steps, baseline.mean_max_steps
        );
        rows.push((row, ll));
    }
    rows
}

/// E4 — Section 3: step complexity and space of the two RatRaces.
///
/// Returns `(k, steps_space_efficient, declared_se, declared_orig,
/// touched_orig)` rows.
pub fn e4_ratrace(scale: Scale) -> Vec<(usize, f64, u64, u64, u64)> {
    print_header(
        "E4",
        "Section 3: RatRace steps O(log k); space Θ(n) vs Θ(n³)",
    );
    println!("n=k | mean max steps (space-eff) | regs space-eff | regs original (declared) | original touched");
    let mut rows = Vec::new();
    // The original declares Θ(n³) registers; cap the sweep so tables stay
    // readable (the asymptotic is visible long before 2^12).
    for k in k_sweep(scale.max_k.min(1 << 9)) {
        let row = measure_steps(k, scale.trials, scale.seed + 13, |mem| {
            Arc::new(SpaceEfficientRatRace::new(mem, k))
        });
        let mut mem_se = Memory::new();
        let _ = SpaceEfficientRatRace::new(&mut mem_se, k);
        let regs_se = mem_se.declared_registers();

        let mut mem_o = Memory::new();
        let orr = OriginalRatRace::new(&mut mem_o, k);
        let declared_o = mem_o.declared_registers();
        let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| orr.elect()).collect();
        let res = Execution::new(mem_o, protos, scale.seed)
            .run(&mut RandomSchedule::new(scale.seed + 1));
        assert!(res.all_finished());
        let touched_o = res.memory().touched_registers();

        println!(
            "{k} | {:.1} | {regs_se} | {declared_o} | {touched_o}",
            row.mean_max_steps
        );
        rows.push((k, row.mean_max_steps, regs_se, declared_o, touched_o));
    }
    rows
}

/// E5 — Theorem 4.1: the combiner inherits the best of both worlds.
///
/// Rows: `(k, algorithm, adversary, mean_max_steps)`.
pub fn e5_combiner(scale: Scale) -> Vec<(usize, &'static str, &'static str, f64)> {
    print_header(
        "E5",
        "Theorem 4.1: combined = log* under oblivious AND O(log k) under attack",
    );
    println!("k | algorithm | adversary | mean max steps");
    let mut rows = Vec::new();
    let ks: Vec<usize> = k_sweep(scale.max_k.min(1 << 8));
    for &k in &ks {
        for (alg_name, adv_name) in [
            ("logstar", "random"),
            ("logstar", "attack"),
            ("combined", "random"),
            ("combined", "attack"),
        ] {
            let mut agg = Aggregate::new();
            for t in 0..scale.trials.min(10) {
                let mut mem = Memory::new();
                let le: Arc<dyn LeaderElect> = if alg_name == "logstar" {
                    Arc::new(LogStarLe::new(&mut mem, k))
                } else {
                    let weak = Arc::new(LogStarLe::new(&mut mem, k));
                    Arc::new(Combined::new(&mut mem, weak, k))
                };
                let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
                let seed = scale.seed + t * 31 + k as u64;
                let mut random_adv;
                let mut attack_adv;
                let adv: &mut dyn Adversary = if adv_name == "random" {
                    random_adv = RandomSchedule::new(seed);
                    &mut random_adv
                } else {
                    attack_adv = AscendingWriteAttack::new();
                    &mut attack_adv
                };
                let res = Execution::new(mem, protos, seed).run(adv);
                assert!(res.all_finished());
                assert_eq!(res.processes_with_outcome(ret::WIN).len(), 1);
                agg.push(res.steps().max() as f64);
            }
            println!("{k} | {alg_name} | {adv_name} | {:.1}", agg.mean());
            rows.push((k, alg_name, adv_name, agg.mean()));
        }
    }
    rows
}

/// E6 — Theorem 5.1 / Claim 5.5: the covering recurrence and the base
/// case on real implementations.
pub fn e6_space_lower_bound(scale: Scale) -> Vec<(u64, u64, u64)> {
    print_header(
        "E6",
        "Theorem 5.1: f(n-4) = 4(log2 n - 1); covering base case on real algorithms",
    );
    println!("n | f(n-4) recurrence | 4(log2 n - 1) closed form");
    let mut rows = Vec::new();
    for exp in 3..=20u32 {
        let n = 1u64 << exp;
        let rec = f_sequence(n)[(n - 4) as usize];
        let closed = closed_form_f(n, n - 4);
        assert_eq!(rec, closed);
        assert_eq!(closed, 4 * (exp as u64 - 1));
        if exp <= 6 || exp % 4 == 0 {
            println!("{n} | {rec} | {closed}");
        }
        rows.push((n, rec, closed));
    }
    println!("covering base case (all n processes poised to write, no process visible):");
    for n in [8usize, 16, 32] {
        let mut mem = Memory::new();
        let le = LogStarLe::new(&mut mem, n);
        let protos = (0..n).map(|_| le.elect()).collect();
        let report = covering_base_case(mem, protos, scale.seed);
        println!(
            "  logstar n={n}: covering={}/{} distinct registers={}",
            report.covering_processes,
            report.processes,
            report.distinct_covered()
        );
        assert!(report.all_cover());
    }
    rows
}

/// E7 — Theorem 6.1: schedule-forced tail probabilities vs `1/4^t`.
pub fn e7_two_process_tail(scale: Scale) -> Vec<rtas::lowerbound::yao::TailReport> {
    print_header(
        "E7",
        "Theorem 6.1: max over schedules of Pr[some proc needs >= t steps] >= 1/4^t",
    );
    println!("t | schedules | max tail | mean tail | 1/4^t");
    let mut rows = Vec::new();
    for t in 1..=7usize {
        let report = schedule_tail_probabilities(t, scale.trials.max(20), scale.seed, || {
            let mut mem = Memory::new();
            let le = TwoProcessLe::new(&mut mem, "2le");
            (mem, vec![le.elect_as(0), le.elect_as(1)])
        });
        println!(
            "{t} | {} | {:.3} | {:.3} | {:.5}",
            report.schedules, report.max_tail, report.mean_tail, report.bound
        );
        assert!(report.meets_bound(), "t={t}");
        rows.push(report);
    }
    rows
}

/// E8 — Section 2.3: sifting survivor counts per round (`π·k + 1/π`).
pub fn e8_sifting_rounds(scale: Scale) -> Vec<(usize, usize, f64, f64)> {
    print_header("E8", "Sifting rounds: survivors ~ pi*k + 1/pi per round");
    println!("round | participants k | mean elected | predicted");
    let mut rows = Vec::new();
    let mut k = scale.max_k;
    let mut round = 1;
    while k > 4 && round <= 8 {
        let pi = SiftingGroupElect::probability_for_expected(k as f64);
        let mut agg = Aggregate::new();
        for t in 0..scale.trials {
            let mut mem = Memory::new();
            let ge = SiftingGroupElect::new(&mut mem, pi, "sift");
            let seed = scale.seed + t * 17 + round as u64;
            let (elected, _) =
                run_group_election(mem, &ge, k, seed, &mut RandomSchedule::new(seed));
            agg.push(elected as f64);
        }
        let predicted = pi * k as f64 + 1.0 / pi;
        println!("{round} | {k} | {:.1} | {predicted:.1}", agg.mean());
        rows.push((round, k, agg.mean(), predicted));
        k = agg.mean().round() as usize;
        round += 1;
    }
    rows
}

/// E9 — Section 4 motivation: the adaptive attack forces ~linear steps on
/// the log* algorithm.
pub fn e9_adaptive_attack(scale: Scale) -> Vec<(usize, f64, f64)> {
    print_header(
        "E9",
        "Adaptive adversary forces Ω(k) on the log* algorithm (vs random schedule)",
    );
    println!("k | attacked mean max steps | random mean max steps");
    let mut rows = Vec::new();
    for k in k_sweep(scale.max_k.min(1 << 8)) {
        let mut attacked = Aggregate::new();
        let mut random = Aggregate::new();
        for t in 0..scale.trials.min(8) {
            let seed = scale.seed + t * 7;
            for mode in 0..2 {
                let mut mem = Memory::new();
                let le = LogStarLe::new(&mut mem, k);
                let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
                let mut att;
                let mut rnd;
                let adv: &mut dyn Adversary = if mode == 0 {
                    att = AscendingWriteAttack::new();
                    &mut att
                } else {
                    rnd = RandomSchedule::new(seed);
                    &mut rnd
                };
                let res = Execution::new(mem, protos, seed).run(adv);
                assert!(res.all_finished());
                if mode == 0 {
                    attacked.push(res.steps().max() as f64);
                } else {
                    random.push(res.steps().max() as f64);
                }
            }
        }
        println!("{k} | {:.1} | {:.1}", attacked.mean(), random.mean());
        rows.push((k, attacked.mean(), random.mean()));
    }
    rows
}

/// E10 — Lemma 2.1: the iterated-rate ladder depth vs measured depth.
pub fn e10_ladder_depth(scale: Scale) -> Vec<(usize, u32, f64)> {
    print_header(
        "E10",
        "Lemma 2.1: ladder depth bound Δ_{f-1}(k) (log*-like) vs measured levels",
    );
    println!("k | depth bound (iterated rate) | measured mean levels used");
    let mut rows = Vec::new();
    for k in k_sweep(scale.max_k.min(1 << 10)) {
        let bound = iterated_rate_depth(geometric_ge_rate, k as f64, 1.0);
        // Measured: run the log* algorithm and count the deepest group
        // election actually touched, via the per-label touched counts.
        let mut agg = Aggregate::new();
        for t in 0..scale.trials.min(10) {
            let mut mem = Memory::new();
            let le = LogStarLe::new(&mut mem, k);
            let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
            let seed = scale.seed + t * 3;
            let res =
                Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed + 9));
            assert!(res.all_finished());
            // Ladder registers are 4 per level, allocated level by level;
            // the deepest touched ladder register reveals the level count.
            let stats = res.memory().stats_by_label();
            let ge_touched = stats
                .get("logstar-ge")
                .map(|s| s.touched)
                .unwrap_or(0);
            // Each geometric GE level has ~log n + 2 registers; touching
            // any marks the level as used. Approximate levels used by
            // touched ladder register count / 4 (lower bound).
            let ladder_touched = stats
                .get("logstar-ladder")
                .map(|s| s.touched)
                .unwrap_or(0);
            let levels_used = (ladder_touched as f64 / 4.0).max(ge_touched as f64 / 12.0);
            agg.push(levels_used);
        }
        println!("{k} | {bound} | {:.1}", agg.mean());
        rows.push((k, bound, agg.mean()));
    }
    rows
}

/// Run every experiment at the given scale.
pub fn run_all(scale: Scale) {
    e1_group_election_performance(scale);
    e2_logstar_steps(scale);
    e3_loglog_steps(scale);
    e4_ratrace(scale);
    e5_combiner(scale);
    e6_space_lower_bound(scale);
    e7_two_process_tail(scale);
    e8_sifting_rounds(scale);
    e9_adaptive_attack(scale);
    e10_ladder_depth(scale);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale { max_k: 32, trials: 4, seed: 42 }
    }

    #[test]
    fn e1_respects_bound() {
        for (k, mean, bound) in e1_group_election_performance(tiny()) {
            assert!(mean <= bound, "k={k}: {mean} > {bound}");
        }
    }

    #[test]
    fn e2_is_sublinear() {
        let rows = e2_logstar_steps(tiny());
        let last = rows.last().unwrap();
        assert!(last.0.mean_max_steps < last.0.k as f64);
    }

    #[test]
    fn e4_space_separation() {
        let rows = e4_ratrace(tiny());
        for (k, _, se, orig, touched) in rows {
            if k >= 16 {
                assert!(orig > 20 * se, "k={k}: original {orig} vs SE {se}");
            }
            assert!(touched < orig);
        }
    }

    #[test]
    fn e6_exact() {
        let rows = e6_space_lower_bound(tiny());
        assert!(rows.iter().all(|&(_, a, b)| a == b));
    }

    #[test]
    fn e9_attack_dominates_random() {
        let rows = e9_adaptive_attack(Scale { max_k: 64, trials: 4, seed: 3 });
        let (_, attacked, random) = rows.last().unwrap();
        assert!(attacked > random);
    }

    #[test]
    fn e9_attacked_growth_is_linear_friendly_is_flat() {
        let rows = e9_adaptive_attack(Scale { max_k: 128, trials: 4, seed: 5 });
        let attacked: Vec<(f64, f64)> =
            rows.iter().map(|&(k, a, _)| (k as f64, a)).collect();
        let random: Vec<(f64, f64)> =
            rows.iter().map(|&(k, _, r)| (k as f64, r)).collect();
        let s_att = crate::stats::log_log_slope(&attacked);
        let s_rnd = crate::stats::log_log_slope(&random);
        assert!(s_att > 0.6, "attacked slope {s_att} not ~linear");
        assert!(s_rnd < 0.35, "random slope {s_rnd} not ~flat");
    }

    #[test]
    fn e2_growth_is_essentially_flat() {
        let rows = e2_logstar_steps(Scale { max_k: 256, trials: 6, seed: 4 });
        let pts: Vec<(f64, f64)> = rows
            .iter()
            .map(|(r, _, _)| (r.k as f64, r.mean_max_steps))
            .collect();
        let slope = crate::stats::log_log_slope(&pts);
        assert!(slope < 0.25, "log* steps slope {slope} too steep");
    }
}
