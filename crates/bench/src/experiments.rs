//! Experiments E1–E12: one per quantitative claim of the paper, plus
//! the E11 scenario grid and the E12 arena-epoch-reuse check.
//!
//! Every function prints a table (pipe-separated, one row per parameter
//! point) and returns the raw rows so integration tests can assert the
//! claims' *shape* (who wins, growth order, crossovers) rather than
//! absolute constants.
//!
//! All Monte Carlo trials go through the [`crate::runner`] batch engine:
//! one [`TrialRunner`] fans a point's trials out across OS threads with
//! deterministic per-trial seeds, so every table below is reproducible
//! bit for bit at any thread count. Step-complexity sweeps additionally
//! use the executor's allocation-light reuse path: each worker builds its
//! simulated memory once per sweep point and re-runs trials in place via
//! [`Execution::reset`].

use std::sync::{Arc, OnceLock};

use rtas::algorithms::attacks::AscendingWriteAttack;
use rtas::algorithms::group_elect::{run_group_election, GeometricGroupElect, SiftingGroupElect};
use rtas::algorithms::logstar::log_star;
use rtas::algorithms::{Combined, LogLogLe, LogStarLe, OriginalRatRace, SpaceEfficientRatRace};
use rtas::lowerbound::covering::covering_base_case;
use rtas::lowerbound::hitting_time::{geometric_ge_rate, iterated_rate_depth};
use rtas::lowerbound::recurrence::{closed_form_f, f_sequence};
use rtas::lowerbound::yao::schedule_tail_probabilities;
use rtas::primitives::{LeaderElect, RoleLeaderElect, TwoProcessLe};
use rtas::sim::executor::Execution;
use rtas::sim::memory::Memory;
use rtas::sim::protocol::{ret, Protocol};
use rtas::sim::scenario::Scenario;

use crate::report::BenchRow;
use crate::runner::{Sweep, SweepPoint, Trial, TrialRunner};
use crate::scenarios;
use crate::stats::{StatsAccumulator, Summary};
use crate::Scale;

/// The workload every pre-scenario experiment ran implicitly: all
/// processes live from slot 0, no faults, fresh uniformly random
/// scheduling. The scenario passes the strategy seed through verbatim,
/// so results are bit-identical to the former direct `RandomSchedule`
/// wiring.
fn baseline() -> &'static Scenario {
    static S: OnceLock<Scenario> = OnceLock::new();
    S.get_or_init(|| Scenario::builder().named("baseline-random").build())
}

/// The Section 4 attack as a scenario: simultaneous arrivals, no faults,
/// ascending-write adaptive scheduling (E5/E9).
fn attack() -> &'static Scenario {
    static S: OnceLock<Scenario> = OnceLock::new();
    S.get_or_init(|| {
        Scenario::builder()
            .strategy(AscendingWriteAttack::spec())
            .named("baseline-attack")
            .build()
    })
}

/// One row of a step-complexity sweep.
#[derive(Debug, Clone, Copy)]
pub struct StepRow {
    /// Contention.
    pub k: usize,
    /// Mean over trials of the max steps taken by any process.
    pub mean_max_steps: f64,
    /// Max over trials.
    pub worst_max_steps: f64,
    /// Full distribution snapshot over the trials (quantiles, stddev,
    /// CI) — the paper's claims are distributional, so the JSON rows
    /// carry more than the point mean.
    pub dist: Summary,
    /// Wall-clock cost of the point's whole trial batch, in milliseconds.
    pub wall_ms: f64,
}

impl From<&SweepPoint> for StepRow {
    fn from(p: &SweepPoint) -> Self {
        StepRow {
            k: p.k,
            mean_max_steps: p.mean(),
            worst_max_steps: p.worst(),
            dist: p.summary(),
            wall_ms: p.wall_ms(),
        }
    }
}

impl StepRow {
    /// This row as a [`BenchRow`] for a `BENCH_*.json` report; extras are
    /// appended with [`BenchRow::with`].
    pub fn bench_row(&self) -> BenchRow {
        BenchRow::from_summary(self.k as u64, &self.dist, self.wall_ms)
    }
}

/// The contention values of a sweep up to `max_k`: powers of four from 2,
/// plus `max_k` itself. Empty when `max_k < 2` (there is nothing to
/// sweep), never panics.
pub(crate) fn k_sweep(max_k: usize) -> Vec<usize> {
    let mut ks = Vec::new();
    let mut k = 2;
    while k <= max_k {
        ks.push(k);
        k *= 4;
    }
    if max_k >= 2 && ks.last() != Some(&max_k) {
        ks.push(max_k);
    }
    ks
}

/// Per-worker scratch of a step-complexity sweep point: the structure is
/// built once, then every trial reuses the warm memory and executor.
struct LeScratch {
    le: Arc<dyn LeaderElect>,
    exec: Execution,
}

fn le_scratch<F>(k: usize, build: &F) -> LeScratch
where
    F: Fn(&mut Memory, usize) -> Arc<dyn LeaderElect> + Sync,
{
    let mut mem = Memory::new();
    let le = build(&mut mem, k);
    LeScratch {
        le,
        exec: Execution::new(mem, Vec::new(), 0),
    }
}

fn le_trial(scratch: &mut LeScratch, k: usize, trial: Trial) -> f64 {
    let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| scratch.le.elect()).collect();
    scratch.exec.reset(protos, trial.seed);
    let mut adv = baseline().begin(&mut scratch.exec, trial.subseed(1));
    let out = scratch.exec.run_in_place(&mut adv);
    assert!(
        out.all_finished(),
        "k={k} trial={} did not finish",
        trial.index
    );
    assert_eq!(
        scratch.exec.count_outcome(ret::WIN),
        1,
        "k={k} trial={}: winner count wrong",
        trial.index
    );
    scratch.exec.steps().max() as f64
}

fn measure_steps<F>(sweep: &Sweep<'_>, k: usize, build: F) -> SweepPoint
where
    F: Fn(&mut Memory, usize) -> Arc<dyn LeaderElect> + Sync,
{
    sweep.measure_with(
        k,
        || le_scratch(k, &build),
        |scratch, trial| le_trial(scratch, k, trial),
    )
}

fn print_header(id: &str, claim: &str) {
    println!();
    println!("== {id}: {claim}");
}

/// One row of the E1 sweep: elected-count distribution vs the lemma's
/// bound.
#[derive(Debug, Clone, Copy)]
pub struct E1Row {
    /// Contention.
    pub k: usize,
    /// Distribution of the elected count over trials.
    pub elected: Summary,
    /// The lemma's bound `2·log₂ k + 6`.
    pub bound: f64,
    /// Wall-clock cost of the point's trial batch, in milliseconds.
    pub wall_ms: f64,
}

impl E1Row {
    /// This row as a [`BenchRow`] for `BENCH_group_election.json`.
    pub fn bench_row(&self) -> BenchRow {
        BenchRow::from_summary(self.k as u64, &self.elected, self.wall_ms).with("bound", self.bound)
    }
}

/// E1 — Lemma 2.2: the geometric group election's performance parameter
/// stays below `2·log₂ k + 6`.
pub fn e1_group_election_performance(scale: Scale, runner: &TrialRunner) -> Vec<E1Row> {
    print_header("E1", "Fig.1 group election: E[elected] <= 2 log2 k + 6");
    println!("k | mean elected | p99 | bound");
    let sweep = Sweep::new(runner, scale.trials, scale.seed);
    let mut rows = Vec::new();
    for k in k_sweep(scale.max_k) {
        let point = sweep.measure(k, |trial| {
            let mut mem = Memory::new();
            let ge = GeometricGroupElect::new(&mut mem, scale.max_k.max(2), "ge");
            let (elected, _) = run_group_election(
                mem,
                &ge,
                k,
                trial.seed,
                &mut baseline().adversary(k, trial.subseed(1)),
            );
            elected as f64
        });
        let bound = 2.0 * (k as f64).log2() + 6.0;
        println!(
            "{k} | {:.2} | {:.1} | {bound:.2}",
            point.mean(),
            point.p99()
        );
        rows.push(E1Row {
            k,
            elected: point.summary(),
            bound,
            wall_ms: point.wall_ms(),
        });
    }
    rows
}

/// One row of the E2 sweep: steps, the log* yardstick, and space.
#[derive(Debug, Clone, Copy)]
pub struct E2Row {
    /// Step statistics and timing at this contention.
    pub steps: StepRow,
    /// `log* k`.
    pub log_star: u32,
    /// Registers the structure declares at this `k`.
    pub registers: u64,
}

/// E2 — Theorem 2.3: O(log* k) step complexity of the log* algorithm,
/// with its register count.
pub fn e2_logstar_steps(scale: Scale, runner: &TrialRunner) -> Vec<E2Row> {
    print_header(
        "E2",
        "Theorem 2.3: log* LE steps vs k (random oblivious schedules)",
    );
    println!("k | mean max steps | worst | log* k | registers | wall ms");
    let sweep = Sweep::new(runner, scale.trials, scale.seed);
    let mut rows = Vec::new();
    for k in k_sweep(scale.max_k) {
        let point = measure_steps(&sweep, k, |mem, k| Arc::new(LogStarLe::new(mem, k)));
        let mut mem = Memory::new();
        let _ = LogStarLe::new(&mut mem, k);
        let regs = mem.declared_registers();
        let ls = log_star(k as f64);
        println!(
            "{k} | {:.1} | {:.0} | {ls} | {regs} | {:.1}",
            point.mean(),
            point.worst(),
            point.wall_ms()
        );
        rows.push(E2Row {
            steps: StepRow::from(&point),
            log_star: ls,
            registers: regs,
        });
    }
    rows
}

/// One row of the E3 sweep: the adaptive algorithm against the
/// non-adaptive baseline.
#[derive(Debug, Clone, Copy)]
pub struct E3Row {
    /// Adaptive sifting-ladder steps at this contention.
    pub steps: StepRow,
    /// Alistarh–Aspnes baseline (sized for `n = max_k`) at the same `k`.
    pub baseline: StepRow,
    /// `log₂ log₂ k`.
    pub loglog: f64,
}

/// E3 — Theorem 2.4: O(log log k) step complexity of the sifting ladder,
/// next to the non-adaptive Alistarh–Aspnes baseline it improves on.
pub fn e3_loglog_steps(scale: Scale, runner: &TrialRunner) -> Vec<E3Row> {
    print_header(
        "E3",
        "Theorem 2.4: adaptive sifting LE steps vs k (with non-adaptive AA baseline)",
    );
    println!("k | adaptive mean max steps | worst | AA baseline (n=max_k) | log2 log2 k");
    let mut rows = Vec::new();
    let n_big = scale.max_k;
    let sweep = Sweep::new(runner, scale.trials, scale.seed + 7);
    let baseline_sweep = Sweep::new(runner, scale.trials.min(8), scale.seed + 9);
    for k in k_sweep(scale.max_k) {
        let point = measure_steps(&sweep, k, |mem, k| Arc::new(LogLogLe::new(mem, k)));
        // The baseline is sized for n = max_k regardless of k: its step
        // count depends on n, which is exactly the non-adaptivity the
        // theorem removes.
        let baseline = measure_steps(&baseline_sweep, k, |mem, _| {
            Arc::new(rtas::algorithms::AaLe::new(mem, n_big))
        });
        let ll = (k as f64).log2().max(1.0).log2().max(0.0);
        println!(
            "{k} | {:.1} | {:.0} | {:.1} | {ll:.2}",
            point.mean(),
            point.worst(),
            baseline.mean()
        );
        rows.push(E3Row {
            steps: StepRow::from(&point),
            baseline: StepRow::from(&baseline),
            loglog: ll,
        });
    }
    rows
}

/// One row of the E4 sweep: steps and the space separation.
#[derive(Debug, Clone, Copy)]
pub struct E4Row {
    /// Space-efficient RatRace steps at this contention.
    pub steps: StepRow,
    /// Registers the space-efficient variant declares.
    pub regs_space_efficient: u64,
    /// Registers the original declares (Θ(n³)).
    pub regs_original_declared: u64,
    /// Registers the original actually touches in one execution.
    pub regs_original_touched: u64,
}

/// E4 — Section 3: step complexity and space of the two RatRaces.
pub fn e4_ratrace(scale: Scale, runner: &TrialRunner) -> Vec<E4Row> {
    print_header(
        "E4",
        "Section 3: RatRace steps O(log k); space Θ(n) vs Θ(n³)",
    );
    println!("n=k | mean max steps (space-eff) | regs space-eff | regs original (declared) | original touched");
    let mut rows = Vec::new();
    let sweep = Sweep::new(runner, scale.trials, scale.seed + 13);
    // The original declares Θ(n³) registers; cap the sweep so tables stay
    // readable (the asymptotic is visible long before 2^12).
    for k in k_sweep(scale.max_k.min(1 << 9)) {
        let point = measure_steps(&sweep, k, |mem, k| {
            Arc::new(SpaceEfficientRatRace::new(mem, k))
        });
        let mut mem_se = Memory::new();
        let _ = SpaceEfficientRatRace::new(&mut mem_se, k);
        let regs_se = mem_se.declared_registers();

        let mut mem_o = Memory::new();
        let orr = OriginalRatRace::new(&mut mem_o, k);
        let declared_o = mem_o.declared_registers();
        let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| orr.elect()).collect();
        let res = Execution::new(mem_o, protos, scale.seed)
            .run(&mut baseline().adversary(k, scale.seed + 1));
        assert!(res.all_finished());
        let touched_o = res.memory().touched_registers();

        println!(
            "{k} | {:.1} | {regs_se} | {declared_o} | {touched_o}",
            point.mean()
        );
        rows.push(E4Row {
            steps: StepRow::from(&point),
            regs_space_efficient: regs_se,
            regs_original_declared: declared_o,
            regs_original_touched: touched_o,
        });
    }
    rows
}

/// One `(k, algorithm, adversary)` cell of the E5 matrix.
#[derive(Debug, Clone, Copy)]
pub struct E5Row {
    /// Contention.
    pub k: usize,
    /// `"logstar"` or `"combined"`.
    pub algorithm: &'static str,
    /// `"random"` or `"attack"`.
    pub adversary: &'static str,
    /// Distribution of the max-steps observation over trials.
    pub steps: Summary,
    /// Wall-clock cost of the cell's trial batch, in milliseconds.
    pub wall_ms: f64,
}

impl E5Row {
    /// This row as a [`BenchRow`] for `BENCH_combiner.json`.
    pub fn bench_row(&self) -> BenchRow {
        BenchRow::from_summary(self.k as u64, &self.steps, self.wall_ms)
            .with_label("algorithm", self.algorithm)
            .with_label("adversary", self.adversary)
    }
}

/// E5 — Theorem 4.1: the combiner inherits the best of both worlds.
pub fn e5_combiner(scale: Scale, runner: &TrialRunner) -> Vec<E5Row> {
    print_header(
        "E5",
        "Theorem 4.1: combined = log* under oblivious AND O(log k) under attack",
    );
    println!("k | algorithm | adversary | mean max steps");
    let mut rows = Vec::new();
    let ks: Vec<usize> = k_sweep(scale.max_k.min(1 << 8));
    for &k in &ks {
        for (combo, (alg_name, adv_name)) in [
            ("logstar", "random"),
            ("logstar", "attack"),
            ("combined", "random"),
            ("combined", "attack"),
        ]
        .into_iter()
        .enumerate()
        {
            // One seed stream per (algorithm, adversary) combination, so
            // combinations stay statistically independent at equal k.
            let sweep = Sweep::new(
                runner,
                scale.trials.min(10),
                scale.seed + 1000 * combo as u64,
            );
            let point = sweep.measure(k, |trial| {
                let mut mem = Memory::new();
                let le: Arc<dyn LeaderElect> = if alg_name == "logstar" {
                    Arc::new(LogStarLe::new(&mut mem, k))
                } else {
                    let weak = Arc::new(LogStarLe::new(&mut mem, k));
                    Arc::new(Combined::new(&mut mem, weak, k))
                };
                let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
                let scenario = if adv_name == "random" {
                    baseline()
                } else {
                    attack()
                };
                let mut adv = scenario.adversary(k, trial.subseed(1));
                let res = Execution::new(mem, protos, trial.seed).run(&mut adv);
                assert!(res.all_finished());
                assert_eq!(res.processes_with_outcome(ret::WIN).len(), 1);
                res.steps().max() as f64
            });
            println!("{k} | {alg_name} | {adv_name} | {:.1}", point.mean());
            rows.push(E5Row {
                k,
                algorithm: alg_name,
                adversary: adv_name,
                steps: point.summary(),
                wall_ms: point.wall_ms(),
            });
        }
    }
    rows
}

/// E6 — Theorem 5.1 / Claim 5.5: the covering recurrence and the base
/// case on real implementations.
pub fn e6_space_lower_bound(scale: Scale, runner: &TrialRunner) -> Vec<(u64, u64, u64)> {
    print_header(
        "E6",
        "Theorem 5.1: f(n-4) = 4(log2 n - 1); covering base case on real algorithms",
    );
    println!("n | f(n-4) recurrence | 4(log2 n - 1) closed form");
    let mut rows = Vec::new();
    for exp in 3..=20u32 {
        let n = 1u64 << exp;
        let rec = f_sequence(n)[(n - 4) as usize];
        let closed = closed_form_f(n, n - 4);
        assert_eq!(rec, closed);
        assert_eq!(closed, 4 * (exp as u64 - 1));
        if exp <= 6 || exp % 4 == 0 {
            println!("{n} | {rec} | {closed}");
        }
        rows.push((n, rec, closed));
    }
    println!("covering base case (all n processes poised to write, no process visible):");
    // The three base cases are independent executions: route them through
    // the runner so they run concurrently on multi-core hosts.
    let ns = [8usize, 16, 32];
    let reports = runner.run_trials(ns.len() as u64, scale.seed, |trial| {
        let n = ns[trial.index as usize];
        let mut mem = Memory::new();
        let le = LogStarLe::new(&mut mem, n);
        let protos = (0..n).map(|_| le.elect()).collect();
        covering_base_case(mem, protos, scale.seed)
    });
    for (n, report) in ns.iter().zip(&reports) {
        println!(
            "  logstar n={n}: covering={}/{} distinct registers={}",
            report.covering_processes,
            report.processes,
            report.distinct_covered()
        );
        assert!(report.all_cover());
    }
    rows
}

/// E7 — Theorem 6.1: schedule-forced tail probabilities vs `1/4^t`.
pub fn e7_two_process_tail(
    scale: Scale,
    runner: &TrialRunner,
) -> Vec<rtas::lowerbound::yao::TailReport> {
    print_header(
        "E7",
        "Theorem 6.1: max over schedules of Pr[some proc needs >= t steps] >= 1/4^t",
    );
    println!("t | schedules | max tail | mean tail | 1/4^t");
    // Each t is an independent schedule search; fan them out.
    let ts: Vec<usize> = (1..=7).collect();
    let rows = runner.run_trials(ts.len() as u64, scale.seed, |trial| {
        let t = ts[trial.index as usize];
        schedule_tail_probabilities(t, scale.trials.max(20), scale.seed, || {
            let mut mem = Memory::new();
            let le = TwoProcessLe::new(&mut mem, "2le");
            (mem, vec![le.elect_as(0), le.elect_as(1)])
        })
    });
    for (t, report) in ts.iter().zip(&rows) {
        println!(
            "{t} | {} | {:.3} | {:.3} | {:.5}",
            report.schedules, report.max_tail, report.mean_tail, report.bound
        );
        assert!(report.meets_bound(), "t={t}");
    }
    rows
}

/// One round of the E8 sifting cascade.
#[derive(Debug, Clone, Copy)]
pub struct E8Row {
    /// Round number, starting at 1.
    pub round: usize,
    /// Participants entering this round.
    pub k: usize,
    /// Distribution of the elected (surviving) count over trials.
    pub elected: Summary,
    /// The section's prediction `π·k + 1/π`.
    pub predicted: f64,
    /// Wall-clock cost of the round's trial batch, in milliseconds.
    pub wall_ms: f64,
}

impl E8Row {
    /// This row as a [`BenchRow`] for `BENCH_sifting_rounds.json` (`k`
    /// is the participant count; the round number is a label so rows
    /// stay uniquely keyed even if the cascade stagnates at one `k`).
    pub fn bench_row(&self) -> BenchRow {
        BenchRow::from_summary(self.k as u64, &self.elected, self.wall_ms)
            .with("predicted", self.predicted)
            .with_label("round", self.round.to_string())
    }
}

/// E8 — Section 2.3: sifting survivor counts per round (`π·k + 1/π`).
pub fn e8_sifting_rounds(scale: Scale, runner: &TrialRunner) -> Vec<E8Row> {
    print_header("E8", "Sifting rounds: survivors ~ pi*k + 1/pi per round");
    println!("round | participants k | mean elected | predicted");
    let mut rows = Vec::new();
    let mut k = scale.max_k;
    let mut round = 1;
    // Rounds are sequential by construction (each round's k is the
    // previous round's mean), but the trials within a round are parallel.
    while k > 4 && round <= 8 {
        let pi = SiftingGroupElect::probability_for_expected(k as f64);
        let sweep = Sweep::new(runner, scale.trials, scale.seed + round as u64);
        let point = sweep.measure(k, |trial| {
            let mut mem = Memory::new();
            let ge = SiftingGroupElect::new(&mut mem, pi, "sift");
            let (elected, _) = run_group_election(
                mem,
                &ge,
                k,
                trial.seed,
                &mut baseline().adversary(k, trial.subseed(1)),
            );
            elected as f64
        });
        let predicted = pi * k as f64 + 1.0 / pi;
        println!("{round} | {k} | {:.1} | {predicted:.1}", point.mean());
        rows.push(E8Row {
            round,
            k,
            elected: point.summary(),
            predicted,
            wall_ms: point.wall_ms(),
        });
        k = point.mean().round() as usize;
        round += 1;
    }
    rows
}

/// One contention point of the E9 attacked-vs-random comparison.
#[derive(Debug, Clone, Copy)]
pub struct E9Row {
    /// Contention.
    pub k: usize,
    /// Max-steps distribution under the adaptive attack.
    pub attacked: Summary,
    /// Max-steps distribution under the random oblivious schedule.
    pub random: Summary,
    /// Wall-clock of the attacked batch, in milliseconds.
    pub attacked_wall_ms: f64,
    /// Wall-clock of the random batch, in milliseconds.
    pub random_wall_ms: f64,
}

impl E9Row {
    /// This point as two [`BenchRow`]s (one per adversary mode) for
    /// `BENCH_adaptive_attack.json`.
    pub fn bench_rows(&self) -> [BenchRow; 2] {
        [
            BenchRow::from_summary(self.k as u64, &self.attacked, self.attacked_wall_ms)
                .with_label("adversary", "attack"),
            BenchRow::from_summary(self.k as u64, &self.random, self.random_wall_ms)
                .with_label("adversary", "random"),
        ]
    }
}

/// E9 — Section 4 motivation: the adaptive attack forces ~linear steps on
/// the log* algorithm.
pub fn e9_adaptive_attack(scale: Scale, runner: &TrialRunner) -> Vec<E9Row> {
    print_header(
        "E9",
        "Adaptive adversary forces Ω(k) on the log* algorithm (vs random schedule)",
    );
    println!("k | attacked mean max steps | random mean max steps");
    let mut rows = Vec::new();
    for k in k_sweep(scale.max_k.min(1 << 8)) {
        let run_mode = |attack: bool| {
            // Distinct seed streams for the attacked and random modes.
            let sweep = Sweep::new(
                runner,
                scale.trials.min(8),
                scale.seed + 500 * attack as u64,
            );
            sweep.measure(k, |trial: Trial| {
                let mut mem = Memory::new();
                let le = LogStarLe::new(&mut mem, k);
                let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
                let scenario = if attack { self::attack() } else { baseline() };
                let mut adv = scenario.adversary(k, trial.subseed(1));
                let res = Execution::new(mem, protos, trial.seed).run(&mut adv);
                assert!(res.all_finished());
                res.steps().max() as f64
            })
        };
        let attacked = run_mode(true);
        let random = run_mode(false);
        println!("{k} | {:.1} | {:.1}", attacked.mean(), random.mean());
        rows.push(E9Row {
            k,
            attacked: attacked.summary(),
            random: random.summary(),
            attacked_wall_ms: attacked.wall_ms(),
            random_wall_ms: random.wall_ms(),
        });
    }
    rows
}

/// One contention point of the E10 ladder-depth comparison.
#[derive(Debug, Clone, Copy)]
pub struct E10Row {
    /// Contention.
    pub k: usize,
    /// The lemma's iterated-rate depth bound.
    pub bound: u32,
    /// Distribution of the measured levels-used estimate over trials.
    pub levels: Summary,
    /// Wall-clock cost of the point's trial batch, in milliseconds.
    pub wall_ms: f64,
}

impl E10Row {
    /// This row as a [`BenchRow`] for `BENCH_ladder_depth.json`.
    pub fn bench_row(&self) -> BenchRow {
        BenchRow::from_summary(self.k as u64, &self.levels, self.wall_ms)
            .with("depth_bound", self.bound as f64)
    }
}

/// E10 — Lemma 2.1: the iterated-rate ladder depth vs measured depth.
pub fn e10_ladder_depth(scale: Scale, runner: &TrialRunner) -> Vec<E10Row> {
    print_header(
        "E10",
        "Lemma 2.1: ladder depth bound Δ_{f-1}(k) (log*-like) vs measured levels",
    );
    println!("k | depth bound (iterated rate) | measured mean levels used");
    let mut rows = Vec::new();
    let sweep = Sweep::new(runner, scale.trials.min(10), scale.seed);
    for k in k_sweep(scale.max_k.min(1 << 10)) {
        let bound = iterated_rate_depth(geometric_ge_rate, k as f64, 1.0);
        // Measured: run the log* algorithm and count the deepest group
        // election actually touched, via the per-label touched counts.
        let point = sweep.measure(k, |trial| {
            let mut mem = Memory::new();
            let le = LogStarLe::new(&mut mem, k);
            let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
            let res = Execution::new(mem, protos, trial.seed)
                .run(&mut baseline().adversary(k, trial.subseed(1)));
            assert!(res.all_finished());
            // Ladder registers are 4 per level, allocated level by level;
            // the deepest touched ladder register reveals the level count.
            let stats = res.memory().stats_by_label();
            let ge_touched = stats.get("logstar-ge").map(|s| s.touched).unwrap_or(0);
            // Each geometric GE level has ~log n + 2 registers; touching
            // any marks the level as used. Approximate levels used by
            // touched ladder register count / 4 (lower bound).
            let ladder_touched = stats.get("logstar-ladder").map(|s| s.touched).unwrap_or(0);
            (ladder_touched as f64 / 4.0).max(ge_touched as f64 / 12.0)
        });
        println!("{k} | {bound} | {:.1}", point.mean());
        rows.push(E10Row {
            k,
            bound,
            levels: point.summary(),
            wall_ms: point.wall_ms(),
        });
    }
    rows
}

/// One `(algorithm, scenario cell)` row of the E11 grid.
#[derive(Debug, Clone)]
pub struct E11Row {
    /// Algorithm under test.
    pub algorithm: &'static str,
    /// The cell's `arrival+fault+strategy` name.
    pub scenario: String,
    /// Arrival-axis label.
    pub arrival: &'static str,
    /// Fault-axis label.
    pub fault: &'static str,
    /// Strategy-axis label.
    pub strategy: &'static str,
    /// Contention (processes at the start; churn may add more over time).
    pub k: usize,
    /// Trials aggregated into the statistics.
    pub trials: u64,
    /// Distribution over trials of the max steps taken by any process
    /// slot.
    pub steps: Summary,
    /// Mean number of processes that finished (crashed slots never do).
    pub mean_finished: f64,
    /// Mean number of winners — at most 1 in every trial; 0 happens when
    /// the would-be winner crashed.
    pub mean_winners: f64,
    /// Wall-clock cost of the cell's whole trial batch, in milliseconds.
    pub wall_ms: f64,
}

impl E11Row {
    /// This row as a [`BenchRow`] for `BENCH_scenario_grid.json`.
    pub fn bench_row(&self) -> BenchRow {
        let mut row = BenchRow::from_summary(self.k as u64, &self.steps, self.wall_ms);
        row.trials = self.trials;
        row.with("mean_finished", self.mean_finished)
            .with("mean_winners", self.mean_winners)
            .with_label("algorithm", self.algorithm)
            .with_label("scenario", self.scenario.clone())
            .with_label("arrival", self.arrival)
            .with_label("fault", self.fault)
            .with_label("strategy", self.strategy)
    }
}

/// The contention E11 runs at: enough processes for the fault and
/// arrival axes to matter, small enough that the full grid stays fast.
pub fn e11_contention(scale: Scale) -> usize {
    scale.max_k.clamp(2, 24)
}

/// E11 — the scenario grid: RatRace (original and space-efficient) and
/// the Theorem 4.1 combiner across arrivals × faults × strategies.
///
/// Safety (at most one winner) is asserted in every cell of every trial;
/// the returned rows record steps, completions, and winners per cell.
pub fn e11_scenario_grid(scale: Scale, runner: &TrialRunner) -> Vec<E11Row> {
    print_header(
        "E11",
        "scenario grid: RatRace / space-efficient / combined across arrivals x faults x strategies",
    );
    let k = e11_contention(scale);
    e11_cells(scale, runner, &scenarios::grid(k), k)
}

/// Run E11 over an explicit set of scenario cells (the full grid, or a
/// single cell for the CLI's `--scenario`).
pub fn e11_cells(scale: Scale, runner: &TrialRunner, cells: &[Scenario], k: usize) -> Vec<E11Row> {
    use rtas::sim::rng::SplitMix64;
    use std::time::Instant;

    type AlgBuilder = fn(&mut Memory, usize) -> Arc<dyn LeaderElect>;
    let algorithms: [(&'static str, AlgBuilder); 3] = [
        ("ratrace", |m, n| Arc::new(OriginalRatRace::new(m, n))),
        ("ratrace-space-efficient", |m, n| {
            Arc::new(SpaceEfficientRatRace::new(m, n))
        }),
        ("combined", |m, n| {
            let weak = Arc::new(LogStarLe::new(m, n));
            Arc::new(Combined::new(m, weak, n))
        }),
    ];
    let trials = scale.trials.clamp(1, 6);
    println!("k={k} trials={trials} cells={}", cells.len());
    println!("scenario | algorithm | mean max steps | mean finished | mean winners");
    // One seed stream per (algorithm, cell name): keyed by the cell's
    // stable name — not its position in `cells` — so a single-cell
    // `--scenario` run reproduces that cell's full-grid numbers exactly.
    let cell_seed = |ai: usize, name: &str| {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a over the name
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        SplitMix64::split(scale.seed.wrapping_add(h), ai as u64).next_u64()
    };
    let mut rows = Vec::new();
    for (ai, (alg_name, build)) in algorithms.iter().enumerate() {
        for cell in cells.iter() {
            let base_seed = cell_seed(ai, cell.name());
            let start = Instant::now();
            let results = runner.run_trials_with(
                trials,
                base_seed,
                || {
                    let mut mem = Memory::new();
                    let le = build(&mut mem, k);
                    let exec = Execution::new(mem, Vec::new(), 0).with_step_cap(5_000_000);
                    (le, exec)
                },
                |(le, exec), trial| {
                    let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
                    exec.reset(protos, trial.seed);
                    let respawn_le = Arc::clone(le);
                    let mut adv = cell
                        .begin(exec, trial.subseed(1))
                        .with_respawn(move |_| respawn_le.elect());
                    let out = exec.run_in_place(&mut adv);
                    assert!(
                        !out.hit_cap,
                        "{} / {alg_name} k={k} trial={}: hit step cap",
                        cell.name(),
                        trial.index
                    );
                    let winners = exec.count_outcome(ret::WIN);
                    assert!(
                        winners <= 1,
                        "{} / {alg_name} k={k} trial={}: {winners} winners",
                        cell.name(),
                        trial.index
                    );
                    (
                        exec.steps().max() as f64,
                        out.finished as f64,
                        winners as f64,
                    )
                },
            );
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            // Folded in trial order (the runner returns results in trial
            // order), so the statistics are thread-count invariant.
            let mut steps = StatsAccumulator::new();
            let mut finished = StatsAccumulator::new();
            let mut winners = StatsAccumulator::new();
            for r in &results {
                steps.push(r.0);
                finished.push(r.1);
                winners.push(r.2);
            }
            let mean_finished = finished.mean();
            let mean_winners = winners.mean();
            println!(
                "{} | {alg_name} | {:.1} | {mean_finished:.1} | {mean_winners:.2}",
                cell.name(),
                steps.mean()
            );
            rows.push(E11Row {
                algorithm: alg_name,
                scenario: cell.name().to_string(),
                arrival: cell.arrivals().label(),
                fault: cell.faults().label(),
                strategy: cell.strategy().name(),
                k,
                trials,
                steps: steps.summary(),
                mean_finished,
                mean_winners,
                wall_ms,
            });
        }
    }
    rows
}

/// Epochs of structure reuse per E12 trial.
pub const E12_EPOCHS: u64 = 8;

/// One `(algorithm)` row of E12: the step distribution across reuse
/// epochs of one recycled structure.
#[derive(Debug, Clone)]
pub struct E12Row {
    /// Algorithm under test.
    pub algorithm: &'static str,
    /// Contention per epoch.
    pub k: usize,
    /// Reuse epochs per trial ([`E12_EPOCHS`]).
    pub epochs: u64,
    /// Distribution of max steps over all `trials × epochs` resolutions.
    pub steps: Summary,
    /// Mean max steps over first-epoch (pristine-structure) resolutions.
    pub first_epoch_mean: f64,
    /// Mean max steps over all later (recycled-structure) resolutions.
    pub later_epoch_mean: f64,
    /// Wall-clock cost of the algorithm's whole trial batch, ms.
    pub wall_ms: f64,
}

impl E12Row {
    /// This row as a [`BenchRow`] for `BENCH_epoch_reuse.json`.
    pub fn bench_row(&self) -> BenchRow {
        BenchRow::from_summary(self.k as u64, &self.steps, self.wall_ms)
            .with("epochs", self.epochs as f64)
            .with("first_epoch_mean", self.first_epoch_mean)
            .with("later_epoch_mean", self.later_epoch_mean)
            .with_label("algorithm", self.algorithm)
    }
}

/// E12 — arena epoch reuse: a structure recycled by register reset must
/// resolve with the *same* step distribution as a pristine one.
///
/// This is the simulator twin of the native load harness's sharded
/// arena (`rtas-load`): each trial builds one structure, then resolves
/// [`E12_EPOCHS`] epochs on it back to back, resetting registers (never
/// reallocating) between epochs — exactly what
/// [`rtas::TestAndSet::reset`] does natively, but with deterministic
/// seeds and step counting, so the claim "reuse epochs are
/// distributionally indistinguishable from fresh constructions" is
/// baseline-gated bit for bit. Exactly one winner is asserted per
/// epoch.
pub fn e12_epoch_reuse(scale: Scale, runner: &TrialRunner) -> Vec<E12Row> {
    use rtas::sim::rng::SplitMix64;
    use std::time::Instant;

    print_header(
        "E12",
        "arena epoch reuse: recycled structures match pristine step distributions",
    );
    let k = e11_contention(scale);
    type AlgBuilder = fn(&mut Memory, usize) -> Arc<dyn LeaderElect>;
    let algorithms: [(&'static str, AlgBuilder); 3] = [
        ("logstar", |m, n| Arc::new(LogStarLe::new(m, n))),
        ("ratrace-space-efficient", |m, n| {
            Arc::new(SpaceEfficientRatRace::new(m, n))
        }),
        ("combined", |m, n| {
            let weak = Arc::new(LogStarLe::new(m, n));
            Arc::new(Combined::new(m, weak, n))
        }),
    ];
    println!("k={k} epochs={E12_EPOCHS} trials={}", scale.trials);
    println!("algorithm | mean max steps | first-epoch mean | later-epoch mean");
    let mut rows = Vec::new();
    for (ai, (alg_name, build)) in algorithms.iter().enumerate() {
        let base_seed = SplitMix64::split(scale.seed ^ 0xe12, ai as u64).next_u64();
        let start = Instant::now();
        let results: Vec<Vec<f64>> = runner.run_trials_with(
            scale.trials,
            base_seed,
            || {
                let mut mem = Memory::new();
                let le = build(&mut mem, k);
                (le, Execution::new(mem, Vec::new(), 0))
            },
            |(le, exec), trial| {
                let mut per_epoch = Vec::with_capacity(E12_EPOCHS as usize);
                for epoch in 0..E12_EPOCHS {
                    let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
                    // reset() zeroes the registers of the *same* warm
                    // memory — the recycle under test.
                    exec.reset(protos, trial.subseed(2 * epoch));
                    let mut adv = baseline().begin(exec, trial.subseed(2 * epoch + 1));
                    let out = exec.run_in_place(&mut adv);
                    assert!(
                        out.all_finished(),
                        "{alg_name} k={k} trial={} epoch={epoch}: did not finish",
                        trial.index
                    );
                    assert_eq!(
                        exec.count_outcome(ret::WIN),
                        1,
                        "{alg_name} k={k} trial={} epoch={epoch}: winner count wrong",
                        trial.index
                    );
                    per_epoch.push(exec.steps().max() as f64);
                }
                per_epoch
            },
        );
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        // Folded in trial order (results come back in trial order), so
        // the statistics are thread-count invariant.
        let mut steps = StatsAccumulator::new();
        let mut first = StatsAccumulator::new();
        let mut later = StatsAccumulator::new();
        for per_epoch in &results {
            for (epoch, &v) in per_epoch.iter().enumerate() {
                steps.push(v);
                if epoch == 0 {
                    first.push(v);
                } else {
                    later.push(v);
                }
            }
        }
        println!(
            "{alg_name} | {:.1} | {:.1} | {:.1}",
            steps.mean(),
            first.mean(),
            later.mean()
        );
        rows.push(E12Row {
            algorithm: alg_name,
            k,
            epochs: E12_EPOCHS,
            steps: steps.summary(),
            first_epoch_mean: first.mean(),
            later_epoch_mean: later.mean(),
            wall_ms,
        });
    }
    rows
}

/// Run every experiment at the given scale through one runner.
pub fn run_all(scale: Scale, runner: &TrialRunner) {
    e1_group_election_performance(scale, runner);
    e2_logstar_steps(scale, runner);
    e3_loglog_steps(scale, runner);
    e4_ratrace(scale, runner);
    e5_combiner(scale, runner);
    e6_space_lower_bound(scale, runner);
    e7_two_process_tail(scale, runner);
    e8_sifting_rounds(scale, runner);
    e9_adaptive_attack(scale, runner);
    e10_ladder_depth(scale, runner);
    e11_scenario_grid(scale, runner);
    e12_epoch_reuse(scale, runner);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            max_k: 32,
            trials: 4,
            seed: 42,
        }
    }

    fn runner() -> TrialRunner {
        TrialRunner::new(2)
    }

    #[test]
    fn k_sweep_handles_degenerate_max() {
        assert!(k_sweep(0).is_empty());
        assert!(k_sweep(1).is_empty());
        assert_eq!(k_sweep(2), vec![2]);
        assert_eq!(k_sweep(8), vec![2, 8]);
        assert_eq!(k_sweep(32), vec![2, 8, 32]);
        assert_eq!(k_sweep(33), vec![2, 8, 32, 33]);
        // The final point is never duplicated.
        let ks = k_sweep(128);
        assert_eq!(ks, vec![2, 8, 32, 128]);
    }

    #[test]
    fn e1_respects_bound() {
        for r in e1_group_election_performance(tiny(), &runner()) {
            assert!(
                r.elected.mean <= r.bound,
                "k={}: {} > {}",
                r.k,
                r.elected.mean,
                r.bound
            );
            // The distribution snapshot must be internally consistent.
            assert!(r.elected.min <= r.elected.p50);
            assert!(r.elected.p50 <= r.elected.max);
        }
    }

    #[test]
    fn e2_is_sublinear() {
        let rows = e2_logstar_steps(tiny(), &runner());
        let last = rows.last().unwrap();
        assert!(last.steps.mean_max_steps < last.steps.k as f64);
    }

    #[test]
    fn e12_reuse_epochs_match_pristine_distribution() {
        let scale = Scale {
            max_k: 16,
            trials: 12,
            seed: 42,
        };
        let rows = e12_epoch_reuse(scale, &runner());
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert_eq!(r.epochs, E12_EPOCHS);
            assert_eq!(r.steps.count, scale.trials * E12_EPOCHS);
            // Recycled epochs must look like pristine ones: the means
            // are independent samples of the same distribution, so
            // allow generous sampling noise but catch systematic drift
            // (e.g. stale register state inflating later epochs).
            let drift = (r.later_epoch_mean - r.first_epoch_mean).abs();
            assert!(
                drift <= 0.75 * r.first_epoch_mean.max(4.0),
                "{}: first-epoch mean {} vs later-epoch mean {}",
                r.algorithm,
                r.first_epoch_mean,
                r.later_epoch_mean
            );
        }
    }

    #[test]
    fn e12_is_thread_count_invariant() {
        let scale = Scale {
            max_k: 8,
            trials: 6,
            seed: 7,
        };
        let serial = e12_epoch_reuse(scale, &TrialRunner::serial());
        let parallel = e12_epoch_reuse(scale, &TrialRunner::new(4));
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.steps, p.steps, "{}", s.algorithm);
            assert_eq!(s.first_epoch_mean, p.first_epoch_mean);
            assert_eq!(s.later_epoch_mean, p.later_epoch_mean);
        }
    }

    #[test]
    fn e4_space_separation() {
        let rows = e4_ratrace(tiny(), &runner());
        for row in rows {
            let k = row.steps.k;
            if k >= 16 {
                assert!(
                    row.regs_original_declared > 20 * row.regs_space_efficient,
                    "k={k}: original {} vs SE {}",
                    row.regs_original_declared,
                    row.regs_space_efficient
                );
            }
            assert!(row.regs_original_touched < row.regs_original_declared);
        }
    }

    #[test]
    fn e6_exact() {
        let rows = e6_space_lower_bound(tiny(), &runner());
        assert!(rows.iter().all(|&(_, a, b)| a == b));
    }

    #[test]
    fn e9_attack_dominates_random() {
        let rows = e9_adaptive_attack(
            Scale {
                max_k: 64,
                trials: 4,
                seed: 3,
            },
            &runner(),
        );
        let last = rows.last().unwrap();
        assert!(last.attacked.mean > last.random.mean);
    }

    #[test]
    fn e9_attacked_growth_is_linear_friendly_is_flat() {
        let rows = e9_adaptive_attack(
            Scale {
                max_k: 128,
                trials: 4,
                seed: 5,
            },
            &runner(),
        );
        let attacked: Vec<(f64, f64)> =
            rows.iter().map(|r| (r.k as f64, r.attacked.mean)).collect();
        let random: Vec<(f64, f64)> = rows.iter().map(|r| (r.k as f64, r.random.mean)).collect();
        let s_att = crate::stats::log_log_slope(&attacked);
        let s_rnd = crate::stats::log_log_slope(&random);
        assert!(s_att > 0.6, "attacked slope {s_att} not ~linear");
        assert!(s_rnd < 0.35, "random slope {s_rnd} not ~flat");
    }

    #[test]
    fn e2_growth_is_essentially_flat() {
        let rows = e2_logstar_steps(
            Scale {
                max_k: 256,
                trials: 6,
                seed: 4,
            },
            &runner(),
        );
        let pts: Vec<(f64, f64)> = rows
            .iter()
            .map(|r| (r.steps.k as f64, r.steps.mean_max_steps))
            .collect();
        let slope = crate::stats::log_log_slope(&pts);
        assert!(slope < 0.25, "log* steps slope {slope} too steep");
    }

    #[test]
    fn e11_covers_axes_and_is_safe() {
        use std::collections::HashSet;
        let rows = e11_scenario_grid(tiny(), &runner());
        let arrivals: HashSet<_> = rows.iter().map(|r| r.arrival).collect();
        let faults: HashSet<_> = rows.iter().map(|r| r.fault).collect();
        let strategies: HashSet<_> = rows.iter().map(|r| r.strategy).collect();
        let algorithms: HashSet<_> = rows.iter().map(|r| r.algorithm).collect();
        assert!(arrivals.len() >= 3, "arrival axis too small: {arrivals:?}");
        assert!(faults.len() >= 3, "fault axis too small: {faults:?}");
        assert!(strategies.len() >= 3, "strategy axis: {strategies:?}");
        assert_eq!(algorithms.len(), 3);
        assert_eq!(
            rows.len(),
            arrivals.len() * faults.len() * strategies.len() * algorithms.len()
        );
        let k = e11_contention(tiny()) as f64;
        for r in &rows {
            // Safety is asserted per trial inside the runs; the
            // aggregates must reflect it too.
            assert!(r.mean_winners <= 1.0, "{}: {}", r.scenario, r.mean_winners);
            assert!(r.mean_finished <= k);
            // Fault-free cells complete everyone.
            if r.fault == "none" {
                assert_eq!(r.mean_finished, k, "{} should complete", r.scenario);
            }
        }
    }

    #[test]
    fn e11_is_thread_count_invariant() {
        let scale = tiny();
        let k = 8;
        let cells: Vec<_> = [
            "staggered+churn+laggard-first",
            "random-late+crash-ops+random",
            "batched+crash-slot+contention-max",
        ]
        .iter()
        .map(|name| crate::scenarios::find(k, name).expect("cell exists"))
        .collect();
        let serial = e11_cells(scale, &TrialRunner::serial(), &cells, k);
        let parallel = e11_cells(scale, &TrialRunner::new(4), &cells, k);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.scenario, p.scenario);
            // The whole distribution snapshot — quantiles included —
            // must be bit-identical, not just the means.
            assert_eq!(s.steps, p.steps, "{}", s.scenario);
            assert_eq!(s.mean_finished, p.mean_finished, "{}", s.scenario);
            assert_eq!(s.mean_winners, p.mean_winners, "{}", s.scenario);
        }
    }

    #[test]
    fn e2_is_thread_count_invariant() {
        // The whole experiment — not just one batch — must be identical
        // between a serial and a parallel runner.
        let serial = e2_logstar_steps(tiny(), &TrialRunner::serial());
        let parallel = e2_logstar_steps(tiny(), &TrialRunner::new(4));
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.steps.k, p.steps.k);
            assert_eq!(s.steps.mean_max_steps, p.steps.mean_max_steps);
            assert_eq!(s.steps.worst_max_steps, p.steps.worst_max_steps);
            // Quantiles, stddev, and CI must be bit-identical too.
            assert_eq!(s.steps.dist, p.steps.dist);
            assert_eq!(s.registers, p.registers);
        }
    }
}
