//! The flight-recorder event vocabulary.
//!
//! Every recorded event is one 40-byte record: a ticket (ring order), a
//! timestamp from the recorder's [`rtas::MonotonicClock`], an
//! [`EventKind`] code packed with a 32-bit argument `a`, and two `u64`
//! payload words `b` and `c`. What the arguments mean is per-kind and
//! documented on each variant; the decoder renders them with per-kind
//! field names but carries unknown codes through untouched so old
//! decoders survive new kinds.

/// Which lane of the recorder an event is written to (and read from).
///
/// Accept-path and reclaim events go to their own small rings so a
/// flood of per-frame worker events can never overwrite them; each
/// reactor worker gets a private ring so recording never contends
/// across workers on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Listener/admission events (also used by the threads engine).
    Accept,
    /// Lease-reclaim events from the namespace sweeper.
    Reclaim,
    /// Per-reactor-worker events (index = worker index).
    Worker(usize),
}

/// Stable numeric lane id used in dump files: `0` accept, `1` reclaim,
/// `2 + k` for worker `k`.
pub fn lane_id(lane: Lane) -> u32 {
    match lane {
        Lane::Accept => 0,
        Lane::Reclaim => 1,
        Lane::Worker(k) => 2u32.saturating_add(k as u32),
    }
}

/// Human name for a dump-file lane id: `accept`, `reclaim`,
/// `worker<k>`.
pub fn lane_name(id: u32) -> String {
    match id {
        0 => "accept".to_string(),
        1 => "reclaim".to_string(),
        k => format!("worker{}", k - 2),
    }
}

/// What happened. Codes are part of the dump-file format; add new kinds
/// at the end, never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum EventKind {
    /// A connection was accepted. `a` = live connections after the
    /// accept.
    Accept = 1,
    /// A connection was refused at the admission gate. `a` = live
    /// connections at the time.
    AdmissionRefusal = 2,
    /// A worker's poller returned. `a` = number of ready events.
    ReadinessWakeup = 3,
    /// A request frame was decoded. `a` = opcode, `b` = payload length.
    FrameDecoded = 4,
    /// The arbiter produced a verdict. `a` = 1 if the caller won,
    /// `b` = epoch, `c` = FNV-1a hash of the key.
    ArbiterVerdict = 5,
    /// A RESET was acknowledged. `b` = epoch, `c` = key hash.
    ResetAck = 6,
    /// An expired lease was reclaimed by the sweeper. `b` = epoch that
    /// was torn down, `c` = key hash.
    LeaseReclaim = 7,
    /// A connection's send buffer filled; writable interest was armed.
    /// `a` = slab slot, `b` = buffered bytes.
    BackpressureOn = 8,
    /// A backpressured connection drained. `a` = slab slot.
    BackpressureOff = 9,
    /// The timer wheel was swept. `a` = entries due, `b` = entries
    /// remaining.
    TimerSweep = 10,
    /// A server-side request span completed: the request carried a
    /// wire trace context and its full read→decode→arbiter→encode→write
    /// life is summarized in one record. `a` = opcode, `b` = span id,
    /// `c` = span duration in nanoseconds (the span *starts* at
    /// `ts_ns - c` on the server clock).
    ServerSpan = 11,
    /// A client-side request span completed: one wire round trip as
    /// seen by the load generator. `a` = opcode, `b` = span id,
    /// `c` = send→decoded round-trip duration in nanoseconds (the span
    /// starts at `ts_ns - c` on the client clock).
    ClientSpan = 12,
}

impl EventKind {
    /// Decode a wire/dump code; `None` for codes this build predates.
    pub fn from_code(code: u32) -> Option<EventKind> {
        Some(match code {
            1 => EventKind::Accept,
            2 => EventKind::AdmissionRefusal,
            3 => EventKind::ReadinessWakeup,
            4 => EventKind::FrameDecoded,
            5 => EventKind::ArbiterVerdict,
            6 => EventKind::ResetAck,
            7 => EventKind::LeaseReclaim,
            8 => EventKind::BackpressureOn,
            9 => EventKind::BackpressureOff,
            10 => EventKind::TimerSweep,
            11 => EventKind::ServerSpan,
            12 => EventKind::ClientSpan,
            _ => return None,
        })
    }

    /// Stable kebab-case name used by the timeline and JSON renderers.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Accept => "accept",
            EventKind::AdmissionRefusal => "admission-refusal",
            EventKind::ReadinessWakeup => "readiness-wakeup",
            EventKind::FrameDecoded => "frame-decoded",
            EventKind::ArbiterVerdict => "arbiter-verdict",
            EventKind::ResetAck => "reset-ack",
            EventKind::LeaseReclaim => "lease-reclaim",
            EventKind::BackpressureOn => "backpressure-on",
            EventKind::BackpressureOff => "backpressure-off",
            EventKind::TimerSweep => "timer-sweep",
            EventKind::ServerSpan => "server-span",
            EventKind::ClientSpan => "client-span",
        }
    }
}

/// One decoded flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the recorder clock's origin.
    pub ts_ns: u64,
    /// Dump-file lane id (see [`lane_name`]).
    pub lane: u32,
    /// Write-order ticket within the lane.
    pub ticket: u64,
    /// Raw [`EventKind`] code (kept raw so unknown codes round-trip).
    pub kind: u32,
    /// Per-kind 32-bit argument.
    pub a: u32,
    /// Per-kind payload word.
    pub b: u64,
    /// Per-kind payload word.
    pub c: u64,
}

impl TraceEvent {
    /// The event's kind, if this build knows the code.
    pub fn kind(&self) -> Option<EventKind> {
        EventKind::from_code(self.kind)
    }

    /// Pack into the four ring words (`[ts, kind<<32|a, b, c]`).
    pub fn to_words(&self) -> [u64; crate::ring::WORDS] {
        [
            self.ts_ns,
            (u64::from(self.kind) << 32) | u64::from(self.a),
            self.b,
            self.c,
        ]
    }

    /// Unpack from ring words plus lane/ticket context.
    pub fn from_words(lane: u32, ticket: u64, words: [u64; crate::ring::WORDS]) -> TraceEvent {
        TraceEvent {
            ts_ns: words[0],
            lane,
            ticket,
            kind: (words[1] >> 32) as u32,
            a: words[1] as u32,
            b: words[2],
            c: words[3],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_round_trip_and_unknown_codes_do_not() {
        for code in 1..=12u32 {
            let kind = EventKind::from_code(code).expect("known code");
            assert_eq!(kind as u32, code);
            assert!(!kind.name().is_empty());
        }
        assert_eq!(EventKind::from_code(0), None);
        assert_eq!(EventKind::from_code(13), None);
    }

    #[test]
    fn events_pack_and_unpack_losslessly() {
        let ev = TraceEvent {
            ts_ns: 123_456_789,
            lane: 3,
            ticket: 42,
            kind: EventKind::ArbiterVerdict as u32,
            a: 1,
            b: u64::MAX - 7,
            c: 0xDEAD_BEEF_CAFE_F00D,
        };
        let back = TraceEvent::from_words(3, 42, ev.to_words());
        assert_eq!(back, ev);
        assert_eq!(back.kind(), Some(EventKind::ArbiterVerdict));
    }

    #[test]
    fn lane_ids_and_names_agree() {
        assert_eq!(lane_id(Lane::Accept), 0);
        assert_eq!(lane_id(Lane::Reclaim), 1);
        assert_eq!(lane_id(Lane::Worker(0)), 2);
        assert_eq!(lane_id(Lane::Worker(5)), 7);
        assert_eq!(lane_name(0), "accept");
        assert_eq!(lane_name(1), "reclaim");
        assert_eq!(lane_name(7), "worker5");
    }
}
