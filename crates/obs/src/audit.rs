//! The trace-evidence auditor: verify the paper's safety property from
//! recorded evidence alone.
//!
//! Live harnesses assert one-winner-per-key-epoch while they run; this
//! module proves the same invariants *offline* from any flight-recorder
//! dump — a production incident dump, a chaos CI cell's artifact, or a
//! merged client+server trace. [`audit_events`] replays the arbitration
//! evidence ([`ArbiterVerdict`], [`ResetAck`], [`LeaseReclaim`]) and
//! checks:
//!
//! 1. **One winner**: at most one *winning* verdict per `(key, epoch)`.
//! 2. **No post-reclaim wins**: a winning verdict never timestamps
//!    after the reclaim that tore its epoch down (losing verdicts may —
//!    a losing arbitration racing the sweeper records late, benignly).
//! 3. **One ack**: at most one `RESET` ack per `(key, epoch)` (acks
//!    that found no key, `epoch == 0`, are informational and exempt).
//! 4. **One reclaim**: the sweeper tears an epoch down at most once.
//! 5. **Single opener**: an epoch is opened by a `RESET` ack *or* by a
//!    reclaim of its predecessor, never both.
//!
//! Every check is **presence-based**: the rings are lossy by design, so
//! the auditor never treats a *missing* event as a violation — dropped
//! evidence weakens the audit (reported via the dump's drop counters),
//! it does not fail it. A clean audit therefore means "the retained
//! evidence contains no counterexample to the paper's claim".
//!
//! [`ArbiterVerdict`]: crate::EventKind::ArbiterVerdict
//! [`ResetAck`]: crate::EventKind::ResetAck
//! [`LeaseReclaim`]: crate::EventKind::LeaseReclaim

use std::collections::HashMap;

use crate::event::{EventKind, TraceEvent};

/// What the auditor replayed and what it found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    /// Arbiter verdicts replayed (wins and losses).
    pub verdicts: usize,
    /// Winning verdicts among them.
    pub wins: usize,
    /// `RESET` acks replayed (including no-such-key acks).
    pub resets: usize,
    /// Lease reclaims replayed.
    pub reclaims: usize,
    /// Distinct `(key, epoch)` pairs with arbitration evidence.
    pub key_epochs: usize,
    /// Human-readable invariant violations; empty means the evidence is
    /// consistent with exactly-one-winner semantics.
    pub violations: Vec<String>,
}

impl AuditReport {
    /// Whether the retained evidence passed every invariant.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-paragraph human summary (the `rtas-trace audit` output).
    pub fn render(&self) -> String {
        let mut out = format!(
            "audited {} verdicts ({} wins), {} resets, {} reclaims \
             across {} key-epochs\n",
            self.verdicts, self.wins, self.resets, self.reclaims, self.key_epochs
        );
        if self.passed() {
            out.push_str("PASS: no counterexample to one-winner-per-key-epoch\n");
        } else {
            out.push_str(&format!("FAIL: {} violation(s)\n", self.violations.len()));
            for v in &self.violations {
                out.push_str(&format!("  - {v}\n"));
            }
        }
        out
    }
}

#[derive(Default)]
struct KeyEpoch {
    wins: Vec<u64>,     // timestamps of winning verdicts
    losses: usize,      // losing verdicts (counted, never constrained)
    resets: usize,      // acks with a real epoch
    reclaims: Vec<u64>, // reclaim timestamps
}

/// Replay arbitration evidence and check the five invariants above.
/// Pass any event list — other kinds (spans, reactor events) are
/// ignored, so merged client+server timelines audit directly.
pub fn audit_events(events: &[TraceEvent]) -> AuditReport {
    let mut by_key_epoch: HashMap<(u64, u64), KeyEpoch> = HashMap::new();
    let (mut verdicts, mut wins, mut resets, mut reclaims) = (0, 0, 0, 0);
    for e in events {
        match e.kind() {
            Some(EventKind::ArbiterVerdict) => {
                verdicts += 1;
                let entry = by_key_epoch.entry((e.c, e.b)).or_default();
                if e.a == 1 {
                    wins += 1;
                    entry.wins.push(e.ts_ns);
                } else {
                    entry.losses += 1;
                }
            }
            Some(EventKind::ResetAck) => {
                resets += 1;
                // b == 0 is the "no such key" ack — it opened nothing
                // and may legitimately repeat.
                if e.b != 0 {
                    by_key_epoch.entry((e.c, e.b)).or_default().resets += 1;
                }
            }
            Some(EventKind::LeaseReclaim) => {
                reclaims += 1;
                by_key_epoch
                    .entry((e.c, e.b))
                    .or_default()
                    .reclaims
                    .push(e.ts_ns);
            }
            _ => {}
        }
    }

    let mut violations = Vec::new();
    let mut keys: Vec<&(u64, u64)> = by_key_epoch.keys().collect();
    keys.sort();
    for &&(key, epoch) in &keys {
        let entry = &by_key_epoch[&(key, epoch)];
        if entry.wins.len() > 1 {
            violations.push(format!(
                "key=0x{key:016x} epoch={epoch}: {} winning verdicts (want at most one)",
                entry.wins.len()
            ));
        }
        if entry.resets > 1 {
            violations.push(format!(
                "key=0x{key:016x} epoch={epoch}: {} RESET acks opened the epoch (want at most one)",
                entry.resets
            ));
        }
        if entry.reclaims.len() > 1 {
            violations.push(format!(
                "key=0x{key:016x} epoch={epoch}: reclaimed {} times (want at most one)",
                entry.reclaims.len()
            ));
        }
        if let (Some(&win_ts), Some(&reclaim_ts)) =
            (entry.wins.iter().max(), entry.reclaims.iter().min())
        {
            if win_ts > reclaim_ts {
                violations.push(format!(
                    "key=0x{key:016x} epoch={epoch}: winning verdict at {win_ts}ns \
                     after the epoch was reclaimed at {reclaim_ts}ns"
                ));
            }
        }
        // Double-open: epoch e acked into existence *and* opened by a
        // reclaim of e-1. (The per-key entry is serialized server-side,
        // so both present is structurally impossible in a sound run —
        // and absence of either is just a lossy ring, not a pass/fail.)
        if entry.resets > 0 && epoch > 0 {
            if let Some(prev) = by_key_epoch.get(&(key, epoch - 1)) {
                if !prev.reclaims.is_empty() {
                    violations.push(format!(
                        "key=0x{key:016x} epoch={epoch}: opened by both a RESET ack \
                         and a reclaim of epoch {}",
                        epoch - 1
                    ));
                }
            }
        }
    }

    AuditReport {
        verdicts,
        wins,
        resets,
        reclaims,
        key_epochs: by_key_epoch.len(),
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, ts_ns: u64, a: u32, b: u64, c: u64) -> TraceEvent {
        TraceEvent {
            ts_ns,
            lane: 2,
            ticket: ts_ns,
            kind: kind as u32,
            a,
            b,
            c,
        }
    }

    const KEY: u64 = 0xabc;

    #[test]
    fn a_clean_epoch_cycle_passes() {
        let events = [
            ev(EventKind::ArbiterVerdict, 10, 1, 0, KEY), // win epoch 0
            ev(EventKind::ArbiterVerdict, 11, 0, 0, KEY), // loss epoch 0
            ev(EventKind::ResetAck, 20, 0, 1, KEY),       // opens epoch 1
            ev(EventKind::ArbiterVerdict, 30, 1, 1, KEY), // win epoch 1
            ev(EventKind::LeaseReclaim, 99, 0, 1, KEY),   // sweeper tears 1 down
            ev(EventKind::ArbiterVerdict, 120, 1, 2, KEY), // win the reclaim-opened 2
        ];
        let report = audit_events(&events);
        assert!(report.passed(), "{:?}", report.violations);
        assert_eq!(report.verdicts, 4);
        assert_eq!(report.wins, 3);
        assert_eq!(report.resets, 1);
        assert_eq!(report.reclaims, 1);
        assert_eq!(report.key_epochs, 3);
        assert!(report.render().contains("PASS"));
    }

    #[test]
    fn two_winners_in_one_epoch_fail() {
        let events = [
            ev(EventKind::ArbiterVerdict, 10, 1, 3, KEY),
            ev(EventKind::ArbiterVerdict, 12, 1, 3, KEY),
        ];
        let report = audit_events(&events);
        assert!(!report.passed());
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("2 winning verdicts"));
        assert!(report.render().contains("FAIL"));
    }

    #[test]
    fn a_win_after_the_reclaim_fails_but_a_loss_does_not() {
        let base = [
            ev(EventKind::LeaseReclaim, 50, 0, 3, KEY),
            ev(EventKind::ArbiterVerdict, 60, 0, 3, KEY), // late loss: benign
        ];
        assert!(audit_events(&base).passed());
        let mut bad = base.to_vec();
        bad.push(ev(EventKind::ArbiterVerdict, 70, 1, 3, KEY)); // late win
        let report = audit_events(&bad);
        assert!(!report.passed());
        assert!(report.violations[0].contains("after the epoch was reclaimed"));
    }

    #[test]
    fn duplicate_acks_and_reclaims_fail_but_no_key_acks_repeat_freely() {
        let dup_ack = [
            ev(EventKind::ResetAck, 10, 0, 2, KEY),
            ev(EventKind::ResetAck, 11, 0, 2, KEY),
        ];
        assert!(audit_events(&dup_ack).violations[0].contains("RESET acks"));
        let dup_reclaim = [
            ev(EventKind::LeaseReclaim, 10, 0, 2, KEY),
            ev(EventKind::LeaseReclaim, 11, 0, 2, KEY),
        ];
        assert!(audit_events(&dup_reclaim).violations[0].contains("reclaimed 2 times"));
        let no_key = [
            ev(EventKind::ResetAck, 10, 0, 0, KEY),
            ev(EventKind::ResetAck, 11, 0, 0, KEY),
        ];
        assert!(audit_events(&no_key).passed());
    }

    #[test]
    fn a_double_opened_epoch_fails() {
        let events = [
            ev(EventKind::LeaseReclaim, 10, 0, 4, KEY), // opens epoch 5
            ev(EventKind::ResetAck, 12, 0, 5, KEY),     // ... which this also opens
        ];
        let report = audit_events(&events);
        assert!(!report.passed());
        assert!(report.violations[0].contains("opened by both"));
    }

    #[test]
    fn missing_evidence_is_not_a_violation() {
        // A lossy ring kept only the tail of the story: a win in epoch
        // 7 with no ack or reclaim in sight. Presence-based checks
        // stay quiet.
        let events = [
            ev(EventKind::ArbiterVerdict, 10, 1, 7, KEY),
            ev(EventKind::ClientSpan, 11, 1, 42, 100), // ignored kind
        ];
        let report = audit_events(&events);
        assert!(report.passed());
        assert_eq!(report.key_epochs, 1);
    }
}
