//! Lock-free, lossy, multi-writer event ring buffers.
//!
//! [`EventRing`] is the flight recorder's storage: a power-of-two array
//! of fixed-size slots, each a tiny single-slot seqlock. Writers on any
//! thread claim a slot with one CAS and publish with a release store;
//! readers snapshot concurrently without stopping writers and discard
//! any slot they observe mid-write. Nothing ever blocks and nothing
//! allocates after construction, which is what lets the recorder sit on
//! the reactor's hot path.
//!
//! # Protocol
//!
//! A global `ticket` counter assigns each event a monotonically
//! increasing ticket `t`; the event lives in slot `t & (capacity-1)`.
//! Each slot carries a sequence word encoding its state:
//!
//! * `0` — never written.
//! * `2t + 1` — claimed by the writer of ticket `t` (odd = in flight).
//! * `2t + 2` — published by the writer of ticket `t` (even = stable).
//!
//! A writer claims by CAS-ing the sequence from the *expected prior
//! value* for its slot — `0` on the first lap, else the publish value of
//! the ticket one lap below — to its own odd claim value. If the CAS
//! fails, a slower writer from a previous lap still owns the slot (or a
//! faster one from a later lap already took it); the event is counted in
//! `dropped` and discarded rather than risking a torn record. Losing
//! the *oldest* history under overload is the flight-recorder contract;
//! corrupting it is not.
//!
//! A reader loads the sequence (acquire), copies the four data words,
//! fences, and re-loads the sequence: if both loads agree on the same
//! even value, the copy is consistent and its ticket is `seq/2 - 1`.

use std::sync::atomic::{fence, AtomicU64, Ordering};

/// Number of `u64` data words per event record (timestamp, packed
/// kind+arg, and two payload words — see [`crate::event`]).
pub const WORDS: usize = 4;

/// One slot: a sequence word plus the event payload.
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl Slot {
    const fn empty() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            words: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }
}

/// A consistent copy of one published event, as raw words.
///
/// `ticket` orders events within a ring (it is the claim order, which
/// for a single lane is also wall order up to the resolution of the
/// timestamp word carried inside `words`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawRecord {
    /// The event's position in the ring's total write order.
    pub ticket: u64,
    /// The four payload words exactly as the writer stored them.
    pub words: [u64; WORDS],
}

/// A fixed-capacity, lock-free, lossy multi-writer ring — see the
/// [module docs](self) for the slot protocol.
pub struct EventRing {
    slots: Box<[Slot]>,
    ticket: AtomicU64,
    dropped: AtomicU64,
}

impl EventRing {
    /// A ring holding `capacity` events. Capacity is rounded up to the
    /// next power of two; `0` builds a disabled ring on which every
    /// [`EventRing::record`] is counted as dropped (used for
    /// `TraceMode::Off` so an untraced server allocates no slot
    /// memory).
    pub fn new(capacity: usize) -> Self {
        let cap = if capacity == 0 {
            0
        } else {
            capacity.next_power_of_two()
        };
        let slots: Vec<Slot> = (0..cap).map(|_| Slot::empty()).collect();
        EventRing {
            slots: slots.into_boxed_slice(),
            ticket: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Slot count (a power of two, or zero for a disabled ring).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events discarded so far: all writes on a disabled ring, plus
    /// writes that lost the slot-claim race to a writer from another
    /// lap.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Total tickets issued (published + in-flight + claim-race drops).
    pub fn issued(&self) -> u64 {
        self.ticket.load(Ordering::Relaxed)
    }

    /// Record one event. Never blocks, never allocates; on contention
    /// for a lapped slot the event is dropped, never torn.
    pub fn record(&self, words: [u64; WORDS]) {
        let cap = self.slots.len() as u64;
        if cap == 0 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let t = self.ticket.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(t & (cap - 1)) as usize];
        // The slot last held the ticket one lap below (published), or
        // nothing on the first lap.
        let expected = if t >= cap { 2 * (t - cap) + 2 } else { 0 };
        if slot
            .seq
            .compare_exchange(expected, 2 * t + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            // A writer from another lap owns the slot right now; give
            // this event up instead of racing it.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        for (w, v) in slot.words.iter().zip(words) {
            w.store(v, Ordering::Relaxed);
        }
        slot.seq.store(2 * t + 2, Ordering::Release);
    }

    /// Copy every consistently published event into `out`, oldest
    /// ticket first. Runs concurrently with writers; slots observed
    /// mid-write are skipped (they will carry a *newer* event than
    /// whatever was there). Allocates only in `out`.
    pub fn snapshot_into(&self, out: &mut Vec<RawRecord>) {
        for slot in self.slots.iter() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                continue; // never written, or claim in flight
            }
            let mut words = [0u64; WORDS];
            for (v, w) in words.iter_mut().zip(slot.words.iter()) {
                *v = w.load(Ordering::Relaxed);
            }
            // Order the data loads before the confirming sequence load.
            fence(Ordering::Acquire);
            let s2 = slot.seq.load(Ordering::Relaxed);
            if s1 == s2 {
                out.push(RawRecord {
                    ticket: s1 / 2 - 1,
                    words,
                });
            }
        }
        out.sort_by_key(|r| r.ticket);
    }

    /// Convenience wrapper over [`EventRing::snapshot_into`].
    pub fn snapshot(&self) -> Vec<RawRecord> {
        let mut out = Vec::with_capacity(self.slots.len());
        self.snapshot_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    /// Derive four payload words from one value with distinct, cheap
    /// bijections; a torn record (words from two different events)
    /// cannot satisfy all three relations at once.
    fn related_words(v: u64) -> [u64; WORDS] {
        [v, v ^ 0xA5A5_A5A5_A5A5_A5A5, v.wrapping_mul(3), !v]
    }

    fn assert_untorn(r: &RawRecord) {
        let v = r.words[0];
        assert_eq!(
            r.words,
            related_words(v),
            "torn record at ticket {}",
            r.ticket
        );
    }

    #[test]
    fn capacity_rounds_up_and_zero_disables() {
        assert_eq!(EventRing::new(5).capacity(), 8);
        assert_eq!(EventRing::new(8).capacity(), 8);
        let off = EventRing::new(0);
        assert_eq!(off.capacity(), 0);
        off.record([1, 2, 3, 4]);
        assert_eq!(off.dropped(), 1);
        assert!(off.snapshot().is_empty());
    }

    #[test]
    fn records_come_back_in_ticket_order() {
        let ring = EventRing::new(16);
        for v in 0..10u64 {
            ring.record(related_words(v));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 10);
        for (i, r) in snap.iter().enumerate() {
            assert_eq!(r.ticket, i as u64);
            assert_untorn(r);
            assert_eq!(r.words[0], i as u64);
        }
        assert_eq!(ring.dropped(), 0);
    }

    /// Satellite requirement: wraparound never tears an event. Lap the
    /// ring many times single-threaded, then with racing writers and a
    /// concurrent reader, and check every snapshotted record's word
    /// relations.
    #[test]
    fn wraparound_never_tears_an_event() {
        // Single-threaded lapping: exact expectations.
        let ring = EventRing::new(8);
        for v in 0..1000u64 {
            ring.record(related_words(v));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 8, "ring retains exactly one lap");
        for r in &snap {
            assert_untorn(r);
            assert_eq!(r.words[0], r.ticket, "slot holds the newest lap");
            assert!(r.ticket >= 992);
        }
        assert_eq!(ring.dropped(), 0, "uncontended lapping drops nothing");

        // Racing writers + concurrent reader: no torn record is ever
        // observed, and accounting still balances.
        let ring = Arc::new(EventRing::new(16));
        let stop = Arc::new(AtomicBool::new(false));
        const WRITERS: u64 = 4;
        const PER_WRITER: u64 = 20_000;
        let reader = {
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut seen = 0u64;
                let mut buf = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    buf.clear();
                    ring.snapshot_into(&mut buf);
                    for r in &buf {
                        assert_untorn(r);
                    }
                    seen += buf.len() as u64;
                }
                seen
            })
        };
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..PER_WRITER {
                        ring.record(related_words(w * PER_WRITER + i));
                    }
                })
            })
            .collect();
        for t in writers {
            t.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let seen = reader.join().unwrap();
        assert!(seen > 0, "reader observed no records at all");
        assert_eq!(ring.issued(), WRITERS * PER_WRITER);
        // Every ticket was either published or counted dropped; the
        // final quiesced snapshot is full and untorn.
        let snap = ring.snapshot();
        assert!(snap.len() <= 16);
        for r in &snap {
            assert_untorn(r);
        }
        assert!(ring.dropped() <= WRITERS * PER_WRITER);
    }
}
