//! # rtas-obs — the observability plane
//!
//! Production arbitration needs to answer two questions the service's
//! end-state assertions and aggregate BENCH numbers cannot: *what did
//! the reactor actually do just now* (when a chaos cell or the c10k
//! smoke fails), and *how is it doing right now* (for dashboards and
//! regression gates). This crate is the substrate for both, kept
//! std-only and dependency-light like everything else in the repo:
//!
//! * [`ring`] — the **flight recorder**'s storage: per-lane lock-free
//!   ring buffers of fixed-size binary event records. Writers claim a
//!   slot with one CAS and publish with a release store (a multi-writer
//!   seqlock); readers snapshot concurrently and discard torn slots.
//!   Lossy by design — when the ring laps an unread slot the oldest
//!   event goes away — because a flight recorder's job is *recent
//!   history at zero steady-state cost*, not a complete log. Rings are
//!   fully pre-allocated: recording never allocates.
//! * [`event`] — the event vocabulary ([`EventKind`]) and the decoded
//!   record type ([`TraceEvent`]): accept, admission refusal, readiness
//!   wakeup, frame decoded, arbiter verdict, RESET ack, lease reclaim,
//!   backpressure on/off, timer-wheel sweep. Every record is four
//!   `u64` words plus a timestamp from one shared
//!   [`rtas::MonotonicClock`].
//! * [`recorder`] — [`FlightRecorder`]: the lanes (accept, reclaim,
//!   one per reactor worker) behind one handle, the
//!   [`TraceMode`] (`off` | `on` | `sampled:<n>`) gate, and the binary
//!   dump writer. [`dump`] is the matching decoder: parse a dump file,
//!   merge lanes into one time-sorted timeline, render it for humans
//!   or as JSON (`rtas-svc trace-dump`).
//! * [`metrics`] — the **metrics plane**: typed [`Counter`]s,
//!   [`Gauge`]s, and lock-free log-bin latency [`Histogram`]s (the
//!   exact [`rtas_bench::stats`] bin scheme, so quantile semantics
//!   match the BENCH reports), registered by name in a [`Registry`]
//!   that renders the versioned key/value text the `METRICS` wire op
//!   serves.
//! * [`merge`] — cross-tier span joining: the wire trace extension
//!   (`docs/WIRE.md`) gives a request one span id on both sides of the
//!   socket, and [`merge_spans`] pairs a client dump's
//!   [`EventKind::ClientSpan`]s with a server dump's
//!   [`EventKind::ServerSpan`]s into per-request end-to-end timelines
//!   plus a network/server/queue latency breakdown
//!   (`BENCH_svc_e2e.json`).
//! * [`audit`] — the trace-evidence auditor: [`audit_events`] replays
//!   verdict/ack/reclaim evidence from any dump and verifies the
//!   paper's safety claim (exactly one winner per key-epoch, no
//!   post-reclaim wins) offline. `rtas-trace merge|audit` is the CLI
//!   front end for both.
//!
//! The flight recorder is opt-in ([`TraceMode::Off`] records nothing
//! and costs one branch per site); the metrics plane is always on
//! (relaxed atomic increments). Consumers: `rtas-svc` threads a
//! recorder and registry through its server, reactor, and namespace;
//! `rtas-load` scrapes the rendered metrics into report extras.

#![warn(missing_docs)]

pub mod audit;
pub mod dump;
pub mod event;
pub mod merge;
pub mod metrics;
pub mod recorder;
pub mod ring;

pub use audit::{audit_events, AuditReport};
pub use dump::{decode_dump, encode_dump, render_json, render_timeline, LaneDump, TraceDump};
pub use event::{lane_name, EventKind, Lane, TraceEvent};
pub use merge::{
    bench_report, merge_spans, render_merge_json, render_merge_timeline, MergeOutcome, SpanPair,
};
pub use metrics::{
    parse_metrics, Counter, Gauge, Histogram, Registry, METRICS_HEADER, METRICS_HEADER_V1,
};
pub use recorder::{trace_dir, FlightRecorder, TraceMode, TRACE_DIR_ENV};
pub use ring::EventRing;
