//! `rtas-trace` — cross-tier trace tooling over `RTASTRC1` dumps.
//!
//! ```text
//! rtas-trace merge <client.rtastrc> <server.rtastrc> [--json] [--bench]
//! rtas-trace audit <dump.rtastrc>...
//! ```
//!
//! `merge` joins a client dump and a server dump on span id (see
//! `docs/WIRE.md` for the wire trace extension) and prints per-request
//! end-to-end timelines with a network/server/queue latency breakdown;
//! `--json` emits the same as one JSON object, `--bench` additionally
//! writes `BENCH_svc_e2e.json` (honoring `RTAS_BENCH_DIR`).
//!
//! `audit` replays arbitration evidence from one or more dumps —
//! including merged client+server evidence — and verifies the paper's
//! safety claim offline: exactly one winner per key-epoch, no verdict
//! after that epoch's lease reclaim, no duplicate acks or reclaims.
//! Exits nonzero on any violation, so CI and operators can gate on it.

use std::process::ExitCode;

use rtas_obs::{
    audit_events, bench_report, decode_dump, merge_spans, render_merge_json, render_merge_timeline,
    TraceDump,
};

fn usage() -> String {
    "usage: rtas-trace <command>\n\
     \n\
     commands:\n\
     \x20 merge <client.rtastrc> <server.rtastrc> [--json] [--bench]\n\
     \x20     join client and server dumps on span id; print per-request\n\
     \x20     end-to-end timelines and the network/server/queue breakdown\n\
     \x20     (--json for machines, --bench to write BENCH_svc_e2e.json)\n\
     \x20 audit <dump.rtastrc>...\n\
     \x20     verify one-winner-per-key-epoch and lease-reclaim ordering\n\
     \x20     from recorded evidence; exit 1 on any violation\n"
        .to_string()
}

fn load_dump(path: &str) -> Result<TraceDump, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    decode_dump(&bytes).map_err(|e| format!("cannot decode {path}: {e}"))
}

fn run_merge(args: &[String]) -> Result<ExitCode, String> {
    let mut paths = Vec::new();
    let mut json = false;
    let mut bench = false;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            "--bench" => bench = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown merge flag {flag}\n\n{}", usage()))
            }
            path => paths.push(path.to_string()),
        }
    }
    let [client_path, server_path] = paths.as_slice() else {
        return Err(format!(
            "merge takes exactly a client dump and a server dump\n\n{}",
            usage()
        ));
    };
    let client = load_dump(client_path)?;
    let server = load_dump(server_path)?;
    let merged = merge_spans(&client.merged(), &server.merged());
    if json {
        print!("{}", render_merge_json(&merged));
    } else {
        print!("{}", render_merge_timeline(&merged));
    }
    if bench {
        let path = bench_report(&merged)
            .write()
            .map_err(|e| format!("cannot write BENCH_svc_e2e.json: {e}"))?;
        eprintln!("wrote {}", path.display());
    }
    Ok(ExitCode::SUCCESS)
}

fn run_audit(args: &[String]) -> Result<ExitCode, String> {
    if args.is_empty() || args.iter().any(|a| a.starts_with("--")) {
        return Err(format!("audit takes one or more dump files\n\n{}", usage()));
    }
    let mut events = Vec::new();
    for path in args {
        events.extend(load_dump(path)?.merged());
    }
    let report = audit_events(&events);
    print!("{}", report.render());
    Ok(if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("merge") => run_merge(&args[1..]),
        Some("audit") => run_audit(&args[1..]),
        Some("--help" | "-h" | "help") => {
            print!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command {other:?}\n\n{}", usage())),
        None => Err(usage()),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
