//! The flight recorder: trace mode, lanes, recording, and dump output.
//!
//! A [`FlightRecorder`] owns one [`EventRing`]
//! per lane (accept, reclaim, and one per reactor worker) and a shared
//! [`MonotonicClock`] that stamps every event. Recording sites call
//! [`FlightRecorder::record`] with a [`Lane`], an [`EventKind`], and
//! the per-kind arguments; in [`TraceMode::Off`] the call is one branch
//! and the rings are zero-capacity, so an untraced server pays nothing
//! and allocates nothing for tracing.
//!
//! Dumps are written in the `RTASTRC1` binary format (decoded by
//! [`crate::dump`]): on demand via [`FlightRecorder::dump_to_file`] /
//! [`FlightRecorder::write_dump`], or automatically on
//! safety-violation/panic by the service, into the directory named by
//! the [`TRACE_DIR_ENV`] environment variable.

use crate::event::{lane_id, EventKind, Lane};
use crate::ring::EventRing;
use crate::TraceEvent;
use rtas::MonotonicClock;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Environment variable naming the directory automatic trace dumps are
/// written into. Unset ⇒ automatic dumps are skipped.
pub const TRACE_DIR_ENV: &str = "RTAS_TRACE_DIR";

/// The directory automatic trace dumps go to, if [`TRACE_DIR_ENV`] is
/// set.
pub fn trace_dir() -> Option<PathBuf> {
    std::env::var_os(TRACE_DIR_ENV).map(PathBuf::from)
}

/// Events retained per admission lane (accept, reclaim). Small: these
/// lanes see connection-rate traffic, not frame-rate traffic.
const ADMIN_LANE_CAPACITY: usize = 4096;
/// Events retained per worker lane; sized for a useful window of
/// per-frame history at smoke-test load.
const WORKER_LANE_CAPACITY: usize = 8192;

/// How much the flight recorder records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Record nothing; rings are not allocated.
    #[default]
    Off,
    /// Record every event.
    On,
    /// Record per-frame hot-path events for one frame in `n` (per
    /// connection / per wakeup); rare events (accepts, reclaims,
    /// backpressure transitions) are always recorded.
    Sampled(u32),
}

impl TraceMode {
    /// Parse a `--trace` flag value: `off`, `on`, or `sampled:<n>` with
    /// `n ≥ 1`.
    pub fn parse(s: &str) -> Option<TraceMode> {
        match s {
            "off" => Some(TraceMode::Off),
            "on" => Some(TraceMode::On),
            _ => s
                .strip_prefix("sampled:")
                .and_then(|n| n.parse::<u32>().ok())
                .filter(|&n| n > 0)
                .map(TraceMode::Sampled),
        }
    }

    /// The canonical flag spelling (`parse(label)` round-trips).
    pub fn label(self) -> String {
        match self {
            TraceMode::Off => "off".to_string(),
            TraceMode::On => "on".to_string(),
            TraceMode::Sampled(n) => format!("sampled:{n}"),
        }
    }

    /// Whether any recording happens at all.
    pub fn enabled(self) -> bool {
        !matches!(self, TraceMode::Off)
    }
}

/// Per-worker lock-free event rings plus a shared clock — see the
/// [module docs](self).
pub struct FlightRecorder {
    mode: TraceMode,
    clock: MonotonicClock,
    accept: EventRing,
    reclaim: EventRing,
    workers: Vec<EventRing>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("mode", &self.mode)
            .field("worker_lanes", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl FlightRecorder {
    /// A recorder with `worker_lanes` per-worker rings (pass the
    /// reactor worker count; the threads engine passes 0 and shares the
    /// accept lane). In [`TraceMode::Off`] every ring has capacity 0.
    pub fn new(mode: TraceMode, worker_lanes: usize) -> Self {
        let (admin_cap, worker_cap) = if mode.enabled() {
            (ADMIN_LANE_CAPACITY, WORKER_LANE_CAPACITY)
        } else {
            (0, 0)
        };
        FlightRecorder {
            mode,
            clock: MonotonicClock::new(),
            accept: EventRing::new(admin_cap),
            reclaim: EventRing::new(admin_cap),
            workers: (0..worker_lanes)
                .map(|_| EventRing::new(worker_cap))
                .collect(),
        }
    }

    /// The recorder's mode.
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// Whether recording sites should bother calling in at all.
    pub fn enabled(&self) -> bool {
        self.mode.enabled()
    }

    /// The shared clock (lease bookkeeping reuses it so trace
    /// timestamps and deadlines live on one axis).
    pub fn clock(&self) -> &MonotonicClock {
        &self.clock
    }

    /// Current nanoseconds on the recorder clock.
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Whether hot-path event number `seq` (any cheap local counter:
    /// frame index, wakeup index) should be recorded under the current
    /// mode. Pure arithmetic — deliberately no RNG, so tracing can
    /// never perturb seeded fault streams.
    pub fn sample_hit(&self, seq: u64) -> bool {
        match self.mode {
            TraceMode::Off => false,
            TraceMode::On => true,
            TraceMode::Sampled(n) => seq % u64::from(n) == 0,
        }
    }

    fn ring(&self, lane: Lane) -> &EventRing {
        match lane {
            Lane::Accept => &self.accept,
            Lane::Reclaim => &self.reclaim,
            // An out-of-range worker index (threads engine with no
            // worker lanes) falls back to the accept lane rather than
            // panicking on the hot path.
            Lane::Worker(k) => self.workers.get(k).unwrap_or(&self.accept),
        }
    }

    /// Record one event, stamped with the recorder clock. No-op (one
    /// branch) when the mode is [`TraceMode::Off`].
    pub fn record(&self, lane: Lane, kind: EventKind, a: u32, b: u64, c: u64) {
        if !self.mode.enabled() {
            return;
        }
        let ev = TraceEvent {
            ts_ns: self.clock.now_ns(),
            lane: lane_id(lane),
            ticket: 0, // assigned by the ring
            kind: kind as u32,
            a,
            b,
            c,
        };
        self.ring(lane).record(ev.to_words());
    }

    fn lanes(&self) -> impl Iterator<Item = (u32, &EventRing)> {
        [(0u32, &self.accept), (1u32, &self.reclaim)]
            .into_iter()
            .chain(
                self.workers
                    .iter()
                    .enumerate()
                    .map(|(k, r)| (2 + k as u32, r)),
            )
    }

    /// Per-lane dropped-event counts, `(lane id, dropped)` in dump-file
    /// lane order. Lets the metrics exposition surface ring lossiness
    /// without taking a full snapshot.
    pub fn lane_drops(&self) -> Vec<(u32, u64)> {
        self.lanes()
            .map(|(id, ring)| (id, ring.dropped()))
            .collect()
    }

    /// A consistent-per-slot snapshot of every lane, merged and sorted
    /// by timestamp (ties broken by lane then ticket). Runs
    /// concurrently with writers.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        let mut buf = Vec::new();
        for (id, ring) in self.lanes() {
            buf.clear();
            ring.snapshot_into(&mut buf);
            out.extend(
                buf.iter()
                    .map(|r| TraceEvent::from_words(id, r.ticket, r.words)),
            );
        }
        out.sort_by_key(|e| (e.ts_ns, e.lane, e.ticket));
        out
    }

    /// Write an `RTASTRC1` binary dump of every lane to `w`.
    ///
    /// Layout: magic `RTASTRC1`, `u32` version (1), `u32` lane count;
    /// then per lane a `u32` lane id, `u32` reserved (0), `u64` dropped
    /// count, `u64` event count, and `count` 40-byte records of
    /// `[u64 ticket][u64 ts_ns][u32 kind][u32 a][u64 b][u64 c]`, all
    /// little-endian. [`crate::dump::decode_dump`] reads it back.
    pub fn write_dump(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(crate::dump::MAGIC)?;
        w.write_all(&1u32.to_le_bytes())?;
        let lane_count = 2 + self.workers.len() as u32;
        w.write_all(&lane_count.to_le_bytes())?;
        let mut buf = Vec::new();
        for (id, ring) in self.lanes() {
            buf.clear();
            ring.snapshot_into(&mut buf);
            w.write_all(&id.to_le_bytes())?;
            w.write_all(&0u32.to_le_bytes())?;
            w.write_all(&ring.dropped().to_le_bytes())?;
            w.write_all(&(buf.len() as u64).to_le_bytes())?;
            for r in &buf {
                let ev = TraceEvent::from_words(id, r.ticket, r.words);
                w.write_all(&ev.ticket.to_le_bytes())?;
                w.write_all(&ev.ts_ns.to_le_bytes())?;
                w.write_all(&ev.kind.to_le_bytes())?;
                w.write_all(&ev.a.to_le_bytes())?;
                w.write_all(&ev.b.to_le_bytes())?;
                w.write_all(&ev.c.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Write a dump to `path` (created or truncated).
    pub fn dump_to_file(&self, path: &Path) -> io::Result<()> {
        let mut f = io::BufWriter::new(std::fs::File::create(path)?);
        self.write_dump(&mut f)?;
        f.flush()
    }

    /// Write a dump named `<stem>.rtastrc` into the [`TRACE_DIR_ENV`]
    /// directory, returning the path written, or `Ok(None)` when the
    /// variable is unset or the recorder is off.
    pub fn dump_to_trace_dir(&self, stem: &str) -> io::Result<Option<PathBuf>> {
        if !self.enabled() {
            return Ok(None);
        }
        let Some(dir) = trace_dir() else {
            return Ok(None);
        };
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{stem}.rtastrc"));
        self.dump_to_file(&path)?;
        Ok(Some(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parses_and_labels_round_trip() {
        for (s, want) in [
            ("off", TraceMode::Off),
            ("on", TraceMode::On),
            ("sampled:1", TraceMode::Sampled(1)),
            ("sampled:16", TraceMode::Sampled(16)),
        ] {
            let mode = TraceMode::parse(s).expect(s);
            assert_eq!(mode, want);
            assert_eq!(mode.label(), s);
            assert_eq!(TraceMode::parse(&mode.label()), Some(mode));
        }
        for bad in ["", "ON", "sampled:", "sampled:0", "sampled:-1", "always"] {
            assert_eq!(TraceMode::parse(bad), None, "{bad:?} should not parse");
        }
        assert_eq!(TraceMode::default(), TraceMode::Off);
    }

    #[test]
    fn sampling_is_deterministic_arithmetic() {
        let rec = FlightRecorder::new(TraceMode::Sampled(4), 1);
        let hits: Vec<bool> = (0..8).map(|s| rec.sample_hit(s)).collect();
        assert_eq!(hits, [true, false, false, false, true, false, false, false]);
        assert!(FlightRecorder::new(TraceMode::On, 0).sample_hit(17));
        assert!(!FlightRecorder::new(TraceMode::Off, 0).sample_hit(0));
    }

    #[test]
    fn off_mode_allocates_no_rings_and_records_nothing() {
        let rec = FlightRecorder::new(TraceMode::Off, 4);
        assert!(!rec.enabled());
        rec.record(Lane::Accept, EventKind::Accept, 1, 0, 0);
        rec.record(Lane::Worker(2), EventKind::FrameDecoded, 1, 14, 0);
        assert!(rec.snapshot().is_empty());
    }

    #[test]
    fn events_land_in_their_lanes_and_merge_time_sorted() {
        let rec = FlightRecorder::new(TraceMode::On, 2);
        rec.record(Lane::Accept, EventKind::Accept, 3, 0, 0);
        rec.record(Lane::Worker(0), EventKind::FrameDecoded, 1, 14, 0);
        rec.record(Lane::Worker(1), EventKind::ArbiterVerdict, 1, 7, 99);
        rec.record(Lane::Reclaim, EventKind::LeaseReclaim, 0, 5, 42);
        // Out-of-range worker lane falls back to accept.
        rec.record(Lane::Worker(9), EventKind::TimerSweep, 2, 1, 0);
        let events = rec.snapshot();
        assert_eq!(events.len(), 5);
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        let lane_of = |kind: EventKind| {
            events
                .iter()
                .find(|e| e.kind == kind as u32)
                .expect("event present")
                .lane
        };
        assert_eq!(lane_of(EventKind::Accept), 0);
        assert_eq!(lane_of(EventKind::LeaseReclaim), 1);
        assert_eq!(lane_of(EventKind::FrameDecoded), 2);
        assert_eq!(lane_of(EventKind::ArbiterVerdict), 3);
        assert_eq!(lane_of(EventKind::TimerSweep), 0);
    }
}
