//! Join a client trace dump and a server trace dump on span identity.
//!
//! The wire trace extension (`docs/WIRE.md`) stamps every traced
//! request with a span id; the client records a [`ClientSpan`] per
//! round trip and the server a [`ServerSpan`] per handled frame, both
//! carrying that id. [`merge_spans`] pairs the two sides per request,
//! yielding the end-to-end latency decomposition the aggregate BENCH
//! numbers cannot give: how much of each round trip was *server* work
//! (the span the server measured), how much was the *network floor*
//! (the smallest client−server slack seen in the window, an estimate of
//! pure propagation + syscall cost), and how much was *queueing* (the
//! rest — time the request sat in socket buffers or behind other
//! frames).
//!
//! The two dumps come from two different [`rtas::MonotonicClock`]
//! origins, so absolute timestamps are not comparable across tiers.
//! The decomposition therefore only uses *durations* (client RTT and
//! server span length), which are origin-free. For the unified
//! timeline a best-effort clock offset is estimated as the median of
//! per-pair midpoint differences — good enough to interleave the two
//! sides for a human, and reported so the reader knows what was
//! applied.
//!
//! [`ClientSpan`]: crate::EventKind::ClientSpan
//! [`ServerSpan`]: crate::EventKind::ServerSpan

use std::collections::HashMap;

use rtas_bench::report::{BenchReport, BenchRow};

use crate::event::{EventKind, TraceEvent};

/// One request seen end to end: the client's round trip plus the
/// server span that answered it (when the server's ring retained it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanPair {
    /// The shared span id.
    pub span: u64,
    /// Request opcode (numeric wire code; the decoder is protocol-free).
    pub op: u32,
    /// When the client decoded the response, on the client clock.
    pub client_end_ns: u64,
    /// The client's send→decoded round trip.
    pub rtt_ns: u64,
    /// The matched server span end timestamp (server clock), if any.
    pub server_end_ns: Option<u64>,
    /// The matched server span duration (decode→arbiter→encode), if any.
    pub server_dur_ns: Option<u64>,
}

impl SpanPair {
    /// Client RTT minus server-measured work: network plus queueing.
    pub fn slack_ns(&self) -> Option<u64> {
        self.server_dur_ns.map(|d| self.rtt_ns.saturating_sub(d))
    }
}

/// The result of pairing a client dump with a server dump.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeOutcome {
    /// Paired requests, ordered by client span end time.
    pub pairs: Vec<SpanPair>,
    /// Client spans seen (paired or not).
    pub client_spans: usize,
    /// Server spans seen (paired or not).
    pub server_spans: usize,
    /// Client spans with no surviving server span (lossy rings or
    /// sampled server tracing make this normal, not an error).
    pub unpaired_client: usize,
    /// Server spans no client span claimed.
    pub unpaired_server: usize,
    /// Client spans that matched *more than one* server span — the
    /// at-most-one-server-span invariant broken; always worth a look.
    pub duplicate_server: usize,
    /// Smallest per-pair slack (RTT − server work): the network floor
    /// estimate, in nanoseconds. Zero when nothing paired.
    pub net_floor_ns: u64,
    /// Median of per-pair midpoint differences (client clock minus
    /// server clock), nanoseconds — the shift applied to server
    /// timestamps for the unified timeline. Zero when nothing paired.
    pub clock_offset_ns: i64,
}

impl MergeOutcome {
    /// Per-pair queueing estimates: slack minus the network floor.
    fn queue_ns(&self, p: &SpanPair) -> Option<u64> {
        p.slack_ns().map(|s| s.saturating_sub(self.net_floor_ns))
    }
}

/// Pair every [`ClientSpan`](EventKind::ClientSpan) in `client` with
/// its [`ServerSpan`](EventKind::ServerSpan) in `server`, by span id.
/// Non-span events on either side are ignored, so whole
/// [`TraceDump::merged`](crate::TraceDump::merged) lists can be passed
/// straight in.
pub fn merge_spans(client: &[TraceEvent], server: &[TraceEvent]) -> MergeOutcome {
    let mut server_by_span: HashMap<u64, Vec<&TraceEvent>> = HashMap::new();
    let mut server_spans = 0usize;
    for e in server {
        if e.kind() == Some(EventKind::ServerSpan) && e.b != 0 {
            server_by_span.entry(e.b).or_default().push(e);
            server_spans += 1;
        }
    }
    let mut pairs = Vec::new();
    let mut client_spans = 0usize;
    let mut unpaired_client = 0usize;
    let mut duplicate_server = 0usize;
    for e in client {
        if e.kind() != Some(EventKind::ClientSpan) || e.b == 0 {
            continue;
        }
        client_spans += 1;
        match server_by_span.remove(&e.b) {
            Some(matched) => {
                if matched.len() > 1 {
                    duplicate_server += matched.len() - 1;
                }
                let s = matched[0];
                pairs.push(SpanPair {
                    span: e.b,
                    op: e.a,
                    client_end_ns: e.ts_ns,
                    rtt_ns: e.c,
                    server_end_ns: Some(s.ts_ns),
                    server_dur_ns: Some(s.c),
                });
            }
            None => {
                unpaired_client += 1;
                pairs.push(SpanPair {
                    span: e.b,
                    op: e.a,
                    client_end_ns: e.ts_ns,
                    rtt_ns: e.c,
                    server_end_ns: None,
                    server_dur_ns: None,
                });
            }
        }
    }
    let unpaired_server: usize = server_by_span.values().map(Vec::len).sum();
    pairs.sort_by_key(|p| (p.client_end_ns, p.span));

    let net_floor_ns = pairs
        .iter()
        .filter_map(SpanPair::slack_ns)
        .min()
        .unwrap_or(0);
    // Midpoint difference per pair: where the request's halfway instant
    // fell on each clock. The median shrugs off asymmetric-delay
    // outliers (a chaos-delayed response skews its own pair, not the
    // whole estimate).
    let mut offsets: Vec<i128> = pairs
        .iter()
        .filter_map(|p| {
            let (s_end, s_dur) = (p.server_end_ns?, p.server_dur_ns?);
            let client_mid = i128::from(p.client_end_ns) - i128::from(p.rtt_ns) / 2;
            let server_mid = i128::from(s_end) - i128::from(s_dur) / 2;
            Some(client_mid - server_mid)
        })
        .collect();
    offsets.sort_unstable();
    let clock_offset_ns = offsets.get(offsets.len() / 2).copied().map_or(0, |o| {
        o.clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64
    });

    MergeOutcome {
        pairs,
        client_spans,
        server_spans,
        unpaired_client,
        unpaired_server,
        duplicate_server,
        net_floor_ns,
        clock_offset_ns,
    }
}

/// Sorted-sample percentile (nearest rank on the `q∈[0,1]` scale);
/// `0.0` for an empty sample so report fields stay finite.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Distribution statistics over a sample, every value finite (zeros
/// for an empty sample): mean, worst, min, stddev, ci95, p50, p90, p99.
fn dist(mut xs: Vec<f64>) -> (f64, f64, f64, f64, f64, f64, f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = if xs.len() > 1 {
        xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    let stddev = var.sqrt();
    let ci95 = 1.96 * stddev / n.sqrt();
    (
        mean,
        xs[xs.len() - 1],
        xs[0],
        stddev,
        ci95,
        percentile(&xs, 0.50),
        percentile(&xs, 0.90),
        percentile(&xs, 0.99),
    )
}

/// Render the merged view as a human timeline: one line per request
/// (client order) with the RTT and its server/queue/network split,
/// preceded by a summary header.
pub fn render_merge_timeline(m: &MergeOutcome) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} pairs ({} client spans, {} server spans; {} unpaired client, \
         {} unpaired server, {} duplicate server)\n",
        m.pairs.iter().filter(|p| p.server_dur_ns.is_some()).count(),
        m.client_spans,
        m.server_spans,
        m.unpaired_client,
        m.unpaired_server,
        m.duplicate_server,
    ));
    out.push_str(&format!(
        "net floor {:.1}us, clock offset {}ns (server → client)\n",
        m.net_floor_ns as f64 / 1e3,
        m.clock_offset_ns,
    ));
    if m.pairs.is_empty() {
        out.push_str("(no spans)\n");
        return out;
    }
    let origin = m
        .pairs
        .iter()
        .map(|p| p.client_end_ns - p.rtt_ns.min(p.client_end_ns))
        .min()
        .unwrap_or(0);
    for p in &m.pairs {
        let start_ms = (p.client_end_ns.saturating_sub(p.rtt_ns) - origin) as f64 / 1e6;
        match (p.server_dur_ns, m.queue_ns(p)) {
            (Some(server), Some(queue)) => out.push_str(&format!(
                "{:>12.6}ms  span=0x{:016x} op={} rtt={:>9.1}us  server={:>9.1}us \
                 queue={:>9.1}us net={:>7.1}us\n",
                start_ms,
                p.span,
                p.op,
                p.rtt_ns as f64 / 1e3,
                server as f64 / 1e3,
                queue as f64 / 1e3,
                m.net_floor_ns as f64 / 1e3,
            )),
            _ => out.push_str(&format!(
                "{:>12.6}ms  span=0x{:016x} op={} rtt={:>9.1}us  (no server span)\n",
                start_ms,
                p.span,
                p.op,
                p.rtt_ns as f64 / 1e3,
            )),
        }
    }
    out
}

/// Render the merged view as one JSON object: the summary fields plus a
/// `pairs` array (`span`, `op`, `rtt_ns`, `server_ns` — `null` when
/// unpaired). Hand-rolled like the rest of the repo's JSON.
pub fn render_merge_json(m: &MergeOutcome) -> String {
    let mut out = String::from("{\n");
    let paired = m.pairs.iter().filter(|p| p.server_dur_ns.is_some()).count();
    out.push_str(&format!("  \"pairs\": {paired},\n"));
    out.push_str(&format!("  \"client_spans\": {},\n", m.client_spans));
    out.push_str(&format!("  \"server_spans\": {},\n", m.server_spans));
    out.push_str(&format!("  \"unpaired_client\": {},\n", m.unpaired_client));
    out.push_str(&format!("  \"unpaired_server\": {},\n", m.unpaired_server));
    out.push_str(&format!(
        "  \"duplicate_server\": {},\n",
        m.duplicate_server
    ));
    out.push_str(&format!("  \"net_floor_ns\": {},\n", m.net_floor_ns));
    out.push_str(&format!("  \"clock_offset_ns\": {},\n", m.clock_offset_ns));
    out.push_str("  \"requests\": [");
    for (i, p) in m.pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let server = p
            .server_dur_ns
            .map_or("null".to_string(), |d| d.to_string());
        let queue = m.queue_ns(p).map_or("null".to_string(), |q| q.to_string());
        out.push_str(&format!(
            "\n    {{\"span\":\"0x{:016x}\",\"op\":{},\"client_end_ns\":{},\"rtt_ns\":{},\
             \"server_ns\":{},\"queue_ns\":{}}}",
            p.span, p.op, p.client_end_ns, p.rtt_ns, server, queue
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Build the structurally-gated `BENCH_svc_e2e.json` report from a
/// merge: one `k=0` row whose core statistics are the end-to-end RTT
/// distribution in microseconds, with the latency decomposition and
/// pairing accounting as extras. `trials` is pinned to 0 (pair counts
/// are run-dependent; the *shape* is what the baseline gates), the row
/// is labeled `gate=wall` so timing values only gate under
/// `bench-diff --gate-wall`, and every value is finite even for an
/// empty merge so finiteness flips stay structural failures.
pub fn bench_report(m: &MergeOutcome) -> BenchReport {
    let rtts_us: Vec<f64> = m
        .pairs
        .iter()
        .filter(|p| p.server_dur_ns.is_some())
        .map(|p| p.rtt_ns as f64 / 1e3)
        .collect();
    let servers_us: Vec<f64> = m
        .pairs
        .iter()
        .filter_map(|p| p.server_dur_ns)
        .map(|d| d as f64 / 1e3)
        .collect();
    let queues_us: Vec<f64> = m
        .pairs
        .iter()
        .filter_map(|p| m.queue_ns(p))
        .map(|q| q as f64 / 1e3)
        .collect();
    let paired = rtts_us.len();
    let (mean, worst, min, stddev, ci95, p50, p90, p99) = dist(rtts_us);
    let (_, _, _, _, _, server_p50, _, _) = dist(servers_us);
    let (_, _, _, _, _, queue_p50, _, _) = dist(queues_us);
    let row = BenchRow {
        k: 0,
        trials: 0,
        mean,
        worst,
        min,
        stddev,
        ci95,
        p50,
        p90,
        p99,
        wall_ms: 0.0,
        extra: vec![
            ("pairs".to_string(), paired as f64),
            ("client_spans".to_string(), m.client_spans as f64),
            ("server_spans".to_string(), m.server_spans as f64),
            ("unpaired_client".to_string(), m.unpaired_client as f64),
            ("net_floor_us".to_string(), m.net_floor_ns as f64 / 1e3),
            ("e2e_p50_us".to_string(), p50),
            ("net_p50_us".to_string(), m.net_floor_ns as f64 / 1e3),
            ("server_p50_us".to_string(), server_p50),
            ("queue_p50_us".to_string(), queue_p50),
            ("clock_offset_ns".to_string(), m.clock_offset_ns as f64),
        ],
        labels: vec![
            ("scope".to_string(), "total".to_string()),
            ("gate".to_string(), "wall".to_string()),
        ],
    };
    let mut report = BenchReport::new("svc_e2e", 1);
    report.push(row);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client_span(span: u64, end_ns: u64, rtt_ns: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: end_ns,
            lane: 2,
            ticket: span,
            kind: EventKind::ClientSpan as u32,
            a: 1,
            b: span,
            c: rtt_ns,
        }
    }

    fn server_span(span: u64, end_ns: u64, dur_ns: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: end_ns,
            lane: 2,
            ticket: span,
            kind: EventKind::ServerSpan as u32,
            a: 1,
            b: span,
            c: dur_ns,
        }
    }

    #[test]
    fn pairs_join_on_span_id_and_decompose_latency() {
        // Two requests: 100us and 60us RTTs over 20us and 10us of
        // server work. The lesser slack (50us) is the network floor,
        // so the slower request shows 30us of queueing.
        let client = [
            client_span(7, 1_000_000, 100_000),
            client_span(8, 2_000_000, 60_000),
        ];
        let server = [
            server_span(7, 900_000, 20_000),
            server_span(8, 1_900_000, 10_000),
        ];
        let m = merge_spans(&client, &server);
        assert_eq!(m.client_spans, 2);
        assert_eq!(m.server_spans, 2);
        assert_eq!(m.unpaired_client, 0);
        assert_eq!(m.unpaired_server, 0);
        assert_eq!(m.duplicate_server, 0);
        assert_eq!(m.net_floor_ns, 50_000);
        assert_eq!(m.pairs.len(), 2);
        let slow = m.pairs.iter().find(|p| p.span == 7).unwrap();
        assert_eq!(slow.slack_ns(), Some(80_000));
        assert_eq!(m.queue_ns(slow), Some(30_000));
        let fast = m.pairs.iter().find(|p| p.span == 8).unwrap();
        assert_eq!(m.queue_ns(fast), Some(0));
    }

    #[test]
    fn unpaired_and_duplicate_spans_are_accounted() {
        let client = [client_span(1, 100, 50), client_span(2, 200, 50)];
        let server = [
            server_span(1, 90, 10),
            server_span(1, 95, 10), // duplicate answer for span 1
            server_span(9, 50, 10), // nobody asked
        ];
        let m = merge_spans(&client, &server);
        assert_eq!(m.client_spans, 2);
        assert_eq!(m.server_spans, 3);
        assert_eq!(m.unpaired_client, 1); // span 2
        assert_eq!(m.unpaired_server, 1); // span 9
        assert_eq!(m.duplicate_server, 1);
        // Unpaired client spans still appear in the pair list (RTT-only).
        assert_eq!(m.pairs.len(), 2);
        assert!(m
            .pairs
            .iter()
            .any(|p| p.span == 2 && p.server_dur_ns.is_none()));
    }

    #[test]
    fn non_span_events_and_span_zero_are_ignored() {
        let noise = TraceEvent {
            ts_ns: 1,
            lane: 0,
            ticket: 0,
            kind: EventKind::Accept as u32,
            a: 1,
            b: 5,
            c: 0,
        };
        let zero = TraceEvent {
            b: 0,
            ..client_span(0, 100, 50)
        };
        let m = merge_spans(&[noise, zero], &[noise]);
        assert_eq!(m.client_spans, 0);
        assert_eq!(m.server_spans, 0);
        assert!(m.pairs.is_empty());
        assert_eq!(m.net_floor_ns, 0);
        assert_eq!(m.clock_offset_ns, 0);
    }

    #[test]
    fn clock_offset_is_the_median_midpoint_difference() {
        // Server clock runs 1ms behind the client clock; symmetric
        // network, so every pair's midpoint difference is exactly 1ms.
        let client = [
            client_span(1, 2_000_000, 100_000),
            client_span(2, 3_000_000, 100_000),
            client_span(3, 4_000_000, 100_000),
        ];
        let server = [
            server_span(1, 990_000, 80_000),
            server_span(2, 1_990_000, 80_000),
            server_span(3, 2_990_000, 80_000),
        ];
        let m = merge_spans(&client, &server);
        // client mid = end − 50_000, server mid = end − 40_000, and the
        // server ends sit 1_010_000ns earlier: every pair says 1ms.
        assert_eq!(m.clock_offset_ns, 1_000_000);
    }

    #[test]
    fn renderers_cover_summary_and_requests() {
        let client = [
            client_span(7, 1_000_000, 100_000),
            client_span(9, 1_100_000, 70_000),
        ];
        let server = [server_span(7, 900_000, 20_000)];
        let m = merge_spans(&client, &server);
        let text = render_merge_timeline(&m);
        assert!(text.contains("1 pairs"), "{text}");
        assert!(text.contains("span=0x0000000000000007"));
        assert!(text.contains("(no server span)"));
        let json = render_merge_json(&m);
        assert!(json.contains("\"pairs\": 1"));
        assert!(json.contains("\"span\":\"0x0000000000000009\""));
        assert!(json.contains("\"server_ns\":null"));
        let empty = merge_spans(&[], &[]);
        assert!(render_merge_timeline(&empty).contains("(no spans)"));
        assert!(render_merge_json(&empty).contains("\"requests\": [\n  ]"));
    }

    #[test]
    fn bench_report_shape_is_pinned_and_finite() {
        let client = [client_span(7, 1_000_000, 100_000)];
        let server = [server_span(7, 900_000, 20_000)];
        for m in [merge_spans(&client, &server), merge_spans(&[], &[])] {
            let report = bench_report(&m);
            assert_eq!(report.name(), "svc_e2e");
            assert_eq!(report.rows().len(), 1);
            let row = &report.rows()[0];
            assert_eq!(row.k, 0);
            assert_eq!(row.trials, 0);
            assert_eq!(
                row.labels,
                vec![
                    ("scope".to_string(), "total".to_string()),
                    ("gate".to_string(), "wall".to_string()),
                ]
            );
            let extras: Vec<&str> = row.extra.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(
                extras,
                [
                    "pairs",
                    "client_spans",
                    "server_spans",
                    "unpaired_client",
                    "net_floor_us",
                    "e2e_p50_us",
                    "net_p50_us",
                    "server_p50_us",
                    "queue_p50_us",
                    "clock_offset_ns",
                ]
            );
            for (name, v) in row.metrics() {
                assert!(v.is_finite(), "{name} not finite");
            }
            for (name, v) in &row.extra {
                assert!(v.is_finite(), "{name} not finite");
            }
        }
        let report = bench_report(&merge_spans(&client, &server));
        let row = &report.rows()[0];
        assert_eq!(row.p50, 100.0); // 100_000ns RTT in us
        assert_eq!(row.extra[0].1, 1.0); // one pair
    }
}
