//! The metrics plane: typed counters, gauges, and lock-free log-bin
//! latency histograms behind a named [`Registry`].
//!
//! Unlike the flight recorder, the metrics plane is **always on**:
//! every instrument is a relaxed atomic (or an array of them), cheap
//! enough to keep lit on the hot path, and sweeping a snapshot never
//! stops writers. [`Histogram`] reuses the exact
//! [`rtas_bench::stats`] log-bin scheme ([`BINS`] bins, `bin_index` /
//! `bin_midpoint`), so its quantiles carry the same ±6.25% relative
//! error contract as every BENCH report in this repo.
//!
//! [`Registry::render`] produces the versioned key/value text served by
//! the `METRICS` wire opcode:
//!
//! ```text
//! rtas-metrics/2
//! reactor.wake_writes 42
//! stage.read_ns.count 1200
//! stage.read_ns.p50 1834.2
//! ...
//! ```
//!
//! One `<name> <value>` pair per line, names sorted, values plain
//! decimal — trivially parseable by `rtas-load`'s scraper and by
//! humans.

use rtas_bench::stats::{bin_index, bin_midpoint, BINS};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level that can move both ways (live connections,
/// timer-wheel occupancy).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Set the level outright.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the level by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Lower the level by `n` (saturating at zero).
    pub fn sub(&self, n: u64) {
        // fetch_update loops only under contention on the same gauge.
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free latency histogram over the shared
/// [`rtas_bench::stats`] log-bin layout.
///
/// Values are whatever unit the caller names the metric with (this repo
/// records nanoseconds and suffixes names `_ns`). Non-finite or
/// non-positive observations land in bin 0 — they are measurement
/// noise (clock quirks), not data worth a panic on the hot path.
#[derive(Debug)]
pub struct Histogram {
    bins: Box<[AtomicU64]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram ([`BINS`] zeroed bins).
    pub fn new() -> Self {
        let bins: Vec<AtomicU64> = (0..BINS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bins: bins.into_boxed_slice(),
        }
    }

    /// Record one observation.
    pub fn record(&self, v: f64) {
        let idx = if v.is_finite() && v > 0.0 {
            bin_index(v)
        } else {
            0
        };
        self.bins[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.bins.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Nearest-rank quantile estimate (bin midpoint; ±6.25% relative).
    /// `0.0` when empty; `q` outside `[0, 1]` panics.
    ///
    /// The sweep is a racy-but-consistent-enough read: each bin load is
    /// atomic, so a concurrent recorder can shift the rank by at most
    /// the writes in flight during the sweep.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        let counts: Vec<u64> = self
            .bins
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (idx, &n) in counts.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return bin_midpoint(idx);
            }
        }
        bin_midpoint(BINS - 1)
    }
}

/// One registered instrument.
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of instruments that renders the `rtas-metrics/2`
/// text exposition.
///
/// Registration takes the only lock in the plane (a `Mutex` over the
/// name table) and happens at setup time; the instruments themselves
/// are `Arc`s the hot path updates lock-free. Registering a name twice
/// returns the existing instrument (or panics if the kinds disagree —
/// that is a wiring bug).
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<(String, Metric)>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let entries = self.entries.lock().unwrap();
        f.debug_struct("Registry")
            .field("len", &entries.len())
            .finish_non_exhaustive()
    }
}

/// Exposition format version line. Version 2 added the `svc.uptime_secs`
/// gauge and per-lane `trace.<lane>.dropped_events` counters; the line
/// grammar is unchanged, so [`parse_metrics`] accepts both versions.
pub const METRICS_HEADER: &str = "rtas-metrics/2";

/// The previous exposition version line, still accepted by
/// [`parse_metrics`] so new scrapers can read old servers.
pub const METRICS_HEADER_V1: &str = "rtas-metrics/1";

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register<T>(
        &self,
        name: &str,
        pick: impl Fn(&Metric) -> Option<Arc<T>>,
        make: impl FnOnce() -> (Arc<T>, Metric),
    ) -> Arc<T> {
        let mut entries = self.entries.lock().unwrap();
        if let Some((_, m)) = entries.iter().find(|(n, _)| n == name) {
            return pick(m)
                .unwrap_or_else(|| panic!("metric {name:?} re-registered as a different kind"));
        }
        let (handle, metric) = make();
        entries.push((name.to_string(), metric));
        handle
    }

    /// Register (or fetch) the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.register(
            name,
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
            || {
                let c = Arc::new(Counter::new());
                (Arc::clone(&c), Metric::Counter(c))
            },
        )
    }

    /// Register (or fetch) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.register(
            name,
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
            || {
                let g = Arc::new(Gauge::new());
                (Arc::clone(&g), Metric::Gauge(g))
            },
        )
    }

    /// Register (or fetch) the histogram `name`. Renders as four lines:
    /// `<name>.count`, `<name>.p50`, `<name>.p90`, `<name>.p99`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.register(
            name,
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
            || {
                let h = Arc::new(Histogram::new());
                (Arc::clone(&h), Metric::Histogram(h))
            },
        )
    }

    /// Append every instrument's `<name> <value>` lines to `out`,
    /// sorted by name. (The caller writes the [`METRICS_HEADER`] and
    /// any namespace-level lines first.)
    pub fn render_into(&self, out: &mut String) {
        let entries = self.entries.lock().unwrap();
        let mut lines: Vec<String> = Vec::with_capacity(entries.len() * 2);
        for (name, metric) in entries.iter() {
            match metric {
                Metric::Counter(c) => lines.push(format!("{name} {}", c.get())),
                Metric::Gauge(g) => lines.push(format!("{name} {}", g.get())),
                Metric::Histogram(h) => {
                    lines.push(format!("{name}.count {}", h.count()));
                    lines.push(format!("{name}.p50 {:.1}", h.quantile(0.50)));
                    lines.push(format!("{name}.p90 {:.1}", h.quantile(0.90)));
                    lines.push(format!("{name}.p99 {:.1}", h.quantile(0.99)));
                }
            }
        }
        lines.sort();
        for line in lines {
            out.push_str(&line);
            out.push('\n');
        }
    }

    /// The full exposition: header line plus [`Registry::render_into`].
    pub fn render(&self) -> String {
        let mut out = String::from(METRICS_HEADER);
        out.push('\n');
        self.render_into(&mut out);
        out
    }
}

/// Parse an `rtas-metrics/1` or `rtas-metrics/2` exposition into
/// `(name, value)` pairs. Returns `None` if the header is missing or
/// any line is malformed — scrapers treat that as "server too old /
/// garbled" and skip extras.
pub fn parse_metrics(text: &str) -> Option<Vec<(String, f64)>> {
    let mut lines = text.lines();
    let header = lines.next()?;
    if header != METRICS_HEADER && header != METRICS_HEADER_V1 {
        return None;
    }
    let mut out = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(' ')?;
        let value: f64 = value.parse().ok()?;
        if name.is_empty() || !value.is_finite() {
            return None;
        }
        out.push((name.to_string(), value));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_do_arithmetic() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.set(10);
        g.add(3);
        g.sub(5);
        assert_eq!(g.get(), 8);
        g.sub(100); // saturates
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_quantiles_track_the_bench_bins() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        for v in 1..=1000 {
            h.record(v as f64);
        }
        assert_eq!(h.count(), 1000);
        for (q, exact) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
            let est = h.quantile(q);
            let rel = (est - exact).abs() / exact;
            assert!(rel < 0.08, "q={q}: est {est} vs exact {exact}");
        }
    }

    #[test]
    fn histogram_floors_junk_observations() {
        let h = Histogram::new();
        h.record(0.0);
        h.record(-3.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 4);
        // Everything landed in bin 0 — the p50 is the first midpoint.
        assert_eq!(h.quantile(0.5), bin_midpoint(0));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn histogram_quantile_out_of_range_panics() {
        Histogram::new().quantile(2.0);
    }

    #[test]
    fn registry_renders_sorted_and_is_idempotent() {
        let reg = Registry::new();
        let c = reg.counter("reactor.wake_writes");
        let g = reg.gauge("reactor.worker0.slab_live");
        let h = reg.histogram("stage.read_ns");
        c.add(42);
        g.set(7);
        h.record(1500.0);
        // Re-registration hands back the same instrument.
        reg.counter("reactor.wake_writes").inc();
        assert_eq!(c.get(), 43);

        let text = reg.render();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some(METRICS_HEADER));
        let rest: Vec<&str> = lines.collect();
        let mut sorted = rest.clone();
        sorted.sort();
        assert_eq!(rest, sorted, "body must be name-sorted");
        assert!(text.contains("reactor.wake_writes 43\n"));
        assert!(text.contains("reactor.worker0.slab_live 7\n"));
        assert!(text.contains("stage.read_ns.count 1\n"));
        assert!(text.contains("stage.read_ns.p50 "));
        assert!(text.contains("stage.read_ns.p99 "));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("x");
        let _ = reg.gauge("x");
    }

    #[test]
    fn exposition_parses_back() {
        let reg = Registry::new();
        reg.counter("a.count").add(3);
        reg.histogram("lat_ns").record(100.0);
        let text = reg.render();
        let pairs = parse_metrics(&text).expect("well-formed");
        assert!(pairs.iter().any(|(n, v)| n == "a.count" && *v == 3.0));
        assert!(pairs.iter().any(|(n, v)| n == "lat_ns.count" && *v == 1.0));
        assert!(pairs.iter().any(|(n, _)| n == "lat_ns.p90"));

        // Old servers still speak version 1; the scraper must accept it.
        let v1 = text.replacen(METRICS_HEADER, METRICS_HEADER_V1, 1);
        assert_eq!(parse_metrics(&v1), Some(pairs.clone()));

        assert_eq!(parse_metrics(""), None);
        assert_eq!(parse_metrics("wrong/1\na 1\n"), None);
        assert_eq!(parse_metrics("rtas-metrics/3\na 1\n"), None);
        assert_eq!(parse_metrics(&format!("{METRICS_HEADER}\nnovalue\n")), None);
        assert_eq!(
            parse_metrics(&format!("{METRICS_HEADER}\na notanumber\n")),
            None
        );
        assert_eq!(parse_metrics(&format!("{METRICS_HEADER}\na inf\n")), None);
    }
}
