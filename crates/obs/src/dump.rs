//! Decoder and renderers for `RTASTRC1` flight-recorder dumps.
//!
//! [`decode_dump`] parses the binary format written by
//! [`FlightRecorder::write_dump`](crate::FlightRecorder::write_dump)
//! into a [`TraceDump`]; [`TraceDump::merged`] flattens it into one
//! time-sorted event list; [`render_timeline`] and [`render_json`] turn
//! that list into a human-readable timeline or a JSON array for
//! machines. `rtas-svc trace-dump <file> [--json]` is the CLI front end
//! for all three.

use crate::event::{lane_name, EventKind, TraceEvent};
use std::io;

/// Dump-file magic: `RTASTRC` plus the format generation digit.
pub const MAGIC: &[u8; 8] = b"RTASTRC1";

/// Bytes per event record in a dump file.
const RECORD_BYTES: usize = 40;

/// One lane's events as decoded from a dump file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneDump {
    /// The lane id (see [`lane_name`]).
    pub lane: u32,
    /// Events the recorder discarded on this lane (disabled ring or
    /// claim races), for gauging how lossy the window was.
    pub dropped: u64,
    /// The lane's retained events, oldest ticket first.
    pub events: Vec<TraceEvent>,
}

/// A fully decoded dump: every lane the recorder wrote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDump {
    /// Format version from the header (currently always 1).
    pub version: u32,
    /// The decoded lanes, in file order.
    pub lanes: Vec<LaneDump>,
}

impl TraceDump {
    /// All events across lanes, sorted by timestamp (ties broken by
    /// lane then ticket) — the timeline order.
    pub fn merged(&self) -> Vec<TraceEvent> {
        let mut out: Vec<TraceEvent> = self
            .lanes
            .iter()
            .flat_map(|l| l.events.iter().copied())
            .collect();
        out.sort_by_key(|e| (e.ts_ns, e.lane, e.ticket));
        out
    }

    /// Total dropped-event count across lanes.
    pub fn dropped(&self) -> u64 {
        self.lanes.iter().map(|l| l.dropped).sum()
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| bad("trace dump truncated"))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Parse a complete `RTASTRC1` dump. Fails with `InvalidData` on a bad
/// magic, an unknown version, a truncated file, or trailing garbage.
pub fn decode_dump(bytes: &[u8]) -> io::Result<TraceDump> {
    let mut cur = Cursor { bytes, pos: 0 };
    if cur.take(8)? != MAGIC {
        return Err(bad("not an RTASTRC1 trace dump (bad magic)"));
    }
    let version = cur.u32()?;
    if version != 1 {
        return Err(bad(format!("unsupported trace dump version {version}")));
    }
    let lane_count = cur.u32()?;
    let mut lanes = Vec::with_capacity(lane_count as usize);
    for _ in 0..lane_count {
        let lane = cur.u32()?;
        let _reserved = cur.u32()?;
        let dropped = cur.u64()?;
        let count = cur.u64()?;
        let need = (count as usize)
            .checked_mul(RECORD_BYTES)
            .ok_or_else(|| bad("trace dump lane count overflows"))?;
        if cur.bytes.len() - cur.pos < need {
            return Err(bad("trace dump truncated inside a lane"));
        }
        let mut events = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let ticket = cur.u64()?;
            let ts_ns = cur.u64()?;
            let kind = cur.u32()?;
            let a = cur.u32()?;
            let b = cur.u64()?;
            let c = cur.u64()?;
            events.push(TraceEvent {
                ts_ns,
                lane,
                ticket,
                kind,
                a,
                b,
                c,
            });
        }
        lanes.push(LaneDump {
            lane,
            dropped,
            events,
        });
    }
    if cur.pos != cur.bytes.len() {
        return Err(bad("trailing bytes after trace dump"));
    }
    Ok(TraceDump { version, lanes })
}

/// Re-encode a decoded dump back into `RTASTRC1` bytes. Inverse of
/// [`decode_dump`]: for any dump a recorder wrote,
/// `encode_dump(&decode_dump(bytes)?) == bytes`, so tools can rewrite
/// dumps (filter lanes, merge files) without a recorder in hand.
pub fn encode_dump(dump: &TraceDump) -> Vec<u8> {
    let records: usize = dump.lanes.iter().map(|l| l.events.len()).sum();
    let mut out = Vec::with_capacity(16 + dump.lanes.len() * 24 + records * RECORD_BYTES);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&dump.version.to_le_bytes());
    out.extend_from_slice(&(dump.lanes.len() as u32).to_le_bytes());
    for lane in &dump.lanes {
        out.extend_from_slice(&lane.lane.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&lane.dropped.to_le_bytes());
        out.extend_from_slice(&(lane.events.len() as u64).to_le_bytes());
        for e in &lane.events {
            out.extend_from_slice(&e.ticket.to_le_bytes());
            out.extend_from_slice(&e.ts_ns.to_le_bytes());
            out.extend_from_slice(&e.kind.to_le_bytes());
            out.extend_from_slice(&e.a.to_le_bytes());
            out.extend_from_slice(&e.b.to_le_bytes());
            out.extend_from_slice(&e.c.to_le_bytes());
        }
    }
    out
}

/// Per-kind argument rendering: field names make the timeline readable;
/// unknown kinds fall back to raw `a/b/c`.
fn describe(e: &TraceEvent) -> String {
    match e.kind() {
        Some(EventKind::Accept) => format!("live={}", e.a),
        Some(EventKind::AdmissionRefusal) => format!("live={}", e.a),
        Some(EventKind::ReadinessWakeup) => format!("ready={}", e.a),
        Some(EventKind::FrameDecoded) => format!("op={} len={}", e.a, e.b),
        Some(EventKind::ArbiterVerdict) => {
            format!("won={} epoch={} key=0x{:016x}", e.a, e.b, e.c)
        }
        Some(EventKind::ResetAck) => format!("epoch={} key=0x{:016x}", e.b, e.c),
        Some(EventKind::LeaseReclaim) => format!("epoch={} key=0x{:016x}", e.b, e.c),
        Some(EventKind::BackpressureOn) => format!("slot={} buffered={}", e.a, e.b),
        Some(EventKind::BackpressureOff) => format!("slot={}", e.a),
        Some(EventKind::TimerSweep) => format!("due={} remaining={}", e.a, e.b),
        Some(EventKind::ServerSpan) => {
            format!("op={} span=0x{:016x} dur={}ns", e.a, e.b, e.c)
        }
        Some(EventKind::ClientSpan) => {
            format!("op={} span=0x{:016x} rtt={}ns", e.a, e.b, e.c)
        }
        None => format!("a={} b={} c={}", e.a, e.b, e.c),
    }
}

fn kind_label(e: &TraceEvent) -> String {
    match e.kind() {
        Some(k) => k.name().to_string(),
        None => format!("kind-{}", e.kind),
    }
}

/// Render events (pass them timeline-sorted, e.g. from
/// [`TraceDump::merged`]) as a human-readable timeline, one event per
/// line: relative milliseconds, lane, kind, per-kind fields.
pub fn render_timeline(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    if events.is_empty() {
        out.push_str("(empty trace)\n");
        return out;
    }
    let origin = events.iter().map(|e| e.ts_ns).min().unwrap_or(0);
    for e in events {
        let rel_ms = (e.ts_ns - origin) as f64 / 1e6;
        out.push_str(&format!(
            "{:>12.6}ms  {:<10} {:<18} {}\n",
            rel_ms,
            lane_name(e.lane),
            kind_label(e),
            describe(e)
        ));
    }
    out
}

/// Render events as a JSON array of objects (`ts_ns`, `lane`, `ticket`,
/// `kind`, `a`, `b`, `c`). Hand-rolled — every field is numeric or a
/// fixed kebab-case name, so no escaping is needed.
pub fn render_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"ts_ns\":{},\"lane\":\"{}\",\"ticket\":{},\"kind\":\"{}\",\"a\":{},\"b\":{},\"c\":{}}}",
            e.ts_ns,
            lane_name(e.lane),
            e.ticket,
            kind_label(e),
            e.a,
            e.b,
            e.c
        ));
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Lane;
    use crate::recorder::{FlightRecorder, TraceMode};

    fn sample_recorder() -> FlightRecorder {
        let rec = FlightRecorder::new(TraceMode::On, 2);
        rec.record(Lane::Accept, EventKind::Accept, 1, 0, 0);
        rec.record(Lane::Worker(0), EventKind::FrameDecoded, 1, 14, 0);
        rec.record(Lane::Worker(0), EventKind::ArbiterVerdict, 1, 3, 0xabc);
        rec.record(Lane::Worker(1), EventKind::BackpressureOn, 7, 512, 0);
        rec.record(Lane::Reclaim, EventKind::LeaseReclaim, 0, 4, 0xdef);
        rec
    }

    #[test]
    fn dumps_round_trip_through_the_codec() {
        let rec = sample_recorder();
        let mut bytes = Vec::new();
        rec.write_dump(&mut bytes).unwrap();
        let dump = decode_dump(&bytes).unwrap();
        assert_eq!(dump.version, 1);
        assert_eq!(dump.lanes.len(), 4); // accept, reclaim, 2 workers
        assert_eq!(dump.dropped(), 0);
        let merged = dump.merged();
        assert_eq!(merged.len(), 5);
        assert_eq!(merged, rec.snapshot());
        assert!(merged.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn encode_is_the_byte_identical_inverse_of_decode() {
        let rec = sample_recorder();
        let mut bytes = Vec::new();
        rec.write_dump(&mut bytes).unwrap();
        let dump = decode_dump(&bytes).unwrap();
        assert_eq!(encode_dump(&dump), bytes);
        // Synthetic dumps (unknown kinds, nonzero drop counts) survive
        // a decode→encode→decode cycle too.
        let synthetic = TraceDump {
            version: 1,
            lanes: vec![LaneDump {
                lane: 7,
                dropped: 123,
                events: vec![TraceEvent {
                    ts_ns: 5,
                    lane: 7,
                    ticket: 9,
                    kind: 99,
                    a: 1,
                    b: 2,
                    c: 3,
                }],
            }],
        };
        let enc = encode_dump(&synthetic);
        assert_eq!(decode_dump(&enc).unwrap(), synthetic);
        assert_eq!(encode_dump(&decode_dump(&enc).unwrap()), enc);
    }

    #[test]
    fn truncated_dumps_never_panic_and_report_the_cut() {
        let rec = sample_recorder();
        let mut bytes = Vec::new();
        rec.write_dump(&mut bytes).unwrap();
        // Every proper prefix must decode to a clean InvalidData error,
        // never a panic or a silently-empty success.
        for len in 0..bytes.len() {
            let err = decode_dump(&bytes[..len]).expect_err("prefix decoded");
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        }
        // A lane header claiming more records than the file holds is
        // the classic torn-write shape; it must be caught up front.
        let mut lying = bytes.clone();
        let count_off = 8 + 4 + 4 + 4 + 4 + 8; // first lane's count field
        lying[count_off..count_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_dump(&lying).is_err());
    }

    #[test]
    fn span_kinds_render_with_span_ids() {
        let events = [
            TraceEvent {
                ts_ns: 10,
                lane: 2,
                ticket: 0,
                kind: EventKind::ServerSpan as u32,
                a: 1,
                b: 0xabc,
                c: 1500,
            },
            TraceEvent {
                ts_ns: 20,
                lane: 0,
                ticket: 1,
                kind: EventKind::ClientSpan as u32,
                a: 1,
                b: 0xabc,
                c: 9000,
            },
        ];
        let timeline = render_timeline(&events);
        assert!(timeline.contains("server-span"));
        assert!(timeline.contains("client-span"));
        assert!(timeline.contains("span=0x0000000000000abc"));
        assert!(timeline.contains("dur=1500ns"));
        assert!(timeline.contains("rtt=9000ns"));
        let json = render_json(&events);
        assert!(json.contains("\"kind\":\"server-span\""));
        assert!(json.contains("\"kind\":\"client-span\""));
    }

    #[test]
    fn corrupt_dumps_are_rejected() {
        let rec = sample_recorder();
        let mut bytes = Vec::new();
        rec.write_dump(&mut bytes).unwrap();

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(decode_dump(&bad_magic).is_err());

        let mut bad_version = bytes.clone();
        bad_version[8] = 9;
        assert!(decode_dump(&bad_version).is_err());

        assert!(decode_dump(&bytes[..bytes.len() - 1]).is_err());

        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode_dump(&trailing).is_err());

        assert!(decode_dump(b"").is_err());
    }

    #[test]
    fn timeline_and_json_render_every_event() {
        let rec = sample_recorder();
        let events = rec.snapshot();
        let timeline = render_timeline(&events);
        assert_eq!(timeline.lines().count(), events.len());
        for needle in [
            "accept",
            "frame-decoded",
            "arbiter-verdict",
            "backpressure-on",
            "lease-reclaim",
            "key=0x0000000000000def",
            "worker1",
        ] {
            assert!(timeline.contains(needle), "timeline missing {needle:?}");
        }
        let json = render_json(&events);
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert_eq!(json.matches("\"ts_ns\":").count(), events.len());
        assert!(json.contains("\"kind\":\"lease-reclaim\""));

        assert_eq!(render_timeline(&[]), "(empty trace)\n");
        assert_eq!(render_json(&[]), "[\n]\n");
    }

    #[test]
    fn unknown_kinds_render_generically() {
        let e = TraceEvent {
            ts_ns: 10,
            lane: 0,
            ticket: 0,
            kind: 99,
            a: 1,
            b: 2,
            c: 3,
        };
        let line = render_timeline(&[e]);
        assert!(line.contains("kind-99"));
        assert!(line.contains("a=1 b=2 c=3"));
    }
}
