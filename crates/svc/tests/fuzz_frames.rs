//! Protocol robustness property test: random truncations and byte
//! mutations of valid request frames must always yield an `ERR` (or a
//! silent close), never a server panic — and never a *phantom*
//! `Acquired`: a verdict can only ever answer a byte sequence that
//! still frames a valid `TAS`/`ELECT` request.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use rtas::sim::rng::SplitMix64;
use rtas::Backend;
use rtas_svc::protocol::{decode_request, decode_response, frame_request, Op, MAX_PAYLOAD};
use rtas_svc::server::SvcConfig;
use rtas_svc::{Client, ConnGauges, ConnStatus, Connection, Namespace, Response, Server};

/// Replay the server's framing over `bytes`: how many complete frames
/// decode as valid `TAS`/`ELECT` requests before the stream dies
/// (an oversized length header kills it; a decode error only kills the
/// frame). This is the ceiling on legitimate `Acquired` responses.
fn max_legitimate_verdicts(bytes: &[u8]) -> usize {
    let mut verdicts = 0;
    let mut rest = bytes;
    while rest.len() >= 4 {
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        if len > MAX_PAYLOAD {
            break; // ERR + close
        }
        if rest.len() < 4 + len {
            break; // incomplete frame: the server sees EOF mid-payload
        }
        let payload = &rest[4..4 + len];
        if let Ok(req) = decode_request(payload) {
            if matches!(req.op, Op::Tas | Op::Elect) && !req.key.is_empty() {
                verdicts += 1;
            }
        }
        rest = &rest[4 + len..];
    }
    verdicts
}

#[test]
fn mutated_frames_never_panic_the_server_or_fake_a_verdict() {
    let srv = Server::spawn(SvcConfig {
        shards: 2,
        capacity: 4,
        read_timeout: Some(Duration::from_secs(2)),
        ..SvcConfig::default()
    })
    .expect("bind loopback");
    let addr = srv.addr();
    let mut rng = SplitMix64::new(0xF0_5A_11);

    for trial in 0..300u64 {
        // A valid frame: random op over a trial-unique key (unique so
        // a mutated-but-valid frame never trips kind mismatches into
        // the accounting below).
        let op = match rng.next_below(3) {
            0 => Op::Tas,
            1 => Op::Elect,
            _ => Op::Reset,
        };
        let key = format!("fuzz/{trial}").into_bytes();
        let mut frame = Vec::new();
        frame_request(op, &key, &mut frame);

        // One random mutation: truncate, flip a byte, or rewrite the
        // length header.
        match rng.next_below(3) {
            0 => frame.truncate(rng.next_below(frame.len() as u64) as usize),
            1 => {
                let i = rng.next_below(frame.len() as u64) as usize;
                frame[i] ^= 1 << rng.next_below(8);
            }
            _ => {
                let bogus = rng.next_below(2 * MAX_PAYLOAD as u64) as u32;
                frame[..4].copy_from_slice(&bogus.to_le_bytes());
            }
        }

        let mut raw = TcpStream::connect(addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // The server may slam the connection shut mid-write (an
        // oversized length header is answered and closed immediately),
        // so the write and the half-close both race a reset — a dead
        // connection is a legitimate outcome, not a test failure.
        let _ = raw.write_all(&frame);
        let _ = raw.shutdown(Shutdown::Write);
        let mut answer = Vec::new();
        if raw.read_to_end(&mut answer).is_err() {
            // Connection reset under us: nothing was answered; the
            // liveness check at the end still covers this trial.
            continue;
        }

        // Every complete response frame must decode; verdicts are
        // bounded by the byte stream's legitimate requests.
        let budget = max_legitimate_verdicts(&frame);
        let mut verdicts = 0;
        let mut rest = &answer[..];
        while rest.len() >= 4 {
            let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
            assert!(
                rest.len() >= 4 + len,
                "trial {trial}: server wrote a torn response frame"
            );
            let resp = decode_response(&rest[4..4 + len])
                .unwrap_or_else(|e| panic!("trial {trial}: undecodable response: {e}"));
            if matches!(resp, Response::Acquired(_)) {
                verdicts += 1;
            }
            rest = &rest[4 + len..];
        }
        assert!(rest.is_empty(), "trial {trial}: trailing response bytes");
        assert!(
            verdicts <= budget,
            "trial {trial}: {verdicts} verdict(s) for {budget} legitimate \
             request(s) — phantom Acquired"
        );
    }

    // The server shrugged all 300 mutations off: a fresh client works.
    let mut client = Client::connect(addr).unwrap();
    assert!(client.tas(b"alive-after-fuzz").unwrap().won);
    srv.shutdown();
}

/// Decode every complete response frame in `bytes`, panicking (with
/// `label` context) on torn or undecodable frames.
fn decode_responses(bytes: &[u8], label: &str) -> Vec<Response> {
    let mut out = Vec::new();
    let mut rest = bytes;
    while rest.len() >= 4 {
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        assert!(rest.len() >= 4 + len, "{label}: torn response frame");
        out.push(
            decode_response(&rest[4..4 + len])
                .unwrap_or_else(|e| panic!("{label}: undecodable response: {e}")),
        );
        rest = &rest[4 + len..];
    }
    assert!(rest.is_empty(), "{label}: trailing response bytes");
    out
}

#[test]
fn mutated_frames_never_panic_the_connection_state_machine() {
    // The same 300-mutation property, driven straight through the
    // `Connection` state machine with no TCP in the loop: whatever the
    // bytes, ingest must not panic, every response it frames must
    // decode, and verdicts stay bounded by the byte stream's legitimate
    // requests (no phantom `Acquired`). A framing violation must
    // poison the connection (`Closed`), after which further bytes are
    // ignored.
    let ns = Namespace::new(Backend::Combined, 2, 4);
    let gauges = ConnGauges::default();
    let mut rng = SplitMix64::new(0xC0_44_EC);

    for trial in 0..300u64 {
        let op = match rng.next_below(3) {
            0 => Op::Tas,
            1 => Op::Elect,
            _ => Op::Reset,
        };
        let key = format!("fuzz-conn/{trial}").into_bytes();
        let mut bytes = Vec::new();
        frame_request(op, &key, &mut bytes);
        match rng.next_below(3) {
            0 => bytes.truncate(rng.next_below(bytes.len() as u64) as usize),
            1 => {
                let i = rng.next_below(bytes.len() as u64) as usize;
                bytes[i] ^= 1 << rng.next_below(8);
            }
            _ => {
                let bogus = rng.next_below(2 * MAX_PAYLOAD as u64) as u32;
                bytes[..4].copy_from_slice(&bogus.to_le_bytes());
            }
        }

        let budget = max_legitimate_verdicts(&bytes);
        let mut conn = Connection::new();
        // Feed the mutated stream in random chunk sizes — partial
        // frames must carry across ingest calls exactly like partial
        // reads on a socket.
        let mut status = ConnStatus::Open;
        let mut fed = 0;
        while fed < bytes.len() {
            let take = 1 + rng.next_below((bytes.len() - fed) as u64) as usize;
            status = conn.ingest(&bytes[fed..fed + take], &ns, &gauges);
            fed += take;
        }
        let verdicts = decode_responses(conn.output(), &format!("trial {trial}"))
            .iter()
            .filter(|r| matches!(r, Response::Acquired(_)))
            .count();
        assert!(
            verdicts <= budget,
            "trial {trial}: {verdicts} verdict(s) for {budget} legitimate \
             request(s) — phantom Acquired"
        );
        if status == ConnStatus::Closed {
            // Poisoned: further bytes (even a valid frame) are ignored.
            let mut valid = Vec::new();
            frame_request(Op::Tas, b"after-poison", &mut valid);
            let before = conn.output().len();
            assert_eq!(conn.ingest(&valid, &ns, &gauges), ConnStatus::Closed);
            assert_eq!(
                conn.output().len(),
                before,
                "trial {trial}: poisoned conn answered"
            );
        }
    }

    // The shared namespace shrugged all 300 mutated streams off.
    let mut conn = Connection::new();
    let mut frame = Vec::new();
    frame_request(Op::Tas, b"alive-after-conn-fuzz", &mut frame);
    assert_eq!(conn.ingest(&frame, &ns, &gauges), ConnStatus::Open);
    match decode_responses(conn.output(), "liveness").as_slice() {
        [Response::Acquired(a)] => assert!(a.won),
        other => panic!("expected one verdict, got {other:?}"),
    }
}

#[test]
fn pipeline_burst_rejoined_in_random_chunks_is_bit_identical() {
    // A multi-frame pipelined burst split at random chunk boundaries
    // and re-ingested must produce byte-for-byte the responses of the
    // whole burst ingested at once — the incremental decoder cannot
    // care where the reads land.
    let burst = {
        let mut b = Vec::new();
        for i in 0..24 {
            frame_request(Op::Tas, format!("rejoin/{}", i % 3).as_bytes(), &mut b);
        }
        frame_request(Op::Reset, b"rejoin/0", &mut b);
        frame_request(Op::Stats, b"", &mut b);
        b
    };

    // Reference: one shot on a fresh namespace.
    let reference = {
        let ns = Namespace::new(Backend::Combined, 2, 32);
        let gauges = ConnGauges::default();
        let mut conn = Connection::new();
        assert_eq!(conn.ingest(&burst, &ns, &gauges), ConnStatus::Open);
        conn.output().to_vec()
    };

    let mut rng = SplitMix64::new(0x5EED_C4A9);
    for round in 0..50 {
        let ns = Namespace::new(Backend::Combined, 2, 32);
        let gauges = ConnGauges::default();
        let mut conn = Connection::new();
        let mut fed = 0;
        while fed < burst.len() {
            let take = 1 + rng.next_below((burst.len() - fed) as u64) as usize;
            assert_eq!(
                conn.ingest(&burst[fed..fed + take], &ns, &gauges),
                ConnStatus::Open
            );
            fed += take;
        }
        assert_eq!(
            conn.output(),
            &reference[..],
            "round {round}: chunked ingest diverged from the one-shot burst"
        );
    }
}
