//! Allocation accounting for the namespace's steady-state op path.
//!
//! The service claim is "zero steady-state *arena* allocations": once a
//! key exists, the acquire → finish → reset cycle through the keyed
//! namespace must allocate **exactly** as much as driving the bare
//! recyclable object does — i.e. the namespace machinery (shard lookup,
//! `Arc` clone, epoch gate, counters) adds *zero* allocations on top of
//! the protocol state machines. Both sides draw the same deterministic
//! per-(slot, epoch) coin streams, so their allocation counts are
//! comparable exactly, not just bounded.
//!
//! Everything runs in ONE test function: the default test harness runs
//! `#[test]` functions concurrently, and a second thread would pollute
//! the global counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rtas::native::NativeRunner;
use rtas::{Backend, TestAndSet};
use rtas_svc::{Kind, Namespace};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn namespace_steady_state_adds_zero_allocations_over_the_bare_object() {
    let epochs = 100u64;
    let backend = Backend::LogStar;

    // --- Baseline: the bare recyclable object, epoch after epoch. ---
    let bare = TestAndSet::with_backend(backend, 1);
    let mut runner = NativeRunner::new();
    for _ in 0..10 {
        assert!(!bare.test_and_set_with(&mut runner));
        bare.reset();
    }
    let before = allocations();
    for _ in 0..epochs {
        assert!(!bare.test_and_set_with(&mut runner));
        bare.reset();
    }
    let bare_allocs = allocations() - before;

    // --- The same traffic through the keyed namespace. ---
    let ns = Namespace::new(backend, 4, 1);
    let key = b"steady/key";
    // Warmup: create the key, fault in the map, runner buffer, etc.
    for _ in 0..10 {
        assert!(ns.acquire(Kind::Tas, key, &mut runner).unwrap().won);
        ns.reset(key).unwrap();
    }
    let before = allocations();
    for _ in 0..epochs {
        assert!(ns.acquire(Kind::Tas, key, &mut runner).unwrap().won);
        ns.reset(key).unwrap();
    }
    let ns_allocs = allocations() - before;

    assert_eq!(
        ns_allocs, bare_allocs,
        "the keyed-namespace op path must add zero steady-state \
         allocations over the bare object's protocol runs \
         (namespace: {ns_allocs}, bare: {bare_allocs}, over {epochs} epochs)"
    );

    // And recycling must beat rebuilding by a wide margin, as for the
    // load arena: per-epoch cost stays protocol-only.
    let before = allocations();
    let fresh = TestAndSet::with_backend(backend, 1);
    let construction = allocations() - before;
    assert!(!fresh.test_and_set());
    assert!(
        ns_allocs / epochs < construction,
        "recycling ({} allocs/epoch) must beat rebuilding \
         ({construction} allocs/object)",
        ns_allocs / epochs
    );
}
