//! Allocation accounting for the reactor's steady-state serve path.
//!
//! The underlying arbitration objects allocate per epoch by design
//! (randomized structures are rebuilt on reset), so "zero allocations"
//! cannot mean a literally silent profile. The claim — mirroring
//! `alloc_steady.rs`, which proves the namespace adds zero allocations
//! over the bare object — is **differential**: the reactor engine's
//! event loop (epoll wait, slab slots, reused event/chunk/due scratch,
//! write carryover) must add *zero* allocations per operation over the
//! thread-per-connection engine serving identical traffic. Both engines
//! drive the same `Connection` state machines over the same keys and
//! epoch counts, and the backends' per-(slot, epoch) coin streams are
//! deterministic, so the two allocation counts are comparable exactly,
//! not just bounded.
//!
//! Everything runs in ONE test function: the default test harness runs
//! `#[test]` functions concurrently, and a second thread would pollute
//! the global counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rtas_svc::{Client, Engine, Op, Response, Server, SvcConfig};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// One lockstep round on `client`: a winning TAS, then the RESET ack.
fn round(client: &mut Client, key: &[u8]) {
    assert!(client.tas(key).expect("TAS").won);
    client.reset(key).expect("RESET");
}

/// One pipelined round: both requests on the wire before either
/// response is read, exercising the engine's response buffering.
fn batched_round(client: &mut Client, key: &[u8]) {
    client
        .send_batch(&[(Op::Tas, key), (Op::Reset, key)])
        .expect("batch send");
    match client.recv().expect("batched TAS reply") {
        Response::Acquired(a) => assert!(a.won),
        other => panic!("expected Acquired, got {other:?}"),
    }
    match client.recv().expect("batched RESET reply") {
        Response::Reset { .. } => {}
        other => panic!("expected Reset, got {other:?}"),
    }
}

/// Spawn a server on `engine`, drive the canonical traffic shape
/// (6 connections, each alternating lockstep and pipelined rounds on
/// its own key), and return the allocation count over the measured
/// window. Warmup faults in every key, slab slot, connection buffer,
/// and scratch vector on both sides of the wire before counting.
fn drive(engine: Engine) -> u64 {
    let server = Server::spawn(SvcConfig {
        engine,
        workers: 2,
        ..SvcConfig::default()
    })
    .expect("spawn server");
    let addr = server.addr().to_string();

    // Several connections per worker, so the measured window spans
    // slab reuse and per-event multiplexing, not a single-fd fast path.
    let mut clients: Vec<(Client, Vec<u8>)> = (0..6)
        .map(|i| {
            let client = Client::connect(&addr).expect("connect");
            (client, format!("alloc/reactor/{i}").into_bytes())
        })
        .collect();

    for _ in 0..50 {
        for (client, key) in clients.iter_mut() {
            round(client, key);
            batched_round(client, key);
        }
    }

    let before = allocations();
    for r in 0..400 {
        for (client, key) in clients.iter_mut() {
            if r % 2 == 0 {
                round(client, key);
            } else {
                batched_round(client, key);
            }
        }
    }
    let counted = allocations() - before;

    drop(clients);
    server.shutdown();
    counted
}

#[test]
fn reactor_engine_adds_zero_allocations_over_the_threads_engine() {
    if !Engine::Epoll.supported() {
        eprintln!("skipping: reactor syscall shim unavailable on this target");
        return;
    }
    // Threads engine first: its measured window sets the budget the
    // reactor must match exactly on the identical traffic shape.
    let threads = drive(Engine::Threads);
    let epoll = drive(Engine::Epoll);
    assert_eq!(
        epoll, threads,
        "the reactor allocated {epoll} times where the threads engine \
         allocated {threads}: the event loop's steady state is not \
         allocation-free"
    );
}
