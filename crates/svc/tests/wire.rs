//! Wire-protocol integration tests against a live loopback server:
//! malformed/truncated frames, pipelining, concurrent clients racing
//! `TAS` on one key, and `RESET`-then-reuse round trips under 8 real
//! client threads.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Barrier;
use std::time::{Duration, Instant};

use rtas::Backend;
use rtas_svc::protocol::MAX_PAYLOAD;
use rtas_svc::server::SvcConfig;
use rtas_svc::{server, Client, ClientConfig, ClientError, Op, Response, Server};

fn spawn_server(shards: usize, capacity: usize) -> rtas_svc::Server {
    server::spawn_local(Backend::Combined, shards, capacity).expect("bind loopback")
}

#[test]
fn truncated_frame_closes_the_connection_but_not_the_server() {
    let srv = spawn_server(2, 4);

    // Half a header, then hang up.
    let mut raw = TcpStream::connect(srv.addr()).unwrap();
    raw.write_all(&[7u8, 0]).unwrap();
    drop(raw);

    // Full header promising more payload than ever arrives.
    let mut raw = TcpStream::connect(srv.addr()).unwrap();
    raw.write_all(&20u32.to_le_bytes()).unwrap();
    raw.write_all(&[1, 2, 3]).unwrap();
    drop(raw);

    // The server is unfazed: a fresh client works.
    let mut client = Client::connect(srv.addr()).unwrap();
    assert!(client.tas(b"alive").unwrap().won);
    srv.shutdown();
}

#[test]
fn oversized_declared_length_gets_an_err_and_a_hangup() {
    let srv = spawn_server(1, 1);
    let mut raw = TcpStream::connect(srv.addr()).unwrap();
    raw.write_all(&((MAX_PAYLOAD as u32) + 1).to_le_bytes())
        .unwrap();
    // The server must answer with an ERR frame naming the violation and
    // then close — it must NOT try to read the bogus payload.
    let mut header = [0u8; 4];
    raw.read_exact(&mut header).unwrap();
    let len = u32::from_le_bytes(header) as usize;
    let mut payload = vec![0u8; len];
    raw.read_exact(&mut payload).unwrap();
    match rtas_svc::protocol::decode_response(&payload).unwrap() {
        Response::Err(msg) => assert!(msg.contains("frame limit"), "{msg}"),
        other => panic!("expected ERR, got {other:?}"),
    }
    // ... and the stream is closed afterwards.
    assert_eq!(raw.read(&mut header).unwrap(), 0, "connection must close");
    srv.shutdown();
}

#[test]
fn bad_requests_get_err_responses_and_the_connection_survives() {
    let srv = spawn_server(1, 2);
    let mut raw = TcpStream::connect(srv.addr()).unwrap();

    // Unknown opcode: clean frame, recoverable.
    raw.write_all(&2u32.to_le_bytes()).unwrap();
    raw.write_all(&[99, b'k']).unwrap();
    // Empty key on TAS: clean frame, recoverable.
    raw.write_all(&1u32.to_le_bytes()).unwrap();
    raw.write_all(&[Op::Tas.code()]).unwrap();

    let read_response = |raw: &mut TcpStream| {
        let mut header = [0u8; 4];
        raw.read_exact(&mut header).unwrap();
        let mut payload = vec![0u8; u32::from_le_bytes(header) as usize];
        raw.read_exact(&mut payload).unwrap();
        rtas_svc::protocol::decode_response(&payload).unwrap()
    };
    assert!(matches!(read_response(&mut raw), Response::Err(_)));
    assert!(matches!(read_response(&mut raw), Response::Err(_)));

    // Same connection, now a valid request: still served.
    raw.write_all(&4u32.to_le_bytes()).unwrap();
    raw.write_all(&[Op::Tas.code(), b'o', b'k', b'!']).unwrap();
    match read_response(&mut raw) {
        Response::Acquired(a) => assert!(a.won),
        other => panic!("expected a verdict, got {other:?}"),
    }
    srv.shutdown();
}

#[test]
fn kind_mismatch_is_a_remote_error_not_a_disconnect() {
    let srv = spawn_server(1, 2);
    let mut client = Client::connect(srv.addr()).unwrap();
    assert!(client.elect(b"leader").unwrap().won);
    match client.tas(b"leader") {
        Err(ClientError::Remote(msg)) => assert!(msg.contains("kind mismatch"), "{msg}"),
        other => panic!("expected a remote refusal, got {other:?}"),
    }
    // The connection is still good.
    assert!(!client.elect(b"leader").unwrap().won);
    srv.shutdown();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let srv = spawn_server(2, 16);
    let mut client = Client::connect(srv.addr()).unwrap();
    let depth = 10;
    for _ in 0..depth {
        client.send(Op::Tas, b"pipelined").unwrap();
    }
    let mut wins = 0;
    for i in 0..depth {
        match client.recv().unwrap() {
            Response::Acquired(a) => {
                assert_eq!(a.epoch, 0);
                if a.won {
                    assert_eq!(i, 0, "first pipelined TAS must be the winner");
                    wins += 1;
                }
            }
            other => panic!("expected a verdict, got {other:?}"),
        }
    }
    assert_eq!(wins, 1);
    // A pipelined RESET then TAS: the reuse round trip in one batch.
    client.send(Op::Reset, b"pipelined").unwrap();
    client.send(Op::Tas, b"pipelined").unwrap();
    assert!(matches!(
        client.recv().unwrap(),
        Response::Reset { epoch: 1 }
    ));
    match client.recv().unwrap() {
        Response::Acquired(a) => {
            assert!(a.won, "fresh epoch after pipelined reset");
            assert_eq!(a.epoch, 1);
        }
        other => panic!("expected a verdict, got {other:?}"),
    }
    srv.shutdown();
}

#[test]
fn eight_clients_racing_one_key_have_exactly_one_winner_per_epoch() {
    let threads = 8;
    let epochs = 25u64;
    let srv = spawn_server(4, threads);
    let barrier = Barrier::new(threads);
    let addr = srv.addr();
    let wins: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let barrier = &barrier;
                s.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let mut wins = 0u64;
                    for epoch in 0..epochs {
                        // All 8 threads enter each epoch together; the
                        // winner acks the resolution with RESET, which
                        // the others' next barrier round waits out.
                        barrier.wait();
                        let verdict = client.tas(b"contended/key").unwrap();
                        wins += verdict.won as u64;
                        barrier.wait();
                        if verdict.won {
                            let next = client.reset(b"contended/key").unwrap();
                            assert_eq!(next, epoch + 1, "epochs advance one at a time");
                        }
                        barrier.wait();
                    }
                    wins
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    assert_eq!(wins, epochs, "exactly one winner per epoch");
    let stats = srv.namespace().stats();
    assert_eq!(stats.keys, 1);
    assert_eq!(stats.ops, threads as u64 * epochs);
    assert_eq!(stats.wins, epochs);
    assert_eq!(stats.resets, epochs);
    srv.shutdown();
}

#[test]
fn reset_then_reuse_round_trips_under_eight_real_client_threads() {
    // RESET-driven reuse with *unsynchronized* clients: every thread
    // hammers its own key plus one shared key, recycling its own key
    // after every verdict. One winner per completed epoch everywhere.
    let threads = 8;
    let rounds = 50u64;
    let srv = spawn_server(4, threads);
    let addr = srv.addr();
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let key = format!("private/{t}").into_bytes();
                for round in 0..rounds {
                    let verdict = client.tas(&key).unwrap();
                    assert!(verdict.won, "sole participant always wins");
                    assert_eq!(verdict.epoch, round);
                    assert_eq!(client.reset(&key).unwrap(), round + 1);
                    // Interleave traffic on a shared, never-reset key.
                    let shared = client.tas(b"shared").unwrap();
                    assert_eq!(shared.epoch, 0);
                }
            });
        }
    });
    let stats = srv.namespace().stats();
    assert_eq!(stats.keys, threads as u64 + 1);
    // Private keys: one win per round per thread. Shared key: epoch 0
    // resolved once, so exactly one more win overall.
    assert_eq!(stats.wins, threads as u64 * rounds + 1);
    assert_eq!(stats.resets, threads as u64 * rounds);
    assert_eq!(stats.ops, 2 * threads as u64 * rounds);
    srv.shutdown();
}

#[test]
fn mid_epoch_disconnect_is_reclaimed_by_the_lease_with_no_second_winner() {
    let srv = Server::spawn(SvcConfig {
        shards: 1,
        capacity: 1,
        lease: Some(Duration::from_millis(20)),
        ..SvcConfig::default()
    })
    .expect("bind loopback");

    // The holder wins epoch 0, then vanishes without a RESET.
    let mut holder = Client::connect(srv.addr()).unwrap();
    let verdict = holder.tas(b"leased").unwrap();
    assert!(verdict.won);
    assert_eq!(verdict.epoch, 0);
    drop(holder);

    // A second client polls: nothing but losses on the stranded epoch
    // until the lease expires, then a win on a FRESH epoch — the
    // stranded epoch 0 is retired as a loss, never re-awarded.
    let mut other = Client::connect(srv.addr()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let win = loop {
        let v = other.tas(b"leased").unwrap();
        if v.won {
            break v;
        }
        assert_eq!(v.epoch, 0, "losses stay on the stranded epoch");
        assert!(Instant::now() < deadline, "lease never reclaimed the slot");
        std::thread::sleep(Duration::from_millis(1));
    };
    assert!(
        win.epoch >= 1,
        "the second win is on a reclaimed, fresh epoch"
    );
    let stats = srv.namespace().stats();
    assert!(stats.reclaimed >= 1, "the reclaim is counted");
    assert_eq!(stats.wins, 2, "exactly one winner per epoch, ever");
    srv.shutdown();
}

#[test]
fn server_read_deadline_expires_a_stalled_connection() {
    let srv = Server::spawn(SvcConfig {
        shards: 1,
        capacity: 1,
        read_timeout: Some(Duration::from_millis(50)),
        ..SvcConfig::default()
    })
    .expect("bind loopback");
    let mut raw = TcpStream::connect(srv.addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // A header promising payload that never comes: the handler must
    // answer ERR at its deadline and close, not pin a thread forever.
    raw.write_all(&10u32.to_le_bytes()).unwrap();
    let mut header = [0u8; 4];
    raw.read_exact(&mut header).unwrap();
    let mut payload = vec![0u8; u32::from_le_bytes(header) as usize];
    raw.read_exact(&mut payload).unwrap();
    match rtas_svc::protocol::decode_response(&payload).unwrap() {
        Response::Err(msg) => assert!(msg.contains("read deadline"), "{msg}"),
        other => panic!("expected ERR, got {other:?}"),
    }
    assert_eq!(
        raw.read(&mut header).unwrap(),
        0,
        "closed after the deadline"
    );
    srv.shutdown();
}

#[test]
fn client_read_timeout_expires_against_a_silent_server() {
    // A listener that never answers (the connection sits in the accept
    // backlog): the client's read deadline must surface as an error
    // instead of hanging the caller.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mut client = Client::connect_with(
        addr,
        ClientConfig {
            read_timeout: Some(Duration::from_millis(50)),
            ..ClientConfig::default()
        },
    )
    .unwrap();
    let start = Instant::now();
    match client.tas(b"never-answered") {
        Err(ClientError::Io(e)) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
            ),
            "expected a timeout kind, got {e}"
        ),
        other => panic!("expected a read timeout, got {other:?}"),
    }
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "the deadline must bound the wait"
    );
    drop(listener);
}

#[test]
fn connect_timeout_dial_is_bounded_and_serves_a_live_server() {
    // The timeout dialer must resolve a dial to a non-answering
    // address inside its bound — 203.0.113.1 (TEST-NET-3) drops SYNs
    // on real networks, though some sandboxes answer for everything,
    // so only boundedness is asserted, not failure.
    let config = ClientConfig {
        connect_timeout: Some(Duration::from_millis(250)),
        ..ClientConfig::default()
    };
    let start = Instant::now();
    let _ = Client::connect_with("203.0.113.1:9", config.clone());
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "the connect timeout must bound the dial"
    );

    // And the same timeout-dial path must serve a real server: the
    // deadline applies to the dial, never to established traffic.
    let srv = spawn_server(1, 2);
    let mut client = Client::connect_with(srv.addr(), config).unwrap();
    assert!(client.tas(b"dialed-with-deadline").unwrap().won);
    srv.shutdown();
}

#[test]
fn stats_round_trip_over_the_wire_matches_in_process_counters() {
    let srv = spawn_server(2, 2);
    let mut client = Client::connect(srv.addr()).unwrap();
    assert!(client.tas(b"a").unwrap().won);
    assert!(!client.tas(b"a").unwrap().won);
    assert!(client.elect(b"b").unwrap().won);
    client.reset(b"a").unwrap();
    assert_eq!(client.reset(b"missing").unwrap(), 0, "no such key");
    let wire = client.stats().unwrap();
    // The namespace-backed counters agree field for field; the
    // connection gauges are the server's own — an in-process
    // `Namespace::stats` has no accept loop, so it reports zeros there,
    // while the wire answer counts at least the connection asking.
    let local = srv.namespace().stats();
    assert_eq!(wire.keys, local.keys);
    assert_eq!(wire.ops, local.ops);
    assert_eq!(wire.wins, local.wins);
    assert_eq!(wire.resets, local.resets);
    assert_eq!(wire.registers, local.registers);
    assert_eq!(wire.reclaimed, local.reclaimed);
    assert_eq!(local.conns, 0);
    assert_eq!(local.refused, 0);
    assert_eq!(wire.conns, 1, "the STATS connection counts itself");
    assert_eq!(wire.refused, 0);
    assert_eq!(wire.keys, 2);
    assert_eq!(wire.ops, 3);
    assert_eq!(wire.wins, 2);
    assert_eq!(wire.resets, 1);
    assert!(wire.registers > 0);
    srv.shutdown();
}

#[test]
fn every_send_is_one_wire_write_with_nodelay() {
    // The socket-level coalescing assertions: TCP_NODELAY is on (a
    // coalesced frame must leave immediately, not sit behind Nagle)
    // and every send — convenience round trip, pipelined half, or a
    // whole batch — costs exactly ONE transport write, so a frame can
    // never straddle two syscalls and tear under a crashing client.
    let srv = spawn_server(2, 4);
    let mut client = Client::connect(srv.addr()).unwrap();
    assert!(client.nodelay().unwrap(), "TCP_NODELAY must be set");
    assert_eq!(client.wire_writes(), 0);

    client.tas(b"one").unwrap();
    assert_eq!(client.wire_writes(), 1, "tas = one write");
    client.reset(b"one").unwrap();
    assert_eq!(client.wire_writes(), 2, "reset = one write");
    client.stats().unwrap();
    assert_eq!(client.wire_writes(), 3, "stats = one write");

    client.send(Op::Tas, b"two").unwrap();
    assert_eq!(client.wire_writes(), 4, "pipelined send = one write");
    client.recv().unwrap();

    // A whole pipelined burst: 16 requests, ONE write syscall.
    let reqs: Vec<(Op, &[u8])> = (0..16).map(|_| (Op::Tas, b"three".as_ref())).collect();
    client.send_batch(&reqs).unwrap();
    assert_eq!(client.wire_writes(), 5, "a 16-frame batch = one write");
    let mut wins = 0;
    for _ in 0..16 {
        match client.recv().unwrap() {
            Response::Acquired(a) => wins += a.won as u64,
            other => panic!("expected a verdict, got {other:?}"),
        }
    }
    assert_eq!(wins, 1, "the batch's epoch still has exactly one winner");
    srv.shutdown();
}

#[test]
fn connections_beyond_max_conns_are_refused_with_a_named_err() {
    let srv = Server::spawn(SvcConfig {
        shards: 1,
        capacity: 4,
        max_conns: 2,
        ..SvcConfig::default()
    })
    .expect("bind loopback");

    // Fill the ceiling with live connections (prove them live with a
    // round trip each — the gauge counts served connections, not
    // accept-queue residents).
    let mut a = Client::connect(srv.addr()).unwrap();
    let mut b = Client::connect(srv.addr()).unwrap();
    assert!(a.tas(b"slots").unwrap().won);
    assert!(!b.tas(b"slots").unwrap().won);

    // One more: refused with an ERR naming the limit, then closed.
    let mut raw = TcpStream::connect(srv.addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut header = [0u8; 4];
    raw.read_exact(&mut header).unwrap();
    let mut payload = vec![0u8; u32::from_le_bytes(header) as usize];
    raw.read_exact(&mut payload).unwrap();
    match rtas_svc::protocol::decode_response(&payload).unwrap() {
        Response::Err(msg) => {
            assert!(msg.contains("2-connection limit"), "{msg}");
        }
        other => panic!("expected ERR, got {other:?}"),
    }
    assert_eq!(raw.read(&mut header).unwrap(), 0, "refused then closed");
    drop(raw);

    // The refusal is visible in the wire STATS gauges.
    let stats = a.stats().unwrap();
    assert_eq!(stats.conns, 2, "both live connections are counted");
    assert_eq!(stats.refused, 1, "the refusal is counted");

    // Releasing a slot readmits: drop one client, and a retry loop gets
    // in (the handler thread may take a moment to observe the EOF).
    drop(b);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(mut c) = Client::connect(srv.addr()) {
            if c.tas(b"readmitted").is_ok() {
                break;
            }
        }
        assert!(Instant::now() < deadline, "slot never released");
        std::thread::sleep(Duration::from_millis(2));
    }
    srv.shutdown();
}
