//! Allocation accounting for the flight recorder's steady state.
//!
//! The recorder allocates its event rings once, at spawn; after that,
//! recording is a ticket `fetch_add` plus four relaxed word stores into
//! a preallocated slot, and the metrics plane is atomic counters and
//! fixed log-bin histograms. The claim — differential, mirroring
//! `alloc_reactor.rs` — is that serving identical traffic with
//! `--trace on` adds **zero** allocations per operation over serving it
//! untraced. The traced run additionally stamps every request with a
//! wire trace span (`docs/WIRE.md`), so the span insert on the request
//! frame, the echo splice on the response frame, and the `ServerSpan`
//! ring record are all inside the measured window. Both runs drive the
//! same reactor engine over the same keys and epoch counts, so the
//! counts are comparable exactly.
//!
//! Everything runs in ONE test function: the default test harness runs
//! `#[test]` functions concurrently, and a second thread would pollute
//! the global counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rtas_svc::{Client, Engine, Op, Response, Server, SvcConfig, TraceMode};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// One lockstep round on `client`: a winning TAS, then the RESET ack.
/// Nonzero spans put both requests on the traced wire path (the server
/// echoes each span and records a `ServerSpan` event); zero spans are
/// the classic untraced frames.
fn round(client: &mut Client, key: &[u8], tas_span: u64, reset_span: u64) {
    client.send_span(Op::Tas, tas_span, key).expect("TAS send");
    match client.recv().expect("TAS reply") {
        Response::Acquired(a) => assert!(a.won),
        other => panic!("expected Acquired, got {other:?}"),
    }
    client
        .send_span(Op::Reset, reset_span, key)
        .expect("RESET send");
    match client.recv().expect("RESET reply") {
        Response::Reset { .. } => {}
        other => panic!("expected Reset, got {other:?}"),
    }
}

/// One pipelined round: both requests on the wire before either
/// response is read, exercising the traced decode/encode burst path.
fn batched_round(client: &mut Client, key: &[u8], tas_span: u64, reset_span: u64) {
    client
        .send_batch_span(&[(Op::Tas, tas_span, key), (Op::Reset, reset_span, key)])
        .expect("batch send");
    match client.recv().expect("batched TAS reply") {
        Response::Acquired(a) => assert!(a.won),
        other => panic!("expected Acquired, got {other:?}"),
    }
    match client.recv().expect("batched RESET reply") {
        Response::Reset { .. } => {}
        other => panic!("expected Reset, got {other:?}"),
    }
}

/// Spawn a reactor server with the given trace mode, drive the
/// canonical traffic shape (6 connections alternating lockstep and
/// pipelined rounds, span-stamped when `spans` is set), and return the
/// allocation count over the measured window. Warmup faults in every
/// key, slab slot, ring, scratch buffer, and span splice capacity
/// before counting.
fn drive(trace: TraceMode, spans: bool) -> u64 {
    let server = Server::spawn(SvcConfig {
        engine: Engine::Epoll,
        workers: 2,
        trace,
        ..SvcConfig::default()
    })
    .expect("spawn server");
    let addr = server.addr().to_string();

    let mut clients: Vec<(Client, Vec<u8>)> = (0..6)
        .map(|i| {
            let client = Client::connect(&addr).expect("connect");
            (client, format!("alloc/trace/{i}").into_bytes())
        })
        .collect();

    let mut next_span: u64 = 0;
    let mut mint = move || -> u64 {
        if spans {
            next_span += 1;
            next_span
        } else {
            0
        }
    };

    for _ in 0..50 {
        for (client, key) in clients.iter_mut() {
            let (a, b) = (mint(), mint());
            round(client, key, a, b);
            let (a, b) = (mint(), mint());
            batched_round(client, key, a, b);
        }
    }

    let before = allocations();
    for r in 0..400 {
        for (client, key) in clients.iter_mut() {
            let (a, b) = (mint(), mint());
            if r % 2 == 0 {
                round(client, key, a, b);
            } else {
                batched_round(client, key, a, b);
            }
        }
    }
    let counted = allocations() - before;

    drop(clients);
    server.shutdown();
    counted
}

#[test]
fn tracing_adds_zero_allocations_over_an_untraced_server() {
    if !Engine::Epoll.supported() {
        eprintln!("skipping: reactor syscall shim unavailable on this target");
        return;
    }
    // Untraced first: its measured window sets the budget the traced,
    // span-stamped server must match exactly on the identical traffic
    // shape.
    let untraced = drive(TraceMode::Off, false);
    let traced = drive(TraceMode::On, true);
    assert_eq!(
        traced, untraced,
        "`--trace on` with span-stamped requests allocated {traced} times \
         where the untraced server allocated {untraced}: the traced wire \
         path's steady state is not allocation-free"
    );
}
