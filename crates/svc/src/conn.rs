//! The per-connection protocol state machine: bytes in → response
//! bytes out, zero I/O inside.
//!
//! [`Connection`] is the server's request path with the transport
//! stripped away. The driving loop (today `server.rs`, tomorrow an
//! event-driven reactor) hands it whatever bytes one `read` produced;
//! the embedded incremental [`FrameDecoder`] consumes **every**
//! complete frame in the buffer — a whole pipelined burst per call —
//! and carries a trailing partial frame across reads. Each decoded
//! request is executed against the [`Namespace`] and its response is
//! framed into one reused output buffer, so the driver can flush an
//! entire burst's responses with a single coalesced write. That turns
//! the previous 2-reads + 1-write **per frame** syscall pattern into
//! one read + one write **per burst**.
//!
//! Error policy is identical to the blocking loop it replaces (see the
//! [protocol docs](crate::protocol)): a framing violation (declared
//! length over [`MAX_PAYLOAD`]) appends a best-effort `ERR` frame and
//! poisons the connection ([`ConnStatus::Closed`] — the driver flushes
//! what it can and hangs up); a clean frame carrying a bad request
//! gets an `ERR` response and the connection stays usable. Bytes after
//! a poisoned frame are never interpreted: the stream position is
//! untrustworthy.
//!
//! [`ConnGauges`] is the accept loop's side of the story — live and
//! refused connection counts, surfaced through the widened `STATS`
//! frame (a `STATS` request answered by a `Connection` reports the
//! gauges of the server that owns it).

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};

use rtas::native::NativeRunner;
use rtas_obs::{lane_name, EventKind, FlightRecorder, Lane, METRICS_HEADER};

use crate::metrics::SvcMetrics;
use crate::namespace::{fnv1a, Kind, Namespace};
use crate::protocol::{
    decode_request, frame_response, frame_response_span, oversized_payload, Op, Request, Response,
    MAX_PAYLOAD,
};

/// An incremental frame decoder: feed it byte chunks of any size
/// ([`FrameDecoder::push`]), pull complete frame payloads out
/// ([`FrameDecoder::next_frame`]). A frame split across chunks is
/// carried until its remainder arrives; the backing buffer is reused
/// and compacted, so steady state allocates nothing once it has grown
/// to the working burst size.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Offset of the first unconsumed byte in `buf`; everything before
    /// it is already-decoded frames awaiting compaction.
    start: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Append freshly read bytes. Compacts the consumed prefix first,
    /// so the buffer never grows beyond one burst plus one partial
    /// frame.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.start > 0 {
            let len = self.buf.len();
            self.buf.copy_within(self.start.., 0);
            self.buf.truncate(len - self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// The next complete frame's payload, if one is buffered.
    ///
    /// `Ok(None)` means "need more bytes" (empty buffer or a partial
    /// frame — see [`FrameDecoder::has_partial`] to tell them apart).
    /// A declared length over [`MAX_PAYLOAD`] is
    /// [`io::ErrorKind::InvalidData`]: the stream is poisoned and the
    /// caller must stop decoding — the violating bytes stay buffered
    /// and every later call returns the same error.
    pub fn next_frame(&mut self) -> io::Result<Option<&[u8]>> {
        let remaining = self.buf.len() - self.start;
        if remaining < 4 {
            return Ok(None);
        }
        let header: [u8; 4] = self.buf[self.start..self.start + 4].try_into().unwrap();
        let len = u32::from_le_bytes(header) as usize;
        if len > MAX_PAYLOAD {
            return Err(oversized_payload(len));
        }
        if remaining < 4 + len {
            return Ok(None);
        }
        let at = self.start + 4;
        self.start = at + len;
        Ok(Some(&self.buf[at..at + len]))
    }

    /// Whether undcoded bytes are buffered — a partial frame if
    /// [`FrameDecoder::next_frame`] just returned `Ok(None)`. Lets a
    /// client classify EOF: at a frame boundary it is clean, mid-frame
    /// it is truncation.
    pub fn has_partial(&self) -> bool {
        self.buf.len() > self.start
    }

    /// Drop all buffered bytes (a client reconnecting mid-frame must
    /// not splice the old stream's tail onto the new one).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.start = 0;
    }
}

/// Connection gauges owned by the server's accept loop: how many
/// connections are live right now and how many were refused at the
/// `max_conns` ceiling, cumulatively. Lock-free like the shard
/// counters — relaxed increments, relaxed snapshot reads — and
/// surfaced through the widened `STATS` frame.
#[derive(Debug, Default)]
pub struct ConnGauges {
    live: AtomicU64,
    refused: AtomicU64,
}

impl ConnGauges {
    /// Record an accepted connection and return the new live count —
    /// the atomic claim the accept loop checks against `max_conns`.
    /// The matching [`ConnGauges::disconnected`] must run when the
    /// connection ends (or the claim is rolled back).
    pub fn connected(&self) -> u64 {
        self.live.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Record a connection ending (however it ended).
    pub fn disconnected(&self) {
        self.live.fetch_sub(1, Ordering::Relaxed);
    }

    /// Record a connection refused at the `max_conns` ceiling.
    pub fn refuse(&self) {
        self.refused.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections currently being served.
    pub fn live(&self) -> u64 {
        self.live.load(Ordering::Relaxed)
    }

    /// Connections refused so far, cumulative.
    pub fn refused(&self) -> u64 {
        self.refused.load(Ordering::Relaxed)
    }
}

/// What [`Connection::ingest`] left the connection in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnStatus {
    /// Keep reading; flush [`Connection::output`] first if non-empty.
    Open,
    /// The stream is poisoned: flush [`Connection::output`]
    /// best-effort, then close. Further `ingest` calls are no-ops.
    Closed,
}

/// The observability hooks a driver threads through
/// [`Connection::ingest_obs`]: the flight recorder (with the lane this
/// connection's events belong on) and the metrics plane's stage
/// histograms. Borrowed per call — the connection state machine itself
/// stays free of `Arc`s and allocation.
pub(crate) struct ConnObs<'a> {
    /// The server's flight recorder.
    pub recorder: &'a FlightRecorder,
    /// The server's metrics instruments.
    pub metrics: &'a SvcMetrics,
    /// The lane this connection's per-frame events are written to
    /// (its reactor worker's lane, or the accept lane for the threads
    /// engine).
    pub lane: Lane,
}

/// One connection's protocol state: the incremental decoder, the
/// connection-private [`NativeRunner`], and the reused output buffer.
/// See the [module docs](self).
#[derive(Debug, Default)]
pub struct Connection {
    decoder: FrameDecoder,
    runner: NativeRunner,
    out: Vec<u8>,
    closed: bool,
    /// Frames decoded on this connection — the per-connection sequence
    /// the trace sampling gate (`--trace sampled:<n>`) runs on. Plain
    /// arithmetic, deliberately no RNG: tracing must never perturb
    /// seeded fault streams.
    frames: u64,
}

impl Connection {
    /// A fresh connection state machine.
    pub fn new() -> Self {
        Connection::default()
    }

    /// Feed one read's worth of bytes; decode and execute **every**
    /// complete frame they complete, framing each response into the
    /// output buffer in request order.
    pub fn ingest(
        &mut self,
        bytes: &[u8],
        namespace: &Namespace,
        gauges: &ConnGauges,
    ) -> ConnStatus {
        self.ingest_obs(bytes, namespace, gauges, None)
    }

    /// [`Connection::ingest`] with the observability plane threaded in:
    /// sampled frames get per-stage latency samples (decode / arbiter /
    /// encode) and `FrameDecoded` / `ArbiterVerdict` / `ResetAck`
    /// flight-recorder events. With `obs` absent (or the recorder's
    /// sampling gate cold) the path is byte-identical to plain
    /// `ingest` — no clock reads, no events, no allocations.
    pub(crate) fn ingest_obs(
        &mut self,
        bytes: &[u8],
        namespace: &Namespace,
        gauges: &ConnGauges,
        obs: Option<&ConnObs<'_>>,
    ) -> ConnStatus {
        if self.closed {
            return ConnStatus::Closed;
        }
        self.decoder.push(bytes);
        loop {
            // Sample decision for the frame about to be decoded. The
            // clock reads themselves are gated on it, so an untraced (or
            // unsampled) frame pays exactly one branch here.
            let timed = obs.filter(|o| o.recorder.sample_hit(self.frames));
            let t0 = timed.map(|o| o.recorder.now_ns());
            match self.decoder.next_frame() {
                Ok(Some(payload)) => {
                    self.frames += 1;
                    let decoded = decode_request(payload);
                    let t1 = timed.map(|o| o.recorder.now_ns());
                    if let (Some(o), Ok(req)) = (timed, &decoded) {
                        o.recorder.record(
                            o.lane,
                            EventKind::FrameDecoded,
                            req.op.code() as u32,
                            payload.len() as u64,
                            0,
                        );
                    }
                    // The wire trace context: echoed on *every* response
                    // to a traced request (protocol behavior, independent
                    // of whether this server records anything).
                    let span = decoded.as_ref().map_or(0, |r| r.span);
                    let op_code = decoded.as_ref().map_or(0, |r| r.op.code());
                    let response = match decoded {
                        Ok(request) => {
                            execute_obs(namespace, gauges, request, &mut self.runner, obs, timed)
                        }
                        // A clean frame with a bad request: answer and
                        // carry on.
                        Err(e) => Response::Err(e.to_string()),
                    };
                    let t2 = timed.map(|o| o.recorder.now_ns());
                    frame_response_span(&response, span, &mut self.out);
                    if let (Some(o), Some(t0), Some(t1), Some(t2)) = (timed, t0, t1, t2) {
                        let t3 = o.recorder.now_ns();
                        o.metrics.stage_decode.record((t1 - t0) as f64);
                        o.metrics.stage_arbiter.record((t2 - t1) as f64);
                        o.metrics.stage_encode.record((t3 - t2) as f64);
                        if span != 0 {
                            // One ServerSpan per traced+sampled frame:
                            // decode→arbiter→encode, ending at t3 on the
                            // server clock.
                            o.recorder.record(
                                o.lane,
                                EventKind::ServerSpan,
                                u32::from(op_code),
                                span,
                                t3 - t0,
                            );
                        }
                    }
                }
                Ok(None) => return ConnStatus::Open,
                Err(e) => {
                    // Framing violation: name it, then poison — the
                    // stream position is untrustworthy.
                    frame_response(&Response::Err(e.to_string()), &mut self.out);
                    self.closed = true;
                    return ConnStatus::Closed;
                }
            }
        }
    }

    /// Response bytes accumulated since the last
    /// [`Connection::clear_output`] — the driver writes these with one
    /// coalesced write.
    pub fn output(&self) -> &[u8] {
        &self.out
    }

    /// Discard flushed output (keeps the buffer's capacity).
    pub fn clear_output(&mut self) {
        self.out.clear();
    }

    /// Whether a framing violation has poisoned this connection.
    pub fn is_closed(&self) -> bool {
        self.closed
    }
}

/// Execute one decoded request against the namespace. `STATS` merges
/// the accept loop's connection gauges into the namespace counters;
/// `obs` renders the registry into `METRICS` responses; `timed` (the
/// sample-gated recorder handle) gets `ArbiterVerdict`/`ResetAck`
/// events.
pub(crate) fn execute_obs(
    namespace: &Namespace,
    gauges: &ConnGauges,
    request: Request<'_>,
    runner: &mut NativeRunner,
    obs: Option<&ConnObs<'_>>,
    timed: Option<&ConnObs<'_>>,
) -> Response {
    match request.op {
        Op::Tas | Op::Elect => {
            let kind = if request.op == Op::Tas {
                Kind::Tas
            } else {
                Kind::Elect
            };
            match namespace.acquire(kind, request.key, runner) {
                Ok(acquired) => {
                    if let Some(o) = timed {
                        o.recorder.record(
                            o.lane,
                            EventKind::ArbiterVerdict,
                            acquired.won as u32,
                            acquired.epoch,
                            fnv1a(request.key),
                        );
                    }
                    Response::Acquired(acquired)
                }
                Err(e) => Response::Err(e.to_string()),
            }
        }
        Op::Reset => {
            let epoch = namespace.reset(request.key).unwrap_or(0);
            if let Some(o) = timed {
                o.recorder
                    .record(o.lane, EventKind::ResetAck, 0, epoch, fnv1a(request.key));
            }
            Response::Reset { epoch }
        }
        Op::Stats => {
            let mut stats = namespace.stats();
            stats.conns = gauges.live();
            stats.refused = gauges.refused();
            Response::Stats(stats)
        }
        Op::Metrics => Response::Metrics(render_metrics(namespace, gauges, obs)),
    }
}

/// The `METRICS` exposition: the `rtas-metrics/2` header, the `svc.*`
/// namespace/gauge counters (always present, so scrapers see a stable
/// core even from an in-process namespace with no registry wired),
/// then — with the observability plane wired — the server's uptime, the
/// flight recorder's per-lane drop counters (ring lossiness must be
/// observable, not silent), and the registry's named instruments sorted
/// by name.
fn render_metrics(namespace: &Namespace, gauges: &ConnGauges, obs: Option<&ConnObs<'_>>) -> String {
    let stats = namespace.stats();
    let mut out = String::with_capacity(1024);
    out.push_str(METRICS_HEADER);
    out.push('\n');
    for (name, value) in [
        ("svc.keys", stats.keys),
        ("svc.ops", stats.ops),
        ("svc.wins", stats.wins),
        ("svc.resets", stats.resets),
        ("svc.registers", stats.registers),
        ("svc.reclaimed", stats.reclaimed),
        ("svc.conns", gauges.live()),
        ("svc.refused", gauges.refused()),
    ] {
        out.push_str(name);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    if let Some(o) = obs {
        // The recorder's clock starts at server spawn, so its reading
        // *is* the uptime.
        out.push_str("svc.uptime_secs ");
        out.push_str(&(o.recorder.now_ns() / 1_000_000_000).to_string());
        out.push('\n');
        for (lane, dropped) in o.recorder.lane_drops() {
            out.push_str("trace.");
            out.push_str(&lane_name(lane));
            out.push_str(".dropped_events ");
            out.push_str(&dropped.to_string());
            out.push('\n');
        }
        o.metrics.registry().render_into(&mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{decode_response, frame_request, read_frame};
    use rtas::Backend;

    fn decode_all(bytes: &[u8]) -> Vec<Response> {
        let mut cursor = io::Cursor::new(bytes.to_vec());
        let mut payload = Vec::new();
        let mut out = Vec::new();
        while read_frame(&mut cursor, &mut payload).unwrap().is_some() {
            out.push(decode_response(&payload).unwrap());
        }
        out
    }

    #[test]
    fn decoder_reassembles_frames_split_anywhere() {
        let mut burst = Vec::new();
        frame_request(Op::Tas, b"alpha", &mut burst);
        frame_request(Op::Reset, b"alpha", &mut burst);
        frame_request(Op::Stats, b"", &mut burst);
        for split in 0..=burst.len() {
            let mut dec = FrameDecoder::new();
            let mut seen = 0;
            dec.push(&burst[..split]);
            while dec.next_frame().unwrap().is_some() {
                seen += 1;
            }
            dec.push(&burst[split..]);
            while let Some(payload) = dec.next_frame().unwrap() {
                assert!(decode_request(payload).is_ok());
                seen += 1;
            }
            assert_eq!(seen, 3, "all frames recovered at split {split}");
            assert!(!dec.has_partial());
        }
    }

    #[test]
    fn decoder_poisons_on_oversized_length_and_stays_poisoned() {
        let mut dec = FrameDecoder::new();
        let mut bytes = ((MAX_PAYLOAD as u32) + 1).to_le_bytes().to_vec();
        bytes.extend_from_slice(b"garbage");
        dec.push(&bytes);
        for _ in 0..3 {
            let err = dec.next_frame().unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
            assert!(err.to_string().contains("frame limit"));
        }
    }

    #[test]
    fn decoder_reports_partial_frames() {
        let mut frame = Vec::new();
        frame_request(Op::Tas, b"key", &mut frame);
        let mut dec = FrameDecoder::new();
        assert!(!dec.has_partial());
        dec.push(&frame[..frame.len() - 1]);
        assert!(dec.next_frame().unwrap().is_none());
        assert!(dec.has_partial(), "mid-frame EOF must be classifiable");
        dec.clear();
        assert!(!dec.has_partial());
        assert!(dec.next_frame().unwrap().is_none());
    }

    #[test]
    fn connection_answers_a_whole_burst_in_order() {
        let ns = Namespace::new(Backend::Combined, 2, 4);
        let gauges = ConnGauges::default();
        let mut conn = Connection::new();
        let mut burst = Vec::new();
        frame_request(Op::Tas, b"k", &mut burst); // win epoch 0
        frame_request(Op::Tas, b"k", &mut burst); // lose epoch 0
        frame_request(Op::Reset, b"k", &mut burst); // open epoch 1
        frame_request(Op::Tas, b"k", &mut burst); // win epoch 1
        assert_eq!(conn.ingest(&burst, &ns, &gauges), ConnStatus::Open);
        let responses = decode_all(conn.output());
        use crate::protocol::Acquired;
        assert_eq!(
            responses,
            vec![
                Response::Acquired(Acquired {
                    won: true,
                    epoch: 0
                }),
                Response::Acquired(Acquired {
                    won: false,
                    epoch: 0
                }),
                Response::Reset { epoch: 1 },
                Response::Acquired(Acquired {
                    won: true,
                    epoch: 1
                }),
            ]
        );
        conn.clear_output();
        assert!(conn.output().is_empty());
    }

    #[test]
    fn connection_survives_bad_requests_but_poisons_on_framing() {
        let ns = Namespace::new(Backend::Combined, 1, 2);
        let gauges = ConnGauges::default();
        let mut conn = Connection::new();

        // A clean frame with an unknown opcode: ERR, still open.
        let bad = [1u8, 0, 0, 0, 99];
        assert_eq!(conn.ingest(&bad, &ns, &gauges), ConnStatus::Open);
        let responses = decode_all(conn.output());
        assert!(matches!(&responses[0], Response::Err(m) if m.contains("unknown opcode")));
        conn.clear_output();

        // An oversized declared length: ERR, poisoned, and later bytes
        // are never interpreted.
        let poison = ((MAX_PAYLOAD as u32) + 1).to_le_bytes();
        assert_eq!(conn.ingest(&poison, &ns, &gauges), ConnStatus::Closed);
        assert!(conn.is_closed());
        let responses = decode_all(conn.output());
        assert!(matches!(&responses[0], Response::Err(m) if m.contains("frame limit")));
        conn.clear_output();
        let mut valid = Vec::new();
        frame_request(Op::Tas, b"k", &mut valid);
        assert_eq!(conn.ingest(&valid, &ns, &gauges), ConnStatus::Closed);
        assert!(conn.output().is_empty(), "poisoned connections go silent");
    }

    #[test]
    fn metrics_requests_render_the_exposition() {
        let ns = Namespace::new(Backend::Combined, 1, 2);
        let gauges = ConnGauges::default();
        let mut conn = Connection::new();
        let mut burst = Vec::new();
        frame_request(Op::Tas, b"k", &mut burst);
        frame_request(Op::Metrics, b"", &mut burst);
        assert_eq!(conn.ingest(&burst, &ns, &gauges), ConnStatus::Open);
        let responses = decode_all(conn.output());
        let text = match &responses[1] {
            Response::Metrics(text) => text,
            other => panic!("expected metrics, got {other:?}"),
        };
        // Plain ingest (no obs wired): header + the svc.* core lines.
        assert!(text.starts_with(METRICS_HEADER));
        assert!(text.contains("svc.ops 1\n"));
        assert!(text.contains("svc.wins 1\n"));
        assert!(text.contains("svc.conns 0\n"));
        assert!(!text.contains("reactor."), "no registry without obs");
        let pairs = rtas_obs::parse_metrics(text).expect("scrapable");
        assert_eq!(pairs.len(), 8);
    }

    #[test]
    fn obs_ingest_times_stages_and_records_events() {
        let ns = Namespace::new(Backend::Combined, 1, 2);
        let gauges = ConnGauges::default();
        let recorder = FlightRecorder::new(rtas_obs::TraceMode::On, 1);
        let metrics = SvcMetrics::new(1);
        let obs = ConnObs {
            recorder: &recorder,
            metrics: &metrics,
            lane: Lane::Worker(0),
        };
        let mut conn = Connection::new();
        let mut burst = Vec::new();
        frame_request(Op::Tas, b"k", &mut burst);
        frame_request(Op::Reset, b"k", &mut burst);
        frame_request(Op::Metrics, b"", &mut burst);
        assert_eq!(
            conn.ingest_obs(&burst, &ns, &gauges, Some(&obs)),
            ConnStatus::Open
        );
        // Stage histograms saw all three frames.
        assert_eq!(metrics.stage_decode.count(), 3);
        assert_eq!(metrics.stage_arbiter.count(), 3);
        assert_eq!(metrics.stage_encode.count(), 3);
        assert_eq!(metrics.stage_read.count(), 0, "read timing is the driver's");
        // Events landed on the worker lane.
        let events = recorder.snapshot();
        let kind_count = |k: EventKind| events.iter().filter(|e| e.kind == k as u32).count();
        assert_eq!(kind_count(EventKind::FrameDecoded), 3);
        assert_eq!(kind_count(EventKind::ArbiterVerdict), 1);
        assert_eq!(kind_count(EventKind::ResetAck), 1);
        let verdict = events
            .iter()
            .find(|e| e.kind == EventKind::ArbiterVerdict as u32)
            .unwrap();
        assert_eq!(verdict.a, 1, "the solo caller won");
        assert_eq!(verdict.c, fnv1a(b"k"));
        // The METRICS response now carries the registry too.
        let responses = decode_all(conn.output());
        match &responses[2] {
            Response::Metrics(text) => {
                assert!(text.contains("stage.arbiter_ns.count 2\n"));
                assert!(text.contains("reactor.wake_writes 0\n"));
            }
            other => panic!("expected metrics, got {other:?}"),
        }
    }

    #[test]
    fn traced_requests_are_echoed_and_recorded_as_server_spans() {
        use crate::protocol::{decode_response_span, frame_request_span};
        let ns = Namespace::new(Backend::Combined, 1, 2);
        let gauges = ConnGauges::default();
        let recorder = FlightRecorder::new(rtas_obs::TraceMode::On, 1);
        let metrics = SvcMetrics::new(1);
        let obs = ConnObs {
            recorder: &recorder,
            metrics: &metrics,
            lane: Lane::Worker(0),
        };
        let mut conn = Connection::new();
        let mut burst = Vec::new();
        frame_request_span(Op::Tas, 0xbeef, b"k", &mut burst);
        frame_request_span(Op::Reset, 0, b"k", &mut burst); // untraced
        conn.ingest_obs(&burst, &ns, &gauges, Some(&obs));
        let mut cursor = io::Cursor::new(conn.output().to_vec());
        let mut payload = Vec::new();
        read_frame(&mut cursor, &mut payload).unwrap().unwrap();
        let (resp, span) = decode_response_span(&payload).unwrap();
        assert!(matches!(resp, Response::Acquired(a) if a.won));
        assert_eq!(span, 0xbeef, "traced request gets its span echoed");
        read_frame(&mut cursor, &mut payload).unwrap().unwrap();
        assert_eq!(decode_response_span(&payload).unwrap().1, 0);
        // Exactly one ServerSpan, carrying the span id and the opcode.
        let spans: Vec<_> = recorder
            .snapshot()
            .into_iter()
            .filter(|e| e.kind == EventKind::ServerSpan as u32)
            .collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].a, u32::from(Op::Tas.code()));
        assert_eq!(spans[0].b, 0xbeef);
        assert!(spans[0].c <= spans[0].ts_ns, "span starts at ts - dur");
    }

    #[test]
    fn traced_requests_are_echoed_even_without_a_recorder() {
        use crate::protocol::{decode_response_span, frame_request_span};
        let ns = Namespace::new(Backend::Combined, 1, 2);
        let gauges = ConnGauges::default();
        let mut conn = Connection::new();
        let mut frame = Vec::new();
        frame_request_span(Op::Tas, 7, b"k", &mut frame);
        // Plain ingest: no obs plane at all — the echo is protocol
        // behavior, not an observability feature.
        conn.ingest(&frame, &ns, &gauges);
        let mut cursor = io::Cursor::new(conn.output().to_vec());
        let mut payload = Vec::new();
        read_frame(&mut cursor, &mut payload).unwrap().unwrap();
        assert_eq!(decode_response_span(&payload).unwrap().1, 7);
    }

    #[test]
    fn obs_metrics_expose_uptime_and_lane_drop_counters() {
        let ns = Namespace::new(Backend::Combined, 1, 2);
        let gauges = ConnGauges::default();
        let recorder = FlightRecorder::new(rtas_obs::TraceMode::On, 1);
        let metrics = SvcMetrics::new(1);
        let obs = ConnObs {
            recorder: &recorder,
            metrics: &metrics,
            lane: Lane::Worker(0),
        };
        let mut conn = Connection::new();
        let mut req = Vec::new();
        frame_request(Op::Metrics, b"", &mut req);
        conn.ingest_obs(&req, &ns, &gauges, Some(&obs));
        let responses = decode_all(conn.output());
        let text = match &responses[0] {
            Response::Metrics(text) => text,
            other => panic!("expected metrics, got {other:?}"),
        };
        assert!(text.contains("svc.uptime_secs "), "{text}");
        assert!(text.contains("trace.accept.dropped_events 0\n"), "{text}");
        assert!(text.contains("trace.reclaim.dropped_events 0\n"), "{text}");
        assert!(text.contains("trace.worker0.dropped_events 0\n"), "{text}");
        assert!(rtas_obs::parse_metrics(text).is_some(), "still scrapable");
    }

    #[test]
    fn sampled_mode_times_every_nth_frame() {
        let ns = Namespace::new(Backend::Combined, 1, 4);
        let gauges = ConnGauges::default();
        let recorder = FlightRecorder::new(rtas_obs::TraceMode::Sampled(4), 1);
        let metrics = SvcMetrics::new(1);
        let obs = ConnObs {
            recorder: &recorder,
            metrics: &metrics,
            lane: Lane::Worker(0),
        };
        let mut conn = Connection::new();
        let mut burst = Vec::new();
        for _ in 0..8 {
            frame_request(Op::Tas, b"k", &mut burst);
        }
        conn.ingest_obs(&burst, &ns, &gauges, Some(&obs));
        // Frames 0 and 4 of the 8 hit the 1-in-4 gate.
        assert_eq!(metrics.stage_arbiter.count(), 2);
        let events = recorder.snapshot();
        assert_eq!(
            events
                .iter()
                .filter(|e| e.kind == EventKind::FrameDecoded as u32)
                .count(),
            2
        );
    }

    #[test]
    fn stats_responses_carry_the_gauges() {
        let ns = Namespace::new(Backend::Combined, 1, 2);
        let gauges = ConnGauges::default();
        gauges.connected();
        gauges.connected();
        gauges.refuse();
        gauges.disconnected();
        assert_eq!((gauges.live(), gauges.refused()), (1, 1));
        let mut conn = Connection::new();
        let mut req = Vec::new();
        frame_request(Op::Stats, b"", &mut req);
        conn.ingest(&req, &ns, &gauges);
        let responses = decode_all(conn.output());
        match &responses[0] {
            Response::Stats(s) => {
                assert_eq!(s.conns, 1);
                assert_eq!(s.refused, 1);
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }
}
