//! `rtas-svc top` — a live terminal view over the `METRICS` plane.
//!
//! Polls a server's `METRICS` exposition (`rtas-metrics/2`) on an
//! interval and renders the operator-grade derivations the raw
//! exposition does not carry: per-second **rates** for the cumulative
//! counters (ops, wins, resets, reclaims, refusals, reactor wake
//! writes, carryovers), instantaneous gauges (connections, keys,
//! per-worker slab and timer-wheel occupancy, per-lane trace drops),
//! and one sparkline per pipeline stage scaled against the slowest
//! stage so a hot stage is visible at a glance.
//!
//! Everything derived is a pure function over parsed `(name, value)`
//! pairs — unit-tested without a server. The binary's loop is a thin
//! shell around [`run_top`]: connect once, scrape, render, sleep.
//! `--once` prints a single frame (totals instead of rates: there is
//! no previous sample to differentiate against) and `--json` emits the
//! same single frame as one flat JSON object for scripts.

use std::fmt::Write as _;

use rtas_obs::parse_metrics;

use crate::cli::TopArgs;
use crate::client::Client;

/// One scrape: when it was taken (nanoseconds on the caller's clock,
/// any fixed origin) plus the parsed exposition.
#[derive(Debug, Clone)]
pub struct TopSample {
    /// Scrape instant, nanoseconds from the poller's start.
    pub at_ns: u64,
    /// The `(name, value)` pairs from [`parse_metrics`].
    pub pairs: Vec<(String, f64)>,
}

/// The cumulative counters `top` differentiates into per-second rates,
/// with their display labels.
const RATED: &[(&str, &str)] = &[
    ("svc.ops", "ops/s"),
    ("svc.wins", "wins/s"),
    ("svc.resets", "resets/s"),
    ("svc.reclaimed", "reclaims/s"),
    ("svc.refused", "refused/s"),
    ("reactor.wake_writes", "wakes/s"),
    ("reactor.carryovers", "carryovers/s"),
];

/// The per-frame pipeline stages, in pipeline order (histogram name,
/// display label).
const STAGES: &[(&str, &str)] = &[
    ("stage.read_ns", "read"),
    ("stage.decode_ns", "decode"),
    ("stage.arbiter_ns", "arbiter"),
    ("stage.encode_ns", "encode"),
    ("stage.write_ns", "write"),
];

/// Look up metric `name` in a parsed exposition.
pub fn value(pairs: &[(String, f64)], name: &str) -> Option<f64> {
    pairs.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
}

/// The per-second rate of counter `name` between two samples — 0 when
/// the counter is missing from either, the interval is empty, or the
/// counter went backwards (a server restart between polls).
fn rate(prev: &TopSample, cur: &TopSample, name: &str) -> f64 {
    let dt = cur.at_ns.saturating_sub(prev.at_ns) as f64 / 1e9;
    if dt <= 0.0 {
        return 0.0;
    }
    match (value(&prev.pairs, name), value(&cur.pairs, name)) {
        (Some(a), Some(b)) if b >= a => (b - a) / dt,
        _ => 0.0,
    }
}

/// A one-character-per-value sparkline, scaled linearly to the largest
/// value (`▁` through `█`; all-`▁` when nothing is positive).
pub fn spark(values: &[f64]) -> String {
    const RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(0.0_f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 || v <= 0.0 {
                RAMP[0]
            } else {
                let idx = ((v / max) * 7.0).round() as usize;
                RAMP[idx.min(7)]
            }
        })
        .collect()
}

/// Render a nanosecond quantity with a human unit (`ns`/`us`/`ms`/`s`).
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1}us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.1}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

/// Render a metric value: integers without a decimal point, everything
/// else as Rust's shortest round-trip float.
fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

/// Render one `top` frame. With a previous sample the counter line
/// shows per-second rates; without one (the first frame, or `--once`)
/// it shows cumulative totals, labeled as such.
pub fn render_top(addr: &str, prev: Option<&TopSample>, cur: &TopSample) -> String {
    let mut out = String::new();
    let uptime = value(&cur.pairs, "svc.uptime_secs")
        .map_or_else(|| "?".to_string(), |u| format!("{u:.0}s"));
    let _ = writeln!(out, "rtas-svc top — {addr} — up {uptime}");

    // Counters: rates when we can differentiate, totals when we can't.
    match prev {
        Some(prev) => {
            let cells: Vec<String> = RATED
                .iter()
                .map(|(name, label)| format!("{label} {:.1}", rate(prev, cur, name)))
                .collect();
            let _ = writeln!(out, "  {}", cells.join("   "));
        }
        None => {
            let cells: Vec<String> = RATED
                .iter()
                .map(|(name, label)| {
                    let total = value(&cur.pairs, name).unwrap_or(0.0);
                    format!("{} {}", label.trim_end_matches("/s"), fmt_num(total))
                })
                .collect();
            let _ = writeln!(out, "  totals: {}", cells.join("   "));
        }
    }

    // Instantaneous gauges.
    let gauge = |name: &str| value(&cur.pairs, name).map_or_else(|| "?".into(), fmt_num);
    let _ = writeln!(
        out,
        "  conns {}   keys {}   registers {}",
        gauge("svc.conns"),
        gauge("svc.keys"),
        gauge("svc.registers"),
    );

    // Per-worker reactor gauges, for as many workers as expose them.
    for k in 0..usize::MAX {
        let slab = value(&cur.pairs, &format!("reactor.worker{k}.slab_live"));
        let wheel = value(&cur.pairs, &format!("reactor.worker{k}.wheel_entries"));
        if slab.is_none() && wheel.is_none() {
            break;
        }
        let _ = writeln!(
            out,
            "  worker{k}: slab_live {}   wheel_entries {}",
            slab.map_or_else(|| "?".into(), fmt_num),
            wheel.map_or_else(|| "?".into(), fmt_num),
        );
    }

    // Stage latency panel: p50 sparkline across stages (scaled to the
    // slowest stage) plus per-stage quantiles.
    let p50s: Vec<f64> = STAGES
        .iter()
        .map(|(name, _)| value(&cur.pairs, &format!("{name}.p50")).unwrap_or(0.0))
        .collect();
    if p50s.iter().any(|&v| v > 0.0) {
        let labels: Vec<&str> = STAGES.iter().map(|(_, l)| *l).collect();
        let _ = writeln!(
            out,
            "  stages (p50, scaled to slowest): {}  [{}]",
            spark(&p50s),
            labels.join(" ")
        );
        for (name, label) in STAGES {
            let q = |suffix: &str| value(&cur.pairs, &format!("{name}.{suffix}")).unwrap_or(0.0);
            let _ = writeln!(
                out,
                "    {label:<8} n {:<8} p50 {:<8} p90 {:<8} p99 {}",
                fmt_num(q("count")),
                fmt_ns(q("p50")),
                fmt_ns(q("p90")),
                fmt_ns(q("p99")),
            );
        }
    }

    // Trace-lane drop counters (version-2 exposition only).
    let drops: Vec<String> = cur
        .pairs
        .iter()
        .filter_map(|(name, v)| {
            let lane = name
                .strip_prefix("trace.")?
                .strip_suffix(".dropped_events")?;
            Some(format!("{lane} {}", fmt_num(*v)))
        })
        .collect();
    if !drops.is_empty() {
        let _ = writeln!(out, "  trace drops: {}", drops.join("   "));
    }
    out
}

/// Render one sample as a flat JSON object — every metric verbatim
/// under its exposition name. The `--once --json` contract scripts
/// scrape; names are the stable `METRICS` names, values are numbers.
pub fn render_top_json(cur: &TopSample) -> String {
    let mut out = String::from("{");
    for (i, (name, v)) in cur.pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{name}\":{}", fmt_num(*v));
    }
    out.push_str("}\n");
    out
}

/// The `rtas-svc top` loop: connect once, then scrape/render/sleep
/// until interrupted (or once, under `--once`/`--json`). Errors carry
/// the message the binary prints before exiting 2.
pub fn run_top(args: &TopArgs) -> Result<(), String> {
    let mut client =
        Client::connect(&args.addr).map_err(|e| format!("cannot connect to {}: {e}", args.addr))?;
    let start = std::time::Instant::now();
    let mut prev: Option<TopSample> = None;
    loop {
        let text = client
            .metrics()
            .map_err(|e| format!("METRICS from {} failed: {e}", args.addr))?;
        let pairs = parse_metrics(&text)
            .ok_or_else(|| format!("{} answered an unparseable METRICS exposition", args.addr))?;
        let cur = TopSample {
            at_ns: start.elapsed().as_nanos() as u64,
            pairs,
        };
        if args.json {
            print!("{}", render_top_json(&cur));
        } else {
            if !args.once {
                // Clear and home between frames, like top(1).
                print!("\x1b[2J\x1b[H");
            }
            print!("{}", render_top(&args.addr, prev.as_ref(), &cur));
        }
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        if args.once {
            return Ok(());
        }
        prev = Some(cur);
        std::thread::sleep(args.interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(at_ns: u64, pairs: &[(&str, f64)]) -> TopSample {
        TopSample {
            at_ns,
            pairs: pairs.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn rates_are_differences_over_the_poll_interval() {
        let prev = sample(0, &[("svc.ops", 100.0)]);
        let cur = sample(2_000_000_000, &[("svc.ops", 300.0)]);
        assert_eq!(rate(&prev, &cur, "svc.ops"), 100.0);
        // Backwards counter (server restart): clamp to zero, not a
        // negative rate.
        let restarted = sample(3_000_000_000, &[("svc.ops", 5.0)]);
        assert_eq!(rate(&cur, &restarted, "svc.ops"), 0.0);
        // Missing metric or empty interval: zero.
        assert_eq!(rate(&prev, &cur, "svc.nope"), 0.0);
        assert_eq!(rate(&cur, &cur, "svc.ops"), 0.0);
    }

    #[test]
    fn sparklines_scale_to_the_largest_value() {
        assert_eq!(spark(&[0.0, 0.0]), "▁▁");
        let line = spark(&[0.0, 4.0, 8.0]);
        assert_eq!(line, "▁▅█");
    }

    #[test]
    fn frames_show_totals_without_a_previous_sample_and_rates_with_one() {
        let pairs: &[(&str, f64)] = &[
            ("svc.uptime_secs", 42.0),
            ("svc.ops", 200.0),
            ("svc.conns", 3.0),
            ("svc.keys", 9.0),
            ("svc.registers", 100.0),
            ("reactor.worker0.slab_live", 2.0),
            ("reactor.worker0.wheel_entries", 1.0),
            ("stage.read_ns.count", 10.0),
            ("stage.read_ns.p50", 800.0),
            ("stage.read_ns.p90", 2_000.0),
            ("stage.read_ns.p99", 4_000.0),
            ("trace.accept.dropped_events", 0.0),
        ];
        let first = sample(0, pairs);
        let frame = render_top("127.0.0.1:7045", None, &first);
        assert!(frame.contains("up 42s"), "{frame}");
        assert!(frame.contains("totals: ops 200"), "{frame}");
        assert!(
            frame.contains("conns 3   keys 9   registers 100"),
            "{frame}"
        );
        assert!(frame.contains("worker0: slab_live 2"), "{frame}");
        assert!(frame.contains("read     n 10"), "{frame}");
        assert!(frame.contains("p50 800ns"), "{frame}");
        assert!(frame.contains("trace drops: accept 0"), "{frame}");

        let mut later = first.clone();
        later.at_ns = 1_000_000_000;
        later.pairs[1].1 = 350.0; // svc.ops
        let frame = render_top("127.0.0.1:7045", Some(&first), &later);
        assert!(frame.contains("ops/s 150.0"), "{frame}");
        assert!(!frame.contains("totals:"), "{frame}");
    }

    #[test]
    fn json_frames_are_flat_objects_of_verbatim_metric_names() {
        let cur = sample(0, &[("svc.ops", 2.0), ("stage.read_ns.p50", 812.5)]);
        assert_eq!(
            render_top_json(&cur),
            "{\"svc.ops\":2,\"stage.read_ns.p50\":812.5}\n"
        );
    }

    #[test]
    fn nanosecond_formatting_picks_the_readable_unit() {
        assert_eq!(fmt_ns(999.0), "999ns");
        assert_eq!(fmt_ns(1_500.0), "1.5us");
        assert_eq!(fmt_ns(2_500_000.0), "2.5ms");
        assert_eq!(fmt_ns(1_250_000_000.0), "1.25s");
    }
}
