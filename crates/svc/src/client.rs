//! The blocking, pipelining-capable client.
//!
//! [`Client`] wraps one TCP connection. The convenience methods
//! ([`Client::tas`], [`Client::elect`], [`Client::reset`],
//! [`Client::stats`]) are one synchronous round trip each. For
//! pipelining, split the halves yourself: any number of
//! [`Client::send`] calls (or one [`Client::send_batch`], which frames
//! a whole burst into one buffer and ships it with a **single**
//! `write` syscall) followed by the same number of [`Client::recv`]
//! calls — the server answers every connection's frames strictly in
//! request order. Every send is one coalesced write (length prefix and
//! payload together — [`Client::wire_writes`] counts them for the
//! socket-level assertion tests), and `recv` reads in bulk through an
//! incremental [`FrameDecoder`], so a pipelined burst of responses
//! costs one `read` instead of two per frame.
//!
//! The client is deliberately *not* `Sync`: one connection belongs to
//! one thread (the load harness opens a connection per worker), which
//! keeps the hot path free of locks and allocation — both frame
//! buffers are owned and reused.
//!
//! ## Hostile networks
//!
//! [`ClientConfig`] bounds every transport wait: a connect timeout
//! (on by default — a dead address must fail the dial, not hang a
//! fleet spawn), and optional read/write deadlines on the established
//! stream. [`Client::reconnect`] re-dials the peer the client first
//! connected to with the same config, and [`RetryPolicy`] provides
//! bounded, full-jitter exponential backoff for the redial loop. The
//! protocol makes retried work idempotent at the *epoch* level: a
//! reconnected worker re-reads the key's current epoch (its verdicts
//! carry epoch numbers), so a retry rejoins the open epoch rather than
//! colliding with a completed one.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use rtas::sim::rng::SplitMix64;
use rtas_obs::{EventKind, FlightRecorder, Lane};

use crate::conn::FrameDecoder;
use crate::protocol::{
    decode_response, frame_request, frame_request_span, Acquired, Op, Response, SvcStats,
};

/// What went wrong with a request.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or framing).
    Io(io::Error),
    /// The server refused the request with an `ERR` response.
    Remote(String),
    /// The server answered with a response of the wrong shape — a
    /// protocol bug or a desynchronized pipeline.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Remote(msg) => write!(f, "server refused request: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Transport deadlines for a [`Client`] connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientConfig {
    /// Deadline for establishing the TCP connection. The default is
    /// 10 s — `None` restores the OS's (much longer) SYN patience,
    /// which is almost never what a fleet spawn wants.
    pub connect_timeout: Option<Duration>,
    /// Deadline for each blocking read on the established stream
    /// (`None`, the default, waits indefinitely).
    pub read_timeout: Option<Duration>,
    /// Deadline for each blocking write (`None` by default).
    pub write_timeout: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(10)),
            read_timeout: None,
            write_timeout: None,
        }
    }
}

/// Bounded, full-jitter exponential backoff for reconnect loops.
///
/// Attempt `n` (0-based) sleeps `exp/2 + uniform(0..exp/2)` where
/// `exp = min(cap, base << n)` — the classic "full jitter" scheme that
/// decorrelates a thundering herd of retrying clients while keeping
/// the expected wait growing exponentially.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Redial attempts before giving up.
    pub attempts: u32,
    /// First attempt's nominal backoff.
    pub base: Duration,
    /// Ceiling on any single backoff.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 8,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// The sleep before (0-based) `attempt`, jittered by `rng`. Keep
    /// the jitter stream separate from any stream whose draw sequence
    /// must stay deterministic — retries are timing-dependent.
    pub fn backoff(&self, attempt: u32, rng: &mut SplitMix64) -> Duration {
        let base_ns = self.base.as_nanos().min(u64::MAX as u128) as u64;
        let cap_ns = self.cap.as_nanos().min(u64::MAX as u128) as u64;
        let exp = base_ns
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
            .min(cap_ns);
        let half = exp / 2;
        let jitter = if half == 0 { 0 } else { rng.next_below(half) };
        Duration::from_nanos(half + jitter)
    }
}

/// Bytes pulled per `recv`-side `read` call: enough to swallow a whole
/// pipelined burst of responses in one syscall.
const READ_CHUNK: usize = 64 * 1024;

/// One blocking connection to an arbitration server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// The resolved address actually dialed — [`Client::reconnect`]
    /// re-dials exactly this peer.
    peer: SocketAddr,
    config: ClientConfig,
    out: Vec<u8>,
    decoder: FrameDecoder,
    chunk: Vec<u8>,
    wire_writes: u64,
}

impl Client {
    /// Connect with the default [`ClientConfig`]: a 10 s connect
    /// timeout and `TCP_NODELAY` (so pipelined small frames are not
    /// batched behind Nagle).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit transport deadlines. Each resolved
    /// address is tried in order under `config.connect_timeout`; the
    /// error of the last candidate is returned if all fail.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> io::Result<Client> {
        let mut last_err = None;
        for peer in addr.to_socket_addrs()? {
            match Self::dial(peer, &config) {
                Ok(stream) => {
                    return Ok(Client {
                        stream,
                        peer,
                        config,
                        out: Vec::new(),
                        decoder: FrameDecoder::new(),
                        chunk: vec![0u8; READ_CHUNK],
                        wire_writes: 0,
                    })
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        }))
    }

    fn dial(peer: SocketAddr, config: &ClientConfig) -> io::Result<TcpStream> {
        let stream = match config.connect_timeout {
            Some(timeout) => TcpStream::connect_timeout(&peer, timeout)?,
            None => TcpStream::connect(peer)?,
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(config.read_timeout)?;
        stream.set_write_timeout(config.write_timeout)?;
        Ok(stream)
    }

    /// Drop the current stream and re-dial the original peer with the
    /// original config. On success the client is fresh: any responses
    /// in flight on the old connection are gone (the receive buffer is
    /// dropped with them — a partial frame from the old stream must
    /// not splice onto the new one), so a pipelining caller must
    /// re-send everything unanswered.
    pub fn reconnect(&mut self) -> io::Result<()> {
        self.stream = Self::dial(self.peer, &self.config)?;
        self.decoder.clear();
        Ok(())
    }

    /// The resolved peer address this client dialed.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }

    /// Whether `TCP_NODELAY` is set on the live stream (it always is —
    /// the socket-level assertion tests check it).
    pub fn nodelay(&self) -> io::Result<bool> {
        self.stream.nodelay()
    }

    /// Transport writes performed so far on this client (every send is
    /// exactly one — the diagnostic behind the single-write framing
    /// assertions; a reconnect does not reset it).
    pub fn wire_writes(&self) -> u64 {
        self.wire_writes
    }

    /// Write raw bytes where a request frame would go — the chaos
    /// harness's hook for truncated/mutated/duplicated frames. Not a
    /// frame: no length header is added and nothing is validated.
    pub fn inject_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.wire_writes += 1;
        self.stream.write_all(bytes)
    }

    /// Pipeline half 1: write one request frame without waiting —
    /// length prefix and payload coalesced into a single `write`.
    pub fn send(&mut self, op: Op, key: &[u8]) -> io::Result<()> {
        self.out.clear();
        frame_request(op, key, &mut self.out);
        self.wire_writes += 1;
        self.stream.write_all(&self.out)
    }

    /// [`Client::send`] with a wire trace context: a nonzero `span`
    /// rides the frame's trace extension and the server echoes it on
    /// the response (span 0 sends an ordinary untraced frame).
    pub fn send_span(&mut self, op: Op, span: u64, key: &[u8]) -> io::Result<()> {
        self.out.clear();
        frame_request_span(op, span, key, &mut self.out);
        self.wire_writes += 1;
        self.stream.write_all(&self.out)
    }

    /// Pipeline a whole burst: frame every request into one reused
    /// buffer and ship the lot with a **single** `write` syscall. The
    /// caller then issues one [`Client::recv`] per request, in order.
    pub fn send_batch(&mut self, reqs: &[(Op, &[u8])]) -> io::Result<()> {
        self.out.clear();
        for &(op, key) in reqs {
            frame_request(op, key, &mut self.out);
        }
        self.wire_writes += 1;
        self.stream.write_all(&self.out)
    }

    /// [`Client::send_batch`] with a per-request trace context (span 0
    /// entries go untraced). Still a single `write` syscall.
    pub fn send_batch_span(&mut self, reqs: &[(Op, u64, &[u8])]) -> io::Result<()> {
        self.out.clear();
        for &(op, span, key) in reqs {
            frame_request_span(op, span, key, &mut self.out);
        }
        self.wire_writes += 1;
        self.stream.write_all(&self.out)
    }

    /// Probe whether the server understands the wire trace extension:
    /// one traced `STATS` round trip. A server that predates the
    /// extension rejects the flagged opcode with an `ERR` over a
    /// healthy connection — that is the negotiation, so `Ok(false)`
    /// means "talk untraced", not a failure. Call once at setup, then
    /// stamp spans only when this returned `Ok(true)`.
    pub fn probe_trace(&mut self) -> Result<bool, ClientError> {
        self.send_span(Op::Stats, 1, b"")?;
        match self.recv()? {
            Response::Stats(_) => Ok(true),
            Response::Err(_) => Ok(false),
            other => Err(ClientError::Protocol(format!(
                "trace probe expected stats or an error, got {other:?}"
            ))),
        }
    }

    /// Pipeline half 2: read the next response frame, in request order.
    ///
    /// Reads are bulk: one `read` pulls whatever burst of responses
    /// the server coalesced, and subsequent `recv` calls drain the
    /// buffer without touching the socket.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        loop {
            if let Some(payload) = self.decoder.next_frame()? {
                return Ok(decode_response(payload)?);
            }
            match self.stream.read(&mut self.chunk) {
                Ok(0) => {
                    return Err(if self.decoder.has_partial() {
                        ClientError::Io(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "truncated frame",
                        ))
                    } else {
                        ClientError::Protocol(
                            "connection closed while awaiting a response".to_string(),
                        )
                    })
                }
                Ok(n) => {
                    let (chunk, decoder) = (&self.chunk, &mut self.decoder);
                    decoder.push(&chunk[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }

    fn expect_acquired(&mut self) -> Result<Acquired, ClientError> {
        match self.recv()? {
            Response::Acquired(a) => Ok(a),
            Response::Err(msg) => Err(ClientError::Remote(msg)),
            other => Err(ClientError::Protocol(format!(
                "expected an arbitration verdict, got {other:?}"
            ))),
        }
    }

    /// Test-and-set on `key`: one round trip.
    pub fn tas(&mut self, key: &[u8]) -> Result<Acquired, ClientError> {
        self.send(Op::Tas, key)?;
        self.expect_acquired()
    }

    /// Leader election on `key`: one round trip.
    pub fn elect(&mut self, key: &[u8]) -> Result<Acquired, ClientError> {
        self.send(Op::Elect, key)?;
        self.expect_acquired()
    }

    /// Recycle `key` for its next epoch; returns the newly opened epoch
    /// (0 when the key did not exist).
    pub fn reset(&mut self, key: &[u8]) -> Result<u64, ClientError> {
        self.send(Op::Reset, key)?;
        match self.recv()? {
            Response::Reset { epoch } => Ok(epoch),
            Response::Err(msg) => Err(ClientError::Remote(msg)),
            other => Err(ClientError::Protocol(format!(
                "expected a reset ack, got {other:?}"
            ))),
        }
    }

    /// Server-wide counters.
    pub fn stats(&mut self) -> Result<SvcStats, ClientError> {
        self.send(Op::Stats, b"")?;
        match self.recv()? {
            Response::Stats(stats) => Ok(stats),
            Response::Err(msg) => Err(ClientError::Remote(msg)),
            other => Err(ClientError::Protocol(format!(
                "expected stats, got {other:?}"
            ))),
        }
    }

    /// The server's metrics exposition (the `METRICS` op): the
    /// versioned `rtas-metrics/2` text with `svc.*` counters, reactor
    /// instruments, and per-stage latency histograms. Parse it with
    /// [`rtas_obs::parse_metrics`].
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.send(Op::Metrics, b"")?;
        match self.recv()? {
            Response::Metrics(text) => Ok(text),
            Response::Err(msg) => Err(ClientError::Remote(msg)),
            other => Err(ClientError::Protocol(format!(
                "expected a metrics exposition, got {other:?}"
            ))),
        }
    }
}

/// Client-side span bookkeeping for one load-generator worker context:
/// mints wire span ids and records the matching
/// [`ClientSpan`](EventKind::ClientSpan) events into the client tier's
/// own [`FlightRecorder`].
///
/// Span ids must be unique across the whole client process for the
/// merge join to be unambiguous, and minting must never draw from any
/// seeded fault/jitter stream (tracing cannot perturb a deterministic
/// chaos schedule). Both fall out of plain arithmetic: context `ctx`
/// owns the id range `(ctx + 1) << 40 | seq` — 2^24 contexts, 2^40
/// requests each, and never span 0 because `ctx + 1 > 0`.
///
/// Retried sends must mint a **fresh** span per wire attempt — a span
/// id names one frame, not one logical operation — which is what keeps
/// "at most one server span per client span" true under chaos retries.
#[derive(Debug, Clone)]
pub struct ClientTracer {
    recorder: Arc<FlightRecorder>,
    lane: Lane,
    base: u64,
    seq: u64,
}

impl ClientTracer {
    /// A tracer for worker context `ctx`, recording onto the client
    /// recorder's `Worker(ctx)` lane.
    pub fn new(recorder: Arc<FlightRecorder>, ctx: usize) -> ClientTracer {
        ClientTracer {
            recorder,
            lane: Lane::Worker(ctx),
            base: ((ctx as u64) + 1) << 40,
            seq: 0,
        }
    }

    /// Whether recording is live (the recorder's mode is not `off`).
    pub fn enabled(&self) -> bool {
        self.recorder.enabled()
    }

    /// Mint the next span id for this context (never 0).
    pub fn mint(&mut self) -> u64 {
        self.seq += 1;
        self.base | (self.seq & 0xff_ffff_ffff)
    }

    /// Nanoseconds on the client recorder's clock.
    pub fn now_ns(&self) -> u64 {
        self.recorder.now_ns()
    }

    /// Record a completed round trip: one `ClientSpan` event carrying
    /// the opcode, the span id, and the send→decoded duration.
    pub fn record(&self, op: Op, span: u64, rtt_ns: u64) {
        self.recorder.record(
            self.lane,
            EventKind::ClientSpan,
            u32::from(op.code()),
            span,
            rtt_ns,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtas_obs::TraceMode;

    #[test]
    fn tracer_spans_are_unique_across_contexts_and_never_zero() {
        let recorder = Arc::new(FlightRecorder::new(TraceMode::On, 4));
        let mut a = ClientTracer::new(Arc::clone(&recorder), 0);
        let mut b = ClientTracer::new(Arc::clone(&recorder), 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(a.mint()));
            assert!(seen.insert(b.mint()));
        }
        assert!(!seen.contains(&0));
        assert!(a.enabled());
    }

    #[test]
    fn tracer_records_client_spans_on_its_worker_lane() {
        let recorder = Arc::new(FlightRecorder::new(TraceMode::On, 2));
        let mut tracer = ClientTracer::new(Arc::clone(&recorder), 1);
        let span = tracer.mint();
        tracer.record(Op::Tas, span, 12_345);
        let events = recorder.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::ClientSpan as u32);
        assert_eq!(events[0].lane, 3); // worker 1 = lane 2 + 1
        assert_eq!(events[0].a, u32::from(Op::Tas.code()));
        assert_eq!(events[0].b, span);
        assert_eq!(events[0].c, 12_345);
    }
}
