//! The blocking, pipelining-capable client.
//!
//! [`Client`] wraps one TCP connection. The convenience methods
//! ([`Client::tas`], [`Client::elect`], [`Client::reset`],
//! [`Client::stats`]) are one synchronous round trip each. For
//! pipelining, split the halves yourself: any number of
//! [`Client::send`] calls followed by the same number of
//! [`Client::recv`] calls — the server answers every connection's
//! frames strictly in request order.
//!
//! The client is deliberately *not* `Sync`: one connection belongs to
//! one thread (the load harness opens a connection per worker), which
//! keeps the hot path free of locks and allocation — both frame
//! buffers are owned and reused.

use std::fmt;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{
    decode_response, frame_request, read_frame, Acquired, Op, Response, SvcStats,
};

/// What went wrong with a request.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or framing).
    Io(io::Error),
    /// The server refused the request with an `ERR` response.
    Remote(String),
    /// The server answered with a response of the wrong shape — a
    /// protocol bug or a desynchronized pipeline.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Remote(msg) => write!(f, "server refused request: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One blocking connection to an arbitration server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    out: Vec<u8>,
    payload: Vec<u8>,
}

impl Client {
    /// Connect (with `TCP_NODELAY`, so pipelined small frames are not
    /// batched behind Nagle).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            out: Vec::new(),
            payload: Vec::new(),
        })
    }

    /// Pipeline half 1: write one request frame without waiting.
    pub fn send(&mut self, op: Op, key: &[u8]) -> io::Result<()> {
        self.out.clear();
        frame_request(op, key, &mut self.out);
        self.stream.write_all(&self.out)
    }

    /// Pipeline half 2: read the next response frame, in request order.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        match read_frame(&mut self.stream, &mut self.payload)? {
            Some(()) => Ok(decode_response(&self.payload)?),
            None => Err(ClientError::Protocol(
                "connection closed while awaiting a response".to_string(),
            )),
        }
    }

    fn expect_acquired(&mut self) -> Result<Acquired, ClientError> {
        match self.recv()? {
            Response::Acquired(a) => Ok(a),
            Response::Err(msg) => Err(ClientError::Remote(msg)),
            other => Err(ClientError::Protocol(format!(
                "expected an arbitration verdict, got {other:?}"
            ))),
        }
    }

    /// Test-and-set on `key`: one round trip.
    pub fn tas(&mut self, key: &[u8]) -> Result<Acquired, ClientError> {
        self.send(Op::Tas, key)?;
        self.expect_acquired()
    }

    /// Leader election on `key`: one round trip.
    pub fn elect(&mut self, key: &[u8]) -> Result<Acquired, ClientError> {
        self.send(Op::Elect, key)?;
        self.expect_acquired()
    }

    /// Recycle `key` for its next epoch; returns the newly opened epoch
    /// (0 when the key did not exist).
    pub fn reset(&mut self, key: &[u8]) -> Result<u64, ClientError> {
        self.send(Op::Reset, key)?;
        match self.recv()? {
            Response::Reset { epoch } => Ok(epoch),
            Response::Err(msg) => Err(ClientError::Remote(msg)),
            other => Err(ClientError::Protocol(format!(
                "expected a reset ack, got {other:?}"
            ))),
        }
    }

    /// Server-wide counters.
    pub fn stats(&mut self) -> Result<SvcStats, ClientError> {
        self.send(Op::Stats, b"")?;
        match self.recv()? {
            Response::Stats(stats) => Ok(stats),
            Response::Err(msg) => Err(ClientError::Remote(msg)),
            other => Err(ClientError::Protocol(format!(
                "expected stats, got {other:?}"
            ))),
        }
    }
}
