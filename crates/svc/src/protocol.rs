//! The length-prefixed binary wire protocol.
//!
//! Every message — request or response — is one **frame**:
//!
//! ```text
//! [u32 LE payload length][payload bytes]
//! ```
//!
//! Request payload: `[u8 opcode][key bytes]` (the key is everything
//! after the opcode; [`Op::Stats`] ignores it). Response payload starts
//! with a status byte:
//!
//! | status | meaning | rest of payload |
//! |--------|---------|-----------------|
//! | 0 `LOST` / 1 `WIN` | arbitration verdict | `u64 LE` epoch |
//! | 2 `RESET` | recycle acknowledged | `u64 LE` newly opened epoch (0 = no such key) |
//! | 3 `ERR` | request refused | UTF-8 message |
//! | 4 `STATS` | server counters | 8 × `u64 LE`: keys, ops, wins, resets, registers, reclaimed, conns, refused |
//! | 5 `METRICS` | named metrics | UTF-8 `rtas-metrics/2` text exposition |
//!
//! ## Trace-context extension
//!
//! A request may carry a **span id**: setting [`TRACE_FLAG`] (bit 7) on
//! the opcode byte inserts a nonzero `u64 LE` span id between the
//! opcode and the key. The server echoes the id back by setting bit 7
//! on the response status byte and inserting the same `u64 LE` before
//! the response body. Span 0 is reserved for "untraced" and never
//! appears on the wire — a flagged frame carrying span 0 is malformed.
//! Old servers reject a flagged opcode as `unknown opcode <code|0x80>`
//! over a healthy connection, which is the negotiation: a client probes
//! once with a traced `STATS` and falls back to untraced frames on the
//! `ERR`. See `docs/WIRE.md` for the normative rules.
//!
//! Responses are returned **in request order** on each connection, so a
//! client may pipeline: write any number of request frames, then read
//! the same number of responses.
//!
//! Framing violations (a declared payload over [`MAX_PAYLOAD`], a
//! truncated frame) poison the stream — the server answers with an
//! `ERR` frame where it still can and closes the connection. *Clean*
//! frames that merely carry a bad request (unknown opcode, empty or
//! oversized key, kind mismatch) get an `ERR` response and the
//! connection stays usable.
//!
//! The **normative** specification — exact byte layouts, the `STATS`
//! counter table with units, error classes and their close-vs-continue
//! fates, and the pipelining guarantees — is `docs/WIRE.md` in the
//! repository root; this module and that document are kept in lockstep
//! (the repo's docs CI job link-checks one against the other).

use std::io::{self, Read};

/// Hard ceiling on a frame's payload, requests and responses alike. A
/// declared length beyond this is a framing violation, not a large
/// message.
pub const MAX_PAYLOAD: usize = 64 * 1024;

/// Longest permitted key, in bytes.
pub const MAX_KEY: usize = 4096;

/// Bit 7 of the opcode (request) or status (response) byte: the frame
/// carries the trace-context extension — a nonzero `u64 LE` span id
/// right after the flagged byte (see the [module docs](self)).
pub const TRACE_FLAG: u8 = 0x80;

/// Request opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Test-and-set on the key: `WIN` iff the caller set the bit.
    Tas,
    /// Leader election on the key: `WIN` iff the caller is the leader.
    Elect,
    /// Recycle the key's object for the next epoch (the *ack* of the
    /// current resolution).
    Reset,
    /// Server-wide counters; the key is ignored.
    Stats,
    /// The named-metrics text exposition (counters, gauges, latency
    /// histograms) from the observability plane; the key is ignored.
    Metrics,
}

impl Op {
    /// The opcode's wire byte.
    pub fn code(self) -> u8 {
        match self {
            Op::Tas => 1,
            Op::Elect => 2,
            Op::Reset => 3,
            Op::Stats => 4,
            Op::Metrics => 5,
        }
    }

    /// Parse a wire byte back into an opcode.
    pub fn from_code(code: u8) -> Option<Op> {
        match code {
            1 => Some(Op::Tas),
            2 => Some(Op::Elect),
            3 => Some(Op::Reset),
            4 => Some(Op::Stats),
            5 => Some(Op::Metrics),
            _ => None,
        }
    }
}

const STATUS_LOST: u8 = 0;
const STATUS_WIN: u8 = 1;
const STATUS_RESET: u8 = 2;
const STATUS_ERR: u8 = 3;
const STATUS_STATS: u8 = 4;
const STATUS_METRICS: u8 = 5;

/// The verdict of one arbitration request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Acquired {
    /// Whether this call won its key-epoch (at most one per epoch).
    pub won: bool,
    /// The key's epoch the call participated in.
    pub epoch: u64,
}

/// Server-wide counters, as returned by [`Op::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SvcStats {
    /// Live keys across all namespace shards.
    pub keys: u64,
    /// Arbitration operations served (TAS + ELECT), cumulative.
    pub ops: u64,
    /// Winning operations, cumulative — one per completed key-epoch.
    pub wins: u64,
    /// Epoch recycles performed (RESETs that found a key, plus lease
    /// reclamations), cumulative.
    pub resets: u64,
    /// Atomic registers held by all live keyed objects.
    pub registers: u64,
    /// Epochs recycled by the server itself because the lease on an
    /// admitted-but-never-acked epoch expired (a strict subset of
    /// `resets`). Zero unless the server was configured with a lease.
    pub reclaimed: u64,
    /// Connections currently being served (the connection answering a
    /// `STATS` request counts itself). Zero when the stats come from an
    /// in-process [`Namespace::stats`](crate::Namespace::stats) call —
    /// only the server's accept loop tracks connections.
    pub conns: u64,
    /// Connections refused because the server was at its `max_conns`
    /// ceiling, cumulative. Zero for in-process stats, as above.
    pub refused: u64,
}

/// A decoded request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request<'a> {
    /// The operation.
    pub op: Op,
    /// The key operated on (empty for [`Op::Stats`]).
    pub key: &'a [u8],
    /// The request's wire span id; 0 when the frame was untraced.
    pub span: u64,
}

/// A decoded response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Verdict of a `TAS`/`ELECT`.
    Acquired(Acquired),
    /// `RESET` acknowledged; `epoch` is the newly opened epoch, or 0 if
    /// the key did not exist (nothing to recycle).
    Reset {
        /// Newly opened epoch (0 = no such key).
        epoch: u64,
    },
    /// `STATS` counters.
    Stats(SvcStats),
    /// `METRICS` text exposition (`rtas-metrics/2` key/value lines).
    Metrics(String),
    /// The request was refused; the connection remains usable.
    Err(String),
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// The framing-violation error for a declared length over
/// [`MAX_PAYLOAD`] — shared by [`read_frame`] and the incremental
/// [`FrameDecoder`](crate::conn::FrameDecoder) so both report the
/// violation identically.
pub(crate) fn oversized_payload(len: usize) -> io::Error {
    invalid(format!(
        "declared payload of {len} bytes exceeds the {MAX_PAYLOAD}-byte frame limit"
    ))
}

/// Append a complete request frame (length prefix included) to `buf`.
///
/// # Panics
///
/// Panics if `key` exceeds [`MAX_KEY`] — the limit is part of the
/// protocol, callers must not construct oversized keys.
pub fn frame_request(op: Op, key: &[u8], buf: &mut Vec<u8>) {
    frame_request_span(op, 0, key, buf);
}

/// [`frame_request`] with a trace context: a nonzero `span` sets
/// [`TRACE_FLAG`] on the opcode byte and inserts the span id before the
/// key; `span == 0` frames exactly like [`frame_request`].
///
/// # Panics
///
/// Panics if `key` exceeds [`MAX_KEY`].
pub fn frame_request_span(op: Op, span: u64, key: &[u8], buf: &mut Vec<u8>) {
    assert!(
        key.len() <= MAX_KEY,
        "key of {} bytes exceeds MAX_KEY",
        key.len()
    );
    let span_bytes = if span != 0 { 8 } else { 0 };
    let len = 1 + span_bytes + key.len();
    buf.extend_from_slice(&(len as u32).to_le_bytes());
    if span != 0 {
        buf.push(op.code() | TRACE_FLAG);
        buf.extend_from_slice(&span.to_le_bytes());
    } else {
        buf.push(op.code());
    }
    buf.extend_from_slice(key);
}

/// Decode a request payload (the bytes *inside* a frame).
pub fn decode_request(payload: &[u8]) -> io::Result<Request<'_>> {
    let &code = payload
        .first()
        .ok_or_else(|| invalid("empty request frame".to_string()))?;
    let (span, key_at) = if code & TRACE_FLAG != 0 {
        let span = u64_at(payload, 1)?;
        if span == 0 {
            return Err(invalid(
                "traced request carries the reserved span 0".to_string(),
            ));
        }
        (span, 9)
    } else {
        (0, 1)
    };
    let op = Op::from_code(code & !TRACE_FLAG)
        .ok_or_else(|| invalid(format!("unknown opcode {code}")))?;
    let key = &payload[key_at..];
    if key.len() > MAX_KEY {
        return Err(invalid(format!(
            "key of {} bytes exceeds MAX_KEY",
            key.len()
        )));
    }
    if key.is_empty() && !matches!(op, Op::Stats | Op::Metrics) {
        return Err(invalid(format!("{op:?} requires a non-empty key")));
    }
    Ok(Request { op, key, span })
}

/// Append a complete response frame (length prefix included) to `buf`.
pub fn frame_response(resp: &Response, buf: &mut Vec<u8>) {
    frame_response_span(resp, 0, buf);
}

/// [`frame_response`] with the trace-context echo: a nonzero `span`
/// sets [`TRACE_FLAG`] on the status byte and inserts the span id
/// before the body; `span == 0` frames exactly like [`frame_response`].
pub fn frame_response_span(resp: &Response, span: u64, buf: &mut Vec<u8>) {
    let at = buf.len();
    buf.extend_from_slice(&[0; 4]); // length backpatched below
    let status_at = buf.len();
    match resp {
        Response::Acquired(a) => {
            buf.push(if a.won { STATUS_WIN } else { STATUS_LOST });
            buf.extend_from_slice(&a.epoch.to_le_bytes());
        }
        Response::Reset { epoch } => {
            buf.push(STATUS_RESET);
            buf.extend_from_slice(&epoch.to_le_bytes());
        }
        Response::Stats(s) => {
            buf.push(STATUS_STATS);
            for v in [
                s.keys,
                s.ops,
                s.wins,
                s.resets,
                s.registers,
                s.reclaimed,
                s.conns,
                s.refused,
            ] {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        Response::Metrics(text) => {
            buf.push(STATUS_METRICS);
            buf.extend_from_slice(text.as_bytes());
        }
        Response::Err(msg) => {
            buf.push(STATUS_ERR);
            buf.extend_from_slice(msg.as_bytes());
        }
    }
    if span != 0 {
        buf[status_at] |= TRACE_FLAG;
        buf.splice(status_at + 1..status_at + 1, span.to_le_bytes());
    }
    let len = (buf.len() - at - 4) as u32;
    buf[at..at + 4].copy_from_slice(&len.to_le_bytes());
}

fn u64_at(payload: &[u8], at: usize) -> io::Result<u64> {
    let bytes: [u8; 8] = payload
        .get(at..at + 8)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| invalid("frame payload truncated".to_string()))?;
    Ok(u64::from_le_bytes(bytes))
}

/// Decode a response payload (the bytes *inside* a frame), discarding
/// any trace-context echo (see [`decode_response_span`]).
pub fn decode_response(payload: &[u8]) -> io::Result<Response> {
    Ok(decode_response_span(payload)?.0)
}

/// Decode a response payload plus its echoed span id (0 when the
/// response was untraced).
pub fn decode_response_span(payload: &[u8]) -> io::Result<(Response, u64)> {
    let &raw = payload
        .first()
        .ok_or_else(|| invalid("empty response frame".to_string()))?;
    let (status, span, body_at) = if raw & TRACE_FLAG != 0 {
        let span = u64_at(payload, 1)?;
        if span == 0 {
            return Err(invalid(
                "traced response carries the reserved span 0".to_string(),
            ));
        }
        (raw & !TRACE_FLAG, span, 9usize)
    } else {
        (raw, 0, 1)
    };
    let rest = &payload[body_at..];
    let resp = match status {
        STATUS_LOST | STATUS_WIN => Response::Acquired(Acquired {
            won: status == STATUS_WIN,
            epoch: u64_at(payload, body_at)?,
        }),
        STATUS_RESET => Response::Reset {
            epoch: u64_at(payload, body_at)?,
        },
        STATUS_STATS => Response::Stats(SvcStats {
            keys: u64_at(payload, body_at)?,
            ops: u64_at(payload, body_at + 8)?,
            wins: u64_at(payload, body_at + 16)?,
            resets: u64_at(payload, body_at + 24)?,
            registers: u64_at(payload, body_at + 32)?,
            reclaimed: u64_at(payload, body_at + 40)?,
            conns: u64_at(payload, body_at + 48)?,
            refused: u64_at(payload, body_at + 56)?,
        }),
        STATUS_METRICS => Response::Metrics(String::from_utf8_lossy(rest).into_owned()),
        STATUS_ERR => Response::Err(String::from_utf8_lossy(rest).into_owned()),
        other => return Err(invalid(format!("unknown response status {other}"))),
    };
    Ok((resp, span))
}

/// Read one frame's payload into `buf` (reused across calls — steady
/// state does not reallocate once `buf` has grown to the working frame
/// size).
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary. A truncated
/// header or payload is `ErrorKind::UnexpectedEof`; a declared length
/// beyond [`MAX_PAYLOAD`] is `ErrorKind::InvalidData` (the stream is
/// poisoned — the caller must close the connection).
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> io::Result<Option<()>> {
    let mut header = [0u8; 4];
    let mut have = 0;
    while have < 4 {
        match r.read(&mut header[have..]) {
            Ok(0) if have == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "truncated frame header",
                ))
            }
            Ok(n) => have += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_PAYLOAD {
        return Err(oversized_payload(len));
    }
    buf.clear();
    buf.resize(len, 0);
    r.read_exact(buf)?;
    Ok(Some(()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(op: Op, key: &[u8]) {
        let mut frame = Vec::new();
        frame_request(op, key, &mut frame);
        let mut cursor = io::Cursor::new(frame);
        let mut payload = Vec::new();
        assert!(read_frame(&mut cursor, &mut payload).unwrap().is_some());
        let req = decode_request(&payload).unwrap();
        assert_eq!(req, Request { op, key, span: 0 });
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Op::Tas, b"jobs/backfill");
        round_trip_request(Op::Elect, b"leader/shard-7");
        round_trip_request(Op::Reset, b"jobs/backfill");
        round_trip_request(Op::Stats, b"");
        round_trip_request(Op::Metrics, b"");
        round_trip_request(Op::Tas, &[0xff; MAX_KEY]);
    }

    #[test]
    fn responses_round_trip() {
        let cases = [
            Response::Acquired(Acquired {
                won: true,
                epoch: 7,
            }),
            Response::Acquired(Acquired {
                won: false,
                epoch: u64::MAX,
            }),
            Response::Reset { epoch: 0 },
            Response::Stats(SvcStats {
                keys: 1,
                ops: 2,
                wins: 3,
                resets: 4,
                registers: 5,
                reclaimed: 6,
                conns: 7,
                refused: 8,
            }),
            Response::Metrics("rtas-metrics/2\nreactor.wake_writes 42\n".to_string()),
            Response::Err("kind mismatch".to_string()),
        ];
        for resp in cases {
            let mut frame = Vec::new();
            frame_response(&resp, &mut frame);
            let mut cursor = io::Cursor::new(frame);
            let mut payload = Vec::new();
            assert!(read_frame(&mut cursor, &mut payload).unwrap().is_some());
            assert_eq!(decode_response(&payload).unwrap(), resp);
        }
    }

    #[test]
    fn clean_eof_is_none_truncation_is_an_error() {
        let mut empty = io::Cursor::new(Vec::<u8>::new());
        let mut buf = Vec::new();
        assert!(read_frame(&mut empty, &mut buf).unwrap().is_none());

        // Header cut short.
        let mut cursor = io::Cursor::new(vec![5u8, 0]);
        let err = read_frame(&mut cursor, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        // Payload cut short.
        let mut frame = Vec::new();
        frame_request(Op::Tas, b"key", &mut frame);
        frame.truncate(frame.len() - 2);
        let mut cursor = io::Cursor::new(frame);
        let err = read_frame(&mut cursor, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_declared_length_is_invalid_data() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&((MAX_PAYLOAD as u32) + 1).to_le_bytes());
        let mut cursor = io::Cursor::new(frame);
        let mut buf = Vec::new();
        let err = read_frame(&mut cursor, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn malformed_request_payloads_are_rejected() {
        assert!(decode_request(&[]).is_err(), "empty frame");
        assert!(decode_request(&[99, b'k']).is_err(), "unknown opcode");
        assert!(decode_request(&[Op::Tas.code()]).is_err(), "empty key");
        assert!(decode_request(&[Op::Reset.code()]).is_err(), "empty key");
        let mut oversized = vec![Op::Tas.code()];
        oversized.resize(MAX_KEY + 2, b'x');
        assert!(decode_request(&oversized).is_err(), "oversized key");
        // STATS and METRICS need no key.
        assert!(decode_request(&[Op::Stats.code()]).is_ok());
        assert!(decode_request(&[Op::Metrics.code()]).is_ok());
    }

    #[test]
    fn malformed_response_payloads_are_rejected() {
        assert!(decode_response(&[]).is_err(), "empty frame");
        assert!(decode_response(&[77]).is_err(), "unknown status");
        assert!(decode_response(&[STATUS_WIN, 1, 2]).is_err(), "short epoch");
        assert!(decode_response(&[STATUS_STATS, 0]).is_err(), "short stats");
    }

    #[test]
    fn traced_requests_round_trip_with_their_span() {
        for (op, key, span) in [
            (Op::Tas, b"jobs/backfill".as_slice(), 0x1_0000_0001u64),
            (Op::Stats, b"".as_slice(), 1),
            (Op::Reset, b"k".as_slice(), u64::MAX),
        ] {
            let mut frame = Vec::new();
            frame_request_span(op, span, key, &mut frame);
            let mut cursor = io::Cursor::new(frame);
            let mut payload = Vec::new();
            assert!(read_frame(&mut cursor, &mut payload).unwrap().is_some());
            assert_eq!(payload[0], op.code() | TRACE_FLAG);
            assert_eq!(decode_request(&payload).unwrap(), Request { op, key, span });
        }
        // Span 0 means untraced: byte-identical to frame_request.
        let (mut plain, mut spanned) = (Vec::new(), Vec::new());
        frame_request(Op::Tas, b"k", &mut plain);
        frame_request_span(Op::Tas, 0, b"k", &mut spanned);
        assert_eq!(plain, spanned);
    }

    #[test]
    fn traced_responses_echo_the_span_and_plain_decode_strips_it() {
        let cases = [
            Response::Acquired(Acquired {
                won: true,
                epoch: 7,
            }),
            Response::Reset { epoch: 3 },
            Response::Stats(SvcStats::default()),
            Response::Metrics("rtas-metrics/2\n".to_string()),
            Response::Err("kind mismatch".to_string()),
        ];
        for resp in cases {
            let mut frame = Vec::new();
            frame_response_span(&resp, 0xabc, &mut frame);
            let payload = &frame[4..];
            assert_eq!(payload[0] & TRACE_FLAG, TRACE_FLAG);
            assert_eq!(
                decode_response_span(payload).unwrap(),
                (resp.clone(), 0xabc)
            );
            // Old-style decoding sees the same response, span dropped.
            assert_eq!(decode_response(payload).unwrap(), resp);
            // Span 0 frames identically to the untraced encoder.
            let (mut plain, mut spanned) = (Vec::new(), Vec::new());
            frame_response(&resp, &mut plain);
            frame_response_span(&resp, 0, &mut spanned);
            assert_eq!(plain, spanned);
            assert_eq!(decode_response_span(&plain[4..]).unwrap(), (resp, 0));
        }
    }

    #[test]
    fn flagged_frames_with_span_zero_are_malformed() {
        let mut req = vec![Op::Tas.code() | TRACE_FLAG];
        req.extend_from_slice(&0u64.to_le_bytes());
        req.push(b'k');
        assert!(decode_request(&req).is_err());
        let mut resp = vec![STATUS_RESET | TRACE_FLAG];
        resp.extend_from_slice(&0u64.to_le_bytes());
        resp.extend_from_slice(&5u64.to_le_bytes());
        assert!(decode_response(&resp).is_err());
        // And a flagged request too short to hold the span is truncated,
        // not a panic.
        assert!(decode_request(&[Op::Tas.code() | TRACE_FLAG, 1, 2]).is_err());
        assert!(decode_response(&[STATUS_WIN | TRACE_FLAG, 1]).is_err());
    }

    #[test]
    fn old_servers_would_reject_a_traced_probe_as_unknown_opcode() {
        // The negotiation contract: a server that predates the trace
        // extension sees the flagged STATS opcode (132) as unknown and
        // answers ERR over a healthy connection. A new server reports
        // genuinely-unknown flagged opcodes the same way.
        let mut probe = vec![Op::Stats.code() | TRACE_FLAG];
        probe.extend_from_slice(&1u64.to_le_bytes());
        assert!(decode_request(&probe).is_ok());
        let mut unknown = vec![99u8 | TRACE_FLAG];
        unknown.extend_from_slice(&1u64.to_le_bytes());
        let err = decode_request(&unknown).unwrap_err();
        assert!(err.to_string().contains("unknown opcode"), "{err}");
    }

    #[test]
    fn opcodes_round_trip_and_unknown_codes_do_not() {
        for op in [Op::Tas, Op::Elect, Op::Reset, Op::Stats, Op::Metrics] {
            assert_eq!(Op::from_code(op.code()), Some(op));
        }
        assert_eq!(Op::from_code(0), None);
        assert_eq!(Op::from_code(6), None);
    }
}
