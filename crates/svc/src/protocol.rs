//! The length-prefixed binary wire protocol.
//!
//! Every message — request or response — is one **frame**:
//!
//! ```text
//! [u32 LE payload length][payload bytes]
//! ```
//!
//! Request payload: `[u8 opcode][key bytes]` (the key is everything
//! after the opcode; [`Op::Stats`] ignores it). Response payload starts
//! with a status byte:
//!
//! | status | meaning | rest of payload |
//! |--------|---------|-----------------|
//! | 0 `LOST` / 1 `WIN` | arbitration verdict | `u64 LE` epoch |
//! | 2 `RESET` | recycle acknowledged | `u64 LE` newly opened epoch (0 = no such key) |
//! | 3 `ERR` | request refused | UTF-8 message |
//! | 4 `STATS` | server counters | 8 × `u64 LE`: keys, ops, wins, resets, registers, reclaimed, conns, refused |
//! | 5 `METRICS` | named metrics | UTF-8 `rtas-metrics/1` text exposition |
//!
//! Responses are returned **in request order** on each connection, so a
//! client may pipeline: write any number of request frames, then read
//! the same number of responses.
//!
//! Framing violations (a declared payload over [`MAX_PAYLOAD`], a
//! truncated frame) poison the stream — the server answers with an
//! `ERR` frame where it still can and closes the connection. *Clean*
//! frames that merely carry a bad request (unknown opcode, empty or
//! oversized key, kind mismatch) get an `ERR` response and the
//! connection stays usable.
//!
//! The **normative** specification — exact byte layouts, the `STATS`
//! counter table with units, error classes and their close-vs-continue
//! fates, and the pipelining guarantees — is `docs/WIRE.md` in the
//! repository root; this module and that document are kept in lockstep
//! (the repo's docs CI job link-checks one against the other).

use std::io::{self, Read};

/// Hard ceiling on a frame's payload, requests and responses alike. A
/// declared length beyond this is a framing violation, not a large
/// message.
pub const MAX_PAYLOAD: usize = 64 * 1024;

/// Longest permitted key, in bytes.
pub const MAX_KEY: usize = 4096;

/// Request opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Test-and-set on the key: `WIN` iff the caller set the bit.
    Tas,
    /// Leader election on the key: `WIN` iff the caller is the leader.
    Elect,
    /// Recycle the key's object for the next epoch (the *ack* of the
    /// current resolution).
    Reset,
    /// Server-wide counters; the key is ignored.
    Stats,
    /// The named-metrics text exposition (counters, gauges, latency
    /// histograms) from the observability plane; the key is ignored.
    Metrics,
}

impl Op {
    /// The opcode's wire byte.
    pub fn code(self) -> u8 {
        match self {
            Op::Tas => 1,
            Op::Elect => 2,
            Op::Reset => 3,
            Op::Stats => 4,
            Op::Metrics => 5,
        }
    }

    /// Parse a wire byte back into an opcode.
    pub fn from_code(code: u8) -> Option<Op> {
        match code {
            1 => Some(Op::Tas),
            2 => Some(Op::Elect),
            3 => Some(Op::Reset),
            4 => Some(Op::Stats),
            5 => Some(Op::Metrics),
            _ => None,
        }
    }
}

const STATUS_LOST: u8 = 0;
const STATUS_WIN: u8 = 1;
const STATUS_RESET: u8 = 2;
const STATUS_ERR: u8 = 3;
const STATUS_STATS: u8 = 4;
const STATUS_METRICS: u8 = 5;

/// The verdict of one arbitration request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Acquired {
    /// Whether this call won its key-epoch (at most one per epoch).
    pub won: bool,
    /// The key's epoch the call participated in.
    pub epoch: u64,
}

/// Server-wide counters, as returned by [`Op::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SvcStats {
    /// Live keys across all namespace shards.
    pub keys: u64,
    /// Arbitration operations served (TAS + ELECT), cumulative.
    pub ops: u64,
    /// Winning operations, cumulative — one per completed key-epoch.
    pub wins: u64,
    /// Epoch recycles performed (RESETs that found a key, plus lease
    /// reclamations), cumulative.
    pub resets: u64,
    /// Atomic registers held by all live keyed objects.
    pub registers: u64,
    /// Epochs recycled by the server itself because the lease on an
    /// admitted-but-never-acked epoch expired (a strict subset of
    /// `resets`). Zero unless the server was configured with a lease.
    pub reclaimed: u64,
    /// Connections currently being served (the connection answering a
    /// `STATS` request counts itself). Zero when the stats come from an
    /// in-process [`Namespace::stats`](crate::Namespace::stats) call —
    /// only the server's accept loop tracks connections.
    pub conns: u64,
    /// Connections refused because the server was at its `max_conns`
    /// ceiling, cumulative. Zero for in-process stats, as above.
    pub refused: u64,
}

/// A decoded request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request<'a> {
    /// The operation.
    pub op: Op,
    /// The key operated on (empty for [`Op::Stats`]).
    pub key: &'a [u8],
}

/// A decoded response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Verdict of a `TAS`/`ELECT`.
    Acquired(Acquired),
    /// `RESET` acknowledged; `epoch` is the newly opened epoch, or 0 if
    /// the key did not exist (nothing to recycle).
    Reset {
        /// Newly opened epoch (0 = no such key).
        epoch: u64,
    },
    /// `STATS` counters.
    Stats(SvcStats),
    /// `METRICS` text exposition (`rtas-metrics/1` key/value lines).
    Metrics(String),
    /// The request was refused; the connection remains usable.
    Err(String),
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// The framing-violation error for a declared length over
/// [`MAX_PAYLOAD`] — shared by [`read_frame`] and the incremental
/// [`FrameDecoder`](crate::conn::FrameDecoder) so both report the
/// violation identically.
pub(crate) fn oversized_payload(len: usize) -> io::Error {
    invalid(format!(
        "declared payload of {len} bytes exceeds the {MAX_PAYLOAD}-byte frame limit"
    ))
}

/// Append a complete request frame (length prefix included) to `buf`.
///
/// # Panics
///
/// Panics if `key` exceeds [`MAX_KEY`] — the limit is part of the
/// protocol, callers must not construct oversized keys.
pub fn frame_request(op: Op, key: &[u8], buf: &mut Vec<u8>) {
    assert!(
        key.len() <= MAX_KEY,
        "key of {} bytes exceeds MAX_KEY",
        key.len()
    );
    let len = 1 + key.len();
    buf.extend_from_slice(&(len as u32).to_le_bytes());
    buf.push(op.code());
    buf.extend_from_slice(key);
}

/// Decode a request payload (the bytes *inside* a frame).
pub fn decode_request(payload: &[u8]) -> io::Result<Request<'_>> {
    let (&code, key) = payload
        .split_first()
        .ok_or_else(|| invalid("empty request frame".to_string()))?;
    let op = Op::from_code(code).ok_or_else(|| invalid(format!("unknown opcode {code}")))?;
    if key.len() > MAX_KEY {
        return Err(invalid(format!(
            "key of {} bytes exceeds MAX_KEY",
            key.len()
        )));
    }
    if key.is_empty() && !matches!(op, Op::Stats | Op::Metrics) {
        return Err(invalid(format!("{op:?} requires a non-empty key")));
    }
    Ok(Request { op, key })
}

/// Append a complete response frame (length prefix included) to `buf`.
pub fn frame_response(resp: &Response, buf: &mut Vec<u8>) {
    let at = buf.len();
    buf.extend_from_slice(&[0; 4]); // length backpatched below
    match resp {
        Response::Acquired(a) => {
            buf.push(if a.won { STATUS_WIN } else { STATUS_LOST });
            buf.extend_from_slice(&a.epoch.to_le_bytes());
        }
        Response::Reset { epoch } => {
            buf.push(STATUS_RESET);
            buf.extend_from_slice(&epoch.to_le_bytes());
        }
        Response::Stats(s) => {
            buf.push(STATUS_STATS);
            for v in [
                s.keys,
                s.ops,
                s.wins,
                s.resets,
                s.registers,
                s.reclaimed,
                s.conns,
                s.refused,
            ] {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        Response::Metrics(text) => {
            buf.push(STATUS_METRICS);
            buf.extend_from_slice(text.as_bytes());
        }
        Response::Err(msg) => {
            buf.push(STATUS_ERR);
            buf.extend_from_slice(msg.as_bytes());
        }
    }
    let len = (buf.len() - at - 4) as u32;
    buf[at..at + 4].copy_from_slice(&len.to_le_bytes());
}

fn u64_at(payload: &[u8], at: usize) -> io::Result<u64> {
    let bytes: [u8; 8] = payload
        .get(at..at + 8)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| invalid("response truncated".to_string()))?;
    Ok(u64::from_le_bytes(bytes))
}

/// Decode a response payload (the bytes *inside* a frame).
pub fn decode_response(payload: &[u8]) -> io::Result<Response> {
    let (&status, rest) = payload
        .split_first()
        .ok_or_else(|| invalid("empty response frame".to_string()))?;
    match status {
        STATUS_LOST | STATUS_WIN => Ok(Response::Acquired(Acquired {
            won: status == STATUS_WIN,
            epoch: u64_at(payload, 1)?,
        })),
        STATUS_RESET => Ok(Response::Reset {
            epoch: u64_at(payload, 1)?,
        }),
        STATUS_STATS => Ok(Response::Stats(SvcStats {
            keys: u64_at(payload, 1)?,
            ops: u64_at(payload, 9)?,
            wins: u64_at(payload, 17)?,
            resets: u64_at(payload, 25)?,
            registers: u64_at(payload, 33)?,
            reclaimed: u64_at(payload, 41)?,
            conns: u64_at(payload, 49)?,
            refused: u64_at(payload, 57)?,
        })),
        STATUS_METRICS => Ok(Response::Metrics(
            String::from_utf8_lossy(rest).into_owned(),
        )),
        STATUS_ERR => Ok(Response::Err(String::from_utf8_lossy(rest).into_owned())),
        other => Err(invalid(format!("unknown response status {other}"))),
    }
}

/// Read one frame's payload into `buf` (reused across calls — steady
/// state does not reallocate once `buf` has grown to the working frame
/// size).
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary. A truncated
/// header or payload is `ErrorKind::UnexpectedEof`; a declared length
/// beyond [`MAX_PAYLOAD`] is `ErrorKind::InvalidData` (the stream is
/// poisoned — the caller must close the connection).
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> io::Result<Option<()>> {
    let mut header = [0u8; 4];
    let mut have = 0;
    while have < 4 {
        match r.read(&mut header[have..]) {
            Ok(0) if have == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "truncated frame header",
                ))
            }
            Ok(n) => have += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_PAYLOAD {
        return Err(oversized_payload(len));
    }
    buf.clear();
    buf.resize(len, 0);
    r.read_exact(buf)?;
    Ok(Some(()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(op: Op, key: &[u8]) {
        let mut frame = Vec::new();
        frame_request(op, key, &mut frame);
        let mut cursor = io::Cursor::new(frame);
        let mut payload = Vec::new();
        assert!(read_frame(&mut cursor, &mut payload).unwrap().is_some());
        let req = decode_request(&payload).unwrap();
        assert_eq!(req, Request { op, key });
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Op::Tas, b"jobs/backfill");
        round_trip_request(Op::Elect, b"leader/shard-7");
        round_trip_request(Op::Reset, b"jobs/backfill");
        round_trip_request(Op::Stats, b"");
        round_trip_request(Op::Metrics, b"");
        round_trip_request(Op::Tas, &[0xff; MAX_KEY]);
    }

    #[test]
    fn responses_round_trip() {
        let cases = [
            Response::Acquired(Acquired {
                won: true,
                epoch: 7,
            }),
            Response::Acquired(Acquired {
                won: false,
                epoch: u64::MAX,
            }),
            Response::Reset { epoch: 0 },
            Response::Stats(SvcStats {
                keys: 1,
                ops: 2,
                wins: 3,
                resets: 4,
                registers: 5,
                reclaimed: 6,
                conns: 7,
                refused: 8,
            }),
            Response::Metrics("rtas-metrics/1\nreactor.wake_writes 42\n".to_string()),
            Response::Err("kind mismatch".to_string()),
        ];
        for resp in cases {
            let mut frame = Vec::new();
            frame_response(&resp, &mut frame);
            let mut cursor = io::Cursor::new(frame);
            let mut payload = Vec::new();
            assert!(read_frame(&mut cursor, &mut payload).unwrap().is_some());
            assert_eq!(decode_response(&payload).unwrap(), resp);
        }
    }

    #[test]
    fn clean_eof_is_none_truncation_is_an_error() {
        let mut empty = io::Cursor::new(Vec::<u8>::new());
        let mut buf = Vec::new();
        assert!(read_frame(&mut empty, &mut buf).unwrap().is_none());

        // Header cut short.
        let mut cursor = io::Cursor::new(vec![5u8, 0]);
        let err = read_frame(&mut cursor, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        // Payload cut short.
        let mut frame = Vec::new();
        frame_request(Op::Tas, b"key", &mut frame);
        frame.truncate(frame.len() - 2);
        let mut cursor = io::Cursor::new(frame);
        let err = read_frame(&mut cursor, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_declared_length_is_invalid_data() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&((MAX_PAYLOAD as u32) + 1).to_le_bytes());
        let mut cursor = io::Cursor::new(frame);
        let mut buf = Vec::new();
        let err = read_frame(&mut cursor, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn malformed_request_payloads_are_rejected() {
        assert!(decode_request(&[]).is_err(), "empty frame");
        assert!(decode_request(&[99, b'k']).is_err(), "unknown opcode");
        assert!(decode_request(&[Op::Tas.code()]).is_err(), "empty key");
        assert!(decode_request(&[Op::Reset.code()]).is_err(), "empty key");
        let mut oversized = vec![Op::Tas.code()];
        oversized.resize(MAX_KEY + 2, b'x');
        assert!(decode_request(&oversized).is_err(), "oversized key");
        // STATS and METRICS need no key.
        assert!(decode_request(&[Op::Stats.code()]).is_ok());
        assert!(decode_request(&[Op::Metrics.code()]).is_ok());
    }

    #[test]
    fn malformed_response_payloads_are_rejected() {
        assert!(decode_response(&[]).is_err(), "empty frame");
        assert!(decode_response(&[77]).is_err(), "unknown status");
        assert!(decode_response(&[STATUS_WIN, 1, 2]).is_err(), "short epoch");
        assert!(decode_response(&[STATUS_STATS, 0]).is_err(), "short stats");
    }

    #[test]
    fn opcodes_round_trip_and_unknown_codes_do_not() {
        for op in [Op::Tas, Op::Elect, Op::Reset, Op::Stats, Op::Metrics] {
            assert_eq!(Op::from_code(op.code()), Some(op));
        }
        assert_eq!(Op::from_code(0), None);
        assert_eq!(Op::from_code(6), None);
    }
}
