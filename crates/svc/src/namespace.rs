//! Keyed arbitration namespaces: one epoch-recycled object per key.
//!
//! A [`Namespace`] maps byte-string keys to recyclable arbitration
//! objects ([`rtas::TestAndSet`] / [`rtas::LeaderElection`] behind the
//! [`Arbiter`] vtable). Keys hash (FNV-1a) to **shards** — each shard
//! is an independently locked map in its own pair of cache lines, so
//! traffic on unrelated keys never contends on one lock or
//! false-shares a header.
//!
//! Each key advances through **epochs**, generalizing the `rtas-load`
//! arena's release/acquire recycling to *dynamic* membership with an
//! explicit ack:
//!
//! * an operation is **admitted** into the key's open epoch by a CAS on
//!   a packed state word (`resetting bit | epoch | entered count`) —
//!   at most `capacity` admissions per epoch, every further caller is
//!   turned away with a loss verdict (it is certainly not the winner;
//!   the verdict linearizes after the eventual winner, exactly like the
//!   fast path of [`rtas::TestAndSet::test_and_set`]);
//! * admitted operations run the real protocol and then bump a
//!   `finished` counter with release ordering;
//! * a **reset** (the client's ack, the `RESET` wire op) first claims
//!   the resetting bit — closing admission — then waits until
//!   `finished` has caught up with the admitted count (the object is
//!   quiescent), recycles the object with its allocation-free
//!   [`Arbiter::reset`], and opens the next epoch with a release store
//!   that every later admission reads with acquire ordering. The reset
//!   therefore happens-before every next-epoch operation — the
//!   quiescence contract of [`rtas::native::NativeMemory::reset`]
//!   discharged by construction, with no static participant groups.
//!
//! The steady-state op path — lookup of an existing key, admission,
//! protocol run, finish — performs **zero allocations** beyond the
//! protocol state machines themselves (pinned by the counting-allocator
//! test in `tests/alloc_steady.rs`); only first-contact key creation
//! allocates.
//!
//! ## Leases: reclaiming epochs whose holders vanished
//!
//! The explicit `RESET` ack makes a hostile client dangerous: a holder
//! that disconnects mid-epoch (or stalls forever) would leave its key's
//! epoch open for good — every later arrival drains into loss verdicts
//! at the full gate and the key never recycles. A namespace built
//! [`Namespace::with_lease`] arms a **lease** on each epoch at its
//! *first* admission: once the lease expires without a `RESET`, the
//! server reclaims the epoch itself — [`Entry`] recycles through the
//! exact begin/end reset path a client ack takes (quiescence included),
//! so reclamation can never mint a second winner; it merely retires an
//! epoch whose single winner (every admitted epoch resolves exactly one)
//! was never acked. Reclamations are counted separately
//! ([`SvcStats::reclaimed`]) and triggered two ways: the server's
//! reaper thread sweeps [`Namespace::reclaim_expired`], and a full
//! epoch heals lazily — an arrival that finds the gate full checks the
//! lease inline and re-admits into the fresh epoch. Idle keys are never
//! reclaimed: an epoch with zero admissions has no lease. Symmetrically,
//! a `RESET` that arrives for a zero-admission epoch (a byzantine
//! duplicate ack, or an ack racing a reclamation) is a **no-op** — it
//! returns the open epoch without recycling, so replayed acks cannot
//! burn epochs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use rtas::native::NativeRunner;
use rtas::sync::{Backoff, CachePadded};
use rtas::{Arbiter, Backend, LeaderElection, MonotonicClock, TestAndSet};
use rtas_obs::{EventKind, FlightRecorder, Lane};

use crate::protocol::{Acquired, SvcStats};

/// Which arbitration semantics a key carries. Fixed at first contact;
/// mixing kinds on one key is refused with [`NsError::KindMismatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Test-and-set: winner = the call that set the bit.
    Tas,
    /// Leader election: winner = the elected leader.
    Elect,
}

impl Kind {
    /// Stable lowercase label (error messages, stats).
    pub fn label(self) -> &'static str {
        match self {
            Kind::Tas => "tas",
            Kind::Elect => "elect",
        }
    }
}

/// Why a namespace operation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NsError {
    /// The key exists with different arbitration semantics.
    KindMismatch {
        /// The kind the key was created with.
        existing: Kind,
        /// The kind this request asked for.
        requested: Kind,
    },
    /// Creating the key would exceed the namespace's key ceiling.
    KeyLimit {
        /// The configured ceiling.
        max_keys: usize,
    },
}

impl std::fmt::Display for NsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NsError::KindMismatch {
                existing,
                requested,
            } => write!(
                f,
                "kind mismatch: key holds a {} object, request asked for {}",
                existing.label(),
                requested.label()
            ),
            NsError::KeyLimit { max_keys } => {
                write!(f, "key limit reached: namespace holds {max_keys} keys")
            }
        }
    }
}

impl std::error::Error for NsError {}

/// Low bits of the state word: admissions into the open epoch.
const ENTERED_BITS: u32 = 20;
const ENTERED_MASK: u64 = (1 << ENTERED_BITS) - 1;
/// Top bit: a reset is in flight — admission is closed.
const RESETTING: u64 = 1 << 63;

/// Largest per-key-epoch capacity a [`Namespace`] accepts: the
/// admission count must fit the state word's 20-bit entered field.
pub const MAX_CAPACITY: usize = ENTERED_MASK as usize;

/// Default ceiling on live keys ([`Namespace::new`],
/// [`crate::SvcConfig::max_keys`]): high enough for any reasonable
/// workload, low enough that a key-churning client cannot grow an
/// unauthenticated server without bound.
pub const DEFAULT_MAX_KEYS: usize = 1 << 20;

/// The per-key epoch gate: packed `resetting | epoch | entered` word
/// plus a `finished` counter (see the [module docs](self) for the
/// protocol).
#[derive(Debug)]
struct EpochGate {
    word: AtomicU64,
    finished: AtomicU64,
    /// Lease deadline for the open epoch, in nanoseconds on the owning
    /// namespace's clock; written by the epoch's *first* admission
    /// (store-before-CAS, published by the admission CAS's release), so
    /// any acquire load of the word that observes `entered > 0` also
    /// observes this epoch's deadline. Meaningless while `entered == 0`.
    lease_deadline_ns: AtomicU64,
}

enum Admission {
    /// Admitted into `epoch`; the caller must run the protocol and then
    /// call [`EpochGate::finish`].
    Admitted { epoch: u64 },
    /// Epoch already has `capacity` participants; the caller loses
    /// without touching the object (and must *not* call `finish`).
    Full { epoch: u64 },
}

impl EpochGate {
    fn new() -> Self {
        EpochGate {
            word: AtomicU64::new(0),
            finished: AtomicU64::new(0),
            lease_deadline_ns: AtomicU64::new(0),
        }
    }

    fn epoch_of(word: u64) -> u64 {
        (word & !RESETTING) >> ENTERED_BITS
    }

    /// The currently open epoch.
    fn epoch(&self) -> u64 {
        Self::epoch_of(self.word.load(Ordering::Acquire))
    }

    /// Admit into the open epoch. `now_ns`/`lease_ns` arm the lease on
    /// the epoch's first admission; `lease_ns == 0` disables leasing
    /// (and `now_ns` goes unread — the hot path pays no clock read).
    fn admit(&self, capacity: u64, now_ns: u64, lease_ns: u64) -> Admission {
        let mut backoff = Backoff::new();
        loop {
            let w = self.word.load(Ordering::Acquire);
            if w & RESETTING != 0 {
                backoff.snooze();
                continue;
            }
            if w & ENTERED_MASK >= capacity {
                return Admission::Full {
                    epoch: Self::epoch_of(w),
                };
            }
            if lease_ns != 0 && w & ENTERED_MASK == 0 {
                // First admission arms the lease. Store BEFORE the CAS:
                // the CAS's release publishes it, so a reclaimer that
                // sees `entered > 0` sees this epoch's deadline, never a
                // stale one.
                self.lease_deadline_ns
                    .store(now_ns.saturating_add(lease_ns), Ordering::Relaxed);
            }
            if self
                .word
                .compare_exchange_weak(w, w + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Admission::Admitted {
                    epoch: Self::epoch_of(w),
                };
            }
        }
    }

    fn finish(&self) {
        self.finished.fetch_add(1, Ordering::Release);
    }

    /// Close admission and wait for quiescence; returns the epoch being
    /// retired, or `None` if the open epoch has **zero admissions** —
    /// there is nothing to retire, and recycling anyway would let a
    /// replayed (byzantine duplicate) `RESET` burn epochs. The caller
    /// recycles the object, then calls [`EpochGate::end_reset`].
    fn begin_reset(&self) -> Option<u64> {
        let mut backoff = Backoff::new();
        let w = loop {
            let w = self.word.load(Ordering::Acquire);
            if w & RESETTING != 0 {
                // A concurrent reset is retiring this epoch; wait for it,
                // then look again at the (fresh) epoch it opened.
                backoff.snooze();
                continue;
            }
            if w & ENTERED_MASK == 0 {
                return None;
            }
            if self
                .word
                .compare_exchange_weak(w, w | RESETTING, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break w;
            }
        };
        self.quiesce(w & ENTERED_MASK);
        Some(Self::epoch_of(w))
    }

    /// [`EpochGate::begin_reset`], but only if the open epoch's lease
    /// has expired at `now_ns` — the server-side reclamation trigger.
    /// Returns the epoch to retire, claimed and quiescent, or `None`
    /// (idle epoch, unexpired lease, or a concurrent reset already in
    /// flight — which is itself the progress we wanted).
    fn begin_reclaim(&self, now_ns: u64) -> Option<u64> {
        loop {
            let w = self.word.load(Ordering::Acquire);
            if w & RESETTING != 0 || w & ENTERED_MASK == 0 {
                return None;
            }
            // Read after the acquire load above: `entered > 0` means the
            // first admission's CAS is visible, and with it the deadline
            // it stored (store-before-CAS on the admitting side).
            let deadline = self.lease_deadline_ns.load(Ordering::Relaxed);
            if now_ns < deadline {
                return None;
            }
            if self
                .word
                .compare_exchange_weak(w, w | RESETTING, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.quiesce(w & ENTERED_MASK);
                return Some(Self::epoch_of(w));
            }
        }
    }

    /// Wait until every admitted call of the claimed epoch has finished.
    fn quiesce(&self, entered: u64) {
        let mut backoff = Backoff::new();
        while self.finished.load(Ordering::Acquire) != entered {
            backoff.snooze();
        }
    }

    /// Publish the recycled object and open epoch `old + 1`; returns
    /// the newly opened epoch.
    fn end_reset(&self, old_epoch: u64) -> u64 {
        self.finished.store(0, Ordering::Relaxed);
        self.word
            .store((old_epoch + 1) << ENTERED_BITS, Ordering::Release);
        old_epoch + 1
    }
}

/// One key's state: the recyclable object behind the [`Arbiter`]
/// vtable and its epoch gate. Cumulative counters live on the key's
/// *shard* (`ShardCounters`), not the entry — `stats()` then reads
/// a handful of atomics per shard instead of walking every key under
/// its lock.
pub struct Entry {
    kind: Kind,
    arbiter: Box<dyn Arbiter>,
    gate: EpochGate,
}

impl std::fmt::Debug for Entry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Entry")
            .field("kind", &self.kind)
            .field("backend", &self.arbiter.backend())
            .field("capacity", &self.arbiter.capacity())
            .field("epoch", &self.epoch())
            .finish()
    }
}

impl Entry {
    fn new(kind: Kind, backend: Backend, capacity: usize) -> Self {
        let arbiter: Box<dyn Arbiter> = match kind {
            Kind::Tas => Box::new(TestAndSet::with_backend(backend, capacity)),
            Kind::Elect => Box::new(LeaderElection::with_backend(backend, capacity)),
        };
        Entry {
            kind,
            arbiter,
            gate: EpochGate::new(),
        }
    }

    /// The key's arbitration semantics.
    pub fn kind(&self) -> Kind {
        self.kind
    }

    /// The currently open epoch.
    pub fn epoch(&self) -> u64 {
        self.gate.epoch()
    }

    fn acquire(
        &self,
        counters: &ShardCounters,
        runner: &mut NativeRunner,
        now_ns: u64,
        lease_ns: u64,
        key_hash: u64,
        trace: Option<&FlightRecorder>,
    ) -> Acquired {
        counters.ops.fetch_add(1, Ordering::Relaxed);
        loop {
            match self
                .gate
                .admit(self.arbiter.capacity() as u64, now_ns, lease_ns)
            {
                // Over capacity: certainly not the winner — the loss
                // verdict linearizes right after the epoch's eventual
                // winner. Unless the full epoch's lease already expired:
                // then the holder is gone, reclaim inline and re-admit
                // into the fresh epoch (traffic heals a wedged key
                // without waiting for the reaper sweep).
                Admission::Full { epoch } => {
                    if lease_ns != 0 && self.reclaim(counters, now_ns, key_hash, trace) {
                        continue;
                    }
                    return Acquired { won: false, epoch };
                }
                Admission::Admitted { epoch } => {
                    let won = self.arbiter.try_acquire(runner);
                    if won {
                        counters.wins.fetch_add(1, Ordering::Relaxed);
                    }
                    self.gate.finish();
                    return Acquired { won, epoch };
                }
            }
        }
    }

    /// Recycle for the next epoch (the client's `RESET` ack). A
    /// zero-admission open epoch is left untouched — the ack is
    /// idempotent — and the open epoch is returned unchanged.
    fn recycle(&self, counters: &ShardCounters) -> u64 {
        match self.gate.begin_reset() {
            Some(old) => {
                self.arbiter.reset();
                counters.resets.fetch_add(1, Ordering::Relaxed);
                self.gate.end_reset(old)
            }
            None => self.gate.epoch(),
        }
    }

    /// Reclaim the open epoch if its lease has expired at `now_ns`;
    /// `true` if an epoch was retired. Same quiescent recycle path as a
    /// client ack — a reclamation can never produce a second winner.
    /// Each reclamation lands a [`EventKind::LeaseReclaim`] record
    /// (retired epoch + key hash) on the recorder's reclaim lane, so a
    /// flight-recorder dump accounts for every `reclaimed` tick.
    fn reclaim(
        &self,
        counters: &ShardCounters,
        now_ns: u64,
        key_hash: u64,
        trace: Option<&FlightRecorder>,
    ) -> bool {
        match self.gate.begin_reclaim(now_ns) {
            Some(old) => {
                self.arbiter.reset();
                self.gate.end_reset(old);
                counters.resets.fetch_add(1, Ordering::Relaxed);
                counters.reclaimed.fetch_add(1, Ordering::Relaxed);
                if let Some(rec) = trace {
                    rec.record(Lane::Reclaim, EventKind::LeaseReclaim, 0, old, key_hash);
                }
                true
            }
            None => false,
        }
    }
}

/// Per-shard cumulative counters: relaxed increments on the hot path,
/// relaxed snapshot loads in [`Namespace::stats`]. A `STATS` request
/// therefore never takes a shard lock and never stalls a TAS/ELECT —
/// the same lock-free read discipline the epoch gate already uses for
/// recycling. Every epoch advance (client ack or lease reclamation)
/// bumps `resets`, so `resets` equals the sum of all live keys' epochs.
#[derive(Debug, Default)]
struct ShardCounters {
    ops: AtomicU64,
    wins: AtomicU64,
    resets: AtomicU64,
    registers: AtomicU64,
    reclaimed: AtomicU64,
}

#[derive(Debug)]
struct NsShard {
    map: RwLock<HashMap<Box<[u8]>, Arc<Entry>>>,
    counters: ShardCounters,
}

/// The sharded keyed namespace. See the [module docs](self).
#[derive(Debug)]
pub struct Namespace {
    shards: Vec<CachePadded<NsShard>>,
    backend: Backend,
    capacity: usize,
    max_keys: usize,
    /// Live keys across all shards (maintained under the shard write
    /// locks, read lock-free by the admission check — the ceiling may
    /// overshoot by at most one in-flight creation per shard).
    key_count: AtomicUsize,
    /// Lease duration in nanoseconds for admitted epochs; `0` disables
    /// reclamation entirely (the default — the hot path then never
    /// reads the clock).
    lease_ns: u64,
    /// The namespace's monotonic clock; all lease deadlines are
    /// nanosecond offsets from its origin. When a flight recorder is
    /// attached the recorder's clock is adopted, so lease deadlines and
    /// trace timestamps share one axis.
    clock: MonotonicClock,
    /// Flight recorder for lease-reclaim events, if tracing is wired up
    /// ([`Namespace::attach_recorder`]).
    trace: Option<Arc<FlightRecorder>>,
}

/// FNV-1a: tiny, allocation-free, and deterministic — the shard choice
/// must not depend on `std`'s per-process `RandomState`. Also the key
/// fingerprint carried by flight-recorder events (`ArbiterVerdict`,
/// `LeaseReclaim`), so a trace can be joined against keys without
/// storing variable-length bytes in fixed-size records.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl Namespace {
    /// A namespace whose keyed objects run `backend` and admit up to
    /// `capacity` participants per epoch, striped over `shards`
    /// independently locked shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`, `capacity == 0`, or `capacity` exceeds
    /// [`MAX_CAPACITY`] (the gate's admission-counter width).
    pub fn new(backend: Backend, shards: usize, capacity: usize) -> Self {
        Self::with_lease(backend, shards, capacity, DEFAULT_MAX_KEYS, None)
    }

    /// [`Namespace::new`] with an explicit key ceiling: first contact
    /// with a fresh key is refused with [`NsError::KeyLimit`] once
    /// `max_keys` keys are live, so a client inventing endless keys
    /// cannot grow the server's memory without bound.
    ///
    /// # Panics
    ///
    /// Panics on the [`Namespace::new`] conditions, or if
    /// `max_keys == 0`.
    pub fn with_max_keys(
        backend: Backend,
        shards: usize,
        capacity: usize,
        max_keys: usize,
    ) -> Self {
        Self::with_lease(backend, shards, capacity, max_keys, None)
    }

    /// [`Namespace::with_max_keys`] plus an admission lease: when
    /// `lease` is `Some`, an epoch whose first admission happened more
    /// than `lease` ago and that was never acked with `RESET` becomes
    /// eligible for server-side reclamation — via [`Self::reclaim_expired`]
    /// (the reaper sweep) or lazily when a full epoch turns admission
    /// away. `None` keeps the namespace clock-free (no lease, nothing
    /// is ever reclaimed).
    ///
    /// # Panics
    ///
    /// Panics on the [`Namespace::with_max_keys`] conditions, or if
    /// `lease` is `Some` but zero (use `None` to disable) or overflows
    /// a `u64` nanosecond count.
    pub fn with_lease(
        backend: Backend,
        shards: usize,
        capacity: usize,
        max_keys: usize,
        lease: Option<Duration>,
    ) -> Self {
        assert!(shards >= 1, "namespace needs at least one shard");
        assert!(capacity >= 1, "namespace needs capacity of at least 1");
        assert!(
            capacity <= MAX_CAPACITY,
            "capacity {capacity} exceeds the admission counter width \
             (MAX_CAPACITY = {MAX_CAPACITY})"
        );
        assert!(max_keys >= 1, "namespace needs room for at least one key");
        let lease_ns = match lease {
            None => 0,
            Some(d) => {
                let ns = u64::try_from(d.as_nanos()).expect("lease overflows u64 nanoseconds");
                assert!(ns > 0, "zero lease is ambiguous: use None to disable");
                ns
            }
        };
        Namespace {
            shards: (0..shards)
                .map(|_| {
                    CachePadded(NsShard {
                        map: RwLock::new(HashMap::new()),
                        counters: ShardCounters::default(),
                    })
                })
                .collect(),
            backend,
            capacity,
            max_keys,
            key_count: AtomicUsize::new(0),
            lease_ns,
            clock: MonotonicClock::new(),
            trace: None,
        }
    }

    /// Wire a flight recorder in: lease reclamations emit
    /// [`EventKind::LeaseReclaim`] events, and the namespace adopts the
    /// recorder's clock so lease deadlines and trace timestamps share
    /// one origin. Call before serving traffic (the clock origin moves).
    pub fn attach_recorder(&mut self, recorder: Arc<FlightRecorder>) {
        self.clock = *recorder.clock();
        self.trace = Some(recorder);
    }

    /// Number of namespace shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Participants admitted per key-epoch.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Ceiling on live keys across all shards.
    pub fn max_keys(&self) -> usize {
        self.max_keys
    }

    /// The algorithm backing every keyed object.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The admission lease, if reclamation is enabled.
    pub fn lease(&self) -> Option<Duration> {
        (self.lease_ns != 0).then(|| Duration::from_nanos(self.lease_ns))
    }

    /// Nanoseconds elapsed on the namespace's own clock. Saturates at
    /// `u64::MAX` (≈ 584 years of uptime).
    fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// The attached flight recorder, if any — only reclaim events are
    /// recorded *inside* the namespace; per-request events are the
    /// connection layer's job (it knows lanes and sampling).
    fn recorder(&self) -> Option<&FlightRecorder> {
        self.trace.as_deref().filter(|r| r.enabled())
    }

    fn shard_of(&self, key: &[u8]) -> &NsShard {
        &self.shards[(fnv1a(key) % self.shards.len() as u64) as usize].0
    }

    /// The entry for `key`, if it exists (steady state: read lock + Arc
    /// clone, no allocation).
    pub fn lookup(&self, key: &[u8]) -> Option<Arc<Entry>> {
        self.shard_of(key).map.read().unwrap().get(key).cloned()
    }

    fn get_or_create(
        &self,
        shard: &NsShard,
        kind: Kind,
        key: &[u8],
    ) -> Result<Arc<Entry>, NsError> {
        if let Some(entry) = shard.map.read().unwrap().get(key).cloned() {
            return if entry.kind == kind {
                Ok(entry)
            } else {
                Err(NsError::KindMismatch {
                    existing: entry.kind,
                    requested: kind,
                })
            };
        }
        let mut map = shard.map.write().unwrap();
        if let Some(entry) = map.get(key) {
            // Lost the creation race; the other creator picked the kind.
            return if entry.kind == kind {
                Ok(Arc::clone(entry))
            } else {
                Err(NsError::KindMismatch {
                    existing: entry.kind,
                    requested: kind,
                })
            };
        }
        if self.key_count.load(Ordering::Relaxed) >= self.max_keys {
            return Err(NsError::KeyLimit {
                max_keys: self.max_keys,
            });
        }
        let entry = Arc::new(Entry::new(kind, self.backend, self.capacity));
        // Keys are never evicted, so accumulating registers at creation
        // keeps the counter equal to the sum over all live objects.
        shard
            .counters
            .registers
            .fetch_add(entry.arbiter.registers(), Ordering::Relaxed);
        map.insert(key.into(), Arc::clone(&entry));
        self.key_count.fetch_add(1, Ordering::Relaxed);
        Ok(entry)
    }

    /// One arbitration operation on `key` (created at first contact
    /// with `kind` semantics): participate in the key's open epoch and
    /// return the verdict.
    pub fn acquire(
        &self,
        kind: Kind,
        key: &[u8],
        runner: &mut NativeRunner,
    ) -> Result<Acquired, NsError> {
        // Read the clock only when a lease is armed: the disabled path
        // stays clock-free (and allocation-free — see tests/alloc_steady).
        let now_ns = if self.lease_ns != 0 { self.now_ns() } else { 0 };
        let key_hash = fnv1a(key);
        let shard = &self.shards[(key_hash % self.shards.len() as u64) as usize].0;
        Ok(self.get_or_create(shard, kind, key)?.acquire(
            &shard.counters,
            runner,
            now_ns,
            self.lease_ns,
            key_hash,
            self.recorder(),
        ))
    }

    /// Recycle `key`'s object for its next epoch (the resolution ack).
    /// Returns the newly opened epoch, or `None` if the key does not
    /// exist. Waits for the in-flight operations of the epoch being
    /// retired; admission re-opens only after the allocation-free reset
    /// is published (release/acquire — see the [module docs](self)).
    pub fn reset(&self, key: &[u8]) -> Option<u64> {
        let shard = self.shard_of(key);
        let entry = shard.map.read().unwrap().get(key).cloned()?;
        Some(entry.recycle(&shard.counters))
    }

    /// One reclamation sweep: retire every key-epoch whose lease has
    /// expired (admitted, never acked, past the deadline). Returns the
    /// number of epochs reclaimed. A no-op (always `0`) when the
    /// namespace was built without a lease.
    pub fn reclaim_expired(&self) -> u64 {
        if self.lease_ns == 0 {
            return 0;
        }
        let now_ns = self.now_ns();
        let mut reclaimed = 0;
        for shard in &self.shards {
            // Collect under the read lock, reclaim outside it: reclaim
            // quiesces in-flight admissions and must not stall lookups.
            // The key hash rides along so reclaim events identify keys.
            let entries: Vec<(u64, Arc<Entry>)> = shard
                .0
                .map
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (fnv1a(k), Arc::clone(v)))
                .collect();
            for (key_hash, entry) in entries {
                reclaimed +=
                    entry.reclaim(&shard.0.counters, now_ns, key_hash, self.recorder()) as u64;
            }
        }
        reclaimed
    }

    /// Aggregate counters over every shard — lock-free: a handful of
    /// relaxed atomic loads per shard plus the global key count, so a
    /// `STATS` request never blocks behind (or stalls) the arbitration
    /// hot path. The snapshot is not atomic across counters: under
    /// concurrent traffic, individual counters may be skewed by the
    /// operations in flight, which is the usual (and here acceptable)
    /// monitoring-read semantics. The connection gauges
    /// ([`SvcStats::conns`], [`SvcStats::refused`]) are left zero —
    /// only the server's accept loop knows them.
    pub fn stats(&self) -> SvcStats {
        let mut stats = SvcStats {
            keys: self.key_count.load(Ordering::Relaxed) as u64,
            ..SvcStats::default()
        };
        for shard in &self.shards {
            let c = &shard.0.counters;
            stats.ops += c.ops.load(Ordering::Relaxed);
            stats.wins += c.wins.load(Ordering::Relaxed);
            stats.resets += c.resets.load(Ordering::Relaxed);
            stats.registers += c.registers.load(Ordering::Relaxed);
            stats.reclaimed += c.reclaimed.load(Ordering::Relaxed);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_key_wins_then_loses_until_reset() {
        let ns = Namespace::new(Backend::LogStar, 2, 4);
        let mut runner = NativeRunner::new();
        let first = ns.acquire(Kind::Tas, b"job/1", &mut runner).unwrap();
        assert!(first.won);
        assert_eq!(first.epoch, 0);
        for _ in 0..6 {
            // Losses both under and over capacity.
            assert!(!ns.acquire(Kind::Tas, b"job/1", &mut runner).unwrap().won);
        }
        assert_eq!(ns.reset(b"job/1"), Some(1));
        let next = ns.acquire(Kind::Tas, b"job/1", &mut runner).unwrap();
        assert!(next.won, "fresh epoch after reset");
        assert_eq!(next.epoch, 1);
    }

    #[test]
    fn elect_and_tas_kinds_do_not_mix_on_one_key() {
        let ns = Namespace::new(Backend::Combined, 1, 2);
        let mut runner = NativeRunner::new();
        assert!(ns.acquire(Kind::Elect, b"leader", &mut runner).unwrap().won);
        let err = ns.acquire(Kind::Tas, b"leader", &mut runner).unwrap_err();
        assert_eq!(
            err,
            NsError::KindMismatch {
                existing: Kind::Elect,
                requested: Kind::Tas
            }
        );
        assert!(err.to_string().contains("kind mismatch"));
        // Distinct keys are independent.
        assert!(ns.acquire(Kind::Tas, b"bit", &mut runner).unwrap().won);
    }

    #[test]
    fn reset_on_missing_key_is_a_noop() {
        let ns = Namespace::new(Backend::LogStar, 4, 1);
        assert_eq!(ns.reset(b"nothing"), None);
        assert_eq!(ns.stats(), SvcStats::default());
    }

    #[test]
    fn over_capacity_arrivals_lose_without_entering() {
        let ns = Namespace::new(Backend::LogStar, 1, 1);
        let mut runner = NativeRunner::new();
        assert!(ns.acquire(Kind::Tas, b"k", &mut runner).unwrap().won);
        // Capacity 1: every further acquire this epoch is turned away at
        // the gate (the one-shot object is never over-subscribed).
        for _ in 0..100 {
            assert!(!ns.acquire(Kind::Tas, b"k", &mut runner).unwrap().won);
        }
        assert_eq!(ns.reset(b"k"), Some(1));
        assert!(ns.acquire(Kind::Tas, b"k", &mut runner).unwrap().won);
    }

    #[test]
    fn stats_aggregate_ops_wins_and_resets() {
        let ns = Namespace::new(Backend::LogStar, 2, 2);
        let mut runner = NativeRunner::new();
        for epoch in 0..5u64 {
            for key in [&b"a"[..], &b"b"[..]] {
                let a = ns.acquire(Kind::Tas, key, &mut runner).unwrap();
                assert!(a.won);
                assert_eq!(a.epoch, epoch);
                assert!(!ns.acquire(Kind::Tas, key, &mut runner).unwrap().won);
                ns.reset(key).unwrap();
            }
        }
        let stats = ns.stats();
        assert_eq!(stats.keys, 2);
        assert_eq!(stats.ops, 20);
        assert_eq!(stats.wins, 10);
        assert_eq!(stats.resets, 10);
        assert!(stats.registers > 0);
    }

    #[test]
    fn concurrent_acquires_have_exactly_one_winner_per_epoch() {
        let threads = 8;
        let epochs = 30u64;
        let ns = Namespace::new(Backend::Combined, 2, threads);
        let wins: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let ns = &ns;
                    s.spawn(move || {
                        let mut runner = NativeRunner::new();
                        let mut wins = 0u64;
                        for _ in 0..epochs {
                            let a = ns.acquire(Kind::Tas, b"contended", &mut runner).unwrap();
                            wins += a.won as u64;
                            if a.won {
                                // The winner acks and recycles.
                                ns.reset(b"contended").unwrap();
                            }
                        }
                        wins
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        // Winner-led resets: each thread's sequence of acquires spans at
        // least `epochs` epochs in total, and every completed epoch had
        // exactly one winner (wins == resets performed).
        let stats = ns.stats();
        assert_eq!(wins, stats.wins);
        assert_eq!(stats.wins, stats.resets, "one winner acked per epoch");
        assert_eq!(stats.ops, threads as u64 * epochs);
    }

    #[test]
    fn keys_spread_across_shards() {
        let ns = Namespace::new(Backend::LogStar, 8, 1);
        let mut runner = NativeRunner::new();
        for i in 0..64u32 {
            let key = format!("key/{i}");
            ns.acquire(Kind::Tas, key.as_bytes(), &mut runner).unwrap();
        }
        let occupied = ns
            .shards
            .iter()
            .filter(|s| !s.0.map.read().unwrap().is_empty())
            .count();
        assert!(occupied >= 4, "64 keys landed on only {occupied}/8 shards");
        assert_eq!(ns.stats().keys, 64);
    }

    #[test]
    fn key_limit_refuses_creation_but_not_existing_keys() {
        let ns = Namespace::with_max_keys(Backend::LogStar, 2, 1, 2);
        assert_eq!(ns.max_keys(), 2);
        let mut runner = NativeRunner::new();
        assert!(ns.acquire(Kind::Tas, b"a", &mut runner).unwrap().won);
        assert!(ns.acquire(Kind::Tas, b"b", &mut runner).unwrap().won);
        let err = ns.acquire(Kind::Tas, b"c", &mut runner).unwrap_err();
        assert_eq!(err, NsError::KeyLimit { max_keys: 2 });
        assert!(err.to_string().contains("key limit"));
        // Existing keys keep working at the ceiling.
        assert!(!ns.acquire(Kind::Tas, b"a", &mut runner).unwrap().won);
        ns.reset(b"a").unwrap();
        assert!(ns.acquire(Kind::Tas, b"a", &mut runner).unwrap().won);
        assert_eq!(ns.stats().keys, 2);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = Namespace::new(Backend::LogStar, 0, 1);
    }

    #[test]
    fn expired_lease_reclaims_an_unacked_epoch() {
        let lease = Duration::from_millis(5);
        let ns = Namespace::with_lease(Backend::Combined, 1, 2, 16, Some(lease));
        assert_eq!(ns.lease(), Some(lease));
        let mut runner = NativeRunner::new();
        // A holder wins epoch 0 and then vanishes without a RESET.
        assert!(ns.acquire(Kind::Tas, b"k", &mut runner).unwrap().won);
        // Before the lease expires nothing is reclaimed.
        assert_eq!(ns.reclaim_expired(), 0);
        std::thread::sleep(lease * 4);
        assert_eq!(ns.reclaim_expired(), 1);
        // The key recycled: a fresh arrival wins the NEXT epoch — the
        // reclaimed epoch's winner is never duplicated.
        let a = ns.acquire(Kind::Tas, b"k", &mut runner).unwrap();
        assert!(a.won);
        assert_eq!(a.epoch, 1);
        let stats = ns.stats();
        assert_eq!(stats.reclaimed, 1);
        assert_eq!(stats.resets, 1, "a reclamation is a reset");
        // Idempotent: nothing else has expired.
        assert_eq!(ns.reclaim_expired(), 0);
    }

    #[test]
    fn reclamations_land_on_the_recorder_reclaim_lane() {
        let lease = Duration::from_millis(2);
        let mut ns = Namespace::with_lease(Backend::Combined, 2, 2, 16, Some(lease));
        let recorder = Arc::new(FlightRecorder::new(rtas_obs::TraceMode::On, 0));
        ns.attach_recorder(Arc::clone(&recorder));
        let mut runner = NativeRunner::new();
        assert!(ns.acquire(Kind::Tas, b"gone", &mut runner).unwrap().won);
        std::thread::sleep(lease * 4);
        assert_eq!(ns.reclaim_expired(), 1);
        let events = recorder.snapshot();
        let reclaims: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::LeaseReclaim as u32)
            .collect();
        assert_eq!(reclaims.len(), 1);
        assert_eq!(reclaims[0].lane, 1, "reclaim lane");
        assert_eq!(reclaims[0].b, 0, "epoch 0 was retired");
        assert_eq!(reclaims[0].c, fnv1a(b"gone"));
        assert_eq!(ns.stats().reclaimed, 1);
    }

    #[test]
    fn idle_keys_are_never_reclaimed() {
        let lease = Duration::from_millis(1);
        let ns = Namespace::with_lease(Backend::LogStar, 2, 1, 16, Some(lease));
        let mut runner = NativeRunner::new();
        assert!(ns.acquire(Kind::Tas, b"k", &mut runner).unwrap().won);
        ns.reset(b"k").unwrap();
        // The open epoch has zero admissions: no lease, ever — even a
        // stale deadline from the retired epoch must not fire.
        std::thread::sleep(lease * 4);
        assert_eq!(ns.reclaim_expired(), 0);
        assert_eq!(ns.stats().reclaimed, 0);
    }

    #[test]
    fn duplicate_reset_ack_is_a_noop_on_a_zero_admission_epoch() {
        let ns = Namespace::new(Backend::Combined, 1, 4);
        let mut runner = NativeRunner::new();
        assert!(ns.acquire(Kind::Tas, b"k", &mut runner).unwrap().won);
        assert_eq!(ns.reset(b"k"), Some(1));
        // Byzantine duplicate acks: the open epoch has no admissions, so
        // each replay returns the open epoch unchanged instead of
        // burning it.
        assert_eq!(ns.reset(b"k"), Some(1));
        assert_eq!(ns.reset(b"k"), Some(1));
        let a = ns.acquire(Kind::Tas, b"k", &mut runner).unwrap();
        assert!(a.won);
        assert_eq!(a.epoch, 1);
        assert_eq!(ns.stats().resets, 1);
    }

    #[test]
    fn full_epoch_heals_lazily_under_traffic() {
        let lease = Duration::from_millis(5);
        let ns = Namespace::with_lease(Backend::Combined, 1, 1, 16, Some(lease));
        let mut runner = NativeRunner::new();
        // Capacity 1: the holder wedges the key at a full gate.
        assert!(ns.acquire(Kind::Tas, b"k", &mut runner).unwrap().won);
        assert!(!ns.acquire(Kind::Tas, b"k", &mut runner).unwrap().won);
        std::thread::sleep(lease * 4);
        // No reaper sweep: plain traffic finds the gate full, reclaims
        // inline, and is admitted into (and wins) the fresh epoch.
        let a = ns.acquire(Kind::Tas, b"k", &mut runner).unwrap();
        assert!(a.won, "arrival after lease expiry heals the key inline");
        assert_eq!(a.epoch, 1);
        assert_eq!(ns.stats().reclaimed, 1);
    }

    #[test]
    fn reclaim_waits_for_in_flight_admissions() {
        // A reclamation must quiesce exactly like a client reset: spawn
        // contenders mid-reclaim and verify win accounting stays exact.
        let lease = Duration::from_millis(2);
        let threads = 4;
        let rounds = 25u64;
        let ns = Namespace::with_lease(Backend::Combined, 2, threads, 64, Some(lease));
        let ns = &ns;
        let stop = AtomicU64::new(0);
        let stop = &stop;
        std::thread::scope(|s| {
            let reaper = s.spawn(move || {
                let mut reclaimed = 0;
                while stop.load(Ordering::Relaxed) == 0 {
                    reclaimed += ns.reclaim_expired();
                    std::thread::sleep(Duration::from_micros(500));
                }
                // Final sweep once traffic stopped: let the last open
                // epoch's lease run out so every admitted epoch retires.
                std::thread::sleep(lease * 4);
                reclaimed + ns.reclaim_expired()
            });
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(move || {
                        let mut runner = NativeRunner::new();
                        for _ in 0..rounds {
                            // Win or lose, never ack: only the reaper recycles.
                            let _ = ns.acquire(Kind::Tas, b"leaky", &mut runner).unwrap();
                            std::thread::sleep(Duration::from_micros(200));
                        }
                    })
                })
                .collect();
            for w in workers {
                w.join().unwrap();
            }
            stop.store(1, Ordering::Relaxed);
            let reclaimed = reaper.join().unwrap();
            let stats = ns.stats();
            // Workers that hit an expired full gate reclaim inline, so
            // the total can exceed the reaper's own tally.
            assert!(stats.reclaimed >= reclaimed, "reaper sweeps are counted");
            assert!(stats.reclaimed > 0, "leaked epochs were reclaimed");
            assert_eq!(
                stats.wins, stats.resets,
                "every retired epoch had exactly one winner"
            );
            assert_eq!(stats.ops, threads as u64 * rounds);
        });
    }
}
