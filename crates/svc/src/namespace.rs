//! Keyed arbitration namespaces: one epoch-recycled object per key.
//!
//! A [`Namespace`] maps byte-string keys to recyclable arbitration
//! objects ([`rtas::TestAndSet`] / [`rtas::LeaderElection`] behind the
//! [`Arbiter`] vtable). Keys hash (FNV-1a) to **shards** — each shard
//! is an independently locked map in its own pair of cache lines, so
//! traffic on unrelated keys never contends on one lock or
//! false-shares a header.
//!
//! Each key advances through **epochs**, generalizing the `rtas-load`
//! arena's release/acquire recycling to *dynamic* membership with an
//! explicit ack:
//!
//! * an operation is **admitted** into the key's open epoch by a CAS on
//!   a packed state word (`resetting bit | epoch | entered count`) —
//!   at most `capacity` admissions per epoch, every further caller is
//!   turned away with a loss verdict (it is certainly not the winner;
//!   the verdict linearizes after the eventual winner, exactly like the
//!   fast path of [`rtas::TestAndSet::test_and_set`]);
//! * admitted operations run the real protocol and then bump a
//!   `finished` counter with release ordering;
//! * a **reset** (the client's ack, the `RESET` wire op) first claims
//!   the resetting bit — closing admission — then waits until
//!   `finished` has caught up with the admitted count (the object is
//!   quiescent), recycles the object with its allocation-free
//!   [`Arbiter::reset`], and opens the next epoch with a release store
//!   that every later admission reads with acquire ordering. The reset
//!   therefore happens-before every next-epoch operation — the
//!   quiescence contract of [`rtas::native::NativeMemory::reset`]
//!   discharged by construction, with no static participant groups.
//!
//! The steady-state op path — lookup of an existing key, admission,
//! protocol run, finish — performs **zero allocations** beyond the
//! protocol state machines themselves (pinned by the counting-allocator
//! test in `tests/alloc_steady.rs`); only first-contact key creation
//! allocates.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use rtas::native::NativeRunner;
use rtas::sync::{Backoff, CachePadded};
use rtas::{Arbiter, Backend, LeaderElection, TestAndSet};

use crate::protocol::{Acquired, SvcStats};

/// Which arbitration semantics a key carries. Fixed at first contact;
/// mixing kinds on one key is refused with [`NsError::KindMismatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Test-and-set: winner = the call that set the bit.
    Tas,
    /// Leader election: winner = the elected leader.
    Elect,
}

impl Kind {
    /// Stable lowercase label (error messages, stats).
    pub fn label(self) -> &'static str {
        match self {
            Kind::Tas => "tas",
            Kind::Elect => "elect",
        }
    }
}

/// Why a namespace operation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NsError {
    /// The key exists with different arbitration semantics.
    KindMismatch {
        /// The kind the key was created with.
        existing: Kind,
        /// The kind this request asked for.
        requested: Kind,
    },
    /// Creating the key would exceed the namespace's key ceiling.
    KeyLimit {
        /// The configured ceiling.
        max_keys: usize,
    },
}

impl std::fmt::Display for NsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NsError::KindMismatch {
                existing,
                requested,
            } => write!(
                f,
                "kind mismatch: key holds a {} object, request asked for {}",
                existing.label(),
                requested.label()
            ),
            NsError::KeyLimit { max_keys } => {
                write!(f, "key limit reached: namespace holds {max_keys} keys")
            }
        }
    }
}

impl std::error::Error for NsError {}

/// Low bits of the state word: admissions into the open epoch.
const ENTERED_BITS: u32 = 20;
const ENTERED_MASK: u64 = (1 << ENTERED_BITS) - 1;
/// Top bit: a reset is in flight — admission is closed.
const RESETTING: u64 = 1 << 63;

/// Largest per-key-epoch capacity a [`Namespace`] accepts: the
/// admission count must fit the state word's [`ENTERED_BITS`]-bit
/// field.
pub const MAX_CAPACITY: usize = ENTERED_MASK as usize;

/// Default ceiling on live keys ([`Namespace::new`],
/// [`crate::SvcConfig::max_keys`]): high enough for any reasonable
/// workload, low enough that a key-churning client cannot grow an
/// unauthenticated server without bound.
pub const DEFAULT_MAX_KEYS: usize = 1 << 20;

/// The per-key epoch gate: packed `resetting | epoch | entered` word
/// plus a `finished` counter (see the [module docs](self) for the
/// protocol).
#[derive(Debug)]
struct EpochGate {
    word: AtomicU64,
    finished: AtomicU64,
}

enum Admission {
    /// Admitted into `epoch`; the caller must run the protocol and then
    /// call [`EpochGate::finish`].
    Admitted { epoch: u64 },
    /// Epoch already has `capacity` participants; the caller loses
    /// without touching the object (and must *not* call `finish`).
    Full { epoch: u64 },
}

impl EpochGate {
    fn new() -> Self {
        EpochGate {
            word: AtomicU64::new(0),
            finished: AtomicU64::new(0),
        }
    }

    fn epoch_of(word: u64) -> u64 {
        (word & !RESETTING) >> ENTERED_BITS
    }

    /// The currently open epoch.
    fn epoch(&self) -> u64 {
        Self::epoch_of(self.word.load(Ordering::Acquire))
    }

    fn admit(&self, capacity: u64) -> Admission {
        let mut backoff = Backoff::new();
        loop {
            let w = self.word.load(Ordering::Acquire);
            if w & RESETTING != 0 {
                backoff.snooze();
                continue;
            }
            if w & ENTERED_MASK >= capacity {
                return Admission::Full {
                    epoch: Self::epoch_of(w),
                };
            }
            if self
                .word
                .compare_exchange_weak(w, w + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Admission::Admitted {
                    epoch: Self::epoch_of(w),
                };
            }
        }
    }

    fn finish(&self) {
        self.finished.fetch_add(1, Ordering::Release);
    }

    /// Close admission and wait for quiescence; returns the epoch being
    /// retired. The caller recycles the object, then calls
    /// [`EpochGate::end_reset`].
    fn begin_reset(&self) -> u64 {
        let mut backoff = Backoff::new();
        let w = loop {
            let w = self.word.load(Ordering::Acquire);
            if w & RESETTING != 0 {
                // A concurrent reset is retiring this epoch; wait for it,
                // then retire the (fresh) epoch it opened.
                backoff.snooze();
                continue;
            }
            if self
                .word
                .compare_exchange_weak(w, w | RESETTING, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break w;
            }
        };
        let entered = w & ENTERED_MASK;
        let mut backoff = Backoff::new();
        while self.finished.load(Ordering::Acquire) != entered {
            backoff.snooze();
        }
        Self::epoch_of(w)
    }

    /// Publish the recycled object and open epoch `old + 1`; returns
    /// the newly opened epoch.
    fn end_reset(&self, old_epoch: u64) -> u64 {
        self.finished.store(0, Ordering::Relaxed);
        self.word
            .store((old_epoch + 1) << ENTERED_BITS, Ordering::Release);
        old_epoch + 1
    }
}

/// One key's state: the recyclable object behind the [`Arbiter`]
/// vtable, its epoch gate, and cumulative counters.
pub struct Entry {
    kind: Kind,
    arbiter: Box<dyn Arbiter>,
    gate: EpochGate,
    ops: AtomicU64,
    wins: AtomicU64,
}

impl std::fmt::Debug for Entry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Entry")
            .field("kind", &self.kind)
            .field("backend", &self.arbiter.backend())
            .field("capacity", &self.arbiter.capacity())
            .field("epoch", &self.epoch())
            .field("ops", &self.ops())
            .field("wins", &self.wins())
            .finish()
    }
}

impl Entry {
    fn new(kind: Kind, backend: Backend, capacity: usize) -> Self {
        let arbiter: Box<dyn Arbiter> = match kind {
            Kind::Tas => Box::new(TestAndSet::with_backend(backend, capacity)),
            Kind::Elect => Box::new(LeaderElection::with_backend(backend, capacity)),
        };
        Entry {
            kind,
            arbiter,
            gate: EpochGate::new(),
            ops: AtomicU64::new(0),
            wins: AtomicU64::new(0),
        }
    }

    /// The key's arbitration semantics.
    pub fn kind(&self) -> Kind {
        self.kind
    }

    /// The currently open epoch.
    pub fn epoch(&self) -> u64 {
        self.gate.epoch()
    }

    /// Cumulative operations served on this key.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Cumulative winning operations on this key.
    pub fn wins(&self) -> u64 {
        self.wins.load(Ordering::Relaxed)
    }

    fn acquire(&self, runner: &mut NativeRunner) -> Acquired {
        self.ops.fetch_add(1, Ordering::Relaxed);
        match self.gate.admit(self.arbiter.capacity() as u64) {
            // Over capacity: certainly not the winner — the loss verdict
            // linearizes right after the epoch's eventual winner.
            Admission::Full { epoch } => Acquired { won: false, epoch },
            Admission::Admitted { epoch } => {
                let won = self.arbiter.try_acquire(runner);
                if won {
                    self.wins.fetch_add(1, Ordering::Relaxed);
                }
                self.gate.finish();
                Acquired { won, epoch }
            }
        }
    }

    fn recycle(&self) -> u64 {
        let old = self.gate.begin_reset();
        self.arbiter.reset();
        self.gate.end_reset(old)
    }
}

#[derive(Debug)]
struct NsShard {
    map: RwLock<HashMap<Box<[u8]>, Arc<Entry>>>,
}

/// The sharded keyed namespace. See the [module docs](self).
#[derive(Debug)]
pub struct Namespace {
    shards: Vec<CachePadded<NsShard>>,
    backend: Backend,
    capacity: usize,
    max_keys: usize,
    /// Live keys across all shards (maintained under the shard write
    /// locks, read lock-free by the admission check — the ceiling may
    /// overshoot by at most one in-flight creation per shard).
    key_count: AtomicUsize,
}

/// FNV-1a: tiny, allocation-free, and deterministic — the shard choice
/// must not depend on `std`'s per-process `RandomState`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl Namespace {
    /// A namespace whose keyed objects run `backend` and admit up to
    /// `capacity` participants per epoch, striped over `shards`
    /// independently locked shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`, `capacity == 0`, or `capacity` exceeds
    /// [`MAX_CAPACITY`] (the gate's admission-counter width).
    pub fn new(backend: Backend, shards: usize, capacity: usize) -> Self {
        Self::with_max_keys(backend, shards, capacity, DEFAULT_MAX_KEYS)
    }

    /// [`Namespace::new`] with an explicit key ceiling: first contact
    /// with a fresh key is refused with [`NsError::KeyLimit`] once
    /// `max_keys` keys are live, so a client inventing endless keys
    /// cannot grow the server's memory without bound.
    ///
    /// # Panics
    ///
    /// Panics on the [`Namespace::new`] conditions, or if
    /// `max_keys == 0`.
    pub fn with_max_keys(
        backend: Backend,
        shards: usize,
        capacity: usize,
        max_keys: usize,
    ) -> Self {
        assert!(shards >= 1, "namespace needs at least one shard");
        assert!(capacity >= 1, "namespace needs capacity of at least 1");
        assert!(
            capacity <= MAX_CAPACITY,
            "capacity {capacity} exceeds the admission counter width \
             (MAX_CAPACITY = {MAX_CAPACITY})"
        );
        assert!(max_keys >= 1, "namespace needs room for at least one key");
        Namespace {
            shards: (0..shards)
                .map(|_| {
                    CachePadded(NsShard {
                        map: RwLock::new(HashMap::new()),
                    })
                })
                .collect(),
            backend,
            capacity,
            max_keys,
            key_count: AtomicUsize::new(0),
        }
    }

    /// Number of namespace shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Participants admitted per key-epoch.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Ceiling on live keys across all shards.
    pub fn max_keys(&self) -> usize {
        self.max_keys
    }

    /// The algorithm backing every keyed object.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    fn shard_of(&self, key: &[u8]) -> &NsShard {
        &self.shards[(fnv1a(key) % self.shards.len() as u64) as usize].0
    }

    /// The entry for `key`, if it exists (steady state: read lock + Arc
    /// clone, no allocation).
    pub fn lookup(&self, key: &[u8]) -> Option<Arc<Entry>> {
        self.shard_of(key).map.read().unwrap().get(key).cloned()
    }

    fn get_or_create(&self, kind: Kind, key: &[u8]) -> Result<Arc<Entry>, NsError> {
        if let Some(entry) = self.lookup(key) {
            return if entry.kind == kind {
                Ok(entry)
            } else {
                Err(NsError::KindMismatch {
                    existing: entry.kind,
                    requested: kind,
                })
            };
        }
        let mut map = self.shard_of(key).map.write().unwrap();
        if let Some(entry) = map.get(key) {
            // Lost the creation race; the other creator picked the kind.
            return if entry.kind == kind {
                Ok(Arc::clone(entry))
            } else {
                Err(NsError::KindMismatch {
                    existing: entry.kind,
                    requested: kind,
                })
            };
        }
        if self.key_count.load(Ordering::Relaxed) >= self.max_keys {
            return Err(NsError::KeyLimit {
                max_keys: self.max_keys,
            });
        }
        let entry = Arc::new(Entry::new(kind, self.backend, self.capacity));
        map.insert(key.into(), Arc::clone(&entry));
        self.key_count.fetch_add(1, Ordering::Relaxed);
        Ok(entry)
    }

    /// One arbitration operation on `key` (created at first contact
    /// with `kind` semantics): participate in the key's open epoch and
    /// return the verdict.
    pub fn acquire(
        &self,
        kind: Kind,
        key: &[u8],
        runner: &mut NativeRunner,
    ) -> Result<Acquired, NsError> {
        Ok(self.get_or_create(kind, key)?.acquire(runner))
    }

    /// Recycle `key`'s object for its next epoch (the resolution ack).
    /// Returns the newly opened epoch, or `None` if the key does not
    /// exist. Waits for the in-flight operations of the epoch being
    /// retired; admission re-opens only after the allocation-free reset
    /// is published (release/acquire — see the [module docs](self)).
    pub fn reset(&self, key: &[u8]) -> Option<u64> {
        Some(self.lookup(key)?.recycle())
    }

    /// Aggregate counters over every shard and key.
    pub fn stats(&self) -> SvcStats {
        let mut stats = SvcStats::default();
        for shard in &self.shards {
            let map = shard.0.map.read().unwrap();
            for entry in map.values() {
                stats.keys += 1;
                stats.ops += entry.ops();
                stats.wins += entry.wins();
                stats.resets += entry.epoch();
                stats.registers += entry.arbiter.registers();
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_key_wins_then_loses_until_reset() {
        let ns = Namespace::new(Backend::LogStar, 2, 4);
        let mut runner = NativeRunner::new();
        let first = ns.acquire(Kind::Tas, b"job/1", &mut runner).unwrap();
        assert!(first.won);
        assert_eq!(first.epoch, 0);
        for _ in 0..6 {
            // Losses both under and over capacity.
            assert!(!ns.acquire(Kind::Tas, b"job/1", &mut runner).unwrap().won);
        }
        assert_eq!(ns.reset(b"job/1"), Some(1));
        let next = ns.acquire(Kind::Tas, b"job/1", &mut runner).unwrap();
        assert!(next.won, "fresh epoch after reset");
        assert_eq!(next.epoch, 1);
    }

    #[test]
    fn elect_and_tas_kinds_do_not_mix_on_one_key() {
        let ns = Namespace::new(Backend::Combined, 1, 2);
        let mut runner = NativeRunner::new();
        assert!(ns.acquire(Kind::Elect, b"leader", &mut runner).unwrap().won);
        let err = ns.acquire(Kind::Tas, b"leader", &mut runner).unwrap_err();
        assert_eq!(
            err,
            NsError::KindMismatch {
                existing: Kind::Elect,
                requested: Kind::Tas
            }
        );
        assert!(err.to_string().contains("kind mismatch"));
        // Distinct keys are independent.
        assert!(ns.acquire(Kind::Tas, b"bit", &mut runner).unwrap().won);
    }

    #[test]
    fn reset_on_missing_key_is_a_noop() {
        let ns = Namespace::new(Backend::LogStar, 4, 1);
        assert_eq!(ns.reset(b"nothing"), None);
        assert_eq!(ns.stats(), SvcStats::default());
    }

    #[test]
    fn over_capacity_arrivals_lose_without_entering() {
        let ns = Namespace::new(Backend::LogStar, 1, 1);
        let mut runner = NativeRunner::new();
        assert!(ns.acquire(Kind::Tas, b"k", &mut runner).unwrap().won);
        // Capacity 1: every further acquire this epoch is turned away at
        // the gate (the one-shot object is never over-subscribed).
        for _ in 0..100 {
            assert!(!ns.acquire(Kind::Tas, b"k", &mut runner).unwrap().won);
        }
        assert_eq!(ns.reset(b"k"), Some(1));
        assert!(ns.acquire(Kind::Tas, b"k", &mut runner).unwrap().won);
    }

    #[test]
    fn stats_aggregate_ops_wins_and_resets() {
        let ns = Namespace::new(Backend::LogStar, 2, 2);
        let mut runner = NativeRunner::new();
        for epoch in 0..5u64 {
            for key in [&b"a"[..], &b"b"[..]] {
                let a = ns.acquire(Kind::Tas, key, &mut runner).unwrap();
                assert!(a.won);
                assert_eq!(a.epoch, epoch);
                assert!(!ns.acquire(Kind::Tas, key, &mut runner).unwrap().won);
                ns.reset(key).unwrap();
            }
        }
        let stats = ns.stats();
        assert_eq!(stats.keys, 2);
        assert_eq!(stats.ops, 20);
        assert_eq!(stats.wins, 10);
        assert_eq!(stats.resets, 10);
        assert!(stats.registers > 0);
    }

    #[test]
    fn concurrent_acquires_have_exactly_one_winner_per_epoch() {
        let threads = 8;
        let epochs = 30u64;
        let ns = Namespace::new(Backend::Combined, 2, threads);
        let wins: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let ns = &ns;
                    s.spawn(move || {
                        let mut runner = NativeRunner::new();
                        let mut wins = 0u64;
                        for _ in 0..epochs {
                            let a = ns.acquire(Kind::Tas, b"contended", &mut runner).unwrap();
                            wins += a.won as u64;
                            if a.won {
                                // The winner acks and recycles.
                                ns.reset(b"contended").unwrap();
                            }
                        }
                        wins
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        // Winner-led resets: each thread's sequence of acquires spans at
        // least `epochs` epochs in total, and every completed epoch had
        // exactly one winner (wins == resets performed).
        let stats = ns.stats();
        assert_eq!(wins, stats.wins);
        assert_eq!(stats.wins, stats.resets, "one winner acked per epoch");
        assert_eq!(stats.ops, threads as u64 * epochs);
    }

    #[test]
    fn keys_spread_across_shards() {
        let ns = Namespace::new(Backend::LogStar, 8, 1);
        let mut runner = NativeRunner::new();
        for i in 0..64u32 {
            let key = format!("key/{i}");
            ns.acquire(Kind::Tas, key.as_bytes(), &mut runner).unwrap();
        }
        let occupied = ns
            .shards
            .iter()
            .filter(|s| !s.0.map.read().unwrap().is_empty())
            .count();
        assert!(occupied >= 4, "64 keys landed on only {occupied}/8 shards");
        assert_eq!(ns.stats().keys, 64);
    }

    #[test]
    fn key_limit_refuses_creation_but_not_existing_keys() {
        let ns = Namespace::with_max_keys(Backend::LogStar, 2, 1, 2);
        assert_eq!(ns.max_keys(), 2);
        let mut runner = NativeRunner::new();
        assert!(ns.acquire(Kind::Tas, b"a", &mut runner).unwrap().won);
        assert!(ns.acquire(Kind::Tas, b"b", &mut runner).unwrap().won);
        let err = ns.acquire(Kind::Tas, b"c", &mut runner).unwrap_err();
        assert_eq!(err, NsError::KeyLimit { max_keys: 2 });
        assert!(err.to_string().contains("key limit"));
        // Existing keys keep working at the ceiling.
        assert!(!ns.acquire(Kind::Tas, b"a", &mut runner).unwrap().won);
        ns.reset(b"a").unwrap();
        assert!(ns.acquire(Kind::Tas, b"a", &mut runner).unwrap().won);
        assert_eq!(ns.stats().keys, 2);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = Namespace::new(Backend::LogStar, 0, 1);
    }
}
