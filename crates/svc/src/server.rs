//! The std-only TCP server: sharded accept loops, one handler thread
//! per connection, frames served strictly in order.
//!
//! `listeners` accept threads share one bound socket (via
//! [`TcpListener::try_clone`]); each accepted connection gets its own
//! handler thread owning a reusable [`NativeRunner`] and reusable
//! frame buffers, so the steady-state request path performs no
//! allocation beyond the protocol state machines (see
//! `tests/alloc_steady.rs` for the namespace half of that claim).
//! Requests on one connection are executed and answered **in order**,
//! which is what makes client-side pipelining sound.
//!
//! Error policy, matching the [protocol docs](crate::protocol):
//! framing violations (oversized declared length, truncation) get a
//! best-effort `ERR` frame and the connection is closed; clean frames
//! carrying a bad request (unknown opcode, empty key, kind mismatch)
//! get an `ERR` response and the connection stays usable.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use rtas::native::NativeRunner;
use rtas::Backend;

use crate::namespace::{Kind, Namespace};
use crate::protocol::{decode_request, frame_response, read_frame, Op, Request, Response};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct SvcConfig {
    /// Bind address; port 0 picks a free port (see [`Server::addr`]).
    pub addr: String,
    /// Namespace shards (independent key maps + locks).
    pub shards: usize,
    /// Participants admitted per key-epoch.
    pub capacity: usize,
    /// Algorithm backing every keyed object.
    pub backend: Backend,
    /// Accept threads sharing the listening socket.
    pub listeners: usize,
    /// Ceiling on live keys across all shards — first contact beyond it
    /// is refused, bounding server memory against key-churning clients
    /// (see [`Namespace::with_max_keys`]).
    pub max_keys: usize,
    /// Admission lease: when `Some`, an epoch whose holder never acks
    /// `RESET` is reclaimed by the server once the lease expires (see
    /// [`Namespace::with_lease`]); a reaper thread sweeps expired
    /// epochs at a quarter of the lease period. `None` (the default)
    /// disables reclamation entirely.
    pub lease: Option<Duration>,
    /// Per-connection read deadline: a connection idle (or stalled
    /// mid-frame) past this duration is answered with a best-effort
    /// `ERR` and closed, so a stalled client cannot pin a handler
    /// thread forever. `None` (the default) waits indefinitely.
    pub read_timeout: Option<Duration>,
}

impl Default for SvcConfig {
    fn default() -> Self {
        SvcConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: 8,
            capacity: 64,
            backend: Backend::Combined,
            listeners: 2,
            max_keys: crate::namespace::DEFAULT_MAX_KEYS,
            lease: None,
            read_timeout: None,
        }
    }
}

/// A running arbitration server. Dropping the handle does **not** stop
/// the server; call [`Server::shutdown`] (tests, examples) or
/// [`Server::join`] (the `rtas-svc serve` CLI).
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    namespace: Arc<Namespace>,
    stop: Arc<AtomicBool>,
    accepters: Vec<JoinHandle<()>>,
    reaper: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `config.addr` and start the accept threads.
    pub fn spawn(config: SvcConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let namespace = Arc::new(Namespace::with_lease(
            config.backend,
            config.shards,
            config.capacity,
            config.max_keys,
            config.lease,
        ));
        let stop = Arc::new(AtomicBool::new(false));
        // Clone every listener handle BEFORE spawning any thread: a
        // try_clone failure must abort cleanly, not leave already
        // spawned accepters running with no Server handle to stop them.
        let listeners = (0..config.listeners.max(1))
            .map(|_| listener.try_clone())
            .collect::<io::Result<Vec<_>>>()?;
        let read_timeout = config.read_timeout;
        let accepters = listeners
            .into_iter()
            .map(|listener| {
                let namespace = Arc::clone(&namespace);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || accept_loop(&listener, &namespace, &stop, read_timeout))
            })
            .collect();
        // The reaper: sweep expired leases at a quarter of the lease
        // period (bounded to stay responsive to shutdown without
        // spinning), so a vanished holder wedges a key for at most
        // ~1.25 leases even with zero traffic on it.
        let reaper = config.lease.map(|lease| {
            let namespace = Arc::clone(&namespace);
            let stop = Arc::clone(&stop);
            let period = (lease / 4).clamp(Duration::from_millis(1), Duration::from_millis(250));
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    namespace.reclaim_expired();
                    std::thread::sleep(period);
                }
            })
        });
        Ok(Server {
            addr,
            namespace,
            stop,
            accepters,
            reaper,
        })
    }

    /// The bound address (the actual port when the config asked for 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The namespace the server arbitrates — in-process callers (tests,
    /// examples) can inspect stats or drive keys directly.
    pub fn namespace(&self) -> &Arc<Namespace> {
        &self.namespace
    }

    /// Stop accepting and join the accept threads. Connections already
    /// established keep being served until their clients disconnect.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        // One wake-up connection per accept thread: each accepter checks
        // the flag right after `accept` returns.
        for _ in &self.accepters {
            let _ = TcpStream::connect(self.addr);
        }
        for handle in self.accepters {
            let _ = handle.join();
        }
        if let Some(reaper) = self.reaper {
            let _ = reaper.join();
        }
    }

    /// Block on the accept threads forever (the `serve` CLI path).
    pub fn join(self) {
        for handle in self.accepters {
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    namespace: &Arc<Namespace>,
    stop: &Arc<AtomicBool>,
    read_timeout: Option<Duration>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                // Persistent accept failures (EMFILE under fd
                // exhaustion, transient ECONNABORTED) must not hot-loop
                // a core: back off briefly so handler threads get the
                // cycles to drain and close connections.
                std::thread::sleep(std::time::Duration::from_millis(10));
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let namespace = Arc::clone(namespace);
        std::thread::spawn(move || handle_connection(stream, &namespace, read_timeout));
    }
}

/// Serve one connection until EOF, a framing violation, or a read
/// deadline expiry.
fn handle_connection(mut stream: TcpStream, namespace: &Namespace, read_timeout: Option<Duration>) {
    // Request/response frames are single small writes; batching them
    // behind Nagle would serialize pipelined round trips.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(read_timeout);
    let mut runner = NativeRunner::new();
    let mut payload = Vec::new();
    let mut out = Vec::new();
    loop {
        match read_frame(&mut stream, &mut payload) {
            Ok(Some(())) => {}
            Ok(None) => return, // clean EOF
            Err(e) => {
                let timed_out = matches!(
                    e.kind(),
                    io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                );
                if e.kind() == io::ErrorKind::InvalidData || timed_out {
                    // Framing violation or deadline expiry on a live
                    // stream: name it, then hang up — the stream
                    // position is untrustworthy (and a stalled client
                    // must not pin this thread).
                    out.clear();
                    let msg = if timed_out {
                        "read deadline expired".to_string()
                    } else {
                        e.to_string()
                    };
                    frame_response(&Response::Err(msg), &mut out);
                    let _ = stream.write_all(&out);
                }
                return;
            }
        }
        let response = match decode_request(&payload) {
            Ok(request) => execute(namespace, request, &mut runner),
            // A clean frame with a bad request: answer and carry on.
            Err(e) => Response::Err(e.to_string()),
        };
        out.clear();
        frame_response(&response, &mut out);
        if stream.write_all(&out).is_err() {
            return;
        }
    }
}

fn execute(namespace: &Namespace, request: Request<'_>, runner: &mut NativeRunner) -> Response {
    match request.op {
        Op::Tas | Op::Elect => {
            let kind = if request.op == Op::Tas {
                Kind::Tas
            } else {
                Kind::Elect
            };
            match namespace.acquire(kind, request.key, runner) {
                Ok(acquired) => Response::Acquired(acquired),
                Err(e) => Response::Err(e.to_string()),
            }
        }
        Op::Reset => Response::Reset {
            epoch: namespace.reset(request.key).unwrap_or(0),
        },
        Op::Stats => Response::Stats(namespace.stats()),
    }
}

/// Spawn a server on a loopback port chosen by the OS — the one-liner
/// for tests and in-process use.
pub fn spawn_local(backend: Backend, shards: usize, capacity: usize) -> io::Result<Server> {
    Server::spawn(SvcConfig {
        shards,
        capacity,
        backend,
        ..SvcConfig::default()
    })
}
