//! The std-only TCP server: sharded accept loops feeding either the
//! readiness-driven reactor (default) or one handler thread per
//! connection, frames served strictly in order.
//!
//! `listeners` accept threads share one bound socket (via
//! [`TcpListener::try_clone`]). What happens to an accepted connection
//! depends on [`SvcConfig::engine`]:
//!
//! * [`Engine::Epoll`] / [`Engine::Poll`] (the default where the
//!   [reactor](crate::reactor)'s syscall shim exists): the accepter
//!   hands the socket to a bounded pool of [`SvcConfig::workers`]
//!   reactor workers, each multiplexing thousands of nonblocking
//!   connections over one readiness source.
//! * [`Engine::Threads`]: the original design — each connection gets
//!   its own blocking handler thread. Kept as the portable fallback
//!   and as the behavioral reference.
//!
//! Either way a connection is a [`Connection`] state machine — a
//! reusable [`rtas::native::NativeRunner`] plus reusable frame buffers
//! — so the steady-state request path performs no allocation beyond
//! the protocol state machines (see `tests/alloc_steady.rs` and
//! `tests/alloc_reactor.rs`). Requests on one connection are executed
//! and answered **in order**, which is what makes client-side
//! pipelining sound.
//!
//! I/O is bulk: one large `read` ingests a whole pipelined burst, the
//! [`Connection`] decodes and executes every complete frame in it, and
//! all of the burst's responses are flushed with a single coalesced
//! write — one read + one write per burst instead of 2 reads + 1 write
//! per frame.
//!
//! Error policy, matching the [protocol docs](crate::protocol):
//! framing violations (oversized declared length, truncation) get a
//! best-effort `ERR` frame and the connection is closed; clean frames
//! carrying a bad request (unknown opcode, empty key, kind mismatch)
//! get an `ERR` response and the connection stays usable.
//!
//! The accept loops are bounded: at most [`SvcConfig::max_conns`]
//! connections are served concurrently; one beyond the ceiling gets a
//! best-effort `ERR` frame and an immediate close, and the refusal is
//! counted in the `STATS` gauges ([`crate::protocol::SvcStats::conns`]
//! / [`refused`](crate::protocol::SvcStats::refused)).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use rtas::Backend;
use rtas_obs::{EventKind, FlightRecorder, Lane, TraceMode};

use crate::conn::{ConnGauges, ConnObs, ConnStatus, Connection};
use crate::metrics::SvcMetrics;
use crate::namespace::Namespace;
use crate::protocol::{frame_response, Response};
use crate::reactor::{Dispatcher, Engine, ReactorPool};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct SvcConfig {
    /// Bind address; port 0 picks a free port (see [`Server::addr`]).
    pub addr: String,
    /// Namespace shards (independent key maps + locks).
    pub shards: usize,
    /// Participants admitted per key-epoch.
    pub capacity: usize,
    /// Algorithm backing every keyed object.
    pub backend: Backend,
    /// Accept threads sharing the listening socket.
    pub listeners: usize,
    /// Ceiling on live keys across all shards — first contact beyond it
    /// is refused, bounding server memory against key-churning clients
    /// (see [`Namespace::with_max_keys`]).
    pub max_keys: usize,
    /// Admission lease: when `Some`, an epoch whose holder never acks
    /// `RESET` is reclaimed by the server once the lease expires (see
    /// [`Namespace::with_lease`]); a reaper thread sweeps expired
    /// epochs at a quarter of the lease period. `None` (the default)
    /// disables reclamation entirely.
    pub lease: Option<Duration>,
    /// Per-connection read deadline: a connection idle (or stalled
    /// mid-frame) past this duration is answered with a best-effort
    /// `ERR` and closed, so a stalled client cannot pin a handler
    /// thread forever. `None` (the default) waits indefinitely.
    pub read_timeout: Option<Duration>,
    /// Ceiling on concurrently served connections — the memory bound
    /// for the reactor engines and the thread bound for the threads
    /// engine. A connection accepted at the ceiling is answered with a
    /// best-effort `ERR` naming the limit and closed immediately;
    /// refusals are counted in the `STATS` gauges.
    pub max_conns: usize,
    /// Connection-serving engine (see [`Engine`]). Defaults to
    /// [`Engine::auto`]: `epoll` where the reactor's syscall shim
    /// exists, `threads` elsewhere.
    pub engine: Engine,
    /// Reactor worker threads ([`Engine::Epoll`] / [`Engine::Poll`]
    /// only; the threads engine ignores it). Defaults to available
    /// parallelism capped at [`DEFAULT_MAX_WORKERS`].
    pub workers: usize,
    /// Flight-recorder mode (`--trace on|off|sampled:<n>`). `Off` (the
    /// default) allocates no ring storage and records nothing; the
    /// metrics plane stays on regardless — its instruments are plain
    /// atomics.
    pub trace: TraceMode,
}

/// Cap on the default [`SvcConfig::workers`]: beyond a handful of
/// workers the namespace shards, not the event loops, are the
/// bottleneck, and idle workers still cost wake plumbing.
pub const DEFAULT_MAX_WORKERS: usize = 8;

/// The default [`SvcConfig::workers`]: available parallelism, capped
/// at [`DEFAULT_MAX_WORKERS`].
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(DEFAULT_MAX_WORKERS)
}

/// Default [`SvcConfig::max_conns`]: far above any load the
/// thread-per-connection server is meant for, low enough that an
/// accept storm cannot exhaust process threads or memory.
pub const DEFAULT_MAX_CONNS: usize = 1024;

impl Default for SvcConfig {
    fn default() -> Self {
        SvcConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: 8,
            capacity: 64,
            backend: Backend::Combined,
            listeners: 2,
            max_keys: crate::namespace::DEFAULT_MAX_KEYS,
            lease: None,
            read_timeout: None,
            max_conns: DEFAULT_MAX_CONNS,
            engine: Engine::auto(),
            workers: default_workers(),
            trace: TraceMode::Off,
        }
    }
}

/// A running arbitration server. Dropping the handle does **not** stop
/// the server; call [`Server::shutdown`] (tests, examples) or
/// [`Server::join`] (the `rtas-svc serve` CLI).
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    namespace: Arc<Namespace>,
    gauges: Arc<ConnGauges>,
    metrics: Arc<SvcMetrics>,
    recorder: Arc<FlightRecorder>,
    stop: Arc<AtomicBool>,
    accepters: Vec<JoinHandle<()>>,
    pool: Option<ReactorPool>,
    reaper: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `config.addr` and start the accept threads.
    pub fn spawn(config: SvcConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        // One lane per reactor worker; the threads engine has no
        // workers, so its per-connection events share the accept lane.
        let worker_lanes = match config.engine {
            Engine::Threads => 0,
            _ => config.workers.max(1),
        };
        let recorder = Arc::new(FlightRecorder::new(config.trace, worker_lanes));
        let metrics = Arc::new(SvcMetrics::new(worker_lanes));
        let mut namespace = Namespace::with_lease(
            config.backend,
            config.shards,
            config.capacity,
            config.max_keys,
            config.lease,
        );
        // The namespace adopts the recorder's clock so lease deadlines
        // and trace timestamps share one origin.
        namespace.attach_recorder(Arc::clone(&recorder));
        let namespace = Arc::new(namespace);
        let stop = Arc::new(AtomicBool::new(false));
        let gauges = Arc::new(ConnGauges::default());
        // Clone every listener handle BEFORE spawning any thread: a
        // try_clone failure must abort cleanly, not leave already
        // spawned accepters running with no Server handle to stop them.
        let listeners = (0..config.listeners.max(1))
            .map(|_| listener.try_clone())
            .collect::<io::Result<Vec<_>>>()?;
        let read_timeout = config.read_timeout;
        let max_conns = config.max_conns.max(1);
        // Reactor engines get their worker pool up before the first
        // accept; the threads engine spawns handlers on demand.
        let pool = match config.engine {
            Engine::Threads => None,
            engine => Some(ReactorPool::spawn(
                engine,
                config.workers,
                &namespace,
                &gauges,
                &metrics,
                &recorder,
                &stop,
                read_timeout,
            )?),
        };
        let dispatcher = pool.as_ref().map(ReactorPool::dispatcher);
        let accepters = listeners
            .into_iter()
            .map(|listener| {
                let namespace = Arc::clone(&namespace);
                let stop = Arc::clone(&stop);
                let gauges = Arc::clone(&gauges);
                let metrics = Arc::clone(&metrics);
                let recorder = Arc::clone(&recorder);
                let dispatcher = dispatcher.clone();
                std::thread::spawn(move || match dispatcher {
                    Some(dispatcher) => accept_loop_reactor(
                        &listener,
                        &dispatcher,
                        &gauges,
                        &recorder,
                        &stop,
                        max_conns,
                    ),
                    None => accept_loop(
                        &listener,
                        &namespace,
                        &gauges,
                        &metrics,
                        &recorder,
                        &stop,
                        read_timeout,
                        max_conns,
                    ),
                })
            })
            .collect();
        // The reaper: sweep expired leases at a quarter of the lease
        // period (bounded to stay responsive to shutdown without
        // spinning), so a vanished holder wedges a key for at most
        // ~1.25 leases even with zero traffic on it.
        let reaper = config.lease.map(|lease| {
            let namespace = Arc::clone(&namespace);
            let stop = Arc::clone(&stop);
            let period = (lease / 4).clamp(Duration::from_millis(1), Duration::from_millis(250));
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    namespace.reclaim_expired();
                    std::thread::sleep(period);
                }
            })
        });
        Ok(Server {
            addr,
            namespace,
            gauges,
            metrics,
            recorder,
            stop,
            accepters,
            pool,
            reaper,
        })
    }

    /// The bound address (the actual port when the config asked for 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The namespace the server arbitrates — in-process callers (tests,
    /// examples) can inspect stats or drive keys directly.
    pub fn namespace(&self) -> &Arc<Namespace> {
        &self.namespace
    }

    /// The accept loops' connection gauges (live / refused counts) —
    /// what a wire `STATS` reports in its last two fields.
    pub fn gauges(&self) -> &Arc<ConnGauges> {
        &self.gauges
    }

    /// The metrics plane the `METRICS` wire op renders — in-process
    /// callers can read the instruments directly.
    pub fn metrics(&self) -> &Arc<SvcMetrics> {
        &self.metrics
    }

    /// The flight recorder behind [`SvcConfig::trace`]. Disabled
    /// (`--trace off`) it records nothing and dumps empty lanes.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// Dump the flight recorder's current ring contents to `path` in
    /// the `RTASTRC1` format (decode with `rtas-svc trace-dump`).
    /// Lossy by construction: each lane holds its most recent events.
    pub fn dump_trace(&self, path: &std::path::Path) -> io::Result<()> {
        self.recorder.dump_to_file(path)
    }

    /// Stop accepting and join the accept threads. Under a reactor
    /// engine the worker pool is joined too, closing every live
    /// connection; under the threads engine, established connections
    /// keep being served until their clients disconnect.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        // One wake-up connection per accept thread: each accepter checks
        // the flag right after `accept` returns.
        for _ in &self.accepters {
            let _ = TcpStream::connect(self.addr);
        }
        for handle in self.accepters {
            let _ = handle.join();
        }
        if let Some(pool) = self.pool {
            pool.join();
        }
        if let Some(reaper) = self.reaper {
            let _ = reaper.join();
        }
    }

    /// Block on the accept threads forever (the `serve` CLI path).
    pub fn join(self) {
        for handle in self.accepters {
            let _ = handle.join();
        }
    }
}

/// One `accept` plus the shared admission policy: returns a stream
/// whose `max_conns` slot is already claimed, or `None` when the
/// caller should `continue` (refusal, transient error) or `Err(())`
/// when it should return (stop flag).
fn accept_one(
    listener: &TcpListener,
    gauges: &ConnGauges,
    recorder: &FlightRecorder,
    stop: &AtomicBool,
    max_conns: usize,
) -> Result<Option<TcpStream>, ()> {
    let mut stream = match listener.accept() {
        Ok((stream, _)) => stream,
        Err(_) => {
            if stop.load(Ordering::SeqCst) {
                return Err(());
            }
            // Persistent accept failures (EMFILE under fd exhaustion,
            // transient ECONNABORTED) must not hot-loop a core: back
            // off briefly so workers get the cycles to drain and close
            // connections.
            std::thread::sleep(std::time::Duration::from_millis(10));
            return Ok(None);
        }
    };
    if stop.load(Ordering::SeqCst) {
        return Err(());
    }
    // Claim a connection slot optimistically; over the ceiling, undo
    // the claim, name the limit best-effort, and hang up — inline,
    // without spending a thread or a worker slot on the refusal.
    let live = gauges.connected();
    if live > max_conns as u64 {
        gauges.disconnected();
        gauges.refuse();
        recorder.record(
            Lane::Accept,
            EventKind::AdmissionRefusal,
            (live - 1) as u32,
            0,
            0,
        );
        let mut out = Vec::new();
        frame_response(
            &Response::Err(format!(
                "connection refused: server is at its {max_conns}-connection limit"
            )),
            &mut out,
        );
        let _ = stream.write_all(&out);
        return Ok(None);
    }
    recorder.record(Lane::Accept, EventKind::Accept, live as u32, 0, 0);
    Ok(Some(stream))
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: &TcpListener,
    namespace: &Arc<Namespace>,
    gauges: &Arc<ConnGauges>,
    metrics: &Arc<SvcMetrics>,
    recorder: &Arc<FlightRecorder>,
    stop: &Arc<AtomicBool>,
    read_timeout: Option<Duration>,
    max_conns: usize,
) {
    loop {
        let stream = match accept_one(listener, gauges, recorder, stop, max_conns) {
            Ok(Some(stream)) => stream,
            Ok(None) => continue,
            Err(()) => return,
        };
        let namespace = Arc::clone(namespace);
        let gauges = Arc::clone(gauges);
        let metrics = Arc::clone(metrics);
        let recorder = Arc::clone(recorder);
        std::thread::spawn(move || {
            // The slot is released however the handler exits — clean
            // EOF, poisoned stream, or a panic unwinding through it.
            struct SlotGuard(Arc<ConnGauges>);
            impl Drop for SlotGuard {
                fn drop(&mut self) {
                    self.0.disconnected();
                }
            }
            let _guard = SlotGuard(Arc::clone(&gauges));
            handle_connection(
                stream,
                &namespace,
                &gauges,
                &metrics,
                &recorder,
                read_timeout,
            );
        });
    }
}

/// The reactor engines' accept loop: same socket, same admission
/// policy, but accepted connections go to a worker inbox instead of a
/// fresh thread. The worker releases the `max_conns` claim on close.
fn accept_loop_reactor(
    listener: &TcpListener,
    dispatcher: &Dispatcher,
    gauges: &Arc<ConnGauges>,
    recorder: &Arc<FlightRecorder>,
    stop: &Arc<AtomicBool>,
    max_conns: usize,
) {
    loop {
        match accept_one(listener, gauges, recorder, stop, max_conns) {
            Ok(Some(stream)) => dispatcher.dispatch(stream),
            Ok(None) => continue,
            Err(()) => return,
        }
    }
}

/// Bytes ingested per `read` call: large enough to swallow a whole
/// pipelined burst (hundreds of requests) in one syscall.
const READ_CHUNK: usize = 64 * 1024;

/// Serve one connection until EOF, a framing violation, or a read
/// deadline expiry — bulk reads in, one coalesced write per burst out.
fn handle_connection(
    mut stream: TcpStream,
    namespace: &Namespace,
    gauges: &ConnGauges,
    metrics: &SvcMetrics,
    recorder: &FlightRecorder,
    read_timeout: Option<Duration>,
) {
    // Responses are flushed in one coalesced write per burst; batching
    // that write behind Nagle would still serialize pipelined round
    // trips, so the burst must leave immediately.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(read_timeout);
    // The threads engine has no worker lanes; its per-frame events
    // share the accept lane.
    let obs = ConnObs {
        recorder,
        metrics,
        lane: Lane::Accept,
    };
    let mut conn = Connection::new();
    let mut chunk = vec![0u8; READ_CHUNK];
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) => return, // EOF (mid-frame truncation closes silently)
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                ) =>
            {
                // Deadline expiry on a live stream: name it, then hang
                // up — a stalled client must not pin this thread.
                let mut out = Vec::new();
                frame_response(
                    &Response::Err("read deadline expired".to_string()),
                    &mut out,
                );
                let _ = stream.write_all(&out);
                return;
            }
            Err(_) => return,
        };
        match conn.ingest_obs(&chunk[..n], namespace, gauges, Some(&obs)) {
            ConnStatus::Open => {
                if !conn.output().is_empty() {
                    let flushed = stream.write_all(conn.output());
                    conn.clear_output();
                    if flushed.is_err() {
                        return;
                    }
                }
            }
            ConnStatus::Closed => {
                // Framing violation: flush the burst's responses plus
                // the trailing ERR best-effort, then hang up.
                let _ = stream.write_all(conn.output());
                return;
            }
        }
    }
}

/// Spawn a server on a loopback port chosen by the OS — the one-liner
/// for tests and in-process use.
pub fn spawn_local(backend: Backend, shards: usize, capacity: usize) -> io::Result<Server> {
    Server::spawn(SvcConfig {
        shards,
        capacity,
        backend,
        ..SvcConfig::default()
    })
}
