//! # rtas-svc — the network arbitration service
//!
//! Real systems consume test-and-set as a *service*: "who gets this
//! lease", "which replica leads shard 17", "did anyone already claim
//! this job". This crate puts the paper's verified randomized
//! algorithms behind exactly that interface — a std-only TCP server
//! arbitrating contended decisions over **keyed namespaces**, each key
//! an epoch-recycled [`rtas::TestAndSet`] / [`rtas::LeaderElection`]
//! held behind the [`rtas::Arbiter`] vtable. Three layers:
//!
//! * [`protocol`] — the length-prefixed binary wire format (`TAS key`,
//!   `ELECT key`, `RESET key`, `STATS`), with in-order responses so
//!   clients can pipeline;
//! * [`namespace`] — sharded keyed state: keys hash to independently
//!   locked shards, every key recycles through epochs with a
//!   CAS-admission / release-publish gate that generalizes the
//!   `rtas-load` arena's protocol to dynamic membership with an
//!   explicit ack (`RESET`), allocation-free in steady state;
//! * [`conn`] — the per-connection protocol state machine (bytes in →
//!   response bytes out, zero I/O inside): an incremental frame
//!   decoder that drains whole pipelined bursts per read and carries
//!   partial frames across reads;
//! * [`reactor`] — the readiness-driven core: an `epoll(7)`-backed
//!   event loop (`poll(2)` as the reference engine) over a libc-free
//!   syscall shim, driving thousands of `Connection` machines per
//!   worker with write backpressure and timer-wheel read deadlines;
//! * [`server`] / [`client`] — TCP serving through either engine
//!   (reactor workers by default, thread-per-connection as the
//!   portable fallback) with sharded accept loops and bulk-I/O burst
//!   handling (one read, one coalesced write per pipelined burst),
//!   and a blocking pipelining-capable client with batched
//!   single-write sends, bounded timeouts, and jittered reconnect
//!   backoff;
//! * [`chaos`] — the deterministic hostile-network layer: a seeded
//!   fault plan (delays, connection drops, frame truncation and
//!   reordering, stalled holders, byzantine `RESET` acks) that the
//!   load harness replays bit-identically from one seed;
//! * [`metrics`] — the service's always-on metrics plane (reactor
//!   counters, per-worker gauges, per-stage latency histograms) built
//!   on [`rtas_obs`], served by the `METRICS` wire op and scraped into
//!   `rtas-load` report extras. The companion flight recorder
//!   (`--trace on|off|sampled:<n>`) writes lock-free per-worker event
//!   rings dumped in the `RTASTRC1` format and decoded by
//!   `rtas-svc trace-dump`; [`top`] renders a live terminal view over
//!   the same metrics plane (`rtas-svc top`), and the `rtas-trace`
//!   binary merges client/server dumps on wire-propagated span ids
//!   and audits them against the paper's safety claim offline.
//!
//! The `rtas-svc` binary serves (`rtas-svc serve`) and inspects
//! (`rtas-svc stats`) from the command line; `rtas-load --backend
//! remote --addr host:port` fires its deterministic open-loop arrival
//! schedules at a server and emits `BENCH_svc_load.json`.
//!
//! ```
//! use rtas_svc::{server, Client};
//!
//! let srv = server::spawn_local(rtas::Backend::Combined, 4, 8).unwrap();
//! let mut client = Client::connect(srv.addr()).unwrap();
//! assert!(client.tas(b"jobs/2026-07-30/backfill").unwrap().won);
//! assert!(!client.tas(b"jobs/2026-07-30/backfill").unwrap().won);
//! let epoch = client.reset(b"jobs/2026-07-30/backfill").unwrap();
//! assert_eq!(epoch, 1); // recycled: the key arbitrates afresh
//! srv.shutdown();
//! ```
//!
//! The architecture (crate graph, reactor event loop, connection
//! lifecycle) is specified in `docs/ARCHITECTURE.md`, the wire format
//! in `docs/WIRE.md`, and every operational flag in
//! `docs/OPERATIONS.md`.

#![warn(missing_docs)]

pub mod chaos;
pub mod cli;
pub mod client;
pub mod conn;
pub mod metrics;
pub mod namespace;
pub mod protocol;
pub mod reactor;
pub mod server;
pub mod top;

/// The observability substrate (event rings, dump codec, metric
/// types), re-exported so integration tests and tools decode trace
/// dumps without naming a second crate.
pub use rtas_obs as obs;

pub use chaos::{ChaosSpec, FaultPlan};
pub use client::{Client, ClientConfig, ClientError, ClientTracer, RetryPolicy};
pub use conn::{ConnGauges, ConnStatus, Connection, FrameDecoder};
pub use metrics::SvcMetrics;
pub use namespace::{Kind, Namespace, NsError};
pub use protocol::{Acquired, Op, Response, SvcStats};
pub use reactor::Engine;
pub use rtas_obs::TraceMode;
pub use server::{Server, SvcConfig};
