//! Deterministic hostile-network fault injection.
//!
//! The paper's guarantees are *adversarial*: safety and expected step
//! complexity hold against a strong adaptive scheduler. This module
//! gives the network service the same adversary — an in-process chaos
//! layer that perturbs a client's traffic with delays, connection
//! drops, frame truncation, pipeline reordering, stalled epoch
//! holders, and byzantine `RESET` acks (skipped or duplicated) — while
//! keeping the whole schedule **deterministic**: every fault is drawn
//! from [`rtas::sim::rng::SplitMix64`] streams split from one seed, so
//! the same `(seed, spec)` pair replays a bit-identical fault
//! schedule, exactly like the load driver's `ArrivalSchedule`.
//!
//! Three layers:
//!
//! * [`ChaosSpec`] — the fault mix, parsed from the CLI grammar
//!   `k=v,k=v,...` or one of the named presets (`clean`, `delay-only`,
//!   `drop-heavy`, `byzantine-reset`);
//! * [`FaultPlan`] — the deterministic schedule: a per-connection
//!   SplitMix64 stream ([`FaultPlan::for_connection`]) drawing one
//!   [`OpFaults`] per operation in a fixed order, plus
//!   [`FaultPlan::reset_faults`], a *pure function* of
//!   `(seed, shard, epoch)` so the reset-ack faults do not depend on
//!   which racing worker happens to resolve the epoch;
//! * [`ChaosClient`] — a [`crate::Client`] wrapper that
//!   applies a plan's faults to real wire traffic and classifies the
//!   fallout into [`ChaosCounts`]. It can optionally carry a
//!   [`ClientTracer`]: every wire attempt is stamped with a fresh
//!   trace span (see `docs/WIRE.md`) without consuming a single draw
//!   from the fault or jitter streams, so traced chaos runs replay
//!   the same fault schedule as untraced ones.
//!
//! The safety bar is unchanged under every fault mix: at most one
//! winner per key-epoch, server-side. The chaos layer may *lose*
//! acks (the lease reclaims those epochs), may retry (idempotent at
//! epoch granularity), and may lie — none of it can mint a second
//! winner, and `tests/svc_chaos.rs` asserts exactly that.

use std::fmt;
use std::io;
use std::time::Duration;

use rtas::sim::rng::SplitMix64;

use crate::client::{Client, ClientConfig, ClientTracer, RetryPolicy};
use crate::protocol::{frame_request_span, Op, Response};
use crate::ClientError;

/// Probabilities and magnitudes of every fault class. Probabilities
/// are in `[0, 1]`; a zero disables that class entirely (and its
/// draws still happen, so toggling one class never shifts another's
/// schedule — see [`FaultPlan`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// Probability an operation is delayed before its request is sent.
    pub delay_p: f64,
    /// Ceiling on the injected delay; the actual delay is uniform in
    /// `[0, delay_max)`.
    pub delay_max: Duration,
    /// Probability the connection is severed right after an operation
    /// completes (mid-epoch from the protocol's point of view: any
    /// slot the connection holds is abandoned without an ack).
    pub drop_p: f64,
    /// Probability a request frame is sent truncated (the server must
    /// time the stall out or see the next connection close; either
    /// way the stream dies and the client redials).
    pub truncate_p: f64,
    /// Probability an operation is pipelined together with the next
    /// one in a reordered batch (the *frames* are reordered relative
    /// to program order; the server still answers in arrival order).
    pub reorder_p: f64,
    /// Probability a *winning* operation stalls — holds its epoch slot
    /// for `stall` before acking, exercising the server lease.
    pub stall_p: f64,
    /// How long a stalling holder sleeps.
    pub stall: Duration,
    /// Probability a due `RESET` ack is byzantinely skipped (the epoch
    /// is abandoned; only the server lease can retire it).
    pub skip_reset_p: f64,
    /// Probability a `RESET` ack is byzantinely duplicated (sent
    /// twice; the server's zero-admission guard makes the replay a
    /// no-op).
    pub dup_reset_p: f64,
}

impl Default for ChaosSpec {
    /// The `clean` preset: every fault disabled.
    fn default() -> Self {
        ChaosSpec {
            delay_p: 0.0,
            delay_max: Duration::from_micros(500),
            drop_p: 0.0,
            truncate_p: 0.0,
            reorder_p: 0.0,
            stall_p: 0.0,
            stall: Duration::from_millis(5),
            skip_reset_p: 0.0,
            dup_reset_p: 0.0,
        }
    }
}

impl ChaosSpec {
    /// The named presets the CLI and CI cells use.
    pub fn preset(name: &str) -> Option<ChaosSpec> {
        let mut spec = ChaosSpec::default();
        match name {
            "clean" => {}
            "delay-only" => {
                spec.delay_p = 0.25;
                spec.delay_max = Duration::from_micros(200);
            }
            "drop-heavy" => {
                spec.delay_p = 0.05;
                spec.delay_max = Duration::from_micros(100);
                spec.drop_p = 0.02;
                spec.truncate_p = 0.01;
                spec.reorder_p = 0.05;
            }
            "byzantine-reset" => {
                spec.delay_p = 0.05;
                spec.delay_max = Duration::from_micros(100);
                spec.stall_p = 0.02;
                spec.stall = Duration::from_millis(2);
                spec.skip_reset_p = 0.05;
                spec.dup_reset_p = 0.10;
            }
            _ => return None,
        }
        Some(spec)
    }

    /// Parse the CLI grammar: a preset name, or `k=v` pairs separated
    /// by commas over the keys `delay`, `delay-max-us`, `drop`,
    /// `truncate`, `reorder`, `stall`, `stall-ms`, `skip-reset`,
    /// `dup-reset` (probabilities as floats in `[0,1]`, durations as
    /// integers). Pairs may follow a preset to override it:
    /// `drop-heavy,drop=0.1`.
    pub fn parse(s: &str) -> Result<ChaosSpec, String> {
        let mut spec = ChaosSpec::default();
        for (i, part) in s.split(',').enumerate() {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if let Some(preset) = ChaosSpec::preset(part) {
                if i != 0 {
                    return Err(format!("preset '{part}' must come first in a chaos spec"));
                }
                spec = preset;
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected preset or k=v, got '{part}'"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("'{v}' is not a probability"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability {p} outside [0, 1]"));
                }
                Ok(p)
            };
            let int = |v: &str| -> Result<u64, String> {
                v.parse().map_err(|_| format!("'{v}' is not an integer"))
            };
            match key.trim() {
                "delay" => spec.delay_p = prob(value)?,
                "delay-max-us" => spec.delay_max = Duration::from_micros(int(value)?),
                "drop" => spec.drop_p = prob(value)?,
                "truncate" => spec.truncate_p = prob(value)?,
                "reorder" => spec.reorder_p = prob(value)?,
                "stall" => spec.stall_p = prob(value)?,
                "stall-ms" => spec.stall = Duration::from_millis(int(value)?),
                "skip-reset" => spec.skip_reset_p = prob(value)?,
                "dup-reset" => spec.dup_reset_p = prob(value)?,
                other => return Err(format!("unknown chaos key '{other}'")),
            }
        }
        Ok(spec)
    }

    /// True when every fault class is disabled.
    pub fn is_clean(&self) -> bool {
        self.delay_p == 0.0
            && self.drop_p == 0.0
            && self.truncate_p == 0.0
            && self.reorder_p == 0.0
            && self.stall_p == 0.0
            && self.skip_reset_p == 0.0
            && self.dup_reset_p == 0.0
    }
}

impl fmt::Display for ChaosSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "delay={},delay-max-us={},drop={},truncate={},reorder={},\
             stall={},stall-ms={},skip-reset={},dup-reset={}",
            self.delay_p,
            self.delay_max.as_micros(),
            self.drop_p,
            self.truncate_p,
            self.reorder_p,
            self.stall_p,
            self.stall.as_millis(),
            self.skip_reset_p,
            self.dup_reset_p,
        )
    }
}

/// The faults drawn for one operation, in program order.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpFaults {
    /// Sleep this long before sending the request (zero: no delay).
    pub delay: Duration,
    /// Send the request frame truncated; the connection is then dead.
    pub truncate: bool,
    /// Pipeline this request reordered with the connection's next one.
    pub reorder: bool,
    /// If this operation wins, hold the slot this long before acking.
    pub stall: Option<Duration>,
    /// Sever the connection after the operation completes.
    pub drop_after: bool,
}

/// The faults for one `RESET` ack — a pure function of
/// `(seed, shard, epoch)`, NOT of which worker sends it.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResetFaults {
    /// Byzantinely skip the ack: abandon the epoch to the lease.
    pub skip: bool,
    /// Byzantinely send the ack twice.
    pub duplicate: bool,
}

/// A deterministic fault schedule: the spec plus the root seed.
///
/// Each connection gets its own SplitMix64 stream
/// ([`FaultPlan::for_connection`]) whose draws happen in a **fixed
/// order on every operation** — every class's random numbers are
/// consumed whether or not the class is enabled, so changing one
/// probability never shifts another class's schedule, and re-running
/// with the same seed replays the schedule bit-identically.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    spec: ChaosSpec,
    seed: u64,
}

/// Per-connection fault stream: draws [`OpFaults`] one operation at a
/// time. Obtained from [`FaultPlan::for_connection`].
#[derive(Debug)]
pub struct ConnectionPlan {
    spec: ChaosSpec,
    rng: SplitMix64,
}

impl FaultPlan {
    /// A plan replaying `spec` from `seed`.
    pub fn new(spec: ChaosSpec, seed: u64) -> Self {
        FaultPlan { spec, seed }
    }

    /// The fault mix this plan replays.
    pub fn spec(&self) -> &ChaosSpec {
        &self.spec
    }

    /// The root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault stream for connection `conn` (stable ids: the load
    /// harness numbers worker connections 0..). Streams are split from
    /// the root seed, so they are mutually independent and each
    /// replayable in isolation.
    pub fn for_connection(&self, conn: u64) -> ConnectionPlan {
        ConnectionPlan {
            spec: self.spec.clone(),
            rng: SplitMix64::split(self.seed, conn),
        }
    }

    /// The byzantine faults for the `RESET` ack of `(shard, epoch)`.
    ///
    /// Deliberately a pure function of the *epoch coordinates*: under
    /// contention the identity of the acking worker is a race, and
    /// hanging the draw off the worker's stream would make the global
    /// fault schedule nondeterministic. Off the coordinates it is
    /// replayable regardless of thread interleaving.
    pub fn reset_faults(&self, shard: u64, epoch: u64) -> ResetFaults {
        // A distinct stream family from connections: tag the index
        // space so `shard` ids can never collide with `conn` ids.
        let mut rng = SplitMix64::split(self.seed ^ 0x5245_5345_545F_4358, shard);
        // Jump to this epoch's draw pair without materializing the
        // prefix: re-split by epoch (cheap, stateless, deterministic).
        let mut rng = SplitMix64::split(rng.next_u64(), epoch);
        let skip = rng.bernoulli(self.spec.skip_reset_p);
        let duplicate = rng.bernoulli(self.spec.dup_reset_p);
        ResetFaults {
            skip,
            duplicate: duplicate && !skip,
        }
    }
}

impl ConnectionPlan {
    /// Draw the next operation's faults. Every class draws exactly
    /// once, unconditionally and in declaration order — the fixed-
    /// order contract that keeps schedules stable across spec tweaks.
    pub fn next_op(&mut self) -> OpFaults {
        let delay_roll = self.rng.bernoulli(self.spec.delay_p);
        let delay_ns = {
            let max = self.spec.delay_max.as_nanos().min(u64::MAX as u128) as u64;
            if max == 0 {
                0
            } else {
                self.rng.next_below(max)
            }
        };
        let truncate = self.rng.bernoulli(self.spec.truncate_p);
        let reorder = self.rng.bernoulli(self.spec.reorder_p);
        let stall_roll = self.rng.bernoulli(self.spec.stall_p);
        let drop_after = self.rng.bernoulli(self.spec.drop_p);
        OpFaults {
            delay: if delay_roll {
                Duration::from_nanos(delay_ns)
            } else {
                Duration::ZERO
            },
            truncate,
            reorder,
            stall: stall_roll.then_some(self.spec.stall),
            drop_after,
        }
    }
}

/// Cumulative fault / recovery counters, per connection or merged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosCounts {
    /// Operations delayed before send.
    pub delays: u64,
    /// Connections severed by the plan (drop or truncation fallout).
    pub drops: u64,
    /// Request frames sent truncated.
    pub truncations: u64,
    /// Operation pairs sent as a reordered pipeline batch.
    pub reorders: u64,
    /// Winning operations that stalled holding their slot.
    pub stalls: u64,
    /// `RESET` acks byzantinely skipped.
    pub skipped_resets: u64,
    /// `RESET` acks byzantinely duplicated.
    pub dup_resets: u64,
    /// Transport-level timeouts observed (read/write/connect).
    pub timeouts: u64,
    /// Operations retried after a transport failure.
    pub retries: u64,
    /// Successful redials.
    pub reconnects: u64,
}

impl ChaosCounts {
    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: &ChaosCounts) {
        self.delays += other.delays;
        self.drops += other.drops;
        self.truncations += other.truncations;
        self.reorders += other.reorders;
        self.stalls += other.stalls;
        self.skipped_resets += other.skipped_resets;
        self.dup_resets += other.dup_resets;
        self.timeouts += other.timeouts;
        self.retries += other.retries;
        self.reconnects += other.reconnects;
    }

    /// Total injected faults (not counting recovery actions).
    pub fn injected(&self) -> u64 {
        self.delays
            + self.drops
            + self.truncations
            + self.reorders
            + self.stalls
            + self.skipped_resets
            + self.dup_resets
    }
}

/// The verdict of one chaotic acquire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosVerdict {
    /// Did this operation win its server epoch?
    pub won: bool,
    /// The server epoch the verdict belongs to.
    pub epoch: u64,
}

/// A fault-injecting wrapper around one [`Client`] connection.
///
/// Applies a [`ConnectionPlan`]'s faults to real traffic and absorbs
/// the fallout: severed or truncated connections redial under the
/// [`RetryPolicy`] with a backoff jitter stream that is **separate**
/// from the fault stream (retries are timing-dependent and must not
/// shift the deterministic fault schedule).
///
/// With a [`ClientTracer`] attached ([`ChaosClient::with_tracer`])
/// every wire attempt carries a **fresh** trace span — a retry is a
/// new attempt and mints a new span, so a client span can never pair
/// with more than one server span. Span minting is pure arithmetic on
/// the tracer's own counter: it never draws from the fault or jitter
/// streams, so traced and untraced runs replay the **bit-identical**
/// fault schedule from the same seed. On reordered (and duplicated
/// ack) batches only the *first* frame carries the span; the second
/// is deliberately untraced for the same ≤1-server-span reason.
#[derive(Debug)]
pub struct ChaosClient {
    addr: String,
    config: ClientConfig,
    retry: RetryPolicy,
    client: Option<Client>,
    /// Whether a connection has ever been established: any later
    /// successful dial is a *re*connect in the counters.
    ever_connected: bool,
    plan: ConnectionPlan,
    jitter: SplitMix64,
    counts: ChaosCounts,
    tracer: Option<ClientTracer>,
}

impl ChaosClient {
    /// Wrap connection `conn` of `plan`, dialing `addr` lazily.
    pub fn new(addr: &str, plan: &FaultPlan, conn: u64, config: ClientConfig) -> Self {
        ChaosClient {
            addr: addr.to_string(),
            config,
            retry: RetryPolicy::default(),
            client: None,
            ever_connected: false,
            // Jitter stream: same root, disjoint tagged index space.
            jitter: SplitMix64::split(plan.seed() ^ 0x4A49_5454_4552_5F43, conn),
            plan: plan.for_connection(conn),
            counts: ChaosCounts::default(),
            tracer: None,
        }
    }

    /// Attach a tracer: stamp every wire attempt with a fresh span and
    /// record a [`rtas_obs::EventKind::ClientSpan`] per completed
    /// attempt. The schedule-neutrality contract is documented on the
    /// type.
    pub fn with_tracer(mut self, tracer: ClientTracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// The fault/recovery counters so far.
    pub fn counts(&self) -> &ChaosCounts {
        &self.counts
    }

    /// A fresh span for the next wire attempt, or 0 (untraced) when no
    /// live tracer is attached. Pure arithmetic — no RNG.
    fn mint_span(&mut self) -> u64 {
        match self.tracer.as_mut() {
            Some(t) if t.enabled() => t.mint(),
            _ => 0,
        }
    }

    fn ensure_client(&mut self) -> io::Result<&mut Client> {
        if self.client.is_none() {
            let mut attempt = 0;
            loop {
                match Client::connect_with(&*self.addr, self.config.clone()) {
                    Ok(c) => {
                        if self.ever_connected {
                            self.counts.reconnects += 1;
                        }
                        self.ever_connected = true;
                        self.client = Some(c);
                        break;
                    }
                    Err(e) => {
                        if e.kind() == io::ErrorKind::TimedOut {
                            self.counts.timeouts += 1;
                        }
                        attempt += 1;
                        if attempt >= self.retry.attempts {
                            return Err(e);
                        }
                        std::thread::sleep(self.retry.backoff(attempt - 1, &mut self.jitter));
                    }
                }
            }
        }
        Ok(self.client.as_mut().expect("just ensured"))
    }

    fn sever(&mut self) {
        self.client = None;
        self.counts.drops += 1;
    }

    fn classify(&mut self, err: &ClientError) {
        if let ClientError::Io(e) = err {
            if matches!(
                e.kind(),
                io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
            ) {
                self.counts.timeouts += 1;
            }
        }
    }

    /// One chaotic arbitration op on `key`: apply this operation's
    /// faults, retrying through transport failures until the server
    /// hands down a verdict. Infallible short of retry exhaustion.
    pub fn acquire(&mut self, op: Op, key: &[u8]) -> Result<ChaosVerdict, ClientError> {
        let faults = self.plan.next_op();
        if !faults.delay.is_zero() {
            self.counts.delays += 1;
            std::thread::sleep(faults.delay);
        }
        if faults.truncate {
            // Send a torn frame — a length header promising more bytes
            // than follow — then sever. The server times the stall out
            // (read deadline) or sees the close; either way this op
            // never happened and the retry below re-runs it cleanly.
            self.counts.truncations += 1;
            // The torn attempt is a wire attempt too: it gets its own
            // span (never a response, so no client span is recorded
            // and nothing can mispair with the retry's fresh span).
            let span = self.mint_span();
            let mut frame = Vec::new();
            frame_request_span(op, span, key, &mut frame);
            let torn = &frame[..frame.len() - 1];
            if let Ok(client) = self.ensure_client() {
                let _ = client.inject_raw(torn);
            }
            self.sever();
            // The loop below re-sends this op on a fresh connection:
            // that IS a retry after a transport fault, count it as one.
            self.counts.retries += 1;
        }
        let mut attempt = 0;
        let verdict = loop {
            let result = self.try_once(op, key, &faults);
            match result {
                Ok(v) => break v,
                Err(err @ ClientError::Io(_)) | Err(err @ ClientError::Protocol(_)) => {
                    // Transport death or a desynchronized stream: the
                    // connection is untrustworthy. Redial and retry —
                    // idempotent at epoch granularity (a replayed op
                    // rejoins the key's open epoch; a duplicated loss
                    // is just another loss).
                    self.classify(&err);
                    self.client = None;
                    attempt += 1;
                    if attempt >= self.retry.attempts {
                        return Err(err);
                    }
                    self.counts.retries += 1;
                    std::thread::sleep(self.retry.backoff(attempt - 1, &mut self.jitter));
                }
                Err(other) => return Err(other),
            }
        };
        if faults.drop_after {
            self.sever();
        }
        Ok(verdict)
    }

    fn try_once(
        &mut self,
        op: Op,
        key: &[u8],
        faults: &OpFaults,
    ) -> Result<ChaosVerdict, ClientError> {
        let reorder = faults.reorder;
        let span = self.mint_span();
        let start = self.tracer.as_ref().map(ClientTracer::now_ns);
        let client = self.ensure_client().map_err(ClientError::Io)?;
        let acquired = if reorder {
            // Reorder within the pipeline: the same request twice in
            // one batch, back frame first in construction order, both
            // frames shipped in one coalesced write. The server answers
            // in arrival order; both verdicts belong to this op's key,
            // and at most one can win. Take the win if either got it.
            // Only the first frame carries the span: one traced frame
            // per attempt keeps ≤1 server span per client span.
            client.send_batch_span(&[(op, span, key), (op, 0, key)])?;
            let first = expect_acquired(client.recv()?)?;
            let second = expect_acquired(client.recv()?)?;
            if first.won {
                first
            } else {
                second
            }
        } else {
            client.send_span(op, span, key)?;
            expect_acquired(client.recv()?)?
        };
        if span != 0 {
            if let (Some(tracer), Some(t0)) = (self.tracer.as_ref(), start) {
                tracer.record(op, span, tracer.now_ns().saturating_sub(t0));
            }
        }
        if reorder {
            self.counts.reorders += 1;
        }
        if acquired.won {
            if let Some(stall) = faults.stall {
                self.counts.stalls += 1;
                std::thread::sleep(stall);
            }
        }
        Ok(ChaosVerdict {
            won: acquired.won,
            epoch: acquired.epoch,
        })
    }

    /// Ack an epoch resolution on `key`, subject to `faults`. Returns
    /// the epoch the server reports open after the ack (`None` when
    /// the ack was byzantinely skipped). A duplicated ack relies on
    /// the server's zero-admission guard: the replay is a no-op.
    pub fn ack_reset(
        &mut self,
        key: &[u8],
        faults: ResetFaults,
    ) -> Result<Option<u64>, ClientError> {
        if faults.skip {
            self.counts.skipped_resets += 1;
            return Ok(None);
        }
        let sends = if faults.duplicate { 2 } else { 1 };
        let mut attempt = 0;
        loop {
            match self.reset_once(key, sends) {
                Ok(epoch) => {
                    if faults.duplicate {
                        self.counts.dup_resets += 1;
                    }
                    return Ok(Some(epoch));
                }
                Err(err @ ClientError::Io(_)) | Err(err @ ClientError::Protocol(_)) => {
                    self.classify(&err);
                    self.client = None;
                    attempt += 1;
                    if attempt >= self.retry.attempts {
                        return Err(err);
                    }
                    self.counts.retries += 1;
                    std::thread::sleep(self.retry.backoff(attempt - 1, &mut self.jitter));
                }
                Err(other) => return Err(other),
            }
        }
    }

    fn reset_once(&mut self, key: &[u8], sends: u32) -> Result<u64, ClientError> {
        let span = self.mint_span();
        let start = self.tracer.as_ref().map(ClientTracer::now_ns);
        let client = self.ensure_client().map_err(ClientError::Io)?;
        // A duplicated ack goes out as one pipelined batch — a single
        // coalesced write carrying both RESET frames. Only the first
        // frame is traced (see the type docs).
        let batch: Vec<(Op, u64, &[u8])> = (0..sends)
            .map(|i| (Op::Reset, if i == 0 { span } else { 0 }, key))
            .collect();
        client.send_batch_span(&batch)?;
        let mut last = 0;
        for _ in 0..sends {
            match client.recv()? {
                Response::Reset { epoch } => last = epoch,
                Response::Err(msg) => return Err(ClientError::Remote(msg)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected a reset ack, got {other:?}"
                    )))
                }
            }
        }
        if span != 0 {
            if let (Some(tracer), Some(t0)) = (self.tracer.as_ref(), start) {
                tracer.record(Op::Reset, span, tracer.now_ns().saturating_sub(t0));
            }
        }
        Ok(last)
    }

    /// Drain anything still buffered and drop the connection (end of a
    /// worker's run).
    pub fn finish(mut self) -> ChaosCounts {
        if let Some(client) = self.client.take() {
            drop(client);
        }
        self.counts
    }
}

fn expect_acquired(response: Response) -> Result<crate::Acquired, ClientError> {
    match response {
        Response::Acquired(a) => Ok(a),
        Response::Err(msg) => Err(ClientError::Remote(msg)),
        other => Err(ClientError::Protocol(format!(
            "expected an arbitration verdict, got {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse_and_round_trip_through_the_grammar() {
        for name in ["clean", "delay-only", "drop-heavy", "byzantine-reset"] {
            let preset = ChaosSpec::preset(name).unwrap();
            assert_eq!(ChaosSpec::parse(name).unwrap(), preset);
            // Display emits the explicit k=v form, which parses back.
            assert_eq!(ChaosSpec::parse(&preset.to_string()).unwrap(), preset);
        }
        assert!(ChaosSpec::preset("nope").is_none());
        assert!(ChaosSpec::parse("clean").unwrap().is_clean());
        assert!(!ChaosSpec::parse("drop-heavy").unwrap().is_clean());
    }

    #[test]
    fn key_value_grammar_overrides_presets() {
        let spec = ChaosSpec::parse("drop-heavy,drop=0.5,stall-ms=9").unwrap();
        assert_eq!(spec.drop_p, 0.5);
        assert_eq!(spec.stall, Duration::from_millis(9));
        // Untouched keys keep the preset's values.
        assert_eq!(
            spec.truncate_p,
            ChaosSpec::preset("drop-heavy").unwrap().truncate_p
        );
    }

    #[test]
    fn bad_specs_are_refused_with_a_reason() {
        for (input, needle) in [
            ("drop=1.5", "outside"),
            ("drop=x", "not a probability"),
            ("unknown=1", "unknown chaos key"),
            ("gibberish", "expected preset or k=v"),
            ("drop=0.1,clean", "must come first"),
            ("stall-ms=abc", "not an integer"),
        ] {
            let err = ChaosSpec::parse(input).unwrap_err();
            assert!(err.contains(needle), "{input}: {err}");
        }
    }

    #[test]
    fn connection_plans_replay_bit_identically_from_one_seed() {
        let spec = ChaosSpec::parse("drop-heavy,stall=0.3,skip-reset=0.2").unwrap();
        let a = FaultPlan::new(spec.clone(), 42);
        let b = FaultPlan::new(spec, 42);
        for conn in 0..8u64 {
            let (mut pa, mut pb) = (a.for_connection(conn), b.for_connection(conn));
            for _ in 0..1000 {
                assert_eq!(pa.next_op(), pb.next_op());
            }
        }
        for shard in 0..4 {
            for epoch in 0..256 {
                assert_eq!(a.reset_faults(shard, epoch), b.reset_faults(shard, epoch));
            }
        }
    }

    #[test]
    fn distinct_seeds_and_connections_draw_distinct_schedules() {
        let spec = ChaosSpec::parse("drop=0.5,delay=0.5,truncate=0.5").unwrap();
        let plan = FaultPlan::new(spec.clone(), 1);
        let other_seed = FaultPlan::new(spec, 2);
        let sample =
            |p: &mut ConnectionPlan| -> Vec<OpFaults> { (0..64).map(|_| p.next_op()).collect() };
        let c0 = sample(&mut plan.for_connection(0));
        let c1 = sample(&mut plan.for_connection(1));
        let s2 = sample(&mut other_seed.for_connection(0));
        assert_ne!(c0, c1, "per-connection streams are independent");
        assert_ne!(c0, s2, "different seeds, different schedules");
    }

    #[test]
    fn toggling_one_fault_class_never_shifts_anothers_schedule() {
        // The fixed-order draw contract: enable drops, and the delay
        // schedule must not move.
        let with_drops = FaultPlan::new(ChaosSpec::parse("delay=0.3,drop=0.9").unwrap(), 7);
        let without = FaultPlan::new(ChaosSpec::parse("delay=0.3").unwrap(), 7);
        let (mut pa, mut pb) = (with_drops.for_connection(3), without.for_connection(3));
        for _ in 0..500 {
            let (fa, fb) = (pa.next_op(), pb.next_op());
            assert_eq!(fa.delay, fb.delay, "delay schedule is drop-independent");
        }
    }

    #[test]
    fn reset_faults_are_pure_in_the_epoch_coordinates() {
        let spec = ChaosSpec::preset("byzantine-reset").unwrap();
        let plan = FaultPlan::new(spec, 99);
        // Calling in any order, any number of times, gives the same
        // answer: the draw is stateless.
        let expected = plan.reset_faults(1, 10);
        for _ in 0..3 {
            assert_eq!(plan.reset_faults(1, 10), expected);
        }
        // Skip and duplicate are mutually exclusive by construction.
        for shard in 0..8 {
            for epoch in 0..512 {
                let f = plan.reset_faults(shard, epoch);
                assert!(!(f.skip && f.duplicate));
            }
        }
        // With byzantine probabilities on, both classes actually fire
        // somewhere in the grid.
        let grid: Vec<ResetFaults> = (0..8)
            .flat_map(|s| (0..512).map(move |e| (s, e)))
            .map(|(s, e)| plan.reset_faults(s, e))
            .collect();
        assert!(grid.iter().any(|f| f.skip), "skip fires");
        assert!(grid.iter().any(|f| f.duplicate), "duplicate fires");
    }

    #[test]
    fn attaching_a_tracer_never_touches_the_fault_or_jitter_streams() {
        use rtas_obs::{FlightRecorder, TraceMode};
        use std::sync::Arc;
        // Minting spans is pure arithmetic on the tracer's counter, so
        // a traced client's fault plan must replay bit-identically to
        // an untraced one from the same seed — even after many mints.
        let spec = ChaosSpec::parse("drop-heavy").unwrap();
        let plan = FaultPlan::new(spec, 42);
        let recorder = Arc::new(FlightRecorder::new(TraceMode::On, 1));
        let mut traced = ChaosClient::new("127.0.0.1:1", &plan, 0, ClientConfig::default())
            .with_tracer(ClientTracer::new(recorder, 0));
        let mut plain = ChaosClient::new("127.0.0.1:1", &plan, 0, ClientConfig::default());
        for _ in 0..64 {
            let span = traced.mint_span();
            assert_ne!(span, 0, "a live tracer mints nonzero spans");
            assert_eq!(plain.mint_span(), 0, "no tracer means span 0");
            assert_eq!(traced.plan.next_op(), plain.plan.next_op());
        }
        // An attached-but-off tracer also stamps nothing on the wire.
        let off = Arc::new(FlightRecorder::new(TraceMode::Off, 1));
        let mut idle = ChaosClient::new("127.0.0.1:1", &plan, 0, ClientConfig::default())
            .with_tracer(ClientTracer::new(off, 0));
        assert_eq!(idle.mint_span(), 0);
    }

    #[test]
    fn chaos_counts_merge_and_total() {
        let mut a = ChaosCounts {
            delays: 1,
            drops: 2,
            truncations: 3,
            retries: 10,
            ..ChaosCounts::default()
        };
        let b = ChaosCounts {
            delays: 4,
            stalls: 5,
            skipped_resets: 6,
            dup_resets: 7,
            timeouts: 8,
            reconnects: 9,
            ..ChaosCounts::default()
        };
        a.merge(&b);
        assert_eq!(a.delays, 5);
        assert_eq!(a.injected(), 5 + 2 + 3 + 5 + 6 + 7);
        assert_eq!(a.retries, 10);
        assert_eq!(a.timeouts, 8);
    }
}
