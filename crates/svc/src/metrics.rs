//! The service's metrics plane: the instruments `rtas-svc` keeps lit.
//!
//! [`SvcMetrics`] wraps an [`rtas_obs::Registry`] and pre-registers
//! every instrument the server updates, handing out the `Arc` handles
//! the hot paths increment lock-free:
//!
//! * **Reactor counters** — `reactor.wake_writes` (dispatcher pokes of
//!   a worker's wake socket) and `reactor.carryovers` (flushes that
//!   left a partial write buffered), both previously invisible outside
//!   a debugger.
//! * **Per-worker gauges** — `reactor.worker<k>.slab_live` (occupied
//!   connection slots) and `reactor.worker<k>.wheel_entries` (armed
//!   idle deadlines in the timer wheel).
//! * **Hot-path stage histograms** — `stage.read_ns`, `stage.decode_ns`,
//!   `stage.arbiter_ns`, `stage.encode_ns`, `stage.write_ns`: the
//!   read → decode → arbiter → encode → write breakdown of one frame's
//!   service time, recorded when the flight recorder's sampling gate
//!   says so (`--trace on|sampled:<n>`; with `--trace off` the stages
//!   stay registered but empty, so the exposition's shape is stable).
//!
//! Histograms share one instrument across workers (log-bin arrays of
//! relaxed atomics — contention is a `fetch_add`); gauges are
//! per-worker because a level owned by one thread must not be averaged
//! away by another. The `METRICS` wire op renders the registry behind
//! the `svc.*` counter lines (see [`crate::conn`]).

use rtas_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;

/// Pre-registered instrument handles plus the registry that renders
/// them — see the [module docs](self).
#[derive(Debug)]
pub struct SvcMetrics {
    registry: Registry,
    /// Dispatcher writes to worker wake sockets, cumulative.
    pub wake_writes: Arc<Counter>,
    /// Flushes that left bytes buffered (partial-write carryover),
    /// cumulative.
    pub carryovers: Arc<Counter>,
    /// Occupied connection-slab slots, one gauge per reactor worker.
    pub slab_live: Vec<Arc<Gauge>>,
    /// Armed timer-wheel deadlines, one gauge per reactor worker.
    pub wheel_entries: Vec<Arc<Gauge>>,
    /// Time blocked in `read(2)` plus buffer ingestion for one frame
    /// batch, nanoseconds.
    pub stage_read: Arc<Histogram>,
    /// Frame header + request decode time, nanoseconds.
    pub stage_decode: Arc<Histogram>,
    /// Namespace arbitration (admission, protocol run, verdict) time,
    /// nanoseconds.
    pub stage_arbiter: Arc<Histogram>,
    /// Response framing (encode) time, nanoseconds.
    pub stage_encode: Arc<Histogram>,
    /// Socket write/flush time for a ready batch, nanoseconds.
    pub stage_write: Arc<Histogram>,
}

impl SvcMetrics {
    /// Instruments for a server with `workers` reactor workers (pass 0
    /// for the threads engine — the per-worker gauges then simply don't
    /// exist).
    pub fn new(workers: usize) -> Self {
        let registry = Registry::new();
        let wake_writes = registry.counter("reactor.wake_writes");
        let carryovers = registry.counter("reactor.carryovers");
        let slab_live = (0..workers)
            .map(|k| registry.gauge(&format!("reactor.worker{k}.slab_live")))
            .collect();
        let wheel_entries = (0..workers)
            .map(|k| registry.gauge(&format!("reactor.worker{k}.wheel_entries")))
            .collect();
        let stage_read = registry.histogram("stage.read_ns");
        let stage_decode = registry.histogram("stage.decode_ns");
        let stage_arbiter = registry.histogram("stage.arbiter_ns");
        let stage_encode = registry.histogram("stage.encode_ns");
        let stage_write = registry.histogram("stage.write_ns");
        SvcMetrics {
            registry,
            wake_writes,
            carryovers,
            slab_live,
            wheel_entries,
            stage_read,
            stage_decode,
            stage_arbiter,
            stage_encode,
            stage_write,
        }
    }

    /// The registry behind the handles (rendered by the `METRICS` wire
    /// op after the `svc.*` namespace counters).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_instrument_is_registered_and_renders() {
        let m = SvcMetrics::new(2);
        m.wake_writes.add(5);
        m.carryovers.inc();
        m.slab_live[0].set(3);
        m.wheel_entries[1].set(7);
        m.stage_arbiter.record(1234.0);
        let text = m.registry().render();
        for needle in [
            "reactor.wake_writes 5\n",
            "reactor.carryovers 1\n",
            "reactor.worker0.slab_live 3\n",
            "reactor.worker1.slab_live 0\n",
            "reactor.worker0.wheel_entries 0\n",
            "reactor.worker1.wheel_entries 7\n",
            "stage.read_ns.count 0\n",
            "stage.decode_ns.count 0\n",
            "stage.arbiter_ns.count 1\n",
            "stage.encode_ns.p99 ",
            "stage.write_ns.p50 ",
        ] {
            assert!(text.contains(needle), "exposition missing {needle:?}");
        }
    }

    #[test]
    fn zero_worker_metrics_have_no_gauges() {
        let m = SvcMetrics::new(0);
        assert!(m.slab_live.is_empty());
        assert!(m.wheel_entries.is_empty());
        assert!(!m.registry().render().contains("worker0"));
    }
}
