//! `rtas-svc` — serve and inspect the network arbitration service.
//!
//! Run `rtas-svc --help` for the flag list: the usage text is rendered
//! from [`rtas_svc::cli::SERVE_FLAGS`], the same table the parser is
//! tested against, so help and parser cannot drift. The same flags are
//! documented with units and defaults in `docs/OPERATIONS.md`.
//!
//! `serve` prints `listening on <addr>` once the socket is bound —
//! smoke scripts can wait for the port. See `docs/WIRE.md` for the
//! wire protocol.

use std::process::ExitCode;

use rtas_svc::{cli, Client, Server};

fn usage() -> ! {
    eprintln!("{}", cli::serve_usage());
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage();
    };
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    match command.as_str() {
        "serve" => {
            let config = cli::parse_serve(&args[1..]).unwrap_or_else(|message| {
                eprintln!("error: {message}");
                usage();
            });
            let server = match Server::spawn(config.clone()) {
                Ok(server) => server,
                Err(e) => {
                    eprintln!("rtas-svc: cannot serve on {}: {e}", config.addr);
                    return ExitCode::from(2);
                }
            };
            println!(
                "rtas-svc: listening on {} (backend={:?} shards={} capacity={} listeners={} \
                 engine={} workers={})",
                server.addr(),
                config.backend,
                config.shards,
                config.capacity,
                config.listeners,
                config.engine,
                config.workers,
            );
            server.join();
            ExitCode::SUCCESS
        }
        "stats" => {
            let addr = cli::parse_stats(&args[1..]).unwrap_or_else(|message| {
                eprintln!("error: {message}");
                usage();
            });
            let stats = Client::connect(&addr)
                .map_err(rtas_svc::ClientError::Io)
                .and_then(|mut client| client.stats());
            match stats {
                Ok(s) => {
                    println!(
                        "keys {} | ops {} | wins {} | resets {} | registers {} | \
                         reclaimed {} | conns {} | refused {}",
                        s.keys,
                        s.ops,
                        s.wins,
                        s.resets,
                        s.registers,
                        s.reclaimed,
                        s.conns,
                        s.refused
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("rtas-svc: stats from {addr} failed: {e}");
                    ExitCode::from(2)
                }
            }
        }
        other => {
            eprintln!("error: unknown command {other:?}");
            usage();
        }
    }
}
