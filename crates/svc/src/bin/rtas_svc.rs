//! `rtas-svc` — serve and inspect the network arbitration service.
//!
//! ```text
//! rtas-svc serve [options]        run a server (blocks)
//!   --addr <a>       bind address                      (default 127.0.0.1:7045)
//!   --shards <n>     namespace shards                  (default 8)
//!   --capacity <n>   participants per key-epoch        (default 64)
//!   --backend <b>    logstar | loglog | ratrace | combined  (default combined)
//!   --listeners <n>  accept threads                    (default 2)
//!   --max-keys <n>   ceiling on live keys              (default 1048576)
//!   --lease-ms <n>   reclaim unacked epochs after n ms (default off)
//!   --read-timeout-ms <n>  close connections idle past n ms (default off)
//!   --max-conns <n>  refuse connections beyond n live  (default 1024)
//!
//! rtas-svc stats --addr <a>       print a server's counters and exit
//! ```
//!
//! `serve` prints `listening on <addr>` once the socket is bound —
//! smoke scripts can wait for the port. See the README's
//! "Network arbitration service" section for the wire protocol.

use std::process::ExitCode;

use rtas_svc::{Client, Server, SvcConfig};

fn usage() -> ! {
    eprintln!(
        "usage: rtas-svc serve [--addr a] [--shards n] [--capacity n] \
         [--backend b] [--listeners n] [--max-keys n] [--lease-ms n] \
         [--read-timeout-ms n] [--max-conns n]\n       \
         rtas-svc stats --addr a"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage();
    };
    let mut config = SvcConfig {
        addr: "127.0.0.1:7045".to_string(),
        ..SvcConfig::default()
    };

    let mut iter = args[1..].iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| -> &String {
            iter.next().unwrap_or_else(|| {
                eprintln!("error: {name} requires a value");
                usage();
            })
        };
        fn parsed<T: std::str::FromStr>(name: &str, value: &str) -> T {
            value.parse::<T>().unwrap_or_else(|_| {
                eprintln!("error: {name} value {value:?} is invalid");
                usage();
            })
        }
        match arg.as_str() {
            "--addr" => config.addr = value("--addr").clone(),
            "--shards" => config.shards = parsed("--shards", value("--shards")),
            "--capacity" => config.capacity = parsed("--capacity", value("--capacity")),
            "--listeners" => config.listeners = parsed("--listeners", value("--listeners")),
            "--max-keys" => config.max_keys = parsed("--max-keys", value("--max-keys")),
            "--max-conns" => {
                config.max_conns = parsed("--max-conns", value("--max-conns"));
                if config.max_conns == 0 {
                    eprintln!("error: --max-conns must be positive");
                    usage();
                }
            }
            "--lease-ms" => {
                let ms: u64 = parsed("--lease-ms", value("--lease-ms"));
                if ms == 0 {
                    eprintln!("error: --lease-ms must be positive (omit to disable)");
                    usage();
                }
                config.lease = Some(std::time::Duration::from_millis(ms));
            }
            "--read-timeout-ms" => {
                let ms: u64 = parsed("--read-timeout-ms", value("--read-timeout-ms"));
                if ms == 0 {
                    eprintln!("error: --read-timeout-ms must be positive (omit to disable)");
                    usage();
                }
                config.read_timeout = Some(std::time::Duration::from_millis(ms));
            }
            "--backend" => {
                let v = value("--backend");
                config.backend = rtas::Backend::parse(v).unwrap_or_else(|| {
                    eprintln!("error: unknown backend {v:?} (logstar|loglog|ratrace|combined)");
                    usage();
                });
            }
            "--help" | "-h" => usage(),
            flag => {
                eprintln!("error: unknown argument {flag}");
                usage();
            }
        }
    }

    match command.as_str() {
        "serve" => {
            if config.shards == 0
                || config.capacity == 0
                || config.listeners == 0
                || config.max_keys == 0
            {
                eprintln!(
                    "error: --shards, --capacity, --listeners, and --max-keys \
                     must be positive"
                );
                usage();
            }
            if config.capacity > rtas_svc::namespace::MAX_CAPACITY {
                eprintln!(
                    "error: --capacity must be at most {} (the per-epoch \
                     admission counter width)",
                    rtas_svc::namespace::MAX_CAPACITY
                );
                usage();
            }
            let server = match Server::spawn(config.clone()) {
                Ok(server) => server,
                Err(e) => {
                    eprintln!("rtas-svc: cannot bind {}: {e}", config.addr);
                    return ExitCode::from(2);
                }
            };
            println!(
                "rtas-svc: listening on {} (backend={:?} shards={} capacity={} listeners={})",
                server.addr(),
                config.backend,
                config.shards,
                config.capacity,
                config.listeners
            );
            server.join();
            ExitCode::SUCCESS
        }
        "stats" => {
            let stats = Client::connect(&config.addr)
                .map_err(rtas_svc::ClientError::Io)
                .and_then(|mut client| client.stats());
            match stats {
                Ok(s) => {
                    println!(
                        "keys {} | ops {} | wins {} | resets {} | registers {} | \
                         reclaimed {} | conns {} | refused {}",
                        s.keys,
                        s.ops,
                        s.wins,
                        s.resets,
                        s.registers,
                        s.reclaimed,
                        s.conns,
                        s.refused
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("rtas-svc: stats from {} failed: {e}", config.addr);
                    ExitCode::from(2)
                }
            }
        }
        other => {
            eprintln!("error: unknown command {other:?}");
            usage();
        }
    }
}
