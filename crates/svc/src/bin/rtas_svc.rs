//! `rtas-svc` — serve and inspect the network arbitration service.
//!
//! Run `rtas-svc --help` for the flag list: the usage text is rendered
//! from [`rtas_svc::cli::SERVE_FLAGS`], the same table the parser is
//! tested against, so help and parser cannot drift. The same flags are
//! documented with units and defaults in `docs/OPERATIONS.md`.
//!
//! `serve` prints `listening on <addr>` once the socket is bound —
//! smoke scripts can wait for the port. See `docs/WIRE.md` for the
//! wire protocol, and the "Observability" section of
//! `docs/OPERATIONS.md` for `stats --metrics`, `top`, `--trace`, and
//! `trace-dump`.

use std::process::ExitCode;
use std::sync::Arc;

use rtas_svc::obs::{decode_dump, render_json, render_timeline};
use rtas_svc::{cli, Client, Server};

fn usage() -> ! {
    eprintln!("{}", cli::serve_usage());
    std::process::exit(2);
}

fn run_stats(args: &[String]) -> ExitCode {
    let parsed = cli::parse_stats(args).unwrap_or_else(|message| {
        eprintln!("error: {message}");
        usage();
    });
    let mut client = match Client::connect(&parsed.addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("rtas-svc: stats from {} failed: {e}", parsed.addr);
            return ExitCode::from(2);
        }
    };
    if parsed.metrics {
        return match client.metrics() {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("rtas-svc: metrics from {} failed: {e}", parsed.addr);
                ExitCode::from(2)
            }
        };
    }
    match client.stats() {
        Ok(s) => {
            if parsed.json {
                println!("{}", cli::stats_to_json(&s));
            } else if parsed.raw {
                println!(
                    "keys {} | ops {} | wins {} | resets {} | registers {} | \
                     reclaimed {} | conns {} | refused {}",
                    s.keys, s.ops, s.wins, s.resets, s.registers, s.reclaimed, s.conns, s.refused
                );
            } else {
                for (name, value) in [
                    ("keys", s.keys),
                    ("ops", s.ops),
                    ("wins", s.wins),
                    ("resets", s.resets),
                    ("registers", s.registers),
                    ("reclaimed", s.reclaimed),
                    ("conns", s.conns),
                    ("refused", s.refused),
                ] {
                    println!("{name:<10} {value}");
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("rtas-svc: stats from {} failed: {e}", parsed.addr);
            ExitCode::from(2)
        }
    }
}

fn run_trace_dump(args: &[String]) -> ExitCode {
    let mut file = None;
    let mut json = false;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            other if !other.starts_with("--") && file.is_none() => file = Some(other.to_string()),
            other => {
                eprintln!("error: unknown argument {other}");
                usage();
            }
        }
    }
    let Some(file) = file else {
        eprintln!("error: trace-dump requires a dump file path");
        usage();
    };
    let bytes = match std::fs::read(&file) {
        Ok(bytes) => bytes,
        Err(e) => {
            eprintln!("rtas-svc: cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let dump = match decode_dump(&bytes) {
        Ok(dump) => dump,
        Err(e) => {
            eprintln!("rtas-svc: {file} is not a valid RTASTRC1 dump: {e}");
            return ExitCode::from(2);
        }
    };
    let dropped = dump.dropped();
    let events = dump.merged();
    if json {
        print!("{}", render_json(&events));
    } else {
        print!("{}", render_timeline(&events));
        if dropped > 0 {
            eprintln!(
                "rtas-svc: {dropped} event(s) were overwritten before the dump (lossy rings)"
            );
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage();
    };
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    match command.as_str() {
        "serve" => {
            let config = cli::parse_serve(&args[1..]).unwrap_or_else(|message| {
                eprintln!("error: {message}");
                usage();
            });
            let server = match Server::spawn(config.clone()) {
                Ok(server) => server,
                Err(e) => {
                    eprintln!("rtas-svc: cannot serve on {}: {e}", config.addr);
                    return ExitCode::from(2);
                }
            };
            // A panicking server leaves its black box behind: dump the
            // flight recorder to RTAS_TRACE_DIR (if set) before the
            // default hook prints the panic.
            let recorder = Arc::clone(server.recorder());
            let default_hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if let Ok(Some(path)) = recorder.dump_to_trace_dir("panic") {
                    eprintln!("rtas-svc: flight recorder dumped to {}", path.display());
                }
                default_hook(info);
            }));
            println!(
                "rtas-svc: listening on {} (backend={:?} shards={} capacity={} listeners={} \
                 engine={} workers={} trace={})",
                server.addr(),
                config.backend,
                config.shards,
                config.capacity,
                config.listeners,
                config.engine,
                config.workers,
                config.trace.label(),
            );
            server.join();
            ExitCode::SUCCESS
        }
        "stats" => run_stats(&args[1..]),
        "top" => {
            let parsed = cli::parse_top(&args[1..]).unwrap_or_else(|message| {
                eprintln!("error: {message}");
                usage();
            });
            match rtas_svc::top::run_top(&parsed) {
                Ok(()) => ExitCode::SUCCESS,
                Err(message) => {
                    eprintln!("rtas-svc: {message}");
                    ExitCode::from(2)
                }
            }
        }
        "trace-dump" => run_trace_dump(&args[1..]),
        other => {
            eprintln!("error: unknown command {other:?}");
            usage();
        }
    }
}
