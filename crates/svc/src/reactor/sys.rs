//! The libc-free syscall shim behind the reactor.
//!
//! The repo's no-external-deps policy rules out the `libc` crate, and
//! std exposes neither `epoll(7)` nor `poll(2)` — so the four syscalls
//! the reactor needs are invoked directly through inline assembly on
//! the platforms where the calling convention is stable and documented:
//! Linux on x86_64 (`syscall`, number in `rax`, args in
//! `rdi/rsi/rdx/r10/r8/r9`) and aarch64 (`svc 0`, number in `x8`, args
//! in `x0..x5`). Everything else in the server stays plain std; on any
//! other target this module is compiled out and the reactor engines
//! report themselves unsupported (see [`crate::reactor::Engine`]),
//! falling back to the thread-per-connection engine.
//!
//! Two deliberate simplifications keep the shim thin:
//!
//! * `epoll_pwait` (with a null sigmask it is exactly `epoll_wait`) is
//!   used on both architectures — aarch64 never had the older
//!   `epoll_wait` number.
//! * `ppoll` (with a null sigmask it is exactly `poll` with a
//!   `timespec` timeout) likewise — aarch64 never had `poll`.
//!
//! Errors follow the raw kernel convention: a negative return is
//! `-errno`, converted here into [`io::Error::from_raw_os_error`] so
//! callers match on [`io::ErrorKind`] (`Interrupted`, `WouldBlock`)
//! exactly as they would with std I/O.

use std::io;
use std::os::fd::RawFd;

// --- Raw syscall entry, per architecture. -------------------------------

#[cfg(target_arch = "x86_64")]
mod nr {
    pub const CLOSE: usize = 3;
    pub const PPOLL: usize = 271;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const EPOLL_CREATE1: usize = 291;
}

#[cfg(target_arch = "aarch64")]
mod nr {
    pub const CLOSE: usize = 57;
    pub const PPOLL: usize = 73;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const EPOLL_CREATE1: usize = 20;
}

/// Invoke syscall `n` with up to six arguments, returning the raw
/// kernel result (negative = `-errno`).
///
/// Safety: the caller must uphold the invoked syscall's own contract —
/// every pointer argument must be valid for the kernel's documented
/// access pattern for as long as the call runs.
#[cfg(target_arch = "x86_64")]
unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret: isize;
    core::arch::asm!(
        "syscall",
        inlateout("rax") n as isize => ret,
        in("rdi") a,
        in("rsi") b,
        in("rdx") c,
        in("r10") d,
        in("r8") e,
        in("r9") f,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack)
    );
    ret
}

/// See the x86_64 twin for the contract.
#[cfg(target_arch = "aarch64")]
unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret: isize;
    core::arch::asm!(
        "svc 0",
        in("x8") n,
        inlateout("x0") a => ret,
        in("x1") b,
        in("x2") c,
        in("x3") d,
        in("x4") e,
        in("x5") f,
        options(nostack)
    );
    ret
}

/// Kernel convention → std convention: negative returns become
/// [`io::Error`]s carrying the errno.
fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

// --- epoll ---------------------------------------------------------------

/// `EPOLL_CLOEXEC`: the epoll fd must not leak across an exec.
const EPOLL_CLOEXEC: usize = 0o2000000;

/// `epoll_ctl` op: add a new fd to the interest set.
pub const EPOLL_CTL_ADD: i32 = 1;
/// `epoll_ctl` op: remove an fd from the interest set.
pub const EPOLL_CTL_DEL: i32 = 2;
/// `epoll_ctl` op: change an already-registered fd's interest.
pub const EPOLL_CTL_MOD: i32 = 3;

/// Readability interest/readiness (level-triggered by default).
pub const EPOLLIN: u32 = 0x1;
/// Writability interest/readiness.
pub const EPOLLOUT: u32 = 0x4;
/// Error condition (always reported, never requested).
pub const EPOLLERR: u32 = 0x8;
/// Hangup (always reported, never requested).
pub const EPOLLHUP: u32 = 0x10;

/// One `struct epoll_event`. x86_64 declares it packed in the kernel
/// ABI; aarch64 uses natural alignment — mirror both exactly.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
pub struct EpollEvent {
    /// Readiness bit set (`EPOLLIN | ...`).
    pub events: u32,
    /// The caller's token, returned verbatim with each readiness event.
    pub data: u64,
}

/// An owned epoll instance; the fd is closed on drop.
#[derive(Debug)]
pub struct EpollFd(RawFd);

impl EpollFd {
    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub fn new() -> io::Result<EpollFd> {
        // Safety: no pointer arguments.
        let fd = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
        Ok(EpollFd(fd as RawFd))
    }

    /// `epoll_ctl(op, fd)` with interest `events` and `token` as the
    /// event payload.
    pub fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let ev = EpollEvent {
            events,
            data: token,
        };
        // Safety: `ev` lives across the call; the kernel only reads it.
        check(unsafe {
            syscall6(
                nr::EPOLL_CTL,
                self.0 as usize,
                op as usize,
                fd as usize,
                std::ptr::from_ref(&ev) as usize,
                0,
                0,
            )
        })?;
        Ok(())
    }

    /// `epoll_pwait` into `buf` (its *capacity* is the event ceiling);
    /// on return `buf` holds exactly the ready events. `timeout_ms < 0`
    /// blocks indefinitely.
    pub fn wait(&self, buf: &mut Vec<EpollEvent>, timeout_ms: i32) -> io::Result<usize> {
        buf.clear();
        let cap = buf.capacity().max(1);
        // Safety: `buf` owns `cap` writable `EpollEvent` slots; the
        // kernel writes at most `cap` of them and we set the length to
        // exactly the count it reports.
        let n = check(unsafe {
            syscall6(
                nr::EPOLL_PWAIT,
                self.0 as usize,
                buf.as_mut_ptr() as usize,
                cap,
                timeout_ms as usize,
                0, // null sigmask: plain epoll_wait semantics
                0,
            )
        })?;
        // Safety: the kernel initialized the first `n` events.
        unsafe { buf.set_len(n) };
        Ok(n)
    }
}

impl Drop for EpollFd {
    fn drop(&mut self) {
        // Safety: the fd is owned and closed exactly once.
        let _ = unsafe { syscall6(nr::CLOSE, self.0 as usize, 0, 0, 0, 0, 0) };
    }
}

// --- poll ----------------------------------------------------------------

/// Readability, for [`PollFd::events`].
pub const POLLIN: i16 = 0x1;
/// Writability, for [`PollFd::events`].
pub const POLLOUT: i16 = 0x4;
/// Error readiness (only ever appears in [`PollFd::revents`]).
pub const POLLERR: i16 = 0x8;
/// Hangup readiness (only ever appears in [`PollFd::revents`]).
pub const POLLHUP: i16 = 0x10;

/// One `struct pollfd`.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
pub struct PollFd {
    /// The polled descriptor.
    pub fd: RawFd,
    /// Requested readiness (`POLLIN | ...`).
    pub events: i16,
    /// Kernel-reported readiness.
    pub revents: i16,
}

/// `struct timespec` for `ppoll` (both supported targets are 64-bit).
#[repr(C)]
struct Timespec {
    tv_sec: i64,
    tv_nsec: i64,
}

/// `poll(2)` via `ppoll` with a null sigmask. `timeout_ms < 0` blocks
/// indefinitely. Returns the number of entries with nonzero `revents`.
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    let ts = Timespec {
        tv_sec: i64::from(timeout_ms) / 1000,
        tv_nsec: (i64::from(timeout_ms) % 1000) * 1_000_000,
    };
    let ts_ptr = if timeout_ms < 0 {
        0 // null timespec: block indefinitely
    } else {
        std::ptr::from_ref(&ts) as usize
    };
    // Safety: `fds` is a valid slice the kernel reads and writes within
    // bounds; `ts` (when passed) outlives the call and is only read.
    check(unsafe {
        syscall6(
            nr::PPOLL,
            fds.as_mut_ptr() as usize,
            fds.len(),
            ts_ptr,
            0, // null sigmask: plain poll semantics
            0,
            0,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn epoll_reports_readability_with_the_registered_token() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();

        let ep = EpollFd::new().unwrap();
        ep.ctl(EPOLL_CTL_ADD, rx.as_raw_fd(), EPOLLIN, 7777)
            .unwrap();
        let mut buf = Vec::with_capacity(8);

        // Nothing buffered: a zero timeout returns no events.
        assert_eq!(ep.wait(&mut buf, 0).unwrap(), 0);

        tx.write_all(b"x").unwrap();
        let n = ep.wait(&mut buf, 1000).unwrap();
        assert_eq!(n, 1);
        let ev = buf[0];
        assert_eq!({ ev.data }, 7777, "the token round-trips");
        assert_ne!({ ev.events } & EPOLLIN, 0, "readable");

        ep.ctl(EPOLL_CTL_DEL, rx.as_raw_fd(), 0, 0).unwrap();
        assert_eq!(ep.wait(&mut buf, 0).unwrap(), 0, "deregistered");
    }

    #[test]
    fn poll_reports_readability_and_honors_zero_timeout() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();

        let mut fds = [PollFd {
            fd: rx.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        }];
        assert_eq!(poll(&mut fds, 0).unwrap(), 0, "nothing buffered yet");

        tx.write_all(b"x").unwrap();
        assert_eq!(poll(&mut fds, 1000).unwrap(), 1);
        assert_ne!(fds[0].revents & POLLIN, 0, "readable");
    }

    #[test]
    fn errors_carry_real_errnos() {
        let ep = EpollFd::new().unwrap();
        // Adding a nonsense fd must fail with EBADF, proving the
        // negative-return → io::Error conversion.
        let err = ep.ctl(EPOLL_CTL_ADD, -1, EPOLLIN, 0).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(9), "EBADF");
    }
}
