//! A lazy hashed timer wheel for per-connection read deadlines.
//!
//! The blocking server got deadlines for free from
//! `set_read_timeout`; a reactor must multiplex thousands of deadlines
//! onto one `epoll_wait` timeout. The classic answer is a hashed
//! wheel: 64 slots, each holding the connections whose deadline lands
//! in that slot's time band, swept in O(slots touched) as time
//! advances — no per-deadline heap traffic, no ordering work.
//!
//! This wheel is *lazy*, which is what makes it allocation-free and
//! cancellation-free in steady state:
//!
//! * Entries are `(slot index, generation)` pairs, never pointers. A
//!   connection that closes early is not removed from the wheel — its
//!   slot generation is bumped, and the stale entry is discarded when
//!   the sweep surfaces it.
//! * A connection that stays active is not rescheduled on every read —
//!   the worker just refreshes its `last_activity` stamp. When the
//!   sweep surfaces the entry, the worker compares the *actual*
//!   deadline (`last_activity + timeout`) against now and reinserts
//!   the entry at the true deadline if it has not expired.
//!
//! Both rules mean an entry firing is a *hint* ("this connection might
//! be overdue — check it"), never a verdict. That tolerance is also
//! why slot aliasing (two ticks 64 apart sharing a slot) needs no
//! handling: an early-surfaced entry is simply reinserted. The tick is
//! `timeout / 32`, so a deadline error is at most ~3% of the timeout.

use std::time::{Duration, Instant};

/// Slot count; live entries span at most `timeout / tick` = 32 ticks,
/// so one wheel revolution always covers every pending deadline.
const SLOTS: usize = 64;

/// See the [module docs](self). Entries are `(index, generation)`
/// pairs whose meaning belongs to the worker's connection slab.
#[derive(Debug)]
pub(crate) struct TimerWheel {
    slots: [Vec<(u32, u32)>; SLOTS],
    tick: Duration,
    start: Instant,
    /// First tick not yet swept by [`TimerWheel::advance`].
    cursor: u64,
    /// Live entries across all slots.
    len: usize,
}

impl TimerWheel {
    /// A wheel sized for deadlines of roughly `timeout`: the tick is
    /// `timeout / 32` (floored at 1 ms), giving ≤ ~3% deadline error.
    pub(crate) fn new(timeout: Duration, now: Instant) -> TimerWheel {
        TimerWheel {
            slots: std::array::from_fn(|_| Vec::new()),
            tick: (timeout / 32).max(Duration::from_millis(1)),
            start: now,
            cursor: 0,
            len: 0,
        }
    }

    /// The tick containing instant `t`.
    fn tick_of(&self, t: Instant) -> u64 {
        let dt = t.saturating_duration_since(self.start);
        (dt.as_nanos() / self.tick.as_nanos().max(1)) as u64
    }

    /// Insert an entry due at `deadline`. A deadline already behind the
    /// sweep cursor lands in the cursor's slot and surfaces on the next
    /// [`TimerWheel::advance`].
    pub(crate) fn schedule(&mut self, idx: u32, gen: u32, deadline: Instant) {
        let tick = self.tick_of(deadline).max(self.cursor);
        self.slots[(tick % SLOTS as u64) as usize].push((idx, gen));
        self.len += 1;
    }

    /// Sweep every tick up to `now`, draining surfaced entries into
    /// `due`. The caller checks each entry's real deadline and either
    /// expires the connection or [`TimerWheel::schedule`]s it again.
    pub(crate) fn advance(&mut self, now: Instant, due: &mut Vec<(u32, u32)>) {
        let now_tick = self.tick_of(now);
        if now_tick < self.cursor {
            return;
        }
        if self.len == 0 {
            // Nothing pending: jump the cursor rather than walking a
            // long-idle gap slot by slot.
            self.cursor = now_tick;
            return;
        }
        if now_tick - self.cursor >= SLOTS as u64 {
            // A full revolution elapsed: every slot is due (or a
            // reinsertion candidate — the caller sorts that out).
            for slot in &mut self.slots {
                due.append(slot);
            }
            self.len = 0;
            self.cursor = now_tick;
            return;
        }
        while self.cursor <= now_tick {
            let slot = &mut self.slots[(self.cursor % SLOTS as u64) as usize];
            self.len -= slot.len();
            due.append(slot);
            self.cursor += 1;
        }
    }

    /// Live entries across all slots (stale generations included until
    /// a sweep surfaces and discards them) — the level behind the
    /// `reactor.worker<k>.wheel_entries` gauge.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// How long `epoll_wait` may sleep before the earliest possibly-due
    /// entry: the end of the first non-empty slot's tick. `None` when
    /// the wheel is empty (sleep indefinitely; admissions wake the
    /// worker through its wake socket).
    pub(crate) fn next_timeout(&self, now: Instant) -> Option<Duration> {
        if self.len == 0 {
            return None;
        }
        let tick = (0..SLOTS as u64)
            .map(|k| self.cursor + k)
            .find(|t| !self.slots[(t % SLOTS as u64) as usize].is_empty())?;
        let due_ns = (self.tick.as_nanos() as u64).saturating_mul(tick + 1);
        let due_at = self.start + Duration::from_nanos(due_ns);
        Some(due_at.saturating_duration_since(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_surface_once_their_tick_elapses() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(320), t0);
        // tick = 10ms
        wheel.schedule(1, 0, t0 + Duration::from_millis(320));
        wheel.schedule(2, 0, t0 + Duration::from_millis(50));

        let mut due = Vec::new();
        wheel.advance(t0 + Duration::from_millis(20), &mut due);
        assert!(due.is_empty(), "nothing due after 20ms");

        wheel.advance(t0 + Duration::from_millis(70), &mut due);
        assert_eq!(due, vec![(2, 0)], "the 50ms entry surfaced");

        due.clear();
        wheel.advance(t0 + Duration::from_millis(400), &mut due);
        assert_eq!(due, vec![(1, 0)], "the 320ms entry surfaced");
        assert!(wheel
            .next_timeout(t0 + Duration::from_millis(400))
            .is_none());
    }

    #[test]
    fn a_full_revolution_drains_everything() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(32), t0); // 1ms tick
        for i in 0..10u32 {
            wheel.schedule(i, 7, t0 + Duration::from_millis(u64::from(i) * 3));
        }
        let mut due = Vec::new();
        // Jump far past one revolution (64 ticks) in a single step.
        wheel.advance(t0 + Duration::from_secs(5), &mut due);
        assert_eq!(due.len(), 10, "every entry surfaced exactly once");
        let mut idxs: Vec<u32> = due.iter().map(|&(i, _)| i).collect();
        idxs.sort_unstable();
        assert_eq!(idxs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn next_timeout_tracks_the_earliest_pending_slot() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(320), t0); // 10ms tick
        assert!(
            wheel.next_timeout(t0).is_none(),
            "empty wheel sleeps forever"
        );

        wheel.schedule(1, 0, t0 + Duration::from_millis(100));
        let sleep = wheel.next_timeout(t0).expect("an entry is pending");
        // Due at the end of the 100ms deadline's tick: within (0, 110ms].
        assert!(sleep <= Duration::from_millis(110), "sleep {sleep:?}");
        assert!(sleep > Duration::ZERO);

        // Once surfaced and not reinserted, the wheel empties again.
        let mut due = Vec::new();
        wheel.advance(t0 + Duration::from_millis(150), &mut due);
        assert_eq!(due.len(), 1);
        assert!(wheel
            .next_timeout(t0 + Duration::from_millis(150))
            .is_none());
    }

    #[test]
    fn reinsertion_keeps_capacity_and_stays_live() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(64), t0); // 2ms tick
        wheel.schedule(3, 1, t0 + Duration::from_millis(10));
        let mut due = Vec::new();
        let mut now = t0;
        // Surface + reinsert repeatedly, as a worker does for a
        // connection that keeps refreshing its activity stamp.
        for round in 1..=50u64 {
            now = t0 + Duration::from_millis(10 * round);
            wheel.advance(now, &mut due);
            if !due.is_empty() {
                assert_eq!(due, vec![(3, 1)]);
                due.clear();
                wheel.schedule(3, 1, now + Duration::from_millis(10));
            }
        }
        assert!(wheel.next_timeout(now).is_some(), "entry still live");
    }
}
