//! The reactor worker: one thread, one poller, many connections.
//!
//! Each worker owns a [`Poller`] (epoll instance or a `poll(2)`
//! registry), a slab of [`ConnSlot`]s indexed by the poller token, and
//! an optional [`TimerWheel`] for read deadlines. Accept threads hand
//! it fresh sockets through a mutexed inbox and wake it with one byte
//! on its wake socket (a loopback TCP pair — std exposes no pipe or
//! eventfd, and the shim stays minimal).
//!
//! The loop body is: wait for readiness → serve ready connections →
//! admit inbox arrivals → sweep the timer wheel. Serving a readable
//! connection reads until `WouldBlock` (level-triggered interest makes
//! stopping early safe), feeds every chunk to the [`Connection`] state
//! machine, then flushes its coalesced output buffer. A partial write
//! leaves `write_pos` carried across wakeups and turns on write
//! interest — per-connection backpressure without threads. Interest is
//! downgraded back to read-only the moment the buffer drains, so an
//! idle connection costs nothing but its slot.
//!
//! Lifecycle edges mirror the blocking server exactly (`tests/wire.rs`
//! pins them): a poisoned stream (framing violation) drains its
//! pending `ERR` before closing; EOF closes silently but only after
//! buffered responses flush; a read-deadline expiry answers
//! best-effort `ERR "read deadline expired"` and closes; every close
//! releases its `max_conns` slot via [`ConnGauges::disconnected`].
//!
//! Steady state allocates nothing: the read chunk, event buffers,
//! wheel slots, inbox swap vector, and each connection's decoder and
//! output buffers are all reused (`tests/alloc_reactor.rs` enforces
//! this end to end).

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::AtomicBool;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rtas_obs::{EventKind, FlightRecorder, Lane};

use crate::conn::{ConnGauges, ConnObs, ConnStatus, Connection};
use crate::metrics::SvcMetrics;
use crate::namespace::Namespace;
use crate::protocol::{frame_response, Response};
use crate::reactor::wheel::TimerWheel;
use crate::reactor::{sys, Engine};

/// Poller token reserved for the worker's wake socket.
const WAKE_TOKEN: u64 = u64::MAX;

/// Bytes ingested per `read` call — same bulk figure as the blocking
/// server: one syscall swallows a whole pipelined burst.
const READ_CHUNK: usize = 64 * 1024;

/// Readiness events decoded per wait; also the epoll event-buffer
/// capacity. More ready connections than this simply surface on the
/// next (immediate) wait.
const EVENTS_PER_WAIT: usize = 1024;

/// One readiness report, engine-neutral. There is no `writable`
/// flag: the worker attempts a flush on *every* event for a
/// connection, so write readiness only needs the token delivered.
#[derive(Debug, Clone, Copy)]
struct Event {
    token: u64,
    readable: bool,
}

/// The engine-specific readiness source. Both variants expose the same
/// four verbs; both reuse their buffers so waiting allocates nothing.
#[derive(Debug)]
enum Poller {
    /// `epoll`: the kernel holds the interest set; waits are O(ready).
    Epoll {
        ep: sys::EpollFd,
        buf: Vec<sys::EpollEvent>,
    },
    /// `poll(2)`: the interest set lives here and is re-submitted on
    /// every wait — O(registered) per wait, kept as the portable
    /// reference engine and A/B check for the epoll path.
    Poll {
        fds: Vec<sys::PollFd>,
        tokens: Vec<u64>,
        scratch: Vec<sys::PollFd>,
    },
}

impl Poller {
    fn new(engine: Engine) -> io::Result<Poller> {
        match engine {
            Engine::Epoll => Ok(Poller::Epoll {
                ep: sys::EpollFd::new()?,
                buf: Vec::with_capacity(EVENTS_PER_WAIT),
            }),
            Engine::Poll => Ok(Poller::Poll {
                fds: Vec::new(),
                tokens: Vec::new(),
                scratch: Vec::new(),
            }),
            Engine::Threads => Err(io::Error::other("the threads engine has no poller")),
        }
    }

    fn interest_bits(readable: bool, writable: bool) -> u32 {
        let mut bits = 0;
        if readable {
            bits |= sys::EPOLLIN;
        }
        if writable {
            bits |= sys::EPOLLOUT;
        }
        bits
    }

    fn poll_bits(readable: bool, writable: bool) -> i16 {
        let mut bits = 0;
        if readable {
            bits |= sys::POLLIN;
        }
        if writable {
            bits |= sys::POLLOUT;
        }
        bits
    }

    fn register(
        &mut self,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        match self {
            Poller::Epoll { ep, .. } => ep.ctl(
                sys::EPOLL_CTL_ADD,
                fd,
                Self::interest_bits(readable, writable),
                token,
            ),
            Poller::Poll { fds, tokens, .. } => {
                fds.push(sys::PollFd {
                    fd,
                    events: Self::poll_bits(readable, writable),
                    revents: 0,
                });
                tokens.push(token);
                Ok(())
            }
        }
    }

    fn modify(&mut self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        match self {
            Poller::Epoll { ep, .. } => ep.ctl(
                sys::EPOLL_CTL_MOD,
                fd,
                Self::interest_bits(readable, writable),
                token,
            ),
            Poller::Poll { fds, .. } => {
                if let Some(entry) = fds.iter_mut().find(|e| e.fd == fd) {
                    entry.events = Self::poll_bits(readable, writable);
                }
                Ok(())
            }
        }
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match self {
            Poller::Epoll { ep, .. } => ep.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0),
            Poller::Poll { fds, tokens, .. } => {
                if let Some(at) = fds.iter().position(|e| e.fd == fd) {
                    fds.swap_remove(at);
                    tokens.swap_remove(at);
                }
                Ok(())
            }
        }
    }

    /// Wait up to `timeout_ms` (< 0: indefinitely) and decode readiness
    /// into `events`. An `EINTR` simply yields zero events. Error and
    /// hangup conditions are folded into both readiness flags so the
    /// next read/write discovers and classifies them.
    fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        events.clear();
        match self {
            Poller::Epoll { ep, buf } => {
                match ep.wait(buf, timeout_ms) {
                    Ok(_) => {}
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => return Ok(()),
                    Err(e) => return Err(e),
                }
                for ev in buf.iter() {
                    let bits = { ev.events };
                    let trouble = bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0;
                    events.push(Event {
                        token: { ev.data },
                        readable: bits & sys::EPOLLIN != 0 || trouble,
                    });
                }
            }
            Poller::Poll {
                fds,
                tokens,
                scratch,
            } => {
                scratch.clear();
                scratch.extend_from_slice(fds);
                match sys::poll(scratch, timeout_ms) {
                    Ok(_) => {}
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => return Ok(()),
                    Err(e) => return Err(e),
                }
                for (entry, &token) in scratch.iter().zip(tokens.iter()) {
                    if entry.revents == 0 {
                        continue;
                    }
                    let trouble = entry.revents & (sys::POLLERR | sys::POLLHUP) != 0;
                    events.push(Event {
                        token,
                        readable: entry.revents & sys::POLLIN != 0 || trouble,
                    });
                }
            }
        }
        Ok(())
    }
}

/// One served connection's reactor-side state: the socket, the
/// protocol state machine, and the write-backpressure cursor.
#[derive(Debug)]
struct ConnSlot {
    stream: TcpStream,
    conn: Connection,
    /// First unwritten byte of `conn.output()` — the partial-write
    /// carryover. Nonzero only while write interest is on.
    write_pos: usize,
    /// Registered read interest (off once draining).
    want_read: bool,
    /// Registered write interest (on only while output is unflushed).
    want_write: bool,
    /// No more ingest — flush what remains, then close. Set by a
    /// framing poison or by EOF with responses still buffered.
    draining: bool,
    /// Refreshed on every successful read; the wheel checks
    /// `last_activity + read_timeout` lazily.
    last_activity: Instant,
    /// Generation of this slab index, matched against wheel entries.
    gen: u32,
}

/// What the sockets said a connection should do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    Keep,
    Close,
}

/// A loopback TCP pair: `rx` lives in the worker's poller, `tx` with
/// the dispatcher. One written byte = one wakeup (coalesced freely).
pub(super) fn wake_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, peer) = listener.accept()?;
    // An unrelated local connector racing onto the port would wedge
    // the pair; verify we accepted our own connect.
    if peer != tx.local_addr()? {
        return Err(io::Error::other("wake pair cross-connected"));
    }
    rx.set_nonblocking(true)?;
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    Ok((rx, tx))
}

/// Everything one worker thread owns. Built on the spawning thread so
/// poller creation errors surface from `Server::spawn`, then moved.
#[derive(Debug)]
pub(super) struct Worker {
    poller: Poller,
    /// This worker's position in the pool — selects its flight-recorder
    /// lane and its `reactor.worker<k>.*` gauges.
    index: usize,
    wake_rx: TcpStream,
    inbox: Arc<Mutex<Vec<TcpStream>>>,
    namespace: Arc<Namespace>,
    gauges: Arc<ConnGauges>,
    metrics: Arc<SvcMetrics>,
    recorder: Arc<FlightRecorder>,
    /// Serve calls on this worker — the sequence the read/write stage
    /// sampling gate runs on (per-frame stages sample on the
    /// connection's own frame counter instead).
    serves: u64,
    stop: Arc<AtomicBool>,
    read_timeout: Option<Duration>,
    wheel: Option<TimerWheel>,
    slab: Vec<Option<ConnSlot>>,
    /// Free slab indices, reused LIFO.
    free: Vec<usize>,
    /// Per-index generation, bumped on close to invalidate wheel
    /// entries pointing at a recycled slot.
    gens: Vec<u32>,
    events: Vec<Event>,
    chunk: Vec<u8>,
    /// Swap target for the inbox mutex — admissions move the arrival
    /// vector wholesale instead of popping under the lock.
    incoming: Vec<TcpStream>,
    /// Scratch for wheel sweeps.
    due: Vec<(u32, u32)>,
    /// The pre-framed deadline-expiry `ERR`, written best-effort.
    deadline_err: Vec<u8>,
}

impl Worker {
    #[allow(clippy::too_many_arguments)]
    pub(super) fn new(
        engine: Engine,
        index: usize,
        wake_rx: TcpStream,
        inbox: Arc<Mutex<Vec<TcpStream>>>,
        namespace: Arc<Namespace>,
        gauges: Arc<ConnGauges>,
        metrics: Arc<SvcMetrics>,
        recorder: Arc<FlightRecorder>,
        stop: Arc<AtomicBool>,
        read_timeout: Option<Duration>,
    ) -> io::Result<Worker> {
        let mut poller = Poller::new(engine)?;
        poller.register(wake_rx.as_raw_fd(), WAKE_TOKEN, true, false)?;
        let now = Instant::now();
        let mut deadline_err = Vec::new();
        frame_response(
            &Response::Err("read deadline expired".to_string()),
            &mut deadline_err,
        );
        Ok(Worker {
            poller,
            index,
            wake_rx,
            inbox,
            namespace,
            gauges,
            metrics,
            recorder,
            serves: 0,
            stop,
            read_timeout,
            wheel: read_timeout.map(|t| TimerWheel::new(t, now)),
            slab: Vec::new(),
            free: Vec::new(),
            gens: Vec::new(),
            events: Vec::with_capacity(EVENTS_PER_WAIT),
            chunk: vec![0u8; READ_CHUNK],
            incoming: Vec::new(),
            due: Vec::new(),
            deadline_err,
        })
    }

    /// The event loop; returns only when the stop flag is up.
    pub(super) fn run(mut self) {
        loop {
            if self.stop.load(Ordering::SeqCst) {
                self.teardown();
                return;
            }
            let timeout_ms = match self
                .wheel
                .as_ref()
                .and_then(|w| w.next_timeout(Instant::now()))
            {
                // Ceil to a whole ms so a deadline 0.3ms out doesn't
                // busy-spin on zero-timeout waits.
                Some(d) => i32::try_from(d.as_millis().saturating_add(1)).unwrap_or(i32::MAX),
                None => -1,
            };
            let Worker { poller, events, .. } = &mut self;
            if poller.wait(events, timeout_ms).is_err() {
                // A failed wait (e.g. fd pressure) must not hot-loop.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
            if !self.events.is_empty() {
                self.recorder.record(
                    Lane::Worker(self.index),
                    EventKind::ReadinessWakeup,
                    self.events.len() as u32,
                    0,
                    0,
                );
            }
            for at in 0..self.events.len() {
                let ev = self.events[at];
                if ev.token == WAKE_TOKEN {
                    self.drain_wake();
                } else {
                    self.serve(ev);
                }
            }
            self.admit_pending();
            self.sweep_deadlines();
        }
    }

    /// Serve one ready connection: bulk-read and ingest while readable,
    /// then flush and settle interest.
    fn serve(&mut self, ev: Event) {
        let idx = ev.token as usize;
        // The read/write stage-timing gate: one decision per serve
        // call, on the worker's own serve sequence (per-frame stages
        // sample on the connection's frame counter inside `ingest_obs`).
        let timed = self.recorder.enabled() && self.recorder.sample_hit(self.serves);
        self.serves = self.serves.wrapping_add(1);
        let Some(slot) = self.slab.get_mut(idx).and_then(Option::as_mut) else {
            // Closed earlier in this same batch; stale report.
            return;
        };
        let mut eof = false;
        let mut verdict = Verdict::Keep;
        if ev.readable && !slot.draining {
            let t0 = if timed {
                Some(self.recorder.now_ns())
            } else {
                None
            };
            loop {
                match slot.stream.read(&mut self.chunk) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => {
                        slot.last_activity = Instant::now();
                        let obs = ConnObs {
                            recorder: &self.recorder,
                            metrics: &self.metrics,
                            lane: Lane::Worker(self.index),
                        };
                        let status = slot.conn.ingest_obs(
                            &self.chunk[..n],
                            &self.namespace,
                            &self.gauges,
                            Some(&obs),
                        );
                        if status == ConnStatus::Closed {
                            // Poisoned: no more reads; drain the ERR.
                            slot.draining = true;
                            break;
                        }
                        if n < self.chunk.len() {
                            // Short read: the socket is almost surely
                            // dry. If not, level-triggered interest
                            // re-reports it on the next wait.
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        verdict = Verdict::Close;
                        break;
                    }
                }
            }
            if let Some(t0) = t0 {
                let spent = self.recorder.now_ns().saturating_sub(t0);
                self.metrics.stage_read.record(spent as f64);
            }
        }
        if verdict == Verdict::Close {
            self.close(idx);
            return;
        }
        self.flush(idx, eof, timed);
    }

    /// Flush as much of the coalesced output as the socket accepts,
    /// carry the remainder via `write_pos`, and reconcile poller
    /// interest with what is left to do. `eof` records that the read
    /// side just ended: close once (and only once) output is drained.
    /// `timed` is the serve call's stage-sampling verdict — when up and
    /// there is output to push, the write loop lands one
    /// `stage.write_ns` sample.
    fn flush(&mut self, idx: usize, eof: bool, timed: bool) {
        let Some(slot) = self.slab.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        let t0 = if timed && slot.write_pos < slot.conn.output().len() {
            Some(self.recorder.now_ns())
        } else {
            None
        };
        let mut verdict = Verdict::Keep;
        loop {
            let pending = &slot.conn.output()[slot.write_pos..];
            if pending.is_empty() {
                break;
            }
            match slot.stream.write(pending) {
                Ok(0) => {
                    verdict = Verdict::Close;
                    break;
                }
                Ok(n) => slot.write_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    verdict = Verdict::Close;
                    break;
                }
            }
        }
        if let Some(t0) = t0 {
            let spent = self.recorder.now_ns().saturating_sub(t0);
            self.metrics.stage_write.record(spent as f64);
        }
        if verdict == Verdict::Keep {
            if slot.write_pos == slot.conn.output().len() {
                if slot.write_pos > 0 {
                    slot.conn.clear_output();
                    slot.write_pos = 0;
                }
                if slot.draining || eof {
                    // Poison ERR delivered, or EOF with nothing left
                    // to say: hang up.
                    verdict = Verdict::Close;
                } else {
                    if slot.want_write {
                        // Backpressure released: the carried output
                        // drained and write interest comes off.
                        self.recorder.record(
                            Lane::Worker(self.index),
                            EventKind::BackpressureOff,
                            idx as u32,
                            0,
                            0,
                        );
                    }
                    let (read, write) = (true, false);
                    if (slot.want_read, slot.want_write) != (read, write) {
                        let _ =
                            self.poller
                                .modify(slot.stream.as_raw_fd(), idx as u64, read, write);
                        (slot.want_read, slot.want_write) = (read, write);
                    }
                }
            } else {
                // Backpressure: output remains. EOF here still waits —
                // buffered responses belong to the client.
                self.metrics.carryovers.inc();
                if !slot.want_write {
                    let carried = slot.conn.output().len() - slot.write_pos;
                    self.recorder.record(
                        Lane::Worker(self.index),
                        EventKind::BackpressureOn,
                        idx as u32,
                        carried as u64,
                        0,
                    );
                }
                if eof {
                    slot.draining = true;
                }
                let (read, write) = (!slot.draining, true);
                if (slot.want_read, slot.want_write) != (read, write) {
                    let _ = self
                        .poller
                        .modify(slot.stream.as_raw_fd(), idx as u64, read, write);
                    (slot.want_read, slot.want_write) = (read, write);
                }
            }
        }
        if verdict == Verdict::Close {
            self.close(idx);
        }
    }

    /// Release a slot: deregister, bump the generation (invalidating
    /// wheel entries), return the `max_conns` claim, drop the socket.
    fn close(&mut self, idx: usize) {
        if let Some(slot) = self.slab[idx].take() {
            let _ = self.poller.deregister(slot.stream.as_raw_fd());
            self.gens[idx] = self.gens[idx].wrapping_add(1);
            self.free.push(idx);
            self.gauges.disconnected();
            if let Some(live) = self.metrics.slab_live.get(self.index) {
                live.sub(1);
            }
        }
    }

    /// Swallow queued wake bytes. The actual work (inbox, stop flag)
    /// is handled by the loop body right after event processing.
    fn drain_wake(&mut self) {
        let mut buf = [0u8; 64];
        loop {
            match (&self.wake_rx).read(&mut buf) {
                Ok(0) => return, // dispatcher gone; stop flag decides
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return, // WouldBlock: drained
            }
        }
    }

    /// Move arrivals out of the inbox and register each one. The
    /// accept loop already claimed their `max_conns` slots.
    fn admit_pending(&mut self) {
        {
            let mut inbox = match self.inbox.lock() {
                Ok(inbox) => inbox,
                Err(poisoned) => poisoned.into_inner(),
            };
            std::mem::swap(&mut *inbox, &mut self.incoming);
        }
        // Pop (not drain/take) so `incoming` keeps its capacity for
        // the next swap; batch-internal order is irrelevant.
        while let Some(stream) = self.incoming.pop() {
            self.admit(stream);
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        // Same transport posture as the blocking server: coalesced
        // burst writes must leave immediately, reads must not block.
        if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
            self.gauges.disconnected();
            return;
        }
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slab.push(None);
                self.gens.push(0);
                self.slab.len() - 1
            }
        };
        if self
            .poller
            .register(stream.as_raw_fd(), idx as u64, true, false)
            .is_err()
        {
            self.free.push(idx);
            self.gauges.disconnected();
            return;
        }
        let now = Instant::now();
        let gen = self.gens[idx];
        if let (Some(wheel), Some(timeout)) = (self.wheel.as_mut(), self.read_timeout) {
            wheel.schedule(idx as u32, gen, now + timeout);
        }
        self.slab[idx] = Some(ConnSlot {
            stream,
            conn: Connection::new(),
            write_pos: 0,
            want_read: true,
            want_write: false,
            draining: false,
            last_activity: now,
            gen,
        });
        if let Some(live) = self.metrics.slab_live.get(self.index) {
            live.add(1);
        }
    }

    /// Surface possibly-due wheel entries and expire the genuinely
    /// overdue ones with a best-effort `ERR`, exactly like the
    /// blocking server's read-timeout path.
    fn sweep_deadlines(&mut self) {
        let Some(timeout) = self.read_timeout else {
            return;
        };
        let Some(mut wheel) = self.wheel.take() else {
            return;
        };
        let now = Instant::now();
        self.due.clear();
        wheel.advance(now, &mut self.due);
        let surfaced = self.due.len();
        for at in 0..self.due.len() {
            let (idx32, gen) = self.due[at];
            let idx = idx32 as usize;
            let expired = match self.slab.get_mut(idx).and_then(Option::as_mut) {
                Some(slot) if slot.gen == gen => {
                    let deadline = slot.last_activity + timeout;
                    if now >= deadline {
                        let _ = slot.stream.write(&self.deadline_err);
                        true
                    } else {
                        // Activity since scheduling: rearm at the real
                        // deadline (the lazy-wheel contract).
                        wheel.schedule(idx32, gen, deadline);
                        false
                    }
                }
                // A stale entry for a closed (and possibly recycled)
                // slot: drop it.
                _ => false,
            };
            if expired {
                self.close(idx);
            }
        }
        if let Some(entries) = self.metrics.wheel_entries.get(self.index) {
            entries.set(wheel.len() as u64);
        }
        if surfaced > 0 {
            // Only sweeps that surfaced work are worth a ring slot —
            // an every-wakeup heartbeat would evict useful events.
            self.recorder.record(
                Lane::Worker(self.index),
                EventKind::TimerSweep,
                surfaced as u32,
                wheel.len() as u64,
                0,
            );
        }
        self.wheel = Some(wheel);
    }

    /// Shutdown: close every live connection and any arrival still in
    /// the inbox — each carries a claimed `max_conns` slot to return.
    fn teardown(&mut self) {
        for idx in 0..self.slab.len() {
            self.close(idx);
        }
        let pending = {
            let mut inbox = match self.inbox.lock() {
                Ok(inbox) => inbox,
                Err(poisoned) => poisoned.into_inner(),
            };
            std::mem::take(&mut *inbox)
        };
        for stream in pending {
            drop(stream);
            self.gauges.disconnected();
        }
    }
}
