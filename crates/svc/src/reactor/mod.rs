//! The readiness-driven reactor: many connections per worker thread.
//!
//! The blocking server spends one OS thread per connection; this
//! module spends one `Worker` thread per core-ish
//! ([`SvcConfig::workers`](crate::SvcConfig::workers)) and multiplexes
//! every connection assigned to it over a single readiness source —
//! `epoll(7)` by default, `poll(2)` as the portable reference engine —
//! reached through the inline-assembly syscall shim in `sys.rs` (the
//! repo takes no external crates, and std exposes neither API). See
//! `docs/ARCHITECTURE.md` for the full picture; `worker.rs` holds the
//! event-loop contract.
//!
//! Division of labor:
//!
//! * **Accept threads** stay blocking and unchanged — they claim the
//!   `max_conns` slot, refuse over the ceiling, and hand accepted
//!   sockets to the `Dispatcher`, which round-robins them across
//!   worker inboxes and wakes the chosen worker with one byte on its
//!   loopback wake socket.
//! * **Workers** own everything per-connection: the nonblocking
//!   socket, the [`Connection`](crate::Connection) state machine, the
//!   partial-write carryover cursor, and the read-deadline entry on a
//!   lazy timer wheel (`wheel.rs`). No locks are held while serving; the
//!   only cross-thread touchpoints are the inbox mutex (at admission)
//!   and the shared namespace/gauge atomics the blocking server
//!   already used.
//!
//! On platforms without the shim (anything but Linux on
//! x86_64/aarch64) the reactor engines report themselves unsupported
//! and `ReactorPool::spawn` fails cleanly; the caller keeps the
//! thread-per-connection engine instead.

pub(crate) mod wheel;

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub(crate) mod sys;
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod worker;

use std::fmt;
use std::io::{self, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use rtas_obs::{Counter, FlightRecorder};

use crate::conn::ConnGauges;
use crate::metrics::SvcMetrics;
use crate::namespace::Namespace;

/// Which connection-serving engine a server runs.
///
/// `epoll` and `poll` are the reactor engines (many connections per
/// worker; see the [module docs](self)); `threads` is the original
/// thread-per-connection design, kept both as the portable fallback
/// and as the behavioral reference the reactor is tested against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Readiness via `epoll(7)`: O(ready) waits, the default on
    /// supported platforms.
    Epoll,
    /// Readiness via `poll(2)`: O(registered) waits; the simpler
    /// reference engine.
    Poll,
    /// One blocking handler thread per connection.
    Threads,
}

impl Engine {
    /// Whether this build has the syscall shim the reactor engines
    /// need (Linux on x86_64 or aarch64).
    pub const SHIM_SUPPORTED: bool = cfg!(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ));

    /// The best engine this build supports: `epoll` with the shim,
    /// `threads` without.
    pub fn auto() -> Engine {
        if Engine::SHIM_SUPPORTED {
            Engine::Epoll
        } else {
            Engine::Threads
        }
    }

    /// Parse a `--engine` value (`epoll` | `poll` | `threads`).
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "epoll" => Some(Engine::Epoll),
            "poll" => Some(Engine::Poll),
            "threads" => Some(Engine::Threads),
            _ => None,
        }
    }

    /// The CLI/report spelling (`epoll` | `poll` | `threads`).
    pub fn label(self) -> &'static str {
        match self {
            Engine::Epoll => "epoll",
            Engine::Poll => "poll",
            Engine::Threads => "threads",
        }
    }

    /// Whether this engine can run in this build (see
    /// [`Engine::SHIM_SUPPORTED`]; `threads` always can).
    pub fn supported(self) -> bool {
        matches!(self, Engine::Threads) || Engine::SHIM_SUPPORTED
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::auto()
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The accept side's handle to the workers: round-robin admission
/// into per-worker inboxes, one wake byte per handoff.
#[derive(Debug)]
pub(crate) struct Dispatcher {
    inboxes: Vec<Arc<Mutex<Vec<TcpStream>>>>,
    wakers: Vec<TcpStream>,
    rr: AtomicUsize,
    /// `reactor.wake_writes` — every nudge byte written to a worker's
    /// wake socket (handoffs and shutdown broadcasts alike).
    wake_writes: Arc<Counter>,
}

impl Dispatcher {
    /// Hand an accepted (already `max_conns`-claimed) socket to a
    /// worker. Never blocks beyond the inbox mutex.
    pub(crate) fn dispatch(&self, stream: TcpStream) {
        let at = self.rr.fetch_add(1, Ordering::Relaxed) % self.inboxes.len();
        {
            let mut inbox = match self.inboxes[at].lock() {
                Ok(inbox) => inbox,
                Err(poisoned) => poisoned.into_inner(),
            };
            inbox.push(stream);
        }
        // A nonblocking one-byte nudge; WouldBlock means wakeups are
        // already queued, which is just as good.
        let mut waker: &TcpStream = &self.wakers[at];
        self.wake_writes.inc();
        let _ = waker.write_all(&[1u8]);
    }

    /// Nudge every worker (shutdown: each rechecks the stop flag).
    fn wake_all(&self) {
        for waker in &self.wakers {
            let mut waker: &TcpStream = waker;
            self.wake_writes.inc();
            let _ = waker.write_all(&[1u8]);
        }
    }
}

/// A running worker pool plus its dispatcher — what `Server` holds
/// when an reactor engine is selected.
#[derive(Debug)]
pub(crate) struct ReactorPool {
    dispatcher: Arc<Dispatcher>,
    workers: Vec<JoinHandle<()>>,
}

impl ReactorPool {
    /// Build `workers` reactor workers for `engine`. Fails cleanly if
    /// the engine is unsupported in this build or poller/wake-socket
    /// setup fails — nothing is left running on error.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn spawn(
        engine: Engine,
        workers: usize,
        namespace: &Arc<Namespace>,
        gauges: &Arc<ConnGauges>,
        metrics: &Arc<SvcMetrics>,
        recorder: &Arc<FlightRecorder>,
        stop: &Arc<AtomicBool>,
        read_timeout: Option<Duration>,
    ) -> io::Result<ReactorPool> {
        if !engine.supported() {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!(
                    "engine '{engine}' needs the Linux x86_64/aarch64 syscall shim; \
                     use --engine threads on this platform"
                ),
            ));
        }
        spawn_impl(
            engine,
            workers.max(1),
            namespace,
            gauges,
            metrics,
            recorder,
            stop,
            read_timeout,
        )
    }

    /// The accept loops' admission handle.
    pub(crate) fn dispatcher(&self) -> Arc<Dispatcher> {
        Arc::clone(&self.dispatcher)
    }

    /// Wake every worker and join them. The caller must have raised
    /// the stop flag first; workers close their connections on exit.
    pub(crate) fn join(self) {
        self.dispatcher.wake_all();
        for handle in self.workers {
            let _ = handle.join();
        }
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
#[allow(clippy::too_many_arguments)]
fn spawn_impl(
    engine: Engine,
    workers: usize,
    namespace: &Arc<Namespace>,
    gauges: &Arc<ConnGauges>,
    metrics: &Arc<SvcMetrics>,
    recorder: &Arc<FlightRecorder>,
    stop: &Arc<AtomicBool>,
    read_timeout: Option<Duration>,
) -> io::Result<ReactorPool> {
    // Build every worker before spawning any thread: a mid-sequence
    // failure (fd pressure) must abort cleanly with nothing running.
    let mut built = Vec::with_capacity(workers);
    let mut inboxes = Vec::with_capacity(workers);
    let mut wakers = Vec::with_capacity(workers);
    for index in 0..workers {
        let (wake_rx, wake_tx) = worker::wake_pair()?;
        let inbox = Arc::new(Mutex::new(Vec::new()));
        built.push(worker::Worker::new(
            engine,
            index,
            wake_rx,
            Arc::clone(&inbox),
            Arc::clone(namespace),
            Arc::clone(gauges),
            Arc::clone(metrics),
            Arc::clone(recorder),
            Arc::clone(stop),
            read_timeout,
        )?);
        inboxes.push(inbox);
        wakers.push(wake_tx);
    }
    let handles = built
        .into_iter()
        .map(|w| std::thread::spawn(move || w.run()))
        .collect();
    Ok(ReactorPool {
        dispatcher: Arc::new(Dispatcher {
            inboxes,
            wakers,
            rr: AtomicUsize::new(0),
            wake_writes: Arc::clone(&metrics.wake_writes),
        }),
        workers: handles,
    })
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
#[allow(clippy::too_many_arguments)]
fn spawn_impl(
    _engine: Engine,
    _workers: usize,
    _namespace: &Arc<Namespace>,
    _gauges: &Arc<ConnGauges>,
    _metrics: &Arc<SvcMetrics>,
    _recorder: &Arc<FlightRecorder>,
    _stop: &Arc<AtomicBool>,
    _read_timeout: Option<Duration>,
) -> io::Result<ReactorPool> {
    unreachable!("Engine::supported() gates reactor spawn off-shim")
}
